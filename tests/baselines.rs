//! Integration tests for the Table-2 baselines against the synthetic
//! corpus and crowd ground truth.

use saccs::data::yelp::{YelpConfig, YelpCorpus};
use saccs::data::{canonical_tags, CrowdSimulator};
use saccs::eval::ndcg::ndcg;
use saccs::ir::{Bm25Config, Bm25Index, SimBaseline};
use saccs::text::{Domain, Lexicon};
use std::sync::OnceLock;

fn corpus() -> &'static YelpCorpus {
    static CORPUS: OnceLock<YelpCorpus> = OnceLock::new();
    CORPUS.get_or_init(|| {
        YelpCorpus::generate(
            Lexicon::new(Domain::Restaurants),
            &YelpConfig {
                n_entities: 40,
                n_reviews: 900,
                seed: 5,
                ..Default::default()
            },
        )
    })
}

fn bm25() -> Bm25Index {
    let c = corpus();
    let docs = (0..c.entities.len()).map(|e| {
        (
            e,
            c.reviews_of(e)
                .iter()
                .map(|&ri| c.reviews[ri].text())
                .collect::<Vec<String>>(),
        )
    });
    // Bm25Index wants &str docs; collect owned then map.
    let owned: Vec<(usize, Vec<String>)> = docs.collect();
    let borrowed: Vec<(usize, Vec<&str>)> = owned
        .iter()
        .map(|(e, texts)| (*e, texts.iter().map(|t| t.as_str()).collect()))
        .collect();
    Bm25Index::build(
        borrowed,
        c.entities.len(),
        Lexicon::new(Domain::Restaurants),
        Bm25Config::default(),
    )
}

#[test]
fn bm25_retrieval_correlates_with_crowd_truth() {
    let c = corpus();
    let idx = bm25();
    let crowd = CrowdSimulator::default();
    let mut total = 0.0;
    let mut n = 0;
    for tag in canonical_tags().iter().take(8) {
        let gains: Vec<f32> = (0..c.entities.len())
            .map(|e| crowd.sat(tag, c, e))
            .collect();
        let ranked = idx.search(&tag.phrase());
        let ranked_gains: Vec<f32> = ranked.iter().map(|&(e, _)| gains[e]).collect();
        total += ndcg(&ranked_gains, &gains, 10);
        n += 1;
    }
    let mean = total / n as f32;
    assert!(mean > 0.6, "BM25 NDCG@10 too low: {mean}");
}

#[test]
fn bm25_finds_entities_whose_reviews_mention_the_term() {
    let c = corpus();
    let idx = bm25();
    let ranked = idx.search("romantic");
    assert!(!ranked.is_empty());
    let (top, _) = ranked[0];
    let mentions = c
        .reviews_of(top)
        .iter()
        .filter(|&&ri| c.reviews[ri].text().contains("romantic"))
        .count();
    assert!(mentions > 0, "top BM25 hit never mentions the query term");
}

#[test]
fn sim_oracle_is_bounded_by_one_and_beats_blind_ranking_sometimes() {
    let c = corpus();
    let sim = SimBaseline::new(&c.entities);
    let crowd = CrowdSimulator::default();
    // The quiet-place tag is attribute-aligned (NoiseLevel derives from
    // it), so SIM should do well there.
    let tag = canonical_tags()
        .into_iter()
        .find(|t| t.group == "quiet")
        .unwrap();
    let gains: Vec<f32> = (0..c.entities.len())
        .map(|e| crowd.sat(&tag, c, e))
        .collect();
    let (score, _) = sim.best_ndcg(&gains, 10, 2);
    assert!((0.0..=1.0).contains(&score));
    let blind: Vec<f32> = gains.iter().copied().take(10).collect();
    let blind_score = ndcg(&blind, &gains, 10);
    assert!(
        score >= blind_score - 1e-6,
        "the oracle can always do at least as well as no filter: {score} vs {blind_score}"
    );
}

#[test]
fn sim_two_attributes_dominate_one() {
    let c = corpus();
    let sim = SimBaseline::new(&c.entities);
    let crowd = CrowdSimulator::default();
    for tag in canonical_tags().iter().take(5) {
        let gains: Vec<f32> = (0..c.entities.len())
            .map(|e| crowd.sat(tag, c, e))
            .collect();
        let (one, _) = sim.best_ndcg(&gains, 10, 1);
        let (two, _) = sim.best_ndcg(&gains, 10, 2);
        assert!(
            two >= one - 1e-6,
            "{}: SIM-2 {two} < SIM-1 {one}",
            tag.phrase()
        );
    }
}

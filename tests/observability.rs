//! Integration: the observability layer sees the real Algorithm-1 span
//! tree.
//!
//! Builds a quick-profile service, installs the in-memory collector, and
//! drives one full `SaccsService::rank_unguarded` call (utterance → search API →
//! extraction → index probe → aggregation → padding), asserting the
//! collector records every stage with the right nesting — names and
//! structure, not timings, which are machine-dependent.
//!
//! The exporter slot is process-global, so this file keeps exactly one
//! `#[test]`; Cargo gives each integration-test file its own process.

use saccs::core::{RankRequest, SaccsBuilder, SearchApi};
use saccs::data::yelp::{YelpConfig, YelpCorpus};
use saccs::obs::{InMemoryCollector, SpanEvent};
use saccs::text::{Domain, Lexicon};
use std::sync::Arc;

#[test]
fn rank_call_produces_the_five_stage_span_tree() {
    let corpus = YelpCorpus::generate(
        Lexicon::new(Domain::Restaurants),
        &YelpConfig {
            n_entities: 16,
            n_reviews: 260,
            seed: 42,
            ..Default::default()
        },
    );
    // Build BEFORE installing the exporter: training emits its own spans
    // (tagger.train, pairing.fit, ...) and the assertion below wants the
    // tree of one rank call only.
    let trained = SaccsBuilder::quick().build(&corpus);
    assert!(!saccs::obs::enabled(), "exporter leaked in from elsewhere");

    let collector = Arc::new(InMemoryCollector::new());
    saccs::obs::install(collector.clone());
    let api = SearchApi::new(&corpus.entities);
    let ranked = trained
        .service
        .rank_unguarded(
            &RankRequest::utterance("I want a restaurant with delicious food and a nice staff"),
            &api,
        )
        .expect("extractor present");
    saccs::obs::uninstall();
    assert!(
        !ranked.results.is_empty(),
        "rank returned nothing to observe"
    );

    // Stage names and nesting: the five Algorithm-1 stages as direct
    // children of the root span, in execution order.
    let tree = collector.enter_tree();
    assert_eq!(
        tree,
        vec![
            ("algo1.rank", 0),
            ("algo1.search_api", 1),
            ("algo1.extract", 1),
            ("algo1.probe", 1),
            ("algo1.aggregate", 1),
            ("algo1.pad", 1),
        ],
        "unexpected span tree"
    );

    // Every enter has a matching exit at the same depth, innermost first.
    let events = collector.events();
    let enters = events
        .iter()
        .filter(|e| matches!(e, SpanEvent::Enter { .. }))
        .count();
    let exits: Vec<(&str, usize)> = events
        .iter()
        .filter_map(|e| match e {
            SpanEvent::Exit { name, depth, .. } => Some((*name, *depth)),
            _ => None,
        })
        .collect();
    assert_eq!(enters, exits.len(), "unbalanced span events: {events:?}");
    assert_eq!(
        exits.last(),
        Some(&("algo1.rank", 0)),
        "root span must exit last"
    );

    // The probe stage really hit the index: per-stage histograms and the
    // exact-hit/fallback counters landed in the global registry.
    let histograms = saccs::obs::registry().histogram_snapshots();
    for stage in [
        "algo1.rank",
        "algo1.search_api",
        "algo1.extract",
        "algo1.probe",
        "algo1.aggregate",
        "algo1.pad",
    ] {
        let snap = histograms
            .iter()
            .find(|(name, _)| name == stage)
            .map(|(_, s)| s)
            .unwrap_or_else(|| panic!("no histogram for {stage}"));
        assert!(snap.count >= 1, "{stage} recorded no samples");
    }
    let counters = saccs::obs::registry().counter_values();
    let probes: u64 = counters
        .iter()
        .filter(|(name, _)| name == "index.probe.exact" || name == "index.probe.fallback")
        .map(|(_, v)| v)
        .sum();
    assert!(
        probes >= 1,
        "index probe counters never moved: {counters:?}"
    );
}

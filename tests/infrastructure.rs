//! Integration tests for the infrastructure extensions: the concurrent
//! SharedIndex, the trie search automaton, CoNLL interop and the
//! extractor persistence codec — all through the public facade.

use rand::rngs::StdRng;
use rand::SeedableRng;
use saccs::data::generator::{GeneratorConfig, SentenceGenerator};
use saccs::data::{from_conll, to_conll};
use saccs::index::index::{EntityEvidence, IndexConfig};
use saccs::index::{SharedIndex, SubjectiveIndex};
use saccs::text::{ConceptualSimilarity, Domain, Lexicon, SubjectiveTag};
use std::sync::Arc;

fn tag(op: &str, asp: &str) -> SubjectiveTag {
    SubjectiveTag::new(op, asp)
}

fn populated_index() -> SubjectiveIndex {
    let mut idx = SubjectiveIndex::new(
        ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants)),
        IndexConfig::default(),
    );
    for e in 0..10 {
        idx.register_entity(EntityEvidence {
            entity_id: e,
            review_count: 4,
            review_tags: vec![
                tag("delicious", "food"),
                tag("nice", "staff"),
                tag("quick", "service"),
            ],
        });
    }
    idx.index_tags(&[
        tag("delicious", "food"),
        tag("nice", "staff"),
        tag("quick", "service"),
    ]);
    idx
}

#[test]
fn shared_index_survives_a_probe_storm() {
    let shared = Arc::new(SharedIndex::new(populated_index()));
    let before = shared.len();
    crossbeam::thread::scope(|scope| {
        for t in 0..6 {
            let shared = Arc::clone(&shared);
            scope.spawn(move |_| {
                for i in 0..100 {
                    let _ = shared.probe(&tag("delicious", "food"));
                    let _ = shared.probe(&tag("scrumptious", "pasta"));
                    let _ = shared.probe(&tag("romantic", "ambiance"));
                    if t == 0 && i % 25 == 0 {
                        shared.reindex_pending();
                    }
                }
            });
        }
    })
    .unwrap();
    shared.reindex_pending();
    assert_eq!(shared.len(), before + 2, "both unknown tags end up indexed");
    assert_eq!(shared.pending_count(), 0);
    // And the newly indexed tags answer directly.
    assert!(!shared.probe(&tag("scrumptious", "pasta")).is_empty());
}

#[test]
fn automaton_mirrors_the_index_and_adds_fuzzy() {
    let idx = populated_index();
    let automaton = idx.to_automaton();
    assert_eq!(automaton.len(), idx.len());
    for t in [tag("delicious", "food"), tag("nice", "staff")] {
        assert_eq!(
            automaton.get(&t).unwrap().len(),
            idx.lookup(&t).unwrap().len()
        );
    }
    // Autocomplete and typo tolerance the BTreeMap cannot provide.
    let completions = automaton.with_prefix("delic");
    assert_eq!(completions.len(), 1);
    let fuzzy = automaton.fuzzy_get(&tag("delicous", "food"));
    assert!(fuzzy.iter().any(|(p, _)| p == "delicious food"));
}

#[test]
fn conll_roundtrip_through_the_facade() {
    let gen = SentenceGenerator::new(Lexicon::new(Domain::Hotels), GeneratorConfig::default());
    let mut rng = StdRng::seed_from_u64(7);
    let sentences: Vec<_> = (0..25).map(|_| gen.random_sentence(&mut rng)).collect();
    let text = to_conll(&sentences);
    let parsed = from_conll(&text).expect("roundtrip parse");
    assert_eq!(parsed.len(), sentences.len());
    for (a, b) in sentences.iter().zip(&parsed) {
        assert_eq!(a.tokens, b.tokens);
        assert_eq!(a.tags, b.tags);
        assert_eq!(
            a.pairs.iter().collect::<std::collections::BTreeSet<_>>(),
            b.pairs.iter().collect::<std::collections::BTreeSet<_>>()
        );
    }
}

#[test]
fn state_codec_rejects_corruption_at_every_cut() {
    use saccs::nn::{decode_state, encode_state, Matrix};
    let state = vec![Matrix::full(3, 3, 1.25), Matrix::zeros(1, 7)];
    let bytes = encode_state(&state);
    assert_eq!(decode_state(&bytes).unwrap(), state);
    for cut in 0..bytes.len() {
        assert!(
            decode_state(&bytes[..cut]).is_err(),
            "accepted truncation at {cut}"
        );
    }
}

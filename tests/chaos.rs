//! Chaos suite: seeded fault schedules driving the hardened rank path.
//!
//! The ungated tests pin the zero-fault contract: `rank_resilient` is
//! bitwise identical to `rank`, and a tag-free utterance passes the
//! objective order through without ever entering the pad stage. The
//! `fault`-gated tests arm deterministic schedules (`saccs-fault`) and
//! drive the degradation ladder end to end:
//!
//! ```text
//! cargo test --features fault --test chaos -- --nocapture
//! ```
//!
//! Every armed test prints its `(seed, scenario)` pair; replaying a
//! failure is `arm_guard(&Scenario::parse(printed)?, printed_seed)`.
//!
//! The fault registry, the obs exporter slot and the metrics registry
//! are process-global, so every test takes the file-wide mutex and
//! asserts on counter *deltas* (the `counter!` macro caches handles, so
//! `registry().reset()` would detach live call sites).

use saccs::core::{RankRequest, SaccsBuilder, SearchApi, Slots, TrainedSaccs};
use saccs::data::yelp::{YelpConfig, YelpCorpus};
use saccs::text::{Domain, Lexicon};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

fn corpus() -> &'static YelpCorpus {
    static CORPUS: OnceLock<YelpCorpus> = OnceLock::new();
    CORPUS.get_or_init(|| {
        YelpCorpus::generate(
            Lexicon::new(Domain::Restaurants),
            &YelpConfig {
                n_entities: 24,
                n_reviews: 420,
                seed: 42,
                ..Default::default()
            },
        )
    })
}

fn saccs() -> TrainedSaccs {
    SaccsBuilder::quick().build(corpus())
}

/// Serialize the whole file: armed schedules, the exporter slot and the
/// metrics registry are shared process state. A panicking test must not
/// wedge the rest, so poison is swallowed.
fn global_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(feature = "fault")]
fn counter(name: &str) -> u64 {
    saccs::obs::registry().counter(name).get()
}

/// Scores compared by bit pattern: "same ranking" here means the exact
/// same floats, not approximately equal ones.
fn bits(ranked: &[(usize, f32)]) -> Vec<(usize, u32)> {
    ranked.iter().map(|&(e, s)| (e, s.to_bits())).collect()
}

/// The objective passthrough `rank_resilient` must fall back to: the
/// API order with zero scores, truncated to `top_k`.
fn objective_order(api: &SearchApi<'_>, top_k: usize) -> Vec<(usize, f32)> {
    api.search(&Slots::default())
        .into_iter()
        .take(top_k)
        .map(|e| (e, 0.0))
        .collect()
}

const UTTERANCES: [&str; 3] = [
    "I want a restaurant with delicious food and a nice staff",
    "somewhere with friendly staff and tasty food",
    "find me a cozy place with a great atmosphere",
];

#[test]
fn rank_resilient_is_bitwise_identical_to_rank_without_faults() {
    let _serial = global_lock();
    let trained = saccs();
    let api = SearchApi::new(&corpus().entities);
    for utterance in UTTERANCES {
        let request = RankRequest::utterance(utterance);
        let plain = trained
            .service
            .rank_unguarded(&request, &api)
            .expect("extractor present");
        let hardened = trained.service.rank_request(&request, &api);
        assert!(
            hardened.is_full_fidelity(),
            "fault-free run degraded on {utterance:?}: {:?}",
            hardened.degradation.events
        );
        assert_eq!(
            bits(&plain.results),
            bits(&hardened.results),
            "hardened path diverged on {utterance:?}"
        );
    }
}

/// Satellite regression: an utterance with no subjective signal (and
/// empty slots) must pass the API order through verbatim — and must do
/// so via the early passthrough, never reaching the pad stage. The
/// `algo1.pad` histogram (spans record durations there while an
/// exporter is installed) pins that: its sample count may not move.
#[test]
fn tag_free_rank_passes_api_order_through_without_padding() {
    let _serial = global_lock();
    let trained = saccs();
    let api = SearchApi::new(&corpus().entities);
    assert!(
        trained
            .service
            .extract_tags("")
            .expect("extractor present")
            .is_empty(),
        "empty utterance extracted tags"
    );

    let collector = std::sync::Arc::new(saccs::obs::InMemoryCollector::new());
    saccs::obs::install(collector);
    let pad_before = saccs::obs::registry().histogram("algo1.pad").count();
    let rank_before = saccs::obs::registry().histogram("algo1.rank").count();
    let ranked = trained
        .service
        .rank_unguarded(&RankRequest::utterance(""), &api)
        .expect("extractor present");
    saccs::obs::uninstall();

    let top_k = trained.service.config().top_k;
    assert_eq!(
        bits(&ranked.results),
        bits(&objective_order(&api, top_k)),
        "tag-free rank is not the objective passthrough"
    );
    assert_eq!(
        saccs::obs::registry().histogram("algo1.rank").count(),
        rank_before + 1,
        "rank span did not record"
    );
    assert_eq!(
        saccs::obs::registry().histogram("algo1.pad").count(),
        pad_before,
        "pad stage ran on a tag-free utterance"
    );
}

#[cfg(feature = "fault")]
mod armed {
    use super::*;
    use saccs::core::{DegradeAction, ResilienceConfig, SaccsError};
    use saccs::fault::{arm_guard, Scenario};
    use std::time::Duration;

    /// Permanent probe outage: every request must degrade to the
    /// objective order (never panic, never go empty), with a non-empty
    /// degradation report, and `fault.degraded_requests` must count
    /// each one exactly once.
    #[test]
    fn permanent_probe_fault_degrades_every_request_to_objective_only() {
        let _serial = global_lock();
        let trained = saccs();
        let api = SearchApi::new(&corpus().entities);
        let expected = objective_order(&api, trained.service.config().top_k);

        const SEED: u64 = 7;
        let scenario = Scenario::parse("algo1.probe=err").expect("scenario parses");
        println!("chaos replay: seed={SEED} scenario={scenario}");
        let degraded_before = counter("fault.degraded_requests");
        let _faults = arm_guard(&scenario, SEED);

        const REQUESTS: u64 = 4;
        for (i, utterance) in UTTERANCES
            .iter()
            .cycle()
            .take(REQUESTS as usize)
            .enumerate()
        {
            let outcome = trained
                .service
                .rank_request(&RankRequest::utterance(*utterance), &api);
            assert_eq!(
                bits(&outcome.results),
                bits(&expected),
                "request {i} is not the objective fallback"
            );
            assert!(
                outcome.degradation.is_degraded(),
                "request {i} reported no degradation"
            );
            assert_eq!(
                outcome.degradation.worst(),
                Some(DegradeAction::ObjectiveOnly),
                "request {i} worst rung"
            );
        }
        assert_eq!(
            counter("fault.degraded_requests") - degraded_before,
            REQUESTS,
            "degraded_requests must count each request once"
        );
        assert!(
            trained.service.breakers().probe.times_opened() >= 1,
            "a permanent outage must trip the probe breaker"
        );
    }

    /// Transient faults inside the retry budget are fully absorbed: two
    /// failing probe calls, then recovery — the ranking is byte-identical
    /// to the fault-free run and nothing degrades.
    #[test]
    fn retries_absorb_transient_probe_faults_bitwise() {
        let _serial = global_lock();
        let trained = saccs();
        let api = SearchApi::new(&corpus().entities);
        let request = RankRequest::utterance(UTTERANCES[0]);
        let reference = trained.service.rank_request(&request, &api);
        assert!(reference.is_full_fidelity());

        const SEED: u64 = 11;
        // Probe calls 1 and 2 fail; the default policy retries up to 3
        // attempts, so the first tag recovers on its third call.
        let scenario = Scenario::parse("algo1.probe=err@1..3").expect("scenario parses");
        println!("chaos replay: seed={SEED} scenario={scenario}");
        let retries_before = counter("fault.retry.attempts");
        let outcome = {
            let _faults = arm_guard(&scenario, SEED);
            trained.service.rank_request(&request, &api)
        };
        assert!(
            outcome.is_full_fidelity(),
            "absorbed faults must not degrade: {:?}",
            outcome.degradation.events
        );
        assert_eq!(
            bits(&outcome.results),
            bits(&reference.results),
            "ranking changed once the faults cleared"
        );
        assert_eq!(
            counter("fault.retry.attempts") - retries_before,
            2,
            "exactly the two injected failures should have been retried"
        );
    }

    /// A lapsed deadline mid-probe returns the partially-ranked results
    /// (from the tags probed in time) instead of blocking or panicking.
    #[test]
    fn deadline_mid_probe_returns_partial_results() {
        let _serial = global_lock();
        let trained = saccs();
        let service = trained.service.with_resilience(ResilienceConfig {
            deadline: Some(Duration::from_millis(250)),
            ..ResilienceConfig::default()
        });
        let api = SearchApi::new(&corpus().entities);
        let utterance = UTTERANCES[0];
        assert!(
            service
                .extract_tags(utterance)
                .expect("extractor present")
                .len()
                >= 2,
            "test needs a multi-tag utterance to truncate"
        );

        const SEED: u64 = 13;
        // The first probe call sleeps straight through the 250ms budget;
        // the deadline check before the next tag then truncates the
        // probe list.
        let scenario = Scenario::parse("algo1.probe=delay(600ms)@1").expect("scenario parses");
        println!("chaos replay: seed={SEED} scenario={scenario}");
        let exceeded_before = counter("fault.deadline.exceeded");
        let outcome = {
            let _faults = arm_guard(&scenario, SEED);
            service.rank_request(&RankRequest::utterance(utterance), &api)
        };
        assert!(
            !outcome.results.is_empty(),
            "partial degradation must still return the surviving ranking"
        );
        assert_eq!(
            outcome.degradation.worst(),
            Some(DegradeAction::Partial),
            "events: {:?}",
            outcome.degradation.events
        );
        assert!(
            outcome
                .degradation
                .events
                .iter()
                .any(|e| matches!(e.error, SaccsError::DeadlineExceeded { .. })),
            "no deadline error in {:?}",
            outcome.degradation.events
        );
        assert!(
            counter("fault.deadline.exceeded") > exceeded_before,
            "deadline counter never moved"
        );
    }

    /// The reproducibility contract the printed `(seed, scenario)` pairs
    /// rely on: re-arming the same schedule against a fresh service
    /// replays the same rankings and the same degradation report,
    /// event for event.
    #[test]
    fn seeded_probabilistic_chaos_replays_exactly() {
        let _serial = global_lock();
        const SEED: u64 = 2024;
        // p must beat the retry budget: a logical probe only degrades
        // when three consecutive calls fire (p³), so p=0.9 makes at
        // least one degradation over six requests near-certain.
        let scenario = Scenario::parse("algo1.probe=err@p=0.9").expect("scenario parses");
        println!("chaos replay: seed={SEED} scenario={scenario}");

        let run = |seed: u64| -> Vec<(Vec<(usize, u32)>, Vec<String>)> {
            let trained = saccs();
            let api = SearchApi::new(&corpus().entities);
            let _faults = arm_guard(&scenario, seed);
            UTTERANCES
                .iter()
                .cycle()
                .take(6)
                .map(|utterance| {
                    let outcome = trained
                        .service
                        .rank_request(&RankRequest::utterance(*utterance), &api);
                    let events: Vec<String> = outcome
                        .degradation
                        .events
                        .iter()
                        .map(|e| format!("{}:{}:{}", e.stage, e.action.label(), e.error))
                        .collect();
                    (bits(&outcome.results), events)
                })
                .collect()
        };

        let first = run(SEED);
        let second = run(SEED);
        assert_eq!(first, second, "same (seed, scenario) must replay exactly");
        assert!(
            first.iter().any(|(_, events)| !events.is_empty()),
            "p=0.5 over 6 requests fired nothing — schedule not armed?"
        );
    }
}

//! Chaos suite: seeded fault schedules driving the hardened rank path.
//!
//! The ungated tests pin the zero-fault contract: `rank_resilient` is
//! bitwise identical to `rank`, and a tag-free utterance passes the
//! objective order through without ever entering the pad stage. The
//! `fault`-gated tests arm deterministic schedules (`saccs-fault`) and
//! drive the degradation ladder end to end:
//!
//! ```text
//! cargo test --features fault --test chaos -- --nocapture
//! ```
//!
//! Every armed test prints its `(seed, scenario)` pair; replaying a
//! failure is `arm_guard(&Scenario::parse(printed)?, printed_seed)`.
//!
//! The fault registry, the obs exporter slot and the metrics registry
//! are process-global, so every test takes the file-wide mutex and
//! asserts on counter *deltas* (the `counter!` macro caches handles, so
//! `registry().reset()` would detach live call sites).

use saccs::core::{RankRequest, SaccsBuilder, SearchApi, Slots, TrainedSaccs};
use saccs::data::yelp::{YelpConfig, YelpCorpus};
use saccs::text::{Domain, Lexicon};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

fn corpus() -> &'static YelpCorpus {
    static CORPUS: OnceLock<YelpCorpus> = OnceLock::new();
    CORPUS.get_or_init(|| {
        YelpCorpus::generate(
            Lexicon::new(Domain::Restaurants),
            &YelpConfig {
                n_entities: 24,
                n_reviews: 420,
                seed: 42,
                ..Default::default()
            },
        )
    })
}

fn saccs() -> TrainedSaccs {
    SaccsBuilder::quick().build(corpus())
}

/// Serialize the whole file: armed schedules, the exporter slot and the
/// metrics registry are shared process state. A panicking test must not
/// wedge the rest, so poison is swallowed.
fn global_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(feature = "fault")]
fn counter(name: &str) -> u64 {
    saccs::obs::registry().counter(name).get()
}

/// Scores compared by bit pattern: "same ranking" here means the exact
/// same floats, not approximately equal ones.
fn bits(ranked: &[(usize, f32)]) -> Vec<(usize, u32)> {
    ranked.iter().map(|&(e, s)| (e, s.to_bits())).collect()
}

/// The objective passthrough `rank_resilient` must fall back to: the
/// API order with zero scores, truncated to `top_k`.
fn objective_order(api: &SearchApi<'_>, top_k: usize) -> Vec<(usize, f32)> {
    api.search(&Slots::default())
        .into_iter()
        .take(top_k)
        .map(|e| (e, 0.0))
        .collect()
}

const UTTERANCES: [&str; 3] = [
    "I want a restaurant with delicious food and a nice staff",
    "somewhere with friendly staff and tasty food",
    "find me a cozy place with a great atmosphere",
];

#[test]
fn rank_resilient_is_bitwise_identical_to_rank_without_faults() {
    let _serial = global_lock();
    let trained = saccs();
    let api = SearchApi::new(&corpus().entities);
    for utterance in UTTERANCES {
        let request = RankRequest::utterance(utterance);
        let plain = trained
            .service
            .rank_unguarded(&request, &api)
            .expect("extractor present");
        let hardened = trained.service.rank_request(&request, &api);
        assert!(
            hardened.is_full_fidelity(),
            "fault-free run degraded on {utterance:?}: {:?}",
            hardened.degradation.events
        );
        assert_eq!(
            bits(&plain.results),
            bits(&hardened.results),
            "hardened path diverged on {utterance:?}"
        );
    }
}

/// Satellite regression: an utterance with no subjective signal (and
/// empty slots) must pass the API order through verbatim — and must do
/// so via the early passthrough, never reaching the pad stage. The
/// `algo1.pad` histogram (spans record durations there while an
/// exporter is installed) pins that: its sample count may not move.
#[test]
fn tag_free_rank_passes_api_order_through_without_padding() {
    let _serial = global_lock();
    let trained = saccs();
    let api = SearchApi::new(&corpus().entities);
    assert!(
        trained
            .service
            .extract_tags("")
            .expect("extractor present")
            .is_empty(),
        "empty utterance extracted tags"
    );

    let collector = std::sync::Arc::new(saccs::obs::InMemoryCollector::new());
    saccs::obs::install(collector);
    let pad_before = saccs::obs::registry().histogram("algo1.pad").count();
    let rank_before = saccs::obs::registry().histogram("algo1.rank").count();
    let ranked = trained
        .service
        .rank_unguarded(&RankRequest::utterance(""), &api)
        .expect("extractor present");
    saccs::obs::uninstall();

    let top_k = trained.service.config().top_k;
    assert_eq!(
        bits(&ranked.results),
        bits(&objective_order(&api, top_k)),
        "tag-free rank is not the objective passthrough"
    );
    assert_eq!(
        saccs::obs::registry().histogram("algo1.rank").count(),
        rank_before + 1,
        "rank span did not record"
    );
    assert_eq!(
        saccs::obs::registry().histogram("algo1.pad").count(),
        pad_before,
        "pad stage ran on a tag-free utterance"
    );
}

#[cfg(feature = "fault")]
mod armed {
    use super::*;
    use saccs::core::{DegradeAction, ResilienceConfig, SaccsError};
    use saccs::fault::{arm_guard, Scenario};
    use std::time::Duration;

    /// Permanent probe outage: every request must degrade to the
    /// objective order (never panic, never go empty), with a non-empty
    /// degradation report, and `fault.degraded_requests` must count
    /// each one exactly once.
    #[test]
    fn permanent_probe_fault_degrades_every_request_to_objective_only() {
        let _serial = global_lock();
        let trained = saccs();
        let api = SearchApi::new(&corpus().entities);
        let expected = objective_order(&api, trained.service.config().top_k);

        const SEED: u64 = 7;
        let scenario = Scenario::parse("algo1.probe=err").expect("scenario parses");
        println!("chaos replay: seed={SEED} scenario={scenario}");
        let degraded_before = counter("fault.degraded_requests");
        let _faults = arm_guard(&scenario, SEED);

        const REQUESTS: u64 = 4;
        for (i, utterance) in UTTERANCES
            .iter()
            .cycle()
            .take(REQUESTS as usize)
            .enumerate()
        {
            let outcome = trained
                .service
                .rank_request(&RankRequest::utterance(*utterance), &api);
            assert_eq!(
                bits(&outcome.results),
                bits(&expected),
                "request {i} is not the objective fallback"
            );
            assert!(
                outcome.degradation.is_degraded(),
                "request {i} reported no degradation"
            );
            assert_eq!(
                outcome.degradation.worst(),
                Some(DegradeAction::ObjectiveOnly),
                "request {i} worst rung"
            );
        }
        assert_eq!(
            counter("fault.degraded_requests") - degraded_before,
            REQUESTS,
            "degraded_requests must count each request once"
        );
        assert!(
            trained.service.breakers().probe.times_opened() >= 1,
            "a permanent outage must trip the probe breaker"
        );
    }

    /// Transient faults inside the retry budget are fully absorbed: two
    /// failing probe calls, then recovery — the ranking is byte-identical
    /// to the fault-free run and nothing degrades.
    #[test]
    fn retries_absorb_transient_probe_faults_bitwise() {
        let _serial = global_lock();
        let trained = saccs();
        let api = SearchApi::new(&corpus().entities);
        let request = RankRequest::utterance(UTTERANCES[0]);
        let reference = trained.service.rank_request(&request, &api);
        assert!(reference.is_full_fidelity());

        const SEED: u64 = 11;
        // Probe calls 1 and 2 fail; the default policy retries up to 3
        // attempts, so the first tag recovers on its third call.
        let scenario = Scenario::parse("algo1.probe=err@1..3").expect("scenario parses");
        println!("chaos replay: seed={SEED} scenario={scenario}");
        let retries_before = counter("fault.retry.attempts");
        let outcome = {
            let _faults = arm_guard(&scenario, SEED);
            trained.service.rank_request(&request, &api)
        };
        assert!(
            outcome.is_full_fidelity(),
            "absorbed faults must not degrade: {:?}",
            outcome.degradation.events
        );
        assert_eq!(
            bits(&outcome.results),
            bits(&reference.results),
            "ranking changed once the faults cleared"
        );
        assert_eq!(
            counter("fault.retry.attempts") - retries_before,
            2,
            "exactly the two injected failures should have been retried"
        );
    }

    /// A lapsed deadline mid-probe returns the partially-ranked results
    /// (from the tags probed in time) instead of blocking or panicking.
    #[test]
    fn deadline_mid_probe_returns_partial_results() {
        let _serial = global_lock();
        let trained = saccs();
        let service = trained.service.with_resilience(ResilienceConfig {
            deadline: Some(Duration::from_millis(250)),
            ..ResilienceConfig::default()
        });
        let api = SearchApi::new(&corpus().entities);
        let utterance = UTTERANCES[0];
        assert!(
            service
                .extract_tags(utterance)
                .expect("extractor present")
                .len()
                >= 2,
            "test needs a multi-tag utterance to truncate"
        );

        const SEED: u64 = 13;
        // The first probe call sleeps straight through the 250ms budget;
        // the deadline check before the next tag then truncates the
        // probe list.
        let scenario = Scenario::parse("algo1.probe=delay(600ms)@1").expect("scenario parses");
        println!("chaos replay: seed={SEED} scenario={scenario}");
        let exceeded_before = counter("fault.deadline.exceeded");
        let outcome = {
            let _faults = arm_guard(&scenario, SEED);
            service.rank_request(&RankRequest::utterance(utterance), &api)
        };
        assert!(
            !outcome.results.is_empty(),
            "partial degradation must still return the surviving ranking"
        );
        assert_eq!(
            outcome.degradation.worst(),
            Some(DegradeAction::Partial),
            "events: {:?}",
            outcome.degradation.events
        );
        assert!(
            outcome
                .degradation
                .events
                .iter()
                .any(|e| matches!(e.error, SaccsError::DeadlineExceeded { .. })),
            "no deadline error in {:?}",
            outcome.degradation.events
        );
        assert!(
            counter("fault.deadline.exceeded") > exceeded_before,
            "deadline counter never moved"
        );
    }

    /// The reproducibility contract the printed `(seed, scenario)` pairs
    /// rely on: re-arming the same schedule against a fresh service
    /// replays the same rankings and the same degradation report,
    /// event for event.
    #[test]
    fn seeded_probabilistic_chaos_replays_exactly() {
        let _serial = global_lock();
        const SEED: u64 = 2024;
        // p must beat the retry budget: a logical probe only degrades
        // when three consecutive calls fire (p³), so p=0.9 makes at
        // least one degradation over six requests near-certain.
        let scenario = Scenario::parse("algo1.probe=err@p=0.9").expect("scenario parses");
        println!("chaos replay: seed={SEED} scenario={scenario}");

        let run = |seed: u64| -> Vec<(Vec<(usize, u32)>, Vec<String>)> {
            let trained = saccs();
            let api = SearchApi::new(&corpus().entities);
            let _faults = arm_guard(&scenario, seed);
            UTTERANCES
                .iter()
                .cycle()
                .take(6)
                .map(|utterance| {
                    let outcome = trained
                        .service
                        .rank_request(&RankRequest::utterance(*utterance), &api);
                    let events: Vec<String> = outcome
                        .degradation
                        .events
                        .iter()
                        .map(|e| format!("{}:{}:{}", e.stage, e.action.label(), e.error))
                        .collect();
                    (bits(&outcome.results), events)
                })
                .collect()
        };

        let first = run(SEED);
        let second = run(SEED);
        assert_eq!(first, second, "same (seed, scenario) must replay exactly");
        assert!(
            first.iter().any(|(_, events)| !events.is_empty()),
            "p=0.5 over 6 requests fired nothing — schedule not armed?"
        );
    }
}

/// Crash-recovery chaos for the segmented live index: failpoints kill a
/// segment persist mid-write and a compaction merge mid-flight, and
/// recovery must come up on a consistent committed snapshot — no torn
/// segment ever becomes visible — serving rankings bitwise identical to
/// a from-scratch rebuild of the durable review log.
#[cfg(feature = "fault")]
mod ingest_recovery {
    use super::{bits, counter, global_lock};
    use saccs::fault::{arm_guard, Scenario};
    use saccs::index::index::{EntityEvidence, IndexConfig};
    use saccs::index::{LiveConfig, LiveIndex, ReviewRecord, SubjectiveIndex};
    use saccs::text::{ConceptualSimilarity, Domain, Lexicon, SubjectiveTag};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn sim() -> ConceptualSimilarity {
        ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants))
    }

    fn tag(op: &str, asp: &str) -> SubjectiveTag {
        SubjectiveTag::new(op, asp)
    }

    fn index_tags() -> Vec<SubjectiveTag> {
        vec![tag("delicious", "food"), tag("cozy", "ambiance")]
    }

    fn probes() -> Vec<SubjectiveTag> {
        vec![
            tag("delicious", "food"),
            tag("cozy", "ambiance"),
            tag("tasty", "meal"),
        ]
    }

    /// Six reviews over four entities: enough for three sealed segments
    /// at `seal_every = 2`.
    fn reviews() -> Vec<(usize, Vec<SubjectiveTag>)> {
        vec![
            (0, vec![tag("delicious", "food")]),
            (1, vec![tag("cozy", "ambiance"), tag("tasty", "meal")]),
            (2, vec![tag("friendly", "staff")]),
            (0, vec![tag("deliciouz", "food")]),
            (3, vec![tag("cozy", "ambiance")]),
            (1, vec![tag("delicious", "meal"), tag("great", "service")]),
        ]
    }

    fn live_config() -> LiveConfig {
        // Manual compaction only: the tests drive merges explicitly.
        LiveConfig {
            seal_every: 2,
            max_segments: 0,
            background_compaction: false,
        }
    }

    fn temp_dir(label: &str) -> PathBuf {
        static NONCE: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "saccs-chaos-{label}-{}-{}",
            std::process::id(),
            NONCE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// From-scratch comparator over a review log, identical to the one
    /// the ingest equivalence suite uses.
    fn rebuild(log: &[ReviewRecord], tags: &[SubjectiveTag]) -> SubjectiveIndex {
        let mut idx = SubjectiveIndex::new(sim(), IndexConfig::default());
        let mut evidence: Vec<EntityEvidence> = Vec::new();
        for record in log {
            match evidence
                .iter_mut()
                .find(|e| e.entity_id == record.entity_id)
            {
                Some(ev) => {
                    ev.review_count += 1;
                    ev.review_tags.extend(record.tags.iter().cloned());
                }
                None => evidence.push(EntityEvidence {
                    entity_id: record.entity_id,
                    review_count: 1,
                    review_tags: record.tags.clone(),
                }),
            }
        }
        for ev in evidence {
            idx.register_entity(ev);
        }
        idx.index_tags(tags);
        idx
    }

    fn probe_bits(live: &LiveIndex) -> Vec<Vec<(usize, u32)>> {
        let snap = live.pin();
        probes()
            .iter()
            .map(|p| bits(&live.probe_pinned(&snap, p)))
            .collect()
    }

    fn rebuild_bits(log: &[ReviewRecord]) -> Vec<Vec<(usize, u32)>> {
        let frozen = rebuild(log, &index_tags());
        probes()
            .iter()
            .map(|p| bits(&frozen.probe_readonly(p)))
            .collect()
    }

    /// `index.persist` tears the first seal's segment write mid-file and
    /// the process "dies" before any retry. The torn file sits at its
    /// final name, but the manifest never referenced it, so recovery
    /// must come up on the (empty) durable prefix — and a clean rerun
    /// over the same directory overwrites the torn file and round-trips
    /// the full stream bitwise.
    #[test]
    fn torn_segment_persist_never_becomes_visible_after_recovery() {
        let _serial = global_lock();
        const SEED: u64 = 13;
        let scenario = Scenario::parse("index.persist=err@1").expect("scenario parses");
        println!("chaos replay: seed={SEED} scenario={scenario}");
        let dir = temp_dir("persist");
        let failed_before = counter("index.ingest.persist_failed");

        {
            let _faults = arm_guard(&scenario, SEED);
            let live = LiveIndex::open(&dir, sim(), IndexConfig::default(), live_config())
                .expect("open fresh store");
            live.add_tags(&index_tags());
            for (entity_id, review_tags) in reviews().into_iter().take(2) {
                live.add_review(entity_id, &review_tags);
            }
            assert_eq!(
                counter("index.ingest.persist_failed") - failed_before,
                1,
                "the armed seal persist must have torn"
            );
            // The in-memory view keeps serving past the failed persist.
            assert_eq!(
                probe_bits(&live),
                rebuild_bits(&live.review_log()),
                "in-memory serving diverged after the torn persist"
            );
            // Crash: dropped without a checkpoint, retry never happens.
        }

        let recovered = LiveIndex::open(&dir, sim(), IndexConfig::default(), live_config())
            .expect("recovery must not load the torn segment");
        assert_eq!(
            recovered.review_log(),
            Vec::new(),
            "nothing was durable, so the recovered log must be empty"
        );

        // Clean rerun over the same directory: the overwritten segment
        // files and a checkpoint round-trip the full stream bitwise.
        let mut log: Vec<ReviewRecord> = Vec::new();
        for (entity_id, review_tags) in reviews() {
            let receipt = recovered.add_review(entity_id, &review_tags);
            log.push(ReviewRecord {
                seq: receipt.seq,
                entity_id,
                tags: review_tags,
            });
        }
        recovered.checkpoint().expect("clean checkpoint");
        drop(recovered);
        let reopened = LiveIndex::open(&dir, sim(), IndexConfig::default(), live_config())
            .expect("reopen after clean run");
        assert_eq!(reopened.review_log(), log);
        assert_eq!(
            probe_bits(&reopened),
            rebuild_bits(&log),
            "recovered rankings diverged from the from-scratch rebuild"
        );
    }

    /// `index.merge` aborts compaction between writing the merged image
    /// and committing the manifest: the merged file is an invisible
    /// orphan, the old segments stay live (bitwise unchanged service),
    /// and recovery after the "crash" re-serves identical rankings —
    /// after which compaction completes cleanly.
    #[test]
    fn aborted_merge_keeps_old_segments_live_and_recovers_bitwise() {
        let _serial = global_lock();
        const SEED: u64 = 17;
        let scenario = Scenario::parse("index.merge=err@1").expect("scenario parses");
        println!("chaos replay: seed={SEED} scenario={scenario}");
        let dir = temp_dir("merge");
        let aborted_before = counter("index.ingest.merge_aborted");

        let mut log: Vec<ReviewRecord> = Vec::new();
        {
            let live = LiveIndex::open(&dir, sim(), IndexConfig::default(), live_config())
                .expect("open fresh store");
            live.add_tags(&index_tags());
            for (entity_id, review_tags) in reviews() {
                let receipt = live.add_review(entity_id, &review_tags);
                log.push(ReviewRecord {
                    seq: receipt.seq,
                    entity_id,
                    tags: review_tags,
                });
            }
            assert_eq!(live.segment_count(), 3, "three sealed segments expected");
            let before = probe_bits(&live);

            let aborted = {
                let _faults = arm_guard(&scenario, SEED);
                live.compact_now()
            };
            assert!(aborted.is_err(), "the armed merge must abort");
            assert_eq!(
                counter("index.ingest.merge_aborted") - aborted_before,
                1,
                "the abort must be counted exactly once"
            );
            assert_eq!(
                live.segment_count(),
                3,
                "an aborted merge must leave the old segments live"
            );
            assert_eq!(
                probe_bits(&live),
                before,
                "an aborted merge changed live rankings"
            );
            // Crash: dropped without a checkpoint.
        }

        let recovered = LiveIndex::open(&dir, sim(), IndexConfig::default(), live_config())
            .expect("recovery after the aborted merge");
        assert_eq!(
            recovered.review_log(),
            log,
            "the committed pre-merge snapshot must recover in full"
        );
        assert_eq!(recovered.segment_count(), 3, "orphan merge file loaded?");
        assert_eq!(
            probe_bits(&recovered),
            rebuild_bits(&log),
            "recovered rankings diverged from the from-scratch rebuild"
        );

        // Unarmed, the merge completes and rankings still don't move.
        assert!(recovered.compact_now().expect("clean merge"));
        assert_eq!(recovered.segment_count(), 1);
        assert_eq!(
            probe_bits(&recovered),
            rebuild_bits(&log),
            "a completed merge changed rankings"
        );
    }
}

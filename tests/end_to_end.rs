//! End-to-end integration: corpus → trained pipeline → index → ranking.
//!
//! These tests span every crate (data → embed → tagger → pairing → index →
//! core) with the quick build profile, checking *system-level* invariants:
//! the extractor populates the index, known-tag queries return entities
//! ordered consistently with the latent ground truth, and the dynamic
//! adaptation loop works.

use saccs::core::{RankRequest, SaccsBuilder, SearchApi, TrainedSaccs};
use saccs::data::yelp::{YelpConfig, YelpCorpus};
use saccs::data::{canonical_tags, CrowdSimulator};
use saccs::eval::ndcg::ndcg;
use saccs::text::{Domain, Lexicon, SubjectiveTag};
use std::sync::OnceLock;

fn corpus() -> &'static YelpCorpus {
    static CORPUS: OnceLock<YelpCorpus> = OnceLock::new();
    CORPUS.get_or_init(|| {
        YelpCorpus::generate(
            Lexicon::new(Domain::Restaurants),
            &YelpConfig {
                n_entities: 24,
                n_reviews: 420,
                // Statistical assertions below are seed-sensitive; this
                // seed is validated against the vendored xoshiro256++
                // stream (vendor/rand), which differs from upstream StdRng.
                seed: 42,
                ..Default::default()
            },
        )
    })
}

fn saccs() -> TrainedSaccs {
    SaccsBuilder::quick().build(corpus())
}

#[test]
fn pipeline_populates_the_index() {
    let trained = saccs();
    let index = trained.service.index();
    assert_eq!(index.len(), 18, "all canonical tags indexed");
    // Frequently-reviewed dimensions (food) must have postings.
    let food = SubjectiveTag::new("delicious", "food");
    let postings = index.lookup(&food).expect("delicious food is an index tag");
    assert!(
        postings.len() >= corpus().entities.len() / 3,
        "only {} of {} entities under 'delicious food'",
        postings.len(),
        corpus().entities.len()
    );
}

#[test]
fn ranking_tracks_latent_quality_under_rate_weighting() {
    // Equation 1 verbatim weights degrees by log(review volume), which can
    // swamp quality signal on volume-heterogeneous corpora (a reproduction
    // finding; see EXPERIMENTS.md and the degree_of_truth_ablation bench).
    // The match-count variant must track latent quality.
    let mut builder = SaccsBuilder::quick();
    builder.index.degree_formula = saccs::index::DegreeFormula::MentionRate;
    let trained = builder.build(corpus());
    let api = SearchApi::new(&corpus().entities);
    let ranked = trained
        .service
        .rank_request(
            &RankRequest::tags(vec![SubjectiveTag::new("delicious", "food")]),
            &api,
        )
        .results;
    assert!(ranked.len() >= 5, "too few results: {ranked:?}");
    // Mean latent quality of the top third must beat the bottom third.
    let q = |e: usize| corpus().entities[e].quality_of("food", "delicious");
    let third = ranked.len() / 3;
    let top: f32 = ranked[..third].iter().map(|&(e, _)| q(e)).sum::<f32>() / third as f32;
    let bottom: f32 = ranked[ranked.len() - third..]
        .iter()
        .map(|&(e, _)| q(e))
        .sum::<f32>()
        / third as f32;
    assert!(
        top > bottom,
        "ranking uncorrelated with latent quality: top={top:.2} bottom={bottom:.2}"
    );
}

#[test]
fn saccs_beats_random_ordering_on_crowd_ndcg() {
    let trained = saccs();
    let crowd = CrowdSimulator::default();
    let tags = canonical_tags();
    let api = SearchApi::new(&corpus().entities);
    let all: Vec<usize> = (0..corpus().entities.len()).collect();
    let mut saccs_total = 0.0;
    let mut random_total = 0.0;
    let mut n = 0;
    for tag in tags.iter().take(6) {
        let gains: Vec<f32> = (0..corpus().entities.len())
            .map(|e| crowd.sat(tag, corpus(), e))
            .collect();
        let ranked = trained
            .service
            .rank_request(&RankRequest::tags(vec![tag.tag()]), &api)
            .results;
        let ranked_gains: Vec<f32> = ranked.iter().map(|&(e, _)| gains[e]).collect();
        saccs_total += ndcg(&ranked_gains, &gains, 10);
        // "Random" = identity order (entities are i.i.d., so id order is
        // an unbiased random permutation w.r.t. quality).
        let id_gains: Vec<f32> = all.iter().map(|&e| gains[e]).collect();
        random_total += ndcg(&id_gains[..10.min(id_gains.len())], &gains, 10);
        n += 1;
    }
    assert!(
        saccs_total / n as f32 > random_total / n as f32,
        "SACCS ({}) not better than arbitrary order ({})",
        saccs_total / n as f32,
        random_total / n as f32
    );
}

#[test]
fn utterance_flow_extracts_and_ranks() {
    let trained = saccs();
    let api = SearchApi::new(&corpus().entities);
    let utterance = "I want a restaurant with delicious food and a nice staff";
    let tags = trained
        .service
        .extract_tags(utterance)
        .expect("extractor present");
    assert!(
        !tags.is_empty(),
        "no tags extracted from a clearly subjective utterance"
    );
    // At least one extracted tag must involve food or staff.
    assert!(
        tags.iter()
            .any(|t| t.aspect.contains("food") || t.aspect.contains("staff")),
        "implausible extraction: {tags:?}"
    );
    let response = trained
        .service
        .rank_request(&RankRequest::utterance(utterance), &api);
    assert!(response.is_full_fidelity());
    assert!(!response.results.is_empty());
    for w in response.results.windows(2) {
        assert!(w[0].1 >= w[1].1, "ranking not sorted");
    }
}

#[test]
fn dynamic_adaptation_round_trips() {
    let mut trained = saccs();
    let api = SearchApi::new(&corpus().entities);
    let unknown = SubjectiveTag::new("scrumptious", "lasagna");
    assert!(trained.service.index().lookup(&unknown).is_none());
    let before = trained
        .service
        .rank_request(&RankRequest::tags(vec![unknown.clone()]), &api)
        .results;
    assert!(!before.is_empty(), "similarity fallback returned nothing");
    assert_eq!(trained.service.index().history().len(), 1);
    let added = trained.service.index_mut().reindex_from_history();
    assert_eq!(added, 1);
    assert!(trained.service.index().lookup(&unknown).is_some());
    // After indexing, the tag answers directly (no new history entry).
    let _ = trained
        .service
        .rank_request(&RankRequest::tags(vec![unknown]), &api);
    assert!(trained.service.index().history().is_empty());
}

#[test]
fn reindexing_with_fewer_tags_shrinks_the_index() {
    let mut trained = saccs();
    trained.reindex_canonical(6);
    assert_eq!(trained.service.index().len(), 6);
    trained.reindex_canonical(18);
    assert_eq!(trained.service.index().len(), 18);
}

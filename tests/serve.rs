//! Concurrent-serving suite: the `saccs-serve` front end over a fully
//! trained service.
//!
//! The contract under test is the PR's headline claim: replies produced
//! through `SaccsServer` — any worker count, any micro-batch size — are
//! **bitwise identical** to calling `SaccsService::rank_request`
//! serially. Extraction runs on per-thread replicas of one shared
//! blueprint and the batched feature warm-up uses the same kernels as
//! the serial path, so scores must match to the last bit, not just
//! approximately.
//!
//! Also covered: exact shed accounting under an over-depth burst (the
//! `pause` gate makes the queue depth deterministic), and — behind the
//! `fault` feature — a chaos schedule driven *through* the server,
//! proving the shared breakers degrade every concurrent request
//! consistently.
//!
//! The fault registry and metrics registry are process-global, so every
//! test takes the file-wide mutex, exactly like `tests/chaos.rs`.

use saccs::core::{RankRequest, SaccsBuilder, SaccsService, SearchApi};
use saccs::data::yelp::{YelpConfig, YelpCorpus};
use saccs::data::Entity;
use saccs::serve::{SaccsServer, ServeConfig};
use saccs::text::{Domain, Lexicon};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

fn corpus() -> &'static YelpCorpus {
    static CORPUS: OnceLock<YelpCorpus> = OnceLock::new();
    CORPUS.get_or_init(|| {
        YelpCorpus::generate(
            Lexicon::new(Domain::Restaurants),
            &YelpConfig {
                n_entities: 24,
                n_reviews: 420,
                seed: 42,
                ..Default::default()
            },
        )
    })
}

/// One trained service for the whole file: training dominates test time
/// and `SaccsService` is explicitly shareable — sharing it across tests
/// is itself part of the exercise.
fn service() -> Arc<SaccsService> {
    static SERVICE: OnceLock<Arc<SaccsService>> = OnceLock::new();
    Arc::clone(SERVICE.get_or_init(|| Arc::new(SaccsBuilder::quick().build(corpus()).service)))
}

fn entities() -> Vec<Entity> {
    corpus().entities.clone()
}

fn global_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

const UTTERANCES: [&str; 3] = [
    "I want a restaurant with delicious food and a nice staff",
    "somewhere with friendly staff and tasty food",
    "find me a cozy place with a great atmosphere",
];

const REQUESTS: usize = 12;

fn request(i: usize) -> RankRequest {
    RankRequest::utterance(UTTERANCES[i % UTTERANCES.len()])
}

fn bits(ranked: &[(usize, f32)]) -> Vec<(usize, u32)> {
    ranked.iter().map(|&(e, s)| (e, s.to_bits())).collect()
}

/// Drive the shared service until a request answers at full fidelity.
/// The breakers are call-count driven (reject `open_calls`, then close
/// after `success_to_close` half-open successes), so a chaos test that
/// ran earlier in this process leaves them healable by a bounded number
/// of fault-free requests.
fn heal(svc: &SaccsService) {
    let ents = entities();
    let api = SearchApi::new(&ents);
    for _ in 0..64 {
        if svc.rank_request(&request(0), &api).is_full_fidelity() {
            return;
        }
    }
    panic!("breakers never closed on a fault-free service");
}

/// The serial ground truth every served reply must reproduce exactly.
fn serial_reference(svc: &SaccsService) -> Vec<Vec<(usize, u32)>> {
    let ents = entities();
    let api = SearchApi::new(&ents);
    (0..REQUESTS)
        .map(|i| {
            let response = svc.rank_request(&request(i), &api);
            assert!(
                response.is_full_fidelity(),
                "reference run degraded: {:?}",
                response.degradation.events
            );
            bits(&response.results)
        })
        .collect()
}

/// Submit the standard request batch from `REQUESTS` concurrent client
/// threads and return the replies in request order.
fn submit_all(server: &Arc<SaccsServer>) -> Vec<Vec<(usize, u32)>> {
    let (tx, rx) = std::sync::mpsc::channel();
    let handles: Vec<_> = (0..REQUESTS)
        .map(|i| {
            let server = Arc::clone(server);
            let tx = tx.clone();
            saccs::rt::spawn_worker(&format!("test-client-{i}"), move || {
                let response = server.submit(request(i)).expect("request admitted");
                tx.send((i, bits(&response.results))).expect("send reply");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    drop(tx);
    let mut replies = vec![Vec::new(); REQUESTS];
    for (i, reply) in rx {
        replies[i] = reply;
    }
    replies
}

#[test]
fn every_width_and_batch_size_is_bitwise_identical_to_serial() {
    let _serial = global_lock();
    let svc = service();
    heal(&svc);
    let reference = serial_reference(&svc);
    for workers in [1usize, 2, 8] {
        for batch in [1usize, 4, 16] {
            let server = Arc::new(SaccsServer::start(
                Arc::clone(&svc),
                entities(),
                ServeConfig {
                    workers,
                    queue_depth: 64,
                    batch,
                    ..ServeConfig::default()
                },
            ));
            let replies = submit_all(&server);
            for (i, reply) in replies.iter().enumerate() {
                assert_eq!(
                    reply, &reference[i],
                    "request {i} diverged at workers={workers} batch={batch}"
                );
            }
            let stats = server.stats();
            assert_eq!(stats.served, REQUESTS as u64);
            assert_eq!(stats.shed, 0);
        }
    }
}

/// Force one worker tick to claim the whole queue: pause, enqueue the
/// full batch, resume. The cross-request feature warm-up must fire and
/// the replies must still be bit-for-bit the serial ones.
#[test]
fn forced_micro_batch_warms_features_and_stays_bitwise_identical() {
    let _serial = global_lock();
    let svc = service();
    heal(&svc);
    let reference = serial_reference(&svc);
    let server = Arc::new(SaccsServer::start(
        Arc::clone(&svc),
        entities(),
        ServeConfig {
            workers: 1,
            queue_depth: 64,
            batch: REQUESTS,
            ..ServeConfig::default()
        },
    ));
    server.pause();
    let (tx, rx) = std::sync::mpsc::channel();
    let handles: Vec<_> = (0..REQUESTS)
        .map(|i| {
            let server = Arc::clone(&server);
            let tx = tx.clone();
            saccs::rt::spawn_worker(&format!("test-batch-{i}"), move || {
                let response = server.submit(request(i)).expect("request admitted");
                tx.send((i, bits(&response.results))).expect("send reply");
            })
        })
        .collect();
    while server.queue_len() < REQUESTS {
        std::thread::yield_now();
    }
    server.resume();
    for h in handles {
        h.join().expect("client thread");
    }
    drop(tx);
    for (i, reply) in rx {
        assert_eq!(reply, reference[i], "batched request {i} diverged");
    }
    assert!(
        server.stats().batched_warms >= 1,
        "a full queue at batch={REQUESTS} never took the warm-batch path"
    );
}

#[test]
fn over_depth_burst_sheds_exactly_the_excess() {
    let _serial = global_lock();
    const DEPTH: usize = 4;
    const BURST: usize = 10;
    let server = Arc::new(SaccsServer::start(
        service(),
        entities(),
        ServeConfig {
            workers: 2,
            queue_depth: DEPTH,
            batch: 4,
            ..ServeConfig::default()
        },
    ));
    server.pause();
    let handles: Vec<_> = (0..BURST)
        .map(|i| {
            let server = Arc::clone(&server);
            saccs::rt::spawn_worker(&format!("test-burst-{i}"), move || {
                // Admitted requests are served after resume; shed ones
                // must fail fast with the admission-stage error.
                if let Err(e) = server.submit(request(i)) {
                    assert_eq!(e.stage(), saccs::core::Stage::Admission);
                }
            })
        })
        .collect();
    // The queue is capped while paused, so the burst settles: DEPTH
    // admitted and parked, the rest shed immediately.
    loop {
        let stats = server.stats();
        if stats.submitted + stats.shed == BURST as u64 {
            break;
        }
        std::thread::yield_now();
    }
    let stats = server.stats();
    assert_eq!(stats.submitted, DEPTH as u64, "queue admitted past depth");
    assert_eq!(stats.shed, (BURST - DEPTH) as u64, "wrong shed count");
    server.resume();
    for h in handles {
        h.join().expect("burst thread");
    }
    assert_eq!(server.stats().served, DEPTH as u64);
}

#[cfg(feature = "fault")]
mod armed {
    use super::*;
    use saccs::core::{DegradeAction, Slots};
    use saccs::fault::{arm_guard, Scenario};

    fn counter(name: &str) -> u64 {
        saccs::obs::registry().counter(name).get()
    }

    /// A permanent probe outage hit by 8 concurrent requests through 2
    /// workers: every reply must be the objective-order fallback with a
    /// degradation report, the shared breaker must trip, and
    /// `fault.degraded_requests` must count each request exactly once —
    /// no double counting from racing workers.
    #[test]
    fn chaos_through_the_server_degrades_every_request_consistently() {
        let _serial = global_lock();
        let svc = service();
        let ents = entities();
        let expected: Vec<(usize, u32)> = {
            let api = SearchApi::new(&ents);
            api.search(&Slots::default())
                .into_iter()
                .take(svc.config().top_k)
                .map(|e| (e, 0.0f32.to_bits()))
                .collect()
        };
        let opened_before = svc.breakers().probe.times_opened();
        let degraded_before = counter("fault.degraded_requests");

        const SEED: u64 = 7;
        let scenario = Scenario::parse("algo1.probe=err").expect("scenario parses");
        println!("chaos replay: seed={SEED} scenario={scenario}");
        let _faults = arm_guard(&scenario, SEED);

        let server = Arc::new(SaccsServer::start(
            Arc::clone(&svc),
            ents,
            ServeConfig {
                workers: 2,
                queue_depth: 64,
                batch: 4,
                ..ServeConfig::default()
            },
        ));
        const CHAOS_REQUESTS: usize = 8;
        let (tx, rx) = std::sync::mpsc::channel();
        let handles: Vec<_> = (0..CHAOS_REQUESTS)
            .map(|i| {
                let server = Arc::clone(&server);
                let tx = tx.clone();
                saccs::rt::spawn_worker(&format!("test-chaos-{i}"), move || {
                    let response = server.submit(request(i)).expect("request admitted");
                    tx.send(response).expect("send reply");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("chaos client");
        }
        drop(tx);
        let mut seen = 0;
        for response in rx {
            seen += 1;
            assert_eq!(
                bits(&response.results),
                expected,
                "degraded reply is not the objective fallback"
            );
            assert_eq!(
                response.degradation.worst(),
                Some(DegradeAction::ObjectiveOnly),
                "events: {:?}",
                response.degradation.events
            );
        }
        assert_eq!(seen, CHAOS_REQUESTS);
        assert_eq!(
            counter("fault.degraded_requests") - degraded_before,
            CHAOS_REQUESTS as u64,
            "each request must be counted degraded exactly once"
        );
        assert!(
            svc.breakers().probe.times_opened() > opened_before,
            "a permanent outage through the server must trip the shared breaker"
        );
    }
}

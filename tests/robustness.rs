//! Integration tests for the §7 extensions: fake-review robustness,
//! user-profile personalization, and model persistence.

use saccs::core::{RankRequest, SaccsConfig, SaccsService, SearchApi, UserProfile};
use saccs::data::fraud::{inject_fraud, FraudCampaign};
use saccs::data::yelp::{YelpConfig, YelpCorpus};
use saccs::index::index::IndexConfig;
use saccs::index::{naive_evidence, DegreeFormula, FraudFilter, ReviewProfile, SubjectiveIndex};
use saccs::text::lexicon::Polarity;
use saccs::text::{ConceptualSimilarity, Domain, Lexicon, SubjectiveTag};

fn corpus() -> YelpCorpus {
    YelpCorpus::generate(
        Lexicon::new(Domain::Restaurants),
        &YelpConfig {
            n_entities: 16,
            n_reviews: 500,
            seed: 77,
            ..Default::default()
        },
    )
}

fn profiles_of(c: &YelpCorpus, e: usize) -> Vec<ReviewProfile> {
    c.reviews_of(e)
        .iter()
        .map(|&ri| {
            let mut tags = Vec::new();
            for s in &c.reviews[ri].sentences {
                for (a, o) in &s.pairs {
                    tags.push(SubjectiveTag::new(&o.text(&s.tokens), &a.text(&s.tokens)));
                }
            }
            ReviewProfile::new(tags)
        })
        .collect()
}

fn build_index(c: &YelpCorpus, filter: Option<&FraudFilter>) -> SubjectiveIndex {
    let mut index = SubjectiveIndex::new(
        ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants)),
        IndexConfig {
            degree_formula: DegreeFormula::PureRate,
            ..Default::default()
        },
    );
    for e in 0..c.entities.len() {
        let profiles = profiles_of(c, e);
        index.register_entity(match filter {
            Some(f) => f.evidence(e, &profiles),
            None => naive_evidence(e, &profiles),
        });
    }
    index.index_tags(&[SubjectiveTag::new("delicious", "food")]);
    index
}

#[test]
fn fraud_filter_limits_ranking_damage() {
    let clean = corpus();
    // Target: the entity with the worst delicious-food quality.
    let target = (0..clean.entities.len())
        .min_by(|&a, &b| {
            clean.entities[a]
                .quality_of("food", "delicious")
                .partial_cmp(&clean.entities[b].quality_of("food", "delicious"))
                .unwrap()
        })
        .unwrap();
    let mut corrupted = clean.clone();
    inject_fraud(
        &mut corrupted,
        &[FraudCampaign {
            entity_id: target,
            n_reviews: 40,
            concept: "food",
            group: "delicious",
            polarity: Polarity::Positive,
        }],
        5,
    );
    let tag = SubjectiveTag::new("delicious", "food");
    let rank_of = |index: &mut SubjectiveIndex| {
        let service = SaccsService::index_only(
            std::mem::replace(
                index,
                SubjectiveIndex::new(
                    ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants)),
                    IndexConfig::default(),
                ),
            ),
            SaccsConfig {
                top_k: clean.entities.len(),
                ..Default::default()
            },
        );
        let api = SearchApi::new(&clean.entities);
        let ranked = service
            .rank_request(&RankRequest::tags(vec![tag.clone()]), &api)
            .results;
        ranked.iter().position(|&(e, _)| e == target)
    };
    let naive_rank = rank_of(&mut build_index(&corrupted, None));
    let filtered_rank = rank_of(&mut build_index(&corrupted, Some(&FraudFilter::default())));
    // Under the naive index the bought entity surges toward the top; the
    // filter must push it strictly further down.
    let naive_rank = naive_rank.expect("target must appear under naive indexing");
    match filtered_rank {
        None => {} // filtered out entirely: maximal demotion
        Some(f) => assert!(
            f > naive_rank,
            "filter did not demote the astroturfed entity: naive={naive_rank} filtered={f}"
        ),
    }
}

#[test]
fn fraud_filter_barely_touches_clean_corpora() {
    let clean = corpus();
    let filter = FraudFilter::default();
    let mut suppressed = 0usize;
    let mut total = 0usize;
    for e in 0..clean.entities.len() {
        let profiles = profiles_of(&clean, e);
        let keep = filter.keep_flags(&profiles);
        suppressed += keep.iter().filter(|&&k| !k).count();
        total += keep.len();
    }
    let rate = suppressed as f32 / total as f32;
    assert!(
        rate < 0.25,
        "filter too aggressive on honest reviews: {rate}"
    );
}

#[test]
fn profiled_ranking_reduces_to_plain_ranking_at_zero_boost() {
    let c = corpus();
    let service = SaccsService::index_only(build_index(&c, None), SaccsConfig::default());
    let api = SearchApi::new(&c.entities);
    let tags = vec![SubjectiveTag::new("delicious", "food")];
    let mut profile = UserProfile::new();
    profile.observe(&[SubjectiveTag::new("quiet", "place")]);
    let plain = service
        .rank_request(&RankRequest::tags(tags.clone()), &api)
        .results;
    let profiled = service
        .rank_request(
            &RankRequest::tags(tags.clone()).with_profile(profile.clone(), 0.0),
            &api,
        )
        .results;
    let plain_ids: Vec<usize> = plain.iter().map(|&(e, _)| e).collect();
    let profiled_ids: Vec<usize> = profiled.iter().map(|&(e, _)| e).collect();
    assert_eq!(plain_ids, profiled_ids);
}

#[test]
fn minibert_persistence_roundtrips_through_disk() {
    use saccs::embed::{build_vocab, MiniBert, MiniBertConfig};
    let vocab = build_vocab(&[Domain::Restaurants]);
    let cfg = MiniBertConfig {
        dim: 16,
        heads: 2,
        layers: 2,
        max_len: 16,
        seed: 3,
    };
    let bert = MiniBert::new(vocab.clone(), cfg.clone());
    let tokens: Vec<String> = ["delicious", "food"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let before = bert.features(&tokens);

    let dir = std::env::temp_dir().join("saccs-persist-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bert.snn");
    std::fs::write(&path, bert.save_bytes()).unwrap();

    let restored = MiniBert::new(vocab, MiniBertConfig { seed: 999, ..cfg });
    assert_ne!(
        restored.features(&tokens),
        before,
        "different seed must differ"
    );
    restored.load_bytes(&std::fs::read(&path).unwrap()).unwrap();
    assert_eq!(restored.features(&tokens), before);
    let _ = std::fs::remove_file(&path);
}

//! Subjective query language suite: the filter front door end to end.
//!
//! The contract under test is the query PR's headline claim: a
//! [`RankRequest::with_filter`] flows unchanged through the serving
//! front end, compiles against the same pinned snapshot the probes
//! read, and yields **bitwise identical** filtered rankings at serve
//! widths 1, 2 and 8, with the ANN sidecar on or off, at every
//! intermediate state of an interleaved ingest stream — always equal
//! to a frozen index rebuilt from scratch over the same review log.
//!
//! Also covered: planner join-order invariance (rarest-first ==
//! left-to-right == the naive per-entity evaluator), the unfiltered
//! degradation rung for filters that cannot compile, admission-time
//! rejection of malformed filter DSL at the `sanitized()` seam, and
//! the `algo1.filter` stage span + `filter:` plan event in traces.

use rand::rngs::StdRng;
use rand::SeedableRng;
use saccs::core::{DegradeAction, RankRequest, SaccsConfig, SaccsError, SaccsService, SearchApi};
use saccs::data::Entity;
use saccs::index::index::{EntityEvidence, IndexConfig};
use saccs::index::{LiveConfig, LiveIndex, ReviewRecord, SubjectiveIndex};
use saccs::obs::trace::install;
use saccs::obs::TraceContext;
use saccs::query::{compile, naive_matches, Filter, JoinOrder};
use saccs::serve::{SaccsServer, ServeConfig};
use saccs::text::{ConceptualSimilarity, Domain, Lexicon, SubjectiveTag};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Metrics and (under the `fault` feature) the failpoint registry are
/// process-global, so the tests serialize exactly like `tests/serve.rs`.
fn global_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn sim() -> ConceptualSimilarity {
    ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants))
}

fn tag(op: &str, asp: &str) -> SubjectiveTag {
    SubjectiveTag::new(op, asp)
}

fn bits(ranked: &[(usize, f32)]) -> Vec<(usize, u32)> {
    ranked.iter().map(|&(e, s)| (e, s.to_bits())).collect()
}

fn entities(n: usize) -> Vec<Entity> {
    let lex = Lexicon::new(Domain::Restaurants);
    let mut rng = StdRng::seed_from_u64(5);
    (0..n).map(|i| Entity::sample(i, &lex, &mut rng)).collect()
}

fn index_tags() -> Vec<SubjectiveTag> {
    vec![
        tag("delicious", "food"),
        tag("friendly", "staff"),
        tag("cozy", "ambiance"),
    ]
}

/// The interleaved review stream (same cadence as `tests/ingest.rs`:
/// seals and at least one compaction merge at `seal_every=2`,
/// `max_segments=3`).
fn stream() -> Vec<(usize, Vec<SubjectiveTag>)> {
    vec![
        (0, vec![tag("delicious", "food"), tag("friendly", "staff")]),
        (1, vec![tag("tasty", "meal")]),
        (2, vec![tag("cozy", "ambiance"), tag("great", "service")]),
        (0, vec![tag("deliciouz", "food")]),
        (3, vec![tag("friendly", "staff"), tag("cozy", "ambiance")]),
        (1, vec![tag("zorgle", "zzplace")]),
        (4, vec![tag("delicious", "food")]),
        (2, vec![tag("friendly", "service")]),
        (3, vec![tag("tasty", "food"), tag("great", "staff")]),
        (4, vec![tag("cozy", "ambiance"), tag("delicious", "meal")]),
    ]
}

/// Filter DSL shapes spanning the grammar: bare opinion, thresholded
/// tag, boolean connectives, negation, and objective predicates folded
/// into the same plan.
fn filter_dsls() -> Vec<&'static str> {
    vec![
        "delicious",
        "cozy ambiance@0.05 OR friendly staff",
        "delicious AND NOT cozy ambiance, price<=3",
        "(delicious OR friendly staff@0.1) AND rating>=1.0",
        "NOT Ambience=romantic",
    ]
}

/// Filtered rank requests exercising each DSL shape against the
/// subjective tags the stream populates.
fn filtered_requests() -> Vec<RankRequest> {
    filter_dsls()
        .into_iter()
        .map(|dsl| {
            RankRequest::tags(vec![tag("delicious", "food"), tag("nice", "staff")])
                .with_filter_dsl(dsl)
        })
        .collect()
}

/// The from-scratch comparator: replay the log the way the batch
/// pipeline would and index the same tag set.
fn rebuild(log: &[ReviewRecord], tags: &[SubjectiveTag], config: &IndexConfig) -> SubjectiveIndex {
    let mut idx = SubjectiveIndex::new(sim(), config.clone());
    let mut evidence: Vec<EntityEvidence> = Vec::new();
    for record in log {
        match evidence
            .iter_mut()
            .find(|e| e.entity_id == record.entity_id)
        {
            Some(ev) => {
                ev.review_count += 1;
                ev.review_tags.extend(record.tags.iter().cloned());
            }
            None => evidence.push(EntityEvidence {
                entity_id: record.entity_id,
                review_count: 1,
                review_tags: record.tags.clone(),
            }),
        }
    }
    for ev in evidence {
        idx.register_entity(ev);
    }
    idx.index_tags(tags);
    idx
}

fn live_index(ann: bool) -> (Arc<LiveIndex>, IndexConfig) {
    let config = IndexConfig {
        ann_enabled: ann,
        ..IndexConfig::default()
    };
    let live = LiveIndex::new(
        sim(),
        config.clone(),
        LiveConfig {
            seal_every: 2,
            max_segments: 3,
            background_compaction: false,
        },
    );
    live.add_tags(&index_tags());
    (Arc::new(live), config)
}

fn live_server(live: &Arc<LiveIndex>, workers: usize) -> (Arc<SaccsServer>, Vec<Entity>) {
    let svc = Arc::new(SaccsService::with_live_index(
        Arc::clone(live),
        SaccsConfig::default(),
    ));
    let ents = entities(5);
    let server = Arc::new(SaccsServer::start(
        svc,
        ents.clone(),
        ServeConfig {
            workers,
            queue_depth: 64,
            batch: 4,
            ..ServeConfig::default()
        },
    ));
    (server, ents)
}

/// The tentpole: filtered requests through the served admission queue,
/// interleaved with ingest traffic, must answer bitwise identically to
/// a frozen rebuild at every ingestion state, at serve widths 1, 2 and
/// 8, with ANN on and off.
#[test]
fn filtered_rankings_are_bitwise_stable_across_widths_ann_and_ingest_states() {
    let _serial = global_lock();
    for ann in [false, true] {
        for workers in [1usize, 2, 8] {
            let (live, config) = live_index(ann);
            let (server, ents) = live_server(&live, workers);
            let api = SearchApi::new(&ents);
            let mut log: Vec<ReviewRecord> = Vec::new();
            for (entity_id, review_tags) in stream() {
                let receipt = server
                    .submit_ingest(entity_id, review_tags.clone())
                    .expect("ingest admitted");
                log.push(ReviewRecord {
                    seq: receipt.seq,
                    entity_id,
                    tags: review_tags,
                });
                let frozen = SaccsService::index_only(
                    rebuild(&log, &index_tags(), &config),
                    SaccsConfig::default(),
                );
                for (served, reference) in filtered_requests().into_iter().zip(
                    filtered_requests()
                        .iter()
                        .map(|r| frozen.rank_request(r, &api)),
                ) {
                    let dsl = served
                        .filter
                        .as_ref()
                        .and_then(|f| f.source())
                        .unwrap_or("<none>")
                        .to_string();
                    let response = server.submit(served).expect("rank admitted");
                    assert!(
                        response.is_full_fidelity(),
                        "filter `{dsl}` degraded (workers={workers}, ann={ann})"
                    );
                    assert_eq!(
                        bits(&response.results),
                        bits(&reference.results),
                        "served filtered ranking diverged from rebuild for `{dsl}` \
                         after {} reviews (workers={workers}, ann={ann}, segments={})",
                        log.len(),
                        live.segment_count(),
                    );
                }
            }
        }
    }
}

/// Join-order invariance: the cost-based rarest-first plan, the naive
/// left-to-right plan and the per-entity reference evaluator agree on
/// the exact match set for every DSL shape, against the same index the
/// serving path uses.
#[test]
fn planner_join_order_never_changes_the_match_set() {
    let _serial = global_lock();
    let log: Vec<ReviewRecord> = stream()
        .into_iter()
        .enumerate()
        .map(|(i, (entity_id, tags))| ReviewRecord {
            seq: i as u64,
            entity_id,
            tags,
        })
        .collect();
    let idx = rebuild(&log, &index_tags(), &IndexConfig::default());
    let ents = entities(5);
    let api = SearchApi::new(&ents);
    for dsl in filter_dsls() {
        let filter = Filter::parse(dsl).expect("all suite DSLs parse");
        let rare = compile(&filter, &idx, &api, JoinOrder::RarestFirst).expect("compiles");
        let ltr = compile(&filter, &idx, &api, JoinOrder::LeftToRight).expect("compiles");
        let reference = naive_matches(&filter, &idx, &api).expect("naive evaluates");
        assert_eq!(
            rare.bitmap().to_vec(),
            ltr.bitmap().to_vec(),
            "join order changed the match set for `{dsl}`"
        );
        assert_eq!(
            rare.bitmap().to_vec(),
            reference,
            "planner disagrees with the naive evaluator for `{dsl}`"
        );
    }
}

/// A filter naming an attribute outside the schema cannot compile; the
/// served request ranks unfiltered on the mildest degradation rung and
/// its results equal the unfiltered request bitwise.
#[test]
fn uncompilable_filter_degrades_to_unfiltered_through_the_server() {
    let _serial = global_lock();
    let (live, _config) = live_index(false);
    let (server, _ents) = live_server(&live, 2);
    for (entity_id, review_tags) in stream() {
        server
            .submit_ingest(entity_id, review_tags)
            .expect("ingest admitted");
    }
    let tags = vec![tag("delicious", "food")];
    let unfiltered = server
        .submit(RankRequest::tags(tags.clone()))
        .expect("rank admitted");
    let degraded = server
        .submit(RankRequest::tags(tags).with_filter_dsl("Parking=garage"))
        .expect("an uncompilable filter is degraded, not shed");
    assert_eq!(
        degraded.degradation.worst(),
        Some(DegradeAction::Unfiltered)
    );
    assert_eq!(bits(&degraded.results), bits(&unfiltered.results));
}

/// Malformed filter DSL never becomes a queued job: `submit` rejects it
/// at the `sanitized()` seam with the parse error's byte span, and the
/// admission counters do not move.
#[test]
fn malformed_filter_dsl_is_rejected_at_admission() {
    let _serial = global_lock();
    let (live, _config) = live_index(false);
    let (server, _ents) = live_server(&live, 1);
    let before = server.stats();
    let err = server
        .submit(RankRequest::tags(vec![tag("delicious", "food")]).with_filter_dsl("price<=nine"))
        .expect_err("malformed DSL must be rejected before admission");
    match err {
        SaccsError::InvalidRequest { field, reason } => {
            assert_eq!(field, "filter");
            assert!(reason.contains("bytes 7..11"), "span surfaces: {reason}");
        }
        other => panic!("expected InvalidRequest, got {other:?}"),
    }
    let after = server.stats();
    assert_eq!(after.submitted, before.submitted, "never admitted");
    assert_eq!(after.shed, before.shed, "a caller error is not a shed");
}

/// The filter stage is traced: the request's context carries the
/// deterministic `filter:leaves:candidates:passed` plan event.
#[test]
fn filter_stage_emits_a_plan_trace_event() {
    let _serial = global_lock();
    let log: Vec<ReviewRecord> = stream()
        .into_iter()
        .enumerate()
        .map(|(i, (entity_id, tags))| ReviewRecord {
            seq: i as u64,
            entity_id,
            tags,
        })
        .collect();
    let svc = SaccsService::index_only(
        rebuild(&log, &index_tags(), &IndexConfig::default()),
        SaccsConfig::default(),
    );
    let ents = entities(5);
    let api = SearchApi::new(&ents);
    let ctx = TraceContext::new(7);
    let request = RankRequest::tags(vec![tag("delicious", "food")]).with_filter_dsl("delicious");
    let normals: Vec<String> = {
        let _scope = install(Arc::clone(&ctx));
        let response = svc.rank_request(&request, &api);
        assert!(response.is_full_fidelity());
        ctx.events().iter().map(|e| e.normal()).collect()
    };
    let plan = normals
        .iter()
        .find(|n| n.starts_with("filter:"))
        .expect("plan event recorded");
    // One leaf, five objective candidates; the passed count must match
    // the reference evaluator over the same index and catalog.
    let expected = naive_matches(
        request.filter.as_ref().expect("filter attached"),
        svc.index(),
        &api,
    )
    .expect("reference evaluates")
    .len();
    assert_eq!(plan, &format!("filter:1:5:{expected}"));
}

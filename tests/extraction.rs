//! Integration tests for the extraction pipeline (tagger + pairing)
//! against generator gold structure.

use rand::rngs::StdRng;
use rand::SeedableRng;
use saccs::data::generator::{FacetSpec, GeneratorConfig, SentenceGenerator};
use saccs::data::{Dataset, DatasetId};
use saccs::embed::{build_vocab, general_corpus, train_mlm, MiniBert, MiniBertConfig, MlmConfig};
use saccs::pairing::{PairingPipeline, PipelineConfig};
use saccs::tagger::{Tagger, TrainConfig};
use saccs::text::lexicon::Polarity;
use saccs::text::{Domain, Lexicon, SubjectiveTag};
use std::rc::Rc;

struct Fixture {
    tagger: Tagger,
    pairing: PairingPipeline,
}

fn fixture() -> Fixture {
    let vocab = build_vocab(&[Domain::Restaurants, Domain::Electronics, Domain::Hotels]);
    let bert = MiniBert::new(
        vocab,
        MiniBertConfig {
            dim: 24,
            heads: 4,
            layers: 2,
            max_len: 48,
            seed: 31,
        },
    );
    train_mlm(
        &bert,
        &general_corpus(250, 32),
        &MlmConfig {
            epochs: 2,
            ..Default::default()
        },
    );
    let bert = Rc::new(bert);
    let data = Dataset::generate_scaled(DatasetId::S1, 0.08);
    let tagger = Tagger::train(
        bert.clone(),
        &data.train,
        &TrainConfig {
            epochs: 6,
            ..Default::default()
        },
    );
    let dev: Vec<_> = data.test.iter().take(40).cloned().collect();
    let pairing = PairingPipeline::fit(bert, &data.train, &dev, PipelineConfig::default());
    Fixture { tagger, pairing }
}

#[test]
fn extractor_recovers_known_dimensions() {
    let fx = fixture();
    let gen = SentenceGenerator::new(
        Lexicon::new(Domain::Restaurants),
        GeneratorConfig {
            noise_rate: 0.0,
            trap_rate: 0.0,
            ..Default::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(77);
    let mut recovered = 0;
    let total = 40;
    for _ in 0..total {
        let facet = FacetSpec {
            concept: "food",
            group: "delicious",
            polarity: Polarity::Positive,
        };
        let s = gen.sentence(&[facet], &mut rng);
        let spans = fx.tagger.extract_spans(&s.tokens);
        let aspects: Vec<_> = spans
            .iter()
            .filter(|sp| sp.kind == saccs::text::SpanKind::Aspect)
            .copied()
            .collect();
        let opinions: Vec<_> = spans
            .iter()
            .filter(|sp| sp.kind == saccs::text::SpanKind::Opinion)
            .copied()
            .collect();
        if aspects.is_empty() || opinions.is_empty() {
            continue;
        }
        let pairs = fx.pairing.pair_spans(&s.tokens, &aspects, &opinions);
        let tags: Vec<SubjectiveTag> = pairs
            .iter()
            .map(|(a, o)| SubjectiveTag::new(&o.text(&s.tokens), &a.text(&s.tokens)))
            .collect();
        // Does any extracted tag resolve to the (food, positive) dimension?
        let lex = Lexicon::new(Domain::Restaurants);
        if tags.iter().any(|t| {
            lex.aspect_concept(&t.aspect)
                .is_some_and(|c| c.canonical == "food")
                && lex
                    .opinion_group(&t.opinion)
                    .is_some_and(|g| g.polarity == Polarity::Positive)
        }) {
            recovered += 1;
        }
    }
    assert!(
        recovered * 2 >= total,
        "extractor recovered only {recovered}/{total} single-facet food sentences"
    );
}

#[test]
fn extraction_degrades_gracefully_on_empty_and_junk_input() {
    let fx = fixture();
    assert!(fx.tagger.tag(&[]).is_empty());
    let junk: Vec<String> = ["xqzt", "blorp", "wibble"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let tags = fx.tagger.tag(&junk);
    assert_eq!(tags.len(), 3);
    // No panic is the contract; spans may or may not be empty.
    let _ = fx.tagger.extract_spans(&junk);
}

#[test]
fn tagger_output_always_aligns_with_input_length() {
    let fx = fixture();
    let data = Dataset::generate_scaled(DatasetId::S3, 0.02);
    for s in &data.test {
        let tags = fx.tagger.tag(&s.tokens);
        // max_len-1 cap (CLS occupies one slot).
        assert_eq!(tags.len(), s.tokens.len().min(47));
    }
}

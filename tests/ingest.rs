//! Ingest-while-serving equivalence suite: the segmented live index
//! behind the full `saccs-serve` front end.
//!
//! The contract under test is the ingestion PR's headline claim: a
//! server whose service fronts a [`LiveIndex`] answers every rank
//! request — at any worker count, with ANN on or off — **bitwise
//! identically** to a frozen `SubjectiveIndex` rebuilt from scratch
//! over the same review log, at *every* intermediate state of the
//! stream: mid mem-segment, right after a seal, and right after a
//! compaction merge. Ingestion rides the same bounded admission queue
//! as rank traffic, so the interleaving here exercises real
//! queue-sharing, not a side channel.
//!
//! Also covered: serve-level ingest accounting ([`ServeStats`]), the
//! `Stage::Ingest` rejection on a static (non-live) service, and the
//! `ingest:buffered` / `ingest:sealed` trace events.

use rand::rngs::StdRng;
use rand::SeedableRng;
use saccs::core::{RankRequest, SaccsConfig, SaccsService, SearchApi, Stage};
use saccs::data::Entity;
use saccs::index::index::{EntityEvidence, IndexConfig};
use saccs::index::{LiveConfig, LiveIndex, ReviewRecord, SubjectiveIndex};
use saccs::obs::trace::install;
use saccs::obs::TraceContext;
use saccs::serve::{SaccsServer, ServeConfig};
use saccs::text::{ConceptualSimilarity, Domain, Lexicon, SubjectiveTag};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Metrics and (under the `fault` feature) the failpoint registry are
/// process-global, so the tests serialize exactly like `tests/serve.rs`.
fn global_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn sim() -> ConceptualSimilarity {
    ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants))
}

fn tag(op: &str, asp: &str) -> SubjectiveTag {
    SubjectiveTag::new(op, asp)
}

fn bits(ranked: &[(usize, f32)]) -> Vec<(usize, u32)> {
    ranked.iter().map(|&(e, s)| (e, s.to_bits())).collect()
}

fn entities(n: usize) -> Vec<Entity> {
    let lex = Lexicon::new(Domain::Restaurants);
    let mut rng = StdRng::seed_from_u64(5);
    (0..n).map(|i| Entity::sample(i, &lex, &mut rng)).collect()
}

/// The indexed tag vocabulary.
fn index_tags() -> Vec<SubjectiveTag> {
    vec![
        tag("delicious", "food"),
        tag("friendly", "staff"),
        tag("cozy", "ambiance"),
    ]
}

/// The interleaved review stream: 10 reviews over 5 entities, mixing
/// exact vocabulary hits, near-typos and out-of-vocabulary noise.
fn stream() -> Vec<(usize, Vec<SubjectiveTag>)> {
    vec![
        (0, vec![tag("delicious", "food"), tag("friendly", "staff")]),
        (1, vec![tag("tasty", "meal")]),
        (2, vec![tag("cozy", "ambiance"), tag("great", "service")]),
        (0, vec![tag("deliciouz", "food")]),
        (3, vec![tag("friendly", "staff"), tag("cozy", "ambiance")]),
        (1, vec![tag("zorgle", "zzplace")]),
        (4, vec![tag("delicious", "food")]),
        (2, vec![tag("friendly", "service")]),
        (3, vec![tag("tasty", "food"), tag("great", "staff")]),
        (4, vec![tag("cozy", "ambiance"), tag("delicious", "meal")]),
    ]
}

/// Rank requests probing indexed tags, a near-synonym and an unknown
/// tag (the fallback + history-recording path).
fn rank_requests() -> Vec<RankRequest> {
    vec![
        RankRequest::tags(vec![tag("delicious", "food"), tag("nice", "staff")]),
        RankRequest::tags(vec![tag("cozy", "ambiance")]),
        RankRequest::tags(vec![tag("quiet", "place")]),
    ]
}

/// The from-scratch comparator: replay the log the way the batch
/// pipeline would and index the same tag set.
fn rebuild(log: &[ReviewRecord], tags: &[SubjectiveTag], config: &IndexConfig) -> SubjectiveIndex {
    let mut idx = SubjectiveIndex::new(sim(), config.clone());
    let mut evidence: Vec<EntityEvidence> = Vec::new();
    for record in log {
        match evidence
            .iter_mut()
            .find(|e| e.entity_id == record.entity_id)
        {
            Some(ev) => {
                ev.review_count += 1;
                ev.review_tags.extend(record.tags.iter().cloned());
            }
            None => evidence.push(EntityEvidence {
                entity_id: record.entity_id,
                review_count: 1,
                review_tags: record.tags.clone(),
            }),
        }
    }
    for ev in evidence {
        idx.register_entity(ev);
    }
    idx.index_tags(tags);
    idx
}

fn live_index(ann: bool) -> (Arc<LiveIndex>, IndexConfig) {
    let config = IndexConfig {
        ann_enabled: ann,
        ..IndexConfig::default()
    };
    let live = LiveIndex::new(
        sim(),
        config.clone(),
        LiveConfig {
            seal_every: 2,
            max_segments: 3,
            background_compaction: false,
        },
    );
    live.add_tags(&index_tags());
    (Arc::new(live), config)
}

fn live_server(live: &Arc<LiveIndex>, workers: usize) -> (Arc<SaccsServer>, Vec<Entity>) {
    let svc = Arc::new(SaccsService::with_live_index(
        Arc::clone(live),
        SaccsConfig::default(),
    ));
    let ents = entities(5);
    let server = Arc::new(SaccsServer::start(
        svc,
        ents.clone(),
        ServeConfig {
            workers,
            queue_depth: 64,
            batch: 4,
            ..ServeConfig::default()
        },
    ));
    (server, ents)
}

/// The tentpole: interleave ingest and rank traffic through the served
/// admission queue and demand bitwise equality with a from-scratch
/// rebuild at every seal/merge state, at serve widths 1, 2 and 8, with
/// the ANN sidecar on and off.
#[test]
fn interleaved_ingest_and_rank_matches_rebuild_at_every_state() {
    let _serial = global_lock();
    for ann in [false, true] {
        for workers in [1usize, 2, 8] {
            let (live, config) = live_index(ann);
            let (server, ents) = live_server(&live, workers);
            let api = SearchApi::new(&ents);
            let mut log: Vec<ReviewRecord> = Vec::new();
            let mut seals = 0usize;
            for (entity_id, review_tags) in stream() {
                let receipt = server
                    .submit_ingest(entity_id, review_tags.clone())
                    .expect("ingest admitted");
                if receipt.sealed {
                    seals += 1;
                }
                log.push(ReviewRecord {
                    seq: receipt.seq,
                    entity_id,
                    tags: review_tags,
                });
                let frozen = SaccsService::index_only(
                    rebuild(&log, &index_tags(), &config),
                    SaccsConfig::default(),
                );
                for (served, reference) in rank_requests()
                    .into_iter()
                    .zip(rank_requests().iter().map(|r| frozen.rank_request(r, &api)))
                {
                    let response = server.submit(served).expect("rank admitted");
                    assert!(response.is_full_fidelity());
                    assert_eq!(
                        bits(&response.results),
                        bits(&reference.results),
                        "served ranking diverged from rebuild after {} reviews \
                         (workers={workers}, ann={ann}, segments={})",
                        log.len(),
                        live.segment_count(),
                    );
                }
            }
            // The cadence actually exercised seals and compaction: 10
            // reviews at seal_every=2 seal five times, and max_segments=3
            // forces at least one inline merge, so the final sealed set
            // is smaller than the number of seals.
            assert_eq!(seals, 5, "workers={workers} ann={ann}");
            assert!(
                live.segment_count() < seals,
                "compaction never merged (workers={workers}, ann={ann}, segments={})",
                live.segment_count(),
            );
            assert_eq!(live.review_log(), log, "workers={workers} ann={ann}");
        }
    }
}

/// Ingestion shares the admission queue: receipts are sequential, the
/// serve-level counters attribute ingest and rank traffic separately,
/// and old pinned snapshots stay readable mid-stream.
#[test]
fn serve_stats_attribute_ingest_and_rank_separately() {
    let _serial = global_lock();
    let (live, _config) = live_index(false);
    let (server, _ents) = live_server(&live, 2);
    let early = live.pin();
    let early_bits = bits(&live.probe_pinned(&early, &tag("delicious", "food")));
    for (i, (entity_id, review_tags)) in stream().into_iter().enumerate() {
        let receipt = server
            .submit_ingest(entity_id, review_tags)
            .expect("ingest admitted");
        assert_eq!(receipt.seq, i as u64, "receipts must be sequential");
    }
    let _ = server
        .submit(RankRequest::tags(vec![tag("delicious", "food")]))
        .expect("rank admitted");
    let stats = server.stats();
    assert_eq!(stats.ingested, 10);
    assert_eq!(stats.served, 1, "rank and ingest counters must not mix");
    assert_eq!(stats.submitted, 11, "both kinds ride the admission queue");
    assert_eq!(stats.shed, 0);
    // Snapshot isolation across the whole served stream: the pre-ingest
    // pin still answers with its original (empty-index) bits.
    assert_eq!(
        bits(&live.probe_pinned(&early, &tag("delicious", "food"))),
        early_bits
    );
}

/// A static (non-live) service refuses ingestion with the dedicated
/// stage, both directly and through the server.
#[test]
fn static_service_rejects_ingest_at_the_ingest_stage() {
    let _serial = global_lock();
    let frozen = SaccsService::index_only(
        rebuild(&[], &index_tags(), &IndexConfig::default()),
        SaccsConfig::default(),
    );
    let err = frozen
        .ingest(0, &[tag("delicious", "food")])
        .expect_err("static service must refuse ingest");
    assert_eq!(err.stage(), Stage::Ingest);

    let server = SaccsServer::start(
        Arc::new(SaccsService::index_only(
            rebuild(&[], &index_tags(), &IndexConfig::default()),
            SaccsConfig::default(),
        )),
        entities(3),
        ServeConfig::default(),
    );
    let err = server
        .submit_ingest(0, vec![tag("delicious", "food")])
        .expect_err("served ingest must surface the same refusal");
    assert_eq!(err.stage(), Stage::Ingest);
}

/// Every ingest records a trace event on the caller's context:
/// `ingest:buffered` while the mem-segment absorbs the review,
/// `ingest:sealed` on the write that trips the seal cadence.
#[test]
fn ingest_emits_buffered_and_sealed_trace_events() {
    let _serial = global_lock();
    let (live, _config) = live_index(false);
    let svc = SaccsService::with_live_index(Arc::clone(&live), SaccsConfig::default());
    let ctx = TraceContext::new(42);
    let normals: Vec<String> = {
        let _scope = install(Arc::clone(&ctx));
        svc.ingest(0, &[tag("delicious", "food")])
            .expect("live ingest");
        svc.ingest(1, &[tag("friendly", "staff")])
            .expect("live ingest");
        ctx.events().iter().map(|e| e.normal()).collect()
    };
    assert_eq!(
        normals,
        vec!["ingest:buffered".to_string(), "ingest:sealed".to_string()],
        "seal_every=2: first write buffers, second seals"
    );
}

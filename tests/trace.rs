//! Request-tracing suite: end-to-end trace coverage through the
//! concurrent serve path.
//!
//! The contract under test is the observability PR's headline claim:
//! with a flight recorder installed, every served request carries a
//! complete, deterministic trace — all five Algorithm-1 stages
//! (`search_api`, `extract`, `probe`, `aggregate`, `pad`) plus queue
//! wait attributed separately — while rankings stay **bitwise
//! identical** to serving with the recorder off, and the normalized
//! report (timestamps stripped) is **byte-identical** across repeated
//! identical runs. Behind the `fault` feature, injected faults must
//! surface as retry/breaker/degradation events inside the *owning*
//! request's trace, not some global log.
//!
//! The fault registry and metrics registry are process-global, so every
//! test takes the file-wide mutex, exactly like `tests/serve.rs`.

use saccs::core::{RankRequest, SaccsBuilder, SaccsService, SearchApi};
use saccs::data::yelp::{YelpConfig, YelpCorpus};
use saccs::data::Entity;
use saccs::obs::TraceEvent;
use saccs::serve::{RecorderConfig, SaccsServer, ServeConfig};
use saccs::text::{Domain, Lexicon};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

fn corpus() -> &'static YelpCorpus {
    static CORPUS: OnceLock<YelpCorpus> = OnceLock::new();
    CORPUS.get_or_init(|| {
        YelpCorpus::generate(
            Lexicon::new(Domain::Restaurants),
            &YelpConfig {
                n_entities: 24,
                n_reviews: 420,
                seed: 42,
                ..Default::default()
            },
        )
    })
}

fn service() -> Arc<SaccsService> {
    static SERVICE: OnceLock<Arc<SaccsService>> = OnceLock::new();
    Arc::clone(SERVICE.get_or_init(|| Arc::new(SaccsBuilder::quick().build(corpus()).service)))
}

fn entities() -> Vec<Entity> {
    corpus().entities.clone()
}

fn global_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

const UTTERANCES: [&str; 3] = [
    "I want a restaurant with delicious food and a nice staff",
    "somewhere with friendly staff and tasty food",
    "find me a cozy place with a great atmosphere",
];

const REQUESTS: usize = 12;

/// The five Algorithm-1 stages every full-fidelity utterance trace must
/// cover (`algo1.rank_resilient` wraps them and is present too).
const STAGES: [&str; 5] = [
    "algo1.search_api",
    "algo1.extract",
    "algo1.probe",
    "algo1.aggregate",
    "algo1.pad",
];

/// Request `i` with `i` as its explicit trace id: the utterances cycle,
/// so content-derived ids would collide across requests.
fn request(i: usize) -> RankRequest {
    RankRequest::utterance(UTTERANCES[i % UTTERANCES.len()]).with_trace_id(i as u64)
}

fn bits(ranked: &[(usize, f32)]) -> Vec<(usize, u32)> {
    ranked.iter().map(|&(e, s)| (e, s.to_bits())).collect()
}

/// Drive the shared service until a request answers at full fidelity
/// (breakers left open by an earlier chaos test heal on call counts).
fn heal(svc: &SaccsService) {
    let ents = entities();
    let api = SearchApi::new(&ents);
    for _ in 0..64 {
        if svc.rank_request(&request(0), &api).is_full_fidelity() {
            return;
        }
    }
    panic!("breakers never closed on a fault-free service");
}

fn recorder_server(svc: &Arc<SaccsService>, workers: usize) -> Arc<SaccsServer> {
    Arc::new(SaccsServer::start(
        Arc::clone(svc),
        entities(),
        ServeConfig {
            workers,
            queue_depth: 64,
            batch: 4,
            recorder: Some(RecorderConfig::default()),
        },
    ))
}

/// Submit requests `0..REQUESTS` from concurrent client threads and
/// return the replies (score bits) in request order.
fn submit_all(server: &Arc<SaccsServer>) -> Vec<Vec<(usize, u32)>> {
    let (tx, rx) = std::sync::mpsc::channel();
    let handles: Vec<_> = (0..REQUESTS)
        .map(|i| {
            let server = Arc::clone(server);
            let tx = tx.clone();
            saccs::rt::spawn_worker(&format!("trace-client-{i}"), move || {
                let response = server.submit(request(i)).expect("request admitted");
                tx.send((i, bits(&response.results))).expect("send reply");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    drop(tx);
    let mut replies = vec![Vec::new(); REQUESTS];
    for (i, reply) in rx {
        replies[i] = reply;
    }
    replies
}

/// Acceptance (a) + (c): at widths 1, 2 and 8 every trace carries all
/// five Algorithm-1 stages, exactly one admission and one queue-wait
/// event (attributed separately from service time), and the rankings
/// are bitwise identical to the recorder-off serial reference.
#[test]
fn every_trace_covers_all_five_stages_and_rankings_match_recorder_off() {
    let _serial = global_lock();
    let svc = service();
    heal(&svc);
    // Recorder-off reference: the serial rank path, no trace contexts
    // alive anywhere.
    let reference: Vec<Vec<(usize, u32)>> = {
        let ents = entities();
        let api = SearchApi::new(&ents);
        (0..REQUESTS)
            .map(|i| {
                let response = svc.rank_request(&request(i), &api);
                assert!(response.is_full_fidelity());
                assert!(
                    response.timings.is_none(),
                    "no recorder, no per-stage timings"
                );
                bits(&response.results)
            })
            .collect()
    };
    for workers in [1usize, 2, 8] {
        let server = recorder_server(&svc, workers);
        let replies = submit_all(&server);
        for (i, reply) in replies.iter().enumerate() {
            assert_eq!(
                reply, &reference[i],
                "request {i} diverged from recorder-off at width {workers}"
            );
        }
        let report = server.obs_report().expect("recorder installed");
        assert_eq!(report.requests, REQUESTS as u64);
        assert_eq!(report.shed, 0);
        assert_eq!(report.traces.len(), REQUESTS);
        for (i, trace) in report.traces.iter().enumerate() {
            assert_eq!(trace.id, i as u64, "traces sorted by caller-assigned id");
            let normals: Vec<String> = trace.events.iter().map(TraceEvent::normal).collect();
            assert_eq!(
                normals.iter().filter(|n| *n == "admitted").count(),
                1,
                "width {workers} trace {i}: {normals:?}"
            );
            assert_eq!(
                normals.iter().filter(|n| *n == "queue_wait").count(),
                1,
                "queue wait recorded exactly once, width {workers} trace {i}"
            );
            for stage in STAGES {
                let exit = format!("stage_exit:{stage}");
                assert!(
                    normals.contains(&exit),
                    "width {workers} trace {i} missing {exit}: {normals:?}"
                );
            }
            assert_eq!(trace.dropped, 0, "event buffer never overflowed");
        }
        // Queue wait is attributed under its own synthetic stage,
        // separate from every span-timed stage.
        let queue = report
            .stages
            .get("serve.queue_wait")
            .expect("queue-wait stage present");
        assert_eq!(queue.count, REQUESTS as u64);
        for stage in STAGES {
            assert_eq!(
                report.stages.get(stage).map(|s| s.count),
                Some(REQUESTS as u64),
                "stage {stage} folded once per request"
            );
        }
    }
}

/// Per-stage timings ride back on the response when (and only when) the
/// request ran under a recorder, covering the five stages in execution
/// order; queue wait stays out of them (it is not a rank stage).
#[test]
fn responses_carry_stage_timings_only_under_a_recorder() {
    let _serial = global_lock();
    let svc = service();
    heal(&svc);
    let server = recorder_server(&svc, 1);
    let response = server.submit(request(0)).expect("admitted");
    let timings = response.timings.expect("recorder attaches timings");
    let names: Vec<&str> = timings.stages.iter().map(|&(n, _)| n).collect();
    for stage in STAGES {
        assert!(names.contains(&stage), "timings missing {stage}: {names:?}");
    }
    assert!(
        !names.iter().any(|n| n.starts_with("serve.")),
        "queue wait is attributed in the trace, not the rank timings: {names:?}"
    );
    assert!(
        timings.stages.iter().all(|&(_, ns)| ns > 0),
        "stages accumulated real time: {:?}",
        timings.stages
    );
}

/// Acceptance (d): the normalized report — per-stage counts and event
/// sequences with every nanosecond payload stripped — is byte-identical
/// across two identical seeded runs, at the concurrency-stressed width.
#[test]
fn normalized_report_is_byte_identical_across_identical_runs() {
    let _serial = global_lock();
    let svc = service();
    heal(&svc);
    let run = || {
        let server = recorder_server(&svc, 8);
        let _ = submit_all(&server);
        server
            .obs_report()
            .expect("recorder installed")
            .render(true)
    };
    let first = run();
    let second = run();
    assert!(!first.is_empty());
    assert_eq!(first, second, "normalized reports must be byte-identical");
    // The full (non-normalized) render carries timing payloads, which
    // the normalized form must not contain.
    assert!(!first.contains("total_ns"));
    assert!(!first.contains("queue_ns"));
}

#[cfg(feature = "fault")]
mod armed {
    use super::*;
    use saccs::fault::{arm_guard, Scenario};

    /// A one-shot probe fault is retried and absorbed; the retry event
    /// lands in the trace of the request that hit it — and only there.
    #[test]
    fn retry_events_land_in_the_owning_trace() {
        let _serial = global_lock();
        let svc = service();
        heal(&svc);
        const SEED: u64 = 7;
        let scenario = Scenario::parse("algo1.probe=err@1").expect("scenario parses");
        println!("trace replay: seed={SEED} scenario={scenario}");
        let _faults = arm_guard(&scenario, SEED);
        // Width 1: requests are served strictly in submission order, so
        // the first probe call — and with it the retry — deterministically
        // belongs to request 0.
        let server = recorder_server(&svc, 1);
        let first = server.submit(request(0)).expect("admitted");
        let second = server.submit(request(1)).expect("admitted");
        assert!(first.is_full_fidelity(), "retry absorbed the fault");
        assert!(second.is_full_fidelity());
        let report = server.obs_report().expect("recorder installed");
        let retried: Vec<u64> = report
            .traces
            .iter()
            .filter(|t| {
                t.events
                    .iter()
                    .any(|e| matches!(e, TraceEvent::Retry { stage: "probe", .. }))
            })
            .map(|t| t.id)
            .collect();
        assert_eq!(retried, vec![0], "retry recorded in request 0's trace only");
        assert_eq!(report.events.get("retry:probe:1"), Some(&1));
    }

    /// Acceptance (b): under a permanent probe outage the breaker
    /// transition is recorded in the trace of the request that tripped
    /// it, and every degraded request's own trace carries its
    /// degradation-ladder events.
    #[test]
    fn breaker_and_degradation_events_attribute_to_their_requests() {
        let _serial = global_lock();
        let svc = service();
        heal(&svc);
        const SEED: u64 = 11;
        let scenario = Scenario::parse("algo1.probe=err").expect("scenario parses");
        println!("trace replay: seed={SEED} scenario={scenario}");
        let report = {
            let _faults = arm_guard(&scenario, SEED);
            let server = recorder_server(&svc, 1);
            for i in 0..4 {
                let response = server.submit(request(i)).expect("admitted");
                assert!(!response.is_full_fidelity(), "request {i} must degrade");
            }
            server.obs_report().expect("recorder installed")
        };
        assert_eq!(report.traces.len(), 4);
        // Every degraded request's own trace carries its ladder events.
        for trace in &report.traces {
            assert!(trace.degraded, "trace {} marked degraded", trace.id);
            assert!(
                trace
                    .events
                    .iter()
                    .any(|e| matches!(e, TraceEvent::Degraded { .. })),
                "trace {} missing degradation events: {:?}",
                trace.id,
                trace.events
            );
        }
        // Breaker-open transitions are owned by the requests that
        // tripped them — width 1 makes the first owner deterministic:
        // request 0 crosses the failure threshold. (The breaker may
        // half-open on call counts and re-open under a later request.)
        let opens_per_trace: Vec<(u64, usize)> = report
            .traces
            .iter()
            .map(|t| {
                let n = t
                    .events
                    .iter()
                    .filter(|e| {
                        matches!(
                            e,
                            TraceEvent::Breaker {
                                stage: "probe",
                                to: "open"
                            }
                        )
                    })
                    .count();
                (t.id, n)
            })
            .filter(|&(_, n)| n > 0)
            .collect();
        assert_eq!(
            opens_per_trace.first().map(|&(id, _)| id),
            Some(0),
            "request 0 tripped the breaker: {opens_per_trace:?}"
        );
        // Every open transition is attributed to exactly one owning
        // trace — the per-trace counts add up to the global event count.
        let total_opens: usize = opens_per_trace.iter().map(|&(_, n)| n).sum();
        assert_eq!(
            report.events.get("breaker:probe:open"),
            Some(&(total_opens as u64)),
            "no orphan breaker transitions outside request traces"
        );
        // Heal the shared breakers for whatever test runs next.
        heal(&svc);
    }
}

//! # saccs
//!
//! Facade crate for the Rust reproduction of **"Subjectivity Aware
//! Conversational Search Services"** (Gaci, Ramírez, Benatallah, Casati,
//! Benabdslem — EDBT 2021). Re-exports every subsystem crate; see
//! `README.md` for the architecture and `DESIGN.md` for the full system
//! inventory and paper ↔ module mapping.
//!
//! Quick start:
//!
//! ```no_run
//! use saccs::core::{RankRequest, SaccsBuilder, SearchApi};
//! use saccs::data::yelp::{YelpConfig, YelpCorpus};
//! use saccs::text::{Domain, Lexicon};
//!
//! let corpus = YelpCorpus::generate(
//!     Lexicon::new(Domain::Restaurants),
//!     &YelpConfig { n_entities: 20, n_reviews: 200, ..Default::default() },
//! );
//! let saccs = SaccsBuilder::quick().build(&corpus);
//! let api = SearchApi::new(&corpus.entities);
//! let request =
//!     RankRequest::utterance("I want a restaurant with delicious food and a nice staff");
//! let response = saccs.service.rank_request(&request, &api);
//! for (entity, score) in response.results.iter().take(5) {
//!     println!("{} ({score:.2})", corpus.entities[*entity].name);
//! }
//! ```

/// Service assembly: Algorithm 1, the builder, dialog glue and persistence.
pub use saccs_core as core;
/// Synthetic corpora with known ground truth (S1-S4, Yelp-style entities, crowd sim).
pub use saccs_data as data;
/// MiniBert encoder, masked-LM pretraining and domain post-training.
pub use saccs_embed as embed;
/// Evaluation metrics: NDCG, bootstrap CIs, rank correlation, span/pair F1.
pub use saccs_eval as eval;
/// Deterministic fault injection: failpoints, schedules, backoff, breakers.
pub use saccs_fault as fault;
/// The subjective tag index (Equation 1) with dynamic re-indexing.
pub use saccs_index as index;
/// Classical IR baselines: BM25, similarity ranking, attribute-filter oracle.
pub use saccs_ir as ir;
/// Reverse-mode autograd, matrices, layers and optimizers.
pub use saccs_nn as nn;
/// Zero-dependency tracing spans, metrics registry and exporters.
pub use saccs_obs as obs;
/// Aspect-opinion pairing: heuristics, labeling functions and classifiers.
pub use saccs_pairing as pairing;
/// Heuristic dependency-ish parsing for the tree pairing heuristic.
pub use saccs_parse as parse;
/// Subjective query language: typed AST, DSL, bitmap planner.
pub use saccs_query as query;
/// Work-stealing pool and the sanctioned dedicated-thread escape hatch.
pub use saccs_rt as rt;
/// Multi-worker serving front end: bounded admission, shedding, micro-batching.
pub use saccs_serve as serve;
/// Sequence tagger (BiLSTM/MiniBert + CRF) for subjective-tag extraction.
pub use saccs_tagger as tagger;
/// Tags, lexicons, tokenization and conceptual similarity.
pub use saccs_text as text;

//! # saccs
//!
//! Facade crate for the Rust reproduction of **"Subjectivity Aware
//! Conversational Search Services"** (Gaci, Ramírez, Benatallah, Casati,
//! Benabdslem — EDBT 2021). Re-exports every subsystem crate; see
//! `README.md` for the architecture and `DESIGN.md` for the full system
//! inventory and paper ↔ module mapping.
//!
//! Quick start:
//!
//! ```no_run
//! use saccs::core::SaccsBuilder;
//! use saccs::data::yelp::{YelpConfig, YelpCorpus};
//! use saccs::text::{Domain, Lexicon};
//!
//! let corpus = YelpCorpus::generate(
//!     Lexicon::new(Domain::Restaurants),
//!     &YelpConfig { n_entities: 20, n_reviews: 200, ..Default::default() },
//! );
//! let mut saccs = SaccsBuilder::quick().build(&corpus);
//! let api: Vec<usize> = (0..corpus.entities.len()).collect();
//! let ranked = saccs
//!     .service
//!     .rank_utterance("I want a restaurant with delicious food and a nice staff", &api);
//! for (entity, score) in ranked.iter().take(5) {
//!     println!("{} ({score:.2})", corpus.entities[*entity].name);
//! }
//! ```

pub use saccs_core as core;
pub use saccs_data as data;
pub use saccs_embed as embed;
pub use saccs_eval as eval;
pub use saccs_index as index;
pub use saccs_ir as ir;
pub use saccs_nn as nn;
pub use saccs_pairing as pairing;
pub use saccs_parse as parse;
pub use saccs_tagger as tagger;
pub use saccs_text as text;

//! # saccs-nn
//!
//! The neural-network substrate for the SACCS reproduction: dense `f32`
//! matrices, reverse-mode autograd, the layers used by MiniBert and the
//! BiLSTM-CRF tagger, and SGD/Adam optimizers. This is the stand-in for
//! PyTorch \[42\], which the paper's implementation uses and which has no
//! offline Rust equivalent here (see `DESIGN.md` §1).
//!
//! Highlights:
//! * gradients flow into *input leaves*, not just parameters — the FGSM
//!   adversarial training of §4.3 perturbs the embedding input by
//!   `ε · sign(∇_x ℓ)`, read directly off [`Var::grad`];
//! * [`layers::MultiHeadSelfAttention`] records per-head attention
//!   matrices each forward pass, which the pairing heuristics of §5.1
//!   consume;
//! * everything is seeded and deterministic.

pub mod layers;
pub mod matrix;
pub mod optim;
pub mod serialize;
pub mod var;

pub use layers::{
    BiLstm, Dropout, Embedding, Layer, LayerNorm, Linear, Lstm, MultiHeadSelfAttention,
};
pub use matrix::{log_sum_exp, Matrix};
pub use optim::{zero_grads, Adam, Sgd};
pub use serialize::{decode_state, encode_state, CodecError};
pub use var::Var;

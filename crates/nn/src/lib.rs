//! # saccs-nn
//!
//! The neural-network substrate for the SACCS reproduction: dense `f32`
//! matrices, reverse-mode autograd, the layers used by MiniBert and the
//! BiLSTM-CRF tagger, and SGD/Adam optimizers. This is the stand-in for
//! PyTorch \[42\], which the paper's implementation uses and which has no
//! offline Rust equivalent here (see `DESIGN.md` §1).
//!
//! Highlights:
//! * gradients flow into *input leaves*, not just parameters — the FGSM
//!   adversarial training of §4.3 perturbs the embedding input by
//!   `ε · sign(∇_x ℓ)`, read directly off [`Var::grad`];
//! * [`layers::MultiHeadSelfAttention`] records per-head attention
//!   matrices each forward pass, which the pairing heuristics of §5.1
//!   consume;
//! * everything is seeded and deterministic.

/// Blocked/SIMD matmul kernels and their runtime dispatch.
pub mod kernel;
/// Neural layers: embeddings, LSTMs, attention, norms.
pub mod layers;
/// Dense row-major f32 matrices.
pub mod matrix;
/// SGD and Adam optimizers.
pub mod optim;
/// Int8-quantized linear layers for probe-side inference.
pub mod quant;
/// The SNN1 weight codec.
pub mod serialize;
/// Reverse-mode autograd variables.
pub mod var;

/// Name of the micro-kernel selected for this host.
pub use kernel::kernel_name;
/// Layer building blocks.
pub use layers::{
    BiLstm, Dropout, Embedding, Layer, LayerNorm, Linear, Lstm, MultiHeadSelfAttention,
};
/// The matrix type and numerically stable reductions.
pub use matrix::{log_sum_exp, Matrix};
/// Parameter update rules.
pub use optim::{zero_grads, Adam, Sgd};
/// Int8 inference path: quantized linear + kernel label.
pub use quant::{quant_kernel_name, QuantizedLinear, QuantizedRow};
/// Weight (de)serialization.
pub use serialize::{decode_state, encode_state, CodecError};
/// A node in the autograd graph.
pub use var::Var;

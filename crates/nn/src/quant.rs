//! Int8-quantized linear layers for the probe-side encoder path.
//!
//! Scheme (the standard asymmetric-activation × symmetric-weight GEMM):
//!
//! * **Weights** are quantized per output column to symmetric i8:
//!   `scale_j = max|W[:,j]| / 127`, `wq = round(w / scale_j)`. Stored
//!   transposed (`n×k`) so each output's dot product streams one
//!   contiguous row.
//! * **Activations** are quantized per row into the *unsigned 7-bit*
//!   range `[0, 127]`: `q_i = round(x_i / scale_x) + zp`. Capping at 127
//!   instead of 255 halves the resolution but makes the AVX2 `maddubs`
//!   pair-sum safe — `2·127·127 = 32258 < i16::MAX` — so every kernel
//!   accumulates exactly, with no saturation anywhere.
//! * The integer dot is corrected by the precomputed row sums:
//!   `Σ x·w ≈ scale_x·scale_j·(Σ q·wq − zp·Σ wq)`.
//!
//! Three i8×u8→i32 kernels sit behind the same once-per-process runtime
//! dispatch as `kernel.rs`: AVX-512 VNNI (`dpbusd`), AVX2
//! (`maddubs` + `madd`), and a portable scalar loop. Integer addition is
//! associative, so **all three produce bit-identical sums** — the
//! quantized forward is deterministic across machines and widths; only
//! the f32-vs-int8 choice changes results, and that choice is the
//! `EncoderPrecision` flag in `saccs-embed` (f32 remains the default for
//! training and table regeneration).

use crate::matrix::Matrix;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum QKind {
    Vnni,
    Avx2,
    Portable,
}

fn qkind() -> QKind {
    static KIND: std::sync::OnceLock<QKind> = std::sync::OnceLock::new();
    *KIND.get_or_init(detect)
}

#[cfg(target_arch = "x86_64")]
fn detect() -> QKind {
    if is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512vnni") {
        QKind::Vnni
    } else if is_x86_feature_detected!("avx2") {
        QKind::Avx2
    } else {
        QKind::Portable
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> QKind {
    QKind::Portable
}

/// Name of the selected int8 dot kernel (bench/telemetry label).
pub fn quant_kernel_name() -> &'static str {
    match qkind() {
        QKind::Vnni => "vnni_dpbusd",
        QKind::Avx2 => "avx2_maddubs",
        QKind::Portable => "portable_i32",
    }
}

/// A row of activations quantized to `[0, 127]` with its dequant params.
#[derive(Debug, Clone)]
pub struct QuantizedRow {
    /// Quantized values, `x ≈ scale · (q − zero_point)`.
    pub q: Vec<u8>,
    pub scale: f32,
    pub zero_point: i32,
}

/// Quantize one activation row into `[0, 127]` (asymmetric, per-row
/// range). A constant row quantizes losslessly to its zero point.
pub fn quantize_row(x: &[f32]) -> QuantizedRow {
    let mut lo = f32::INFINITY;
    let mut hi = f32::NEG_INFINITY;
    for &v in x {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if x.is_empty() || !lo.is_finite() || !hi.is_finite() || hi <= lo {
        return QuantizedRow {
            q: vec![0; x.len()],
            scale: 1.0,
            zero_point: lo.is_finite().then(|| -lo.round() as i32).unwrap_or(0),
        };
    }
    // Include zero in the range so zp lands in [0, 127] and zero stays
    // exactly representable (post-ReLU activations are half zeros).
    let lo = lo.min(0.0);
    let hi = hi.max(0.0);
    let scale = (hi - lo) / 127.0;
    let zp = (-lo / scale).round() as i32;
    let q = x
        .iter()
        .map(|&v| ((v / scale).round() as i32 + zp).clamp(0, 127) as u8)
        .collect();
    QuantizedRow {
        q,
        scale,
        zero_point: zp,
    }
}

/// An `in_dim × out_dim` linear layer with int8 weights, equivalent in
/// shape to `saccs_nn::layers::Linear` (`y = x·W + b`).
pub struct QuantizedLinear {
    k: usize,
    n: usize,
    /// `n × k`: row `j` holds column `j` of `W`, quantized.
    wq: Vec<i8>,
    /// Per-output dequant scale.
    scale: Vec<f32>,
    /// Per-output `Σ wq` for the zero-point correction.
    wsum: Vec<i32>,
    bias: Vec<f32>,
}

impl QuantizedLinear {
    /// Quantize `w` (`k×n`, row-major, as stored by `Linear`) and `b`
    /// (`1×n`).
    pub fn from_weights(w: &Matrix, b: &Matrix) -> Self {
        let (k, n) = w.shape();
        debug_assert_eq!(b.len(), n, "bias/width mismatch");
        let wd = w.data();
        let mut wq = vec![0i8; n * k];
        let mut scale = vec![0.0f32; n];
        let mut wsum = vec![0i32; n];
        for j in 0..n {
            let mut max_abs = 0.0f32;
            for i in 0..k {
                max_abs = max_abs.max(wd[i * n + j].abs());
            }
            let s = if max_abs > 0.0 { max_abs / 127.0 } else { 1.0 };
            scale[j] = s;
            let mut sum = 0i32;
            let row = &mut wq[j * k..(j + 1) * k];
            for (i, slot) in row.iter_mut().enumerate() {
                let q = (wd[i * n + j] / s).round().clamp(-127.0, 127.0) as i8;
                *slot = q;
                sum += i32::from(q);
            }
            wsum[j] = sum;
        }
        QuantizedLinear {
            k,
            n,
            wq,
            scale,
            wsum,
            bias: b.data().to_vec(),
        }
    }

    pub fn shape(&self) -> (usize, usize) {
        (self.k, self.n)
    }

    /// `out = x·W + b` for one already-quantized activation row.
    pub fn forward_quantized(&self, x: &QuantizedRow, out: &mut [f32]) {
        debug_assert_eq!(x.q.len(), self.k);
        debug_assert_eq!(out.len(), self.n);
        for j in 0..self.n {
            let dot = dot_u8i8(&x.q, &self.wq[j * self.k..(j + 1) * self.k]);
            let centered = dot - x.zero_point * self.wsum[j];
            out[j] = x.scale * self.scale[j] * centered as f32 + self.bias[j];
        }
    }

    /// `y = x·W + b` row by row, quantizing each activation row once.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let rows = x.rows();
        let mut out = Matrix::zeros(rows, self.n);
        for r in 0..rows {
            let q = quantize_row(x.row(r));
            self.forward_quantized(&q, out.row_mut(r));
        }
        out
    }
}

/// `Σ q[i]·w[i]` with `q` unsigned `[0,127]` and `w` signed i8, exact in
/// i32. Dispatches once per process; every kernel returns identical bits.
pub fn dot_u8i8(q: &[u8], w: &[i8]) -> i32 {
    debug_assert_eq!(q.len(), w.len());
    match qkind() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `detect` confirmed AVX-512F + VNNI on this CPU, and both
        // slices have equal length by the debug assert / caller contract.
        QKind::Vnni => unsafe { x86::dot_vnni(q.as_ptr(), w.as_ptr(), q.len()) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `detect` confirmed AVX2; same slice-length contract.
        QKind::Avx2 => unsafe { x86::dot_avx2(q.as_ptr(), w.as_ptr(), q.len()) },
        _ => dot_portable(q, w),
    }
}

fn dot_portable(q: &[u8], w: &[i8]) -> i32 {
    let mut sum = 0i32;
    for (&a, &b) in q.iter().zip(w) {
        sum += i32::from(a) * i32::from(b);
    }
    sum
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! `target_feature` int8 dot kernels; callers guarantee detection.

    /// AVX-512 VNNI dot: 64 u8×i8 products per `dpbusd`, i32 accumulate.
    ///
    /// # Safety
    /// Requires AVX-512F and AVX-512VNNI at runtime; `q` and `w` must be
    /// readable for `k` bytes each.
    #[target_feature(enable = "avx512f,avx512vnni")]
    pub(super) unsafe fn dot_vnni(q: *const u8, w: *const i8, k: usize) -> i32 {
        use std::arch::x86_64::*;
        let mut acc = _mm512_setzero_si512();
        let mut i = 0usize;
        while i + 64 <= k {
            let a = std::ptr::read_unaligned(q.add(i) as *const __m512i);
            let b = std::ptr::read_unaligned(w.add(i) as *const __m512i);
            acc = _mm512_dpbusd_epi32(acc, a, b);
            i += 64;
        }
        let mut sum = _mm512_reduce_add_epi32(acc);
        while i < k {
            sum += i32::from(*q.add(i)) * i32::from(*w.add(i));
            i += 1;
        }
        sum
    }

    /// AVX2 dot: `maddubs` pairs u8×i8 into i16 (safe: activations are
    /// capped at 127, so a pair sum is ≤ 32258), `madd` widens to i32.
    ///
    /// # Safety
    /// Requires AVX2 at runtime; `q` and `w` must be readable for `k`
    /// bytes each.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn dot_avx2(q: *const u8, w: *const i8, k: usize) -> i32 {
        use std::arch::x86_64::*;
        let ones = _mm256_set1_epi16(1);
        let mut acc = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 32 <= k {
            let a = std::ptr::read_unaligned(q.add(i) as *const __m256i);
            let b = std::ptr::read_unaligned(w.add(i) as *const __m256i);
            let pairs = _mm256_maddubs_epi16(a, b);
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(pairs, ones));
            i += 32;
        }
        let lo = _mm256_castsi256_si128(acc);
        let hi = _mm256_extracti128_si256::<1>(acc);
        let s = _mm_add_epi32(lo, hi);
        let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b00_01_10_11>(s));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b01_00_11_10>(s));
        let mut sum = _mm_cvtsi128_si32(s);
        while i < k {
            sum += i32::from(*q.add(i)) * i32::from(*w.add(i));
            i += 1;
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(seed: u64, n: usize, spread: f32) -> Vec<f32> {
        let mut h = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..n)
            .map(|_| {
                h ^= h >> 33;
                h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
                h ^= h >> 29;
                ((h % 2000) as f32 / 1000.0 - 1.0) * spread
            })
            .collect()
    }

    #[test]
    fn dispatched_dot_matches_portable_reference() {
        for len in [0usize, 1, 7, 31, 32, 33, 63, 64, 65, 200] {
            let xs = pseudo(len as u64 + 1, len, 1.0);
            let q: Vec<u8> = xs.iter().map(|v| (v.abs() * 127.0) as u8).collect();
            let w: Vec<i8> = pseudo(len as u64 + 99, len, 1.0)
                .iter()
                .map(|v| (v * 127.0) as i8)
                .collect();
            assert_eq!(dot_u8i8(&q, &w), dot_portable(&q, &w), "len {len}");
        }
    }

    #[test]
    fn quantize_row_round_trips_within_half_step() {
        let xs = pseudo(7, 64, 2.0);
        let qr = quantize_row(&xs);
        assert!(qr.q.iter().all(|&v| v <= 127));
        for (&x, &q) in xs.iter().zip(&qr.q) {
            let back = qr.scale * (i32::from(q) - qr.zero_point) as f32;
            assert!(
                (x - back).abs() <= qr.scale * 0.5 + 1e-6,
                "x={x} back={back} scale={}",
                qr.scale
            );
        }
        // Exact zero stays exact (zp is in range because 0 ∈ [lo, hi]).
        let with_zero = [0.0f32, 1.0, -1.0, 0.5];
        let qz = quantize_row(&with_zero);
        let back0 = qz.scale * (i32::from(qz.q[0]) - qz.zero_point) as f32;
        assert_eq!(back0, 0.0);
    }

    #[test]
    fn constant_and_empty_rows_are_handled() {
        let qr = quantize_row(&[]);
        assert!(qr.q.is_empty());
        let qr = quantize_row(&[3.0, 3.0, 3.0]);
        assert_eq!(qr.q, vec![0, 0, 0]);
    }

    #[test]
    fn quantized_linear_tracks_f32_linear() {
        let (k, n) = (48, 24);
        let w = Matrix::from_vec(k, n, pseudo(11, k * n, 0.4));
        let b = Matrix::row_vector(pseudo(13, n, 0.1));
        let ql = QuantizedLinear::from_weights(&w, &b);
        let x = Matrix::from_vec(3, k, pseudo(17, 3 * k, 1.5));
        let exact = x.matmul(&w).add_row_broadcast(&b);
        let quant = ql.forward(&x);
        let mut max_rel = 0.0f32;
        for (e, q) in exact.data().iter().zip(quant.data()) {
            let rel = (e - q).abs() / exact.max_abs().max(1e-6);
            max_rel = max_rel.max(rel);
        }
        assert!(max_rel < 0.05, "max relative error {max_rel}");
    }

    #[test]
    fn quantized_forward_is_deterministic() {
        let (k, n) = (32, 16);
        let w = Matrix::from_vec(k, n, pseudo(5, k * n, 0.3));
        let b = Matrix::row_vector(vec![0.0; n]);
        let ql = QuantizedLinear::from_weights(&w, &b);
        let x = Matrix::from_vec(2, k, pseudo(6, 2 * k, 1.0));
        let a = ql.forward(&x);
        let bq = ql.forward(&x);
        assert_eq!(a.data(), bq.data());
    }
}

//! Cache-blocked matmul kernels behind [`crate::Matrix::matmul`].
//!
//! The strategy is the classic GEMM decomposition: pack `B` into
//! column panels of width `NR` (k-major, so the micro-kernel streams it
//! linearly), pack each `MR`-row block of `A` k-major with zero-padded
//! fringe rows, and drive a register-tiled micro-kernel over the
//! `MR×NR` output tiles. Three micro-kernels are selected once per
//! process by runtime CPU feature detection:
//!
//! * AVX-512: 12×32 tile — 24 accumulator vectors + 2 panel loads,
//!   FMA, masked stores straight into the output (no spill buffer);
//! * AVX2+FMA: 6×16 tile with a small store-through buffer;
//! * portable: 4×8 tile in scalar Rust (autovectorizes to SSE2).
//!
//! Above [`PAR_MIN_FLOPS`] the row dimension is split into `MR`-aligned
//! blocks across the `saccs-rt` pool; below it the same kernel runs on
//! the calling thread. Every output element is a pure function of its
//! row of `A` and the shared packed `B` with a fixed k-ascending
//! accumulation order, so serial and parallel runs (and any two thread
//! counts) are **bitwise identical** — see `tests/parallel_determinism`.
//! Matrices smaller than [`BLOCK_MIN_FLOPS`] skip packing entirely and
//! use the plain i-k-j zero-skip reference loop: below that size `B`
//! fits in L1, the axpy inner loop autovectorizes, and the pack step
//! costs more than blocking saves.

/// `m·k·n` threshold below which packing costs more than it saves.
/// Training-shaped matmuls (`seq×dim` against `dim×dim` blocks, a few
/// masked rows against the vocab head) all fall under this and run the
/// reference loop, exactly like the pre-blocking kernel; only genuinely
/// large products (index build batches, the bench sizes) get packed.
const BLOCK_MIN_FLOPS: usize = 1_048_576;

/// `m·k·n` threshold for fanning row blocks out across the pool; under
/// it the per-scope queue traffic outweighs the win even on wide hosts.
const PAR_MIN_FLOPS: usize = 2_000_000;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    Avx512,
    Avx2Fma,
    Portable,
}

impl Kind {
    /// Micro-kernel register tile: (row count MR, panel width NR).
    fn tile(self) -> (usize, usize) {
        match self {
            Kind::Avx512 => (12, 32),
            Kind::Avx2Fma => (6, 16),
            Kind::Portable => (4, 8),
        }
    }
}

fn kind() -> Kind {
    static KIND: std::sync::OnceLock<Kind> = std::sync::OnceLock::new();
    *KIND.get_or_init(detect)
}

#[cfg(target_arch = "x86_64")]
fn detect() -> Kind {
    if is_x86_feature_detected!("avx512f") {
        Kind::Avx512
    } else if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
        Kind::Avx2Fma
    } else {
        Kind::Portable
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> Kind {
    Kind::Portable
}

/// Name of the selected micro-kernel (bench/telemetry label).
pub fn kernel_name() -> &'static str {
    match kind() {
        Kind::Avx512 => "avx512_12x32",
        Kind::Avx2Fma => "avx2_6x16",
        Kind::Portable => "portable_4x8",
    }
}

/// `out += nothing; out = A·B` for row-major `a` (`m×k`), `b` (`k×n`)
/// into zeroed `out` (`m×n`), fanned out over at most `width` threads.
pub(crate) fn matmul_into(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
    width: usize,
) {
    let flops = m * k * n;
    if flops < BLOCK_MIN_FLOPS || k == 0 || n == 0 {
        reference_zero_skip_into(a, b, m, k, n, out);
        return;
    }
    // Content dispatch: post-ReLU activations and masked gradients are
    // often half exact zeros, and the zero-skip axpy loop drops a whole
    // `n`-wide row of work per zero — the dense blocked kernel cannot.
    // The choice depends only on the *values* of `A` (never on thread
    // count or pool width), so every width still sees identical bits.
    let zeros = a.iter().filter(|&&x| x == 0.0).count();
    if zeros * 8 >= a.len() * 3 {
        reference_zero_skip_into(a, b, m, k, n, out);
        return;
    }
    let _span = saccs_obs::span!("nn.matmul");
    let kind = kind();
    let (mr, nr) = kind.tile();
    // Reuse a thread-local pack buffer across calls (`mem::take` so a
    // re-entrant call would simply allocate fresh instead of aliasing).
    let mut packed = PACK_B_SCRATCH.with(|c| std::mem::take(&mut *c.borrow_mut()));
    pack_b(b, k, n, nr, &mut packed);
    let tasks = if width > 1 && flops >= PAR_MIN_FLOPS {
        width.min(m.div_ceil(mr))
    } else {
        1
    };
    if tasks <= 1 {
        saccs_obs::counter!("nn.matmul.serial").inc();
        run_rows(kind, a, 0, m, k, n, &packed, out);
    } else {
        saccs_obs::counter!("nn.matmul.parallel").inc();
        // MR-aligned row blocks; each task owns a disjoint slice of
        // `out`, so chunk boundaries never change any output bit.
        let chunk_rows = m.div_ceil(tasks).div_ceil(mr) * mr;
        saccs_rt::parallel_for_chunks(out, chunk_rows * n, |ci, chunk| {
            run_rows(
                kind,
                a,
                ci * chunk_rows,
                chunk.len() / n,
                k,
                n,
                &packed,
                chunk,
            );
        });
    }
    PACK_B_SCRATCH.with(|c| *c.borrow_mut() = packed);
}

thread_local! {
    /// Per-thread `pack_b` destination, reused across calls.
    static PACK_B_SCRATCH: std::cell::RefCell<Vec<f32>> =
        const { std::cell::RefCell::new(Vec::new()) };
    /// Per-worker `A`-block pack buffer for [`run_rows`].
    static PACK_A_SCRATCH: std::cell::RefCell<Vec<f32>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// The pre-blocking serial kernel (i-k-j with the zero-skip branch),
/// kept verbatim as the bench baseline and correctness oracle.
pub(crate) fn reference_zero_skip_into(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    out: &mut [f32],
) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Pack `b` (`k×n` row-major) into `NR`-wide column panels, k-major:
/// panel `p` holds columns `[p·NR, p·NR+NR)` as `k` consecutive groups
/// of `NR` floats (zero-padded past column `n`).
fn pack_b(b: &[f32], k: usize, n: usize, nr: usize, packed: &mut Vec<f32>) {
    let panels = n.div_ceil(nr);
    // `clear` + `resize` zero-fills like a fresh allocation (the fringe
    // padding must be zero) while keeping the capacity.
    packed.clear();
    packed.resize(panels * k * nr, 0.0);
    for p in 0..panels {
        let c0 = p * nr;
        let w = nr.min(n - c0);
        let dst = &mut packed[p * k * nr..(p + 1) * k * nr];
        for kk in 0..k {
            dst[kk * nr..kk * nr + w].copy_from_slice(&b[kk * n + c0..kk * n + c0 + w]);
        }
    }
}

/// Pack `mr` rows of `a` starting at row `i0` k-major with an `MR`
/// interleave: for each `kk`, `MR` consecutive values (rows past `mr`
/// zero-padded so fringe blocks reuse the full-tile micro-kernel).
fn pack_a_block(a: &[f32], i0: usize, mr: usize, k: usize, mr_tile: usize, dst: &mut [f32]) {
    for kk in 0..k {
        for r in 0..mr {
            dst[kk * mr_tile + r] = a[(i0 + r) * k + kk];
        }
        for r in mr..mr_tile {
            dst[kk * mr_tile + r] = 0.0;
        }
    }
}

/// Compute `rows` output rows starting at global row `i0` into `out`
/// (the row-major slice for exactly those rows).
#[allow(clippy::too_many_arguments)]
fn run_rows(
    kind: Kind,
    a: &[f32],
    i0: usize,
    rows: usize,
    k: usize,
    n: usize,
    packed: &[f32],
    out: &mut [f32],
) {
    let (mr_tile, nr) = kind.tile();
    let panels = n.div_ceil(nr);
    // Per-worker reusable block buffer; `pack_a_block` writes every
    // slot (zero-padding the fringe itself), so stale contents are fine.
    let mut apack = PACK_A_SCRATCH.with(|c| std::mem::take(&mut *c.borrow_mut()));
    apack.resize(k * mr_tile, 0.0);
    let mut i = 0;
    while i < rows {
        let mr = mr_tile.min(rows - i);
        pack_a_block(a, i0 + i, mr, k, mr_tile, &mut apack);
        for p in 0..panels {
            let c0 = p * nr;
            let w = nr.min(n - c0);
            let bp = &packed[p * k * nr..(p + 1) * k * nr];
            let dst_off = i * n + c0;
            match kind {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: `kind()` returned Avx512 only after runtime
                // detection; pointers cover apack (k·12), the panel
                // (k·32) and `mr` out rows of ≥`w` floats each.
                Kind::Avx512 => unsafe {
                    x86::micro_avx512(
                        apack.as_ptr(),
                        bp.as_ptr(),
                        k,
                        out.as_mut_ptr().add(dst_off),
                        n,
                        mr,
                        w,
                    );
                },
                #[cfg(target_arch = "x86_64")]
                // SAFETY: as above, gated on avx2+fma detection.
                Kind::Avx2Fma => unsafe {
                    x86::micro_avx2(
                        apack.as_ptr(),
                        bp.as_ptr(),
                        k,
                        out.as_mut_ptr().add(dst_off),
                        n,
                        mr,
                        w,
                    );
                },
                #[cfg(not(target_arch = "x86_64"))]
                Kind::Avx512 | Kind::Avx2Fma => unreachable!("non-x86 detect() is Portable-only"),
                Kind::Portable => micro_portable(&apack, bp, k, out, dst_off, n, mr, w),
            }
        }
        i += mr;
    }
    PACK_A_SCRATCH.with(|c| *c.borrow_mut() = apack);
}

/// 4×8 scalar micro-kernel (the compiler autovectorizes the inner
/// accumulate); same packed layout as the SIMD kernels.
#[allow(clippy::too_many_arguments)]
fn micro_portable(
    apack: &[f32],
    bp: &[f32],
    k: usize,
    out: &mut [f32],
    dst_off: usize,
    n: usize,
    mr: usize,
    w: usize,
) {
    const MR: usize = 4;
    const NR: usize = 8;
    let mut acc = [[0.0f32; NR]; MR];
    for kk in 0..k {
        let brow = &bp[kk * NR..kk * NR + NR];
        let arow = &apack[kk * MR..kk * MR + MR];
        for r in 0..MR {
            let av = arow[r];
            for (c, &bv) in brow.iter().enumerate() {
                acc[r][c] += av * bv;
            }
        }
    }
    for r in 0..mr {
        let dst = &mut out[dst_off + r * n..dst_off + r * n + w];
        dst.copy_from_slice(&acc[r][..w]);
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! `target_feature` micro-kernels; callers guarantee detection.

    /// 12×32 AVX-512 tile: 24 zmm accumulators, FMA against two panel
    /// vectors, software prefetch 8 panel rows ahead, masked stores of
    /// the live `w × mr` window directly into the output.
    ///
    /// # Safety
    /// Requires AVX-512F at runtime; `ap` must hold `k·12` floats, `bp`
    /// `k·32` floats, and `out` must be writable for `mr` rows of at
    /// least `w` floats at stride `n`.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn micro_avx512(
        ap: *const f32,
        bp: *const f32,
        k: usize,
        out: *mut f32,
        n: usize,
        mr: usize,
        w: usize,
    ) {
        use std::arch::x86_64::*;
        const MR: usize = 12;
        const NR: usize = 32;
        let mut c: [[__m512; 2]; MR] = [[_mm512_setzero_ps(); 2]; MR];
        for kk in 0..k {
            _mm_prefetch::<_MM_HINT_T0>(bp.add(kk * NR + 8 * NR) as *const i8);
            _mm_prefetch::<_MM_HINT_T0>(bp.add(kk * NR + 8 * NR + 16) as *const i8);
            let b0 = _mm512_loadu_ps(bp.add(kk * NR));
            let b1 = _mm512_loadu_ps(bp.add(kk * NR + 16));
            let arow = ap.add(kk * MR);
            for (r, cr) in c.iter_mut().enumerate() {
                let av = _mm512_set1_ps(*arow.add(r));
                cr[0] = _mm512_fmadd_ps(av, b0, cr[0]);
                cr[1] = _mm512_fmadd_ps(av, b1, cr[1]);
            }
        }
        let m0: u16 = if w >= 16 {
            0xFFFF
        } else {
            (1u32 << w) as u16 - 1
        };
        let m1: u16 = if w >= NR {
            0xFFFF
        } else if w > 16 {
            ((1u32 << (w - 16)) - 1) as u16
        } else {
            0
        };
        for (r, cr) in c.iter().enumerate().take(mr) {
            let dst = out.add(r * n);
            _mm512_mask_storeu_ps(dst, m0, cr[0]);
            if m1 != 0 {
                _mm512_mask_storeu_ps(dst.add(16), m1, cr[1]);
            }
        }
    }

    /// 6×16 AVX2+FMA tile; stores through a stack buffer because AVX2
    /// has no masked f32 store cheap enough to beat the copy.
    ///
    /// # Safety
    /// Requires AVX2 and FMA at runtime; `ap` must hold `k·6` floats,
    /// `bp` `k·16` floats, and `out` must be writable for `mr` rows of
    /// at least `w` floats at stride `n`.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn micro_avx2(
        ap: *const f32,
        bp: *const f32,
        k: usize,
        out: *mut f32,
        n: usize,
        mr: usize,
        w: usize,
    ) {
        use std::arch::x86_64::*;
        const MR: usize = 6;
        const NR: usize = 16;
        let mut c: [[__m256; 2]; MR] = [[_mm256_setzero_ps(); 2]; MR];
        for kk in 0..k {
            let b0 = _mm256_loadu_ps(bp.add(kk * NR));
            let b1 = _mm256_loadu_ps(bp.add(kk * NR + 8));
            let arow = ap.add(kk * MR);
            for (r, cr) in c.iter_mut().enumerate() {
                let av = _mm256_set1_ps(*arow.add(r));
                cr[0] = _mm256_fmadd_ps(av, b0, cr[0]);
                cr[1] = _mm256_fmadd_ps(av, b1, cr[1]);
            }
        }
        let mut buf = [0.0f32; NR];
        for (r, cr) in c.iter().enumerate().take(mr) {
            _mm256_storeu_ps(buf.as_mut_ptr(), cr[0]);
            _mm256_storeu_ps(buf.as_mut_ptr().add(8), cr[1]);
            let dst = out.add(r * n);
            for (cc, &v) in buf.iter().enumerate().take(w) {
                *dst.add(cc) = v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense(m: usize, k: usize, seed: u32) -> Vec<f32> {
        (0..m * k)
            .map(|i| {
                ((i as u32).wrapping_mul(2654435761).wrapping_add(seed) % 1000) as f32 / 500.0 - 1.0
            })
            .collect()
    }

    /// The blocked path must match the reference loop to fp tolerance
    /// for awkward shapes (fringe rows, fringe panels, tiny k). Driven
    /// through `pack_b` + `run_rows` directly so the shapes stay small
    /// regardless of where the dispatch threshold sits.
    #[test]
    fn blocked_matches_reference_on_fringe_shapes() {
        for &(m, k, n) in &[
            (1usize, 64usize, 300usize),
            (13, 40, 33),
            (64, 64, 64),
            (65, 31, 47),
            (128, 17, 129),
        ] {
            let a = dense(m, k, 1);
            let b = dense(k, n, 2);
            let mut want = vec![0.0f32; m * n];
            reference_zero_skip_into(&a, &b, m, k, n, &mut want);
            let mut got = vec![0.0f32; m * n];
            let kind = kind();
            let (_, nr) = kind.tile();
            let mut packed = Vec::new();
            pack_b(&b, k, n, nr, &mut packed);
            run_rows(kind, &a, 0, m, k, n, &packed, &mut got);
            let max = want
                .iter()
                .zip(&got)
                .map(|(x, y)| (x - y).abs())
                .fold(0.0f32, f32::max);
            assert!(max < 1e-3, "{m}x{k}x{n}: max diff {max}");
        }
    }

    #[test]
    fn zero_dims_are_safe() {
        let mut out = vec![0.0f32; 0];
        matmul_into(&[], &[], 0, 0, 0, &mut out, 4);
        let a = vec![1.0f32; 5];
        let mut out = vec![0.0f32; 0];
        matmul_into(&a, &[], 5, 1, 0, &mut out, 4);
    }

    #[test]
    fn kernel_name_is_stable() {
        // Whatever the host supports, repeated queries agree (dispatch
        // is cached) — the determinism contract depends on this.
        assert_eq!(kernel_name(), kernel_name());
    }
}

//! Reverse-mode automatic differentiation.
//!
//! The substitute for PyTorch's autograd. Every [`Var`] is a node in an
//! implicit computation graph (parents held by `Rc`); calling
//! [`Var::backward`] on a scalar output topologically sorts the graph and
//! accumulates gradients into every reachable node — including *input*
//! leaves, which is what the FGSM adversarial perturbation of Section 4.3
//! needs: `δ* = ε · sign(∇_x ℓ(h_θ(x + δ), y))` is read straight off the
//! gradient of the embedding leaf.
//!
//! Graphs are built per example (batch size 1, one sentence at a time),
//! which keeps every op a plain 2-D matrix operation and avoids padding and
//! masking entirely. At SACCS model sizes (d ≤ 64, T ≤ 40) this is fast
//! enough to train every model in the paper's tables in seconds.

use crate::matrix::Matrix;
use std::cell::{Ref, RefCell};
use std::collections::HashSet;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

static NEXT_ID: AtomicU64 = AtomicU64::new(0);

type BackwardFn = Box<dyn Fn(&Matrix, &[Var])>;

struct Inner {
    id: u64,
    value: RefCell<Matrix>,
    grad: RefCell<Matrix>,
    parents: Vec<Var>,
    backward: Option<BackwardFn>,
    /// Op name for sanitizer diagnostics; absent in default builds so the
    /// graph pays nothing for the feature.
    #[cfg(feature = "sanitize")]
    op: &'static str,
}

/// A differentiable matrix-valued variable.
#[derive(Clone)]
pub struct Var(Rc<Inner>);

fn accum(target: &Var, delta: &Matrix) {
    target.0.grad.borrow_mut().add_assign(delta);
}

/// `target.grad += alpha · delta` without materialising the scaled
/// temporary (`x * α` and `α * x` are the same IEEE product).
fn accum_scaled(target: &Var, delta: &Matrix, alpha: f32) {
    target.0.grad.borrow_mut().add_scaled(delta, alpha);
}

impl Var {
    /// A leaf node (parameter or input). Gradients accumulate into it.
    pub fn leaf(value: Matrix) -> Var {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Var(Rc::new(Inner {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            value: RefCell::new(value),
            grad: RefCell::new(grad),
            parents: Vec::new(),
            backward: None,
            #[cfg(feature = "sanitize")]
            op: "leaf",
        }))
    }

    /// Every differentiable op funnels through here, which is where the
    /// `sanitize` feature hooks in: op outputs are screened for NaN/Inf
    /// with a diagnostic naming the op and its parent shapes. The default
    /// build compiles the check away entirely.
    fn from_op(op: &'static str, value: Matrix, parents: Vec<Var>, backward: BackwardFn) -> Var {
        #[cfg(feature = "sanitize")]
        sanitize::check_op_output(op, &value, &parents);
        #[cfg(not(feature = "sanitize"))]
        let _ = op;
        let grad = Matrix::zeros(value.rows(), value.cols());
        Var(Rc::new(Inner {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            value: RefCell::new(value),
            grad: RefCell::new(grad),
            parents,
            backward: Some(backward),
            #[cfg(feature = "sanitize")]
            op,
        }))
    }

    /// Borrow the current value.
    pub fn value(&self) -> Ref<'_, Matrix> {
        self.0.value.borrow()
    }

    /// Clone the current value out.
    pub fn value_clone(&self) -> Matrix {
        self.0.value.borrow().clone()
    }

    /// Borrow the accumulated gradient.
    pub fn grad(&self) -> Ref<'_, Matrix> {
        self.0.grad.borrow()
    }

    /// Overwrite the value in place (optimizer step, FGSM perturbation).
    /// Only meaningful on leaves; the new value must keep the shape.
    pub fn set_value(&self, m: Matrix) {
        let mut v = self.0.value.borrow_mut();
        assert_eq!(v.shape(), m.shape(), "set_value: shape change");
        *v = m;
    }

    /// Apply an in-place update to the value (e.g. `w -= lr * g`).
    pub fn update_value(&self, f: impl FnOnce(&mut Matrix)) {
        f(&mut self.0.value.borrow_mut());
    }

    /// Reset the gradient to zero (in place — no reallocation).
    pub fn zero_grad(&self) {
        self.0.grad.borrow_mut().data_mut().fill(0.0);
    }

    /// `(rows, cols)` of the value.
    pub fn shape(&self) -> (usize, usize) {
        self.0.value.borrow().shape()
    }

    /// Scalar value of a `1×1` var.
    pub fn scalar(&self) -> f32 {
        let v = self.0.value.borrow();
        assert_eq!(v.shape(), (1, 1), "scalar() on non-scalar var");
        v.get(0, 0)
    }

    /// Run reverse-mode differentiation from this `1×1` scalar node,
    /// accumulating into the gradients of every node in the graph.
    pub fn backward(&self) {
        assert_eq!(self.shape(), (1, 1), "backward() requires a scalar loss");
        let mut order: Vec<Var> = Vec::new();
        let mut visited: HashSet<u64> = HashSet::new();
        // Iterative post-order DFS (graphs can be thousands of nodes deep
        // for long LSTM chains; no recursion).
        let mut stack: Vec<(Var, bool)> = vec![(self.clone(), false)];
        while let Some((node, expanded)) = stack.pop() {
            if expanded {
                order.push(node);
                continue;
            }
            if !visited.insert(node.0.id) {
                continue;
            }
            stack.push((node.clone(), true));
            for p in &node.0.parents {
                if !visited.contains(&p.0.id) {
                    stack.push((p.clone(), false));
                }
            }
        }
        #[cfg(feature = "sanitize")]
        {
            let unique: HashSet<u64> = order.iter().map(|n| n.0.id).collect();
            assert_eq!(
                unique.len(),
                order.len(),
                "sanitize: backward() topological order visits a node more than once \
                 ({} entries, {} distinct ids)",
                order.len(),
                unique.len()
            );
        }
        {
            let mut g = self.0.grad.borrow_mut();
            let cur = g.get(0, 0);
            g.set(0, 0, cur + 1.0);
        }
        for node in order.iter().rev() {
            if let Some(f) = &node.0.backward {
                // Borrow, don't clone: backward fns only touch *parent*
                // grad cells, never this node's own (the DAG is acyclic
                // and the output var cannot be captured by its closure).
                let g = node.0.grad.borrow();
                #[cfg(feature = "sanitize")]
                sanitize::check_grad_shape(node.0.op, &g, &node.0.value.borrow());
                f(&g, &node.0.parents);
                #[cfg(feature = "sanitize")]
                for p in &node.0.parents {
                    sanitize::check_grad_shape(p.0.op, &p.0.grad.borrow(), &p.0.value.borrow());
                }
            }
        }
    }

    /// Build a custom differentiable operation. `backward` receives the
    /// output gradient and the parent handles and must accumulate into each
    /// parent's gradient (via [`Var::accumulate_grad`]). This is the
    /// extension point structured layers (e.g. the linear-chain CRF in
    /// saccs-tagger) use to supply hand-derived gradients.
    pub fn custom(
        value: Matrix,
        parents: Vec<Var>,
        backward: impl Fn(&Matrix, &[Var]) + 'static,
    ) -> Var {
        Var::from_op("custom", value, parents, Box::new(backward))
    }

    /// Add `delta` into this var's gradient (for custom-op backward fns).
    pub fn accumulate_grad(&self, delta: &Matrix) {
        accum(self, delta);
    }

    // ---- differentiable operations -------------------------------------

    /// Matrix product.
    pub fn matmul(&self, other: &Var) -> Var {
        let value = self.value().matmul(&other.value());
        Var::from_op(
            "matmul",
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g, parents| {
                // Parent values are still live at backward time (updates
                // happen only after the pass), so borrow instead of
                // cloning both operands into the closure.
                let da = g.matmul(&parents[1].value().transpose());
                accum(&parents[0], &da);
                let db = parents[0].value().transpose().matmul(g);
                accum(&parents[1], &db);
            }),
        )
    }

    /// Elementwise sum (same shape).
    pub fn add(&self, other: &Var) -> Var {
        let value = self.value().add(&other.value());
        Var::from_op(
            "add",
            value,
            vec![self.clone(), other.clone()],
            Box::new(|g, parents| {
                accum(&parents[0], g);
                accum(&parents[1], g);
            }),
        )
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Var) -> Var {
        let value = self.value().sub(&other.value());
        Var::from_op(
            "sub",
            value,
            vec![self.clone(), other.clone()],
            Box::new(|g, parents| {
                accum(&parents[0], g);
                accum_scaled(&parents[1], g, -1.0);
            }),
        )
    }

    /// Add a `1×n` row vector to every row of `self`.
    pub fn add_row_broadcast(&self, row: &Var) -> Var {
        let value = self.value().add_row_broadcast(&row.value());
        Var::from_op(
            "add_row_broadcast",
            value,
            vec![self.clone(), row.clone()],
            Box::new(|g, parents| {
                accum(&parents[0], g);
                accum(&parents[1], &g.sum_rows());
            }),
        )
    }

    /// Multiply every row of `self` elementwise by a `1×n` row vector.
    pub fn mul_row_broadcast(&self, row: &Var) -> Var {
        let mut value = self.value().clone();
        {
            let r = row.value();
            assert_eq!(
                r.rows(),
                1,
                "mul_row_broadcast: operand must be a row vector"
            );
            assert_eq!(r.cols(), value.cols(), "mul_row_broadcast: column mismatch");
            for i in 0..value.rows() {
                for (v, &w) in value.row_mut(i).iter_mut().zip(r.data()) {
                    *v *= w;
                }
            }
        }
        Var::from_op(
            "mul_row_broadcast",
            value,
            vec![self.clone(), row.clone()],
            Box::new(move |g, parents| {
                let mut dx = g.clone();
                {
                    let r = parents[1].value();
                    for i in 0..dx.rows() {
                        for (v, &w) in dx.row_mut(i).iter_mut().zip(r.data()) {
                            *v *= w;
                        }
                    }
                }
                accum(&parents[0], &dx);
                let dr = g.hadamard(&parents[0].value()).sum_rows();
                accum(&parents[1], &dr);
            }),
        )
    }

    /// Hadamard product (same shape).
    pub fn hadamard(&self, other: &Var) -> Var {
        let value = self.value().hadamard(&other.value());
        Var::from_op(
            "hadamard",
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g, parents| {
                let da = g.hadamard(&parents[1].value());
                accum(&parents[0], &da);
                let db = g.hadamard(&parents[0].value());
                accum(&parents[1], &db);
            }),
        )
    }

    /// Scalar multiple.
    pub fn scale(&self, alpha: f32) -> Var {
        let value = self.value().scale(alpha);
        Var::from_op(
            "scale",
            value,
            vec![self.clone()],
            Box::new(move |g, parents| accum_scaled(&parents[0], g, alpha)),
        )
    }

    /// Elementwise `tanh`.
    pub fn tanh(&self) -> Var {
        let y = self.value().map(f32::tanh);
        let y_c = y.clone();
        Var::from_op(
            "tanh",
            y,
            vec![self.clone()],
            Box::new(move |g, parents| {
                accum(&parents[0], &g.hadamard(&y_c.map(|v| 1.0 - v * v)));
            }),
        )
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        let y = self.value().map(|v| 1.0 / (1.0 + (-v).exp()));
        let y_c = y.clone();
        Var::from_op(
            "sigmoid",
            y,
            vec![self.clone()],
            Box::new(move |g, parents| {
                accum(&parents[0], &g.hadamard(&y_c.map(|v| v * (1.0 - v))));
            }),
        )
    }

    /// Elementwise ReLU.
    pub fn relu(&self) -> Var {
        let y = self.value().map(|v| v.max(0.0));
        Var::from_op(
            "relu",
            y,
            vec![self.clone()],
            Box::new(move |g, parents| {
                // dx = g ⊙ 1[x > 0] — one fused pass over the input
                // borrow instead of two temporaries (`*d * 0.0` keeps
                // the signed-zero bits of the old hadamard-mask path).
                let mut dx = g.clone();
                for (d, &v) in dx.data_mut().iter_mut().zip(parents[0].value().data()) {
                    // Branch-free select keeps the loop packed; `g·1.0`
                    // and `g·0.0` reproduce the old hadamard-mask bits.
                    *d *= if v > 0.0 { 1.0 } else { 0.0 };
                }
                accum(&parents[0], &dx);
            }),
        )
    }

    /// Row-wise softmax.
    pub fn softmax_rows(&self) -> Var {
        let y = self.value().softmax_rows();
        let y_c = y.clone();
        Var::from_op(
            "softmax_rows",
            y,
            vec![self.clone()],
            Box::new(move |g, parents| {
                // dx_i = y_i ⊙ (g_i − ⟨g_i, y_i⟩)
                let mut dx = Matrix::zeros(y_c.rows(), y_c.cols());
                for r in 0..y_c.rows() {
                    let dot: f32 = g.row(r).iter().zip(y_c.row(r)).map(|(a, b)| a * b).sum();
                    for c in 0..y_c.cols() {
                        dx.set(r, c, y_c.get(r, c) * (g.get(r, c) - dot));
                    }
                }
                accum(&parents[0], &dx);
            }),
        )
    }

    /// Row-wise log-softmax.
    pub fn log_softmax_rows(&self) -> Var {
        let y = self.value().log_softmax_rows();
        let soft = y.map(f32::exp);
        Var::from_op(
            "log_softmax_rows",
            y,
            vec![self.clone()],
            Box::new(move |g, parents| {
                // dx_i = g_i − softmax_i · Σ_j g_ij
                let mut dx = g.clone();
                for r in 0..dx.rows() {
                    let gsum: f32 = g.row(r).iter().sum();
                    for c in 0..dx.cols() {
                        dx.set(r, c, g.get(r, c) - soft.get(r, c) * gsum);
                    }
                }
                accum(&parents[0], &dx);
            }),
        )
    }

    /// Transpose.
    pub fn transpose(&self) -> Var {
        let value = self.value().transpose();
        Var::from_op(
            "transpose",
            value,
            vec![self.clone()],
            Box::new(|g, parents| accum(&parents[0], &g.transpose())),
        )
    }

    /// Vertical concatenation.
    pub fn vstack(&self, other: &Var) -> Var {
        let top_rows = self.shape().0;
        let value = self.value().vstack(&other.value());
        Var::from_op(
            "vstack",
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g, parents| {
                accum(&parents[0], &g.slice_rows(0, top_rows));
                accum(&parents[1], &g.slice_rows(top_rows, g.rows()));
            }),
        )
    }

    /// Horizontal concatenation.
    pub fn hstack(&self, other: &Var) -> Var {
        let left_cols = self.shape().1;
        let value = self.value().hstack(&other.value());
        Var::from_op(
            "hstack",
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g, parents| {
                let (rows, cols) = g.shape();
                let mut gl = Matrix::zeros(rows, left_cols);
                let mut gr = Matrix::zeros(rows, cols - left_cols);
                for r in 0..rows {
                    gl.row_mut(r).copy_from_slice(&g.row(r)[..left_cols]);
                    gr.row_mut(r).copy_from_slice(&g.row(r)[left_cols..]);
                }
                accum(&parents[0], &gl);
                accum(&parents[1], &gr);
            }),
        )
    }

    /// Rows `start..end` as a new var (gradient scatters back).
    pub fn slice_rows(&self, start: usize, end: usize) -> Var {
        let total = self.shape().0;
        let value = self.value().slice_rows(start, end);
        Var::from_op(
            "slice_rows",
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let mut dx = Matrix::zeros(total, g.cols());
                for (i, r) in (start..end).enumerate() {
                    dx.row_mut(r).copy_from_slice(g.row(i));
                }
                accum(&parents[0], &dx);
            }),
        )
    }

    /// Columns `start..end` as a new var (gradient scatters back).
    pub fn slice_cols(&self, start: usize, end: usize) -> Var {
        let (rows, total_cols) = self.shape();
        let mut value = Matrix::zeros(rows, end - start);
        {
            let src = self.value();
            for r in 0..rows {
                value.row_mut(r).copy_from_slice(&src.row(r)[start..end]);
            }
        }
        Var::from_op(
            "slice_cols",
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let mut dx = Matrix::zeros(rows, total_cols);
                for r in 0..rows {
                    dx.row_mut(r)[start..end].copy_from_slice(g.row(r));
                }
                accum(&parents[0], &dx);
            }),
        )
    }

    /// Gather rows by index: `out[t] = self[ids[t]]`. This is the embedding
    /// lookup; gradients scatter-add into the selected rows.
    pub fn gather_rows(&self, ids: &[usize]) -> Var {
        let (rows, cols) = self.shape();
        let ids: Vec<usize> = ids.to_vec();
        for &i in &ids {
            debug_assert!(i < rows, "gather_rows: id {i} out of {rows}");
        }
        let mut value = Matrix::zeros(ids.len(), cols);
        {
            // Borrow the source (it can be the whole embedding table —
            // cloning it per lookup dominated the old forward cost).
            let src = self.value();
            for (t, &i) in ids.iter().enumerate() {
                value.row_mut(t).copy_from_slice(src.row(i));
            }
        }
        Var::from_op(
            "gather_rows",
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                let mut dx = Matrix::zeros(rows, cols);
                for (t, &i) in ids.iter().enumerate() {
                    for (d, &gv) in dx.row_mut(i).iter_mut().zip(g.row(t)) {
                        *d += gv;
                    }
                }
                accum(&parents[0], &dx);
            }),
        )
    }

    /// Sum of all entries, as a `1×1` var.
    pub fn sum(&self) -> Var {
        let (rows, cols) = self.shape();
        let value = Matrix::from_vec(1, 1, vec![self.value().sum()]);
        Var::from_op(
            "sum",
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                accum(&parents[0], &Matrix::full(rows, cols, g.get(0, 0)));
            }),
        )
    }

    /// Mean of all entries, as a `1×1` var.
    pub fn mean(&self) -> Var {
        let n = {
            let v = self.value();
            v.len() as f32
        };
        self.sum().scale(1.0 / n)
    }

    /// Row-wise layer normalization (no learned gain/bias; compose with
    /// [`Var::mul_row_broadcast`] / [`Var::add_row_broadcast`] for those).
    #[allow(clippy::needless_range_loop)] // parallel indexing of x/y/sigmas
    pub fn layer_norm_rows(&self, eps: f32) -> Var {
        let (rows, cols) = self.shape();
        let mut y = Matrix::zeros(rows, cols);
        let mut sigmas = vec![0.0f32; rows];
        {
            let x = self.value();
            for r in 0..rows {
                let row = x.row(r);
                let mu = row.iter().sum::<f32>() / cols as f32;
                let var = row.iter().map(|v| (v - mu) * (v - mu)).sum::<f32>() / cols as f32;
                let sigma = (var + eps).sqrt();
                sigmas[r] = sigma;
                for (c, &v) in row.iter().enumerate() {
                    y.set(r, c, (v - mu) / sigma);
                }
            }
        }
        let y_c = y.clone();
        Var::from_op(
            "layer_norm_rows",
            y,
            vec![self.clone()],
            Box::new(move |g, parents| {
                // dx = (1/σ) (g − mean(g) − y · mean(g ⊙ y)), per row.
                let mut dx = Matrix::zeros(rows, cols);
                for r in 0..rows {
                    let gr = g.row(r);
                    let yr = y_c.row(r);
                    let gmean = gr.iter().sum::<f32>() / cols as f32;
                    let gymean = gr.iter().zip(yr).map(|(a, b)| a * b).sum::<f32>() / cols as f32;
                    for c in 0..cols {
                        dx.set(r, c, (gr[c] - gmean - yr[c] * gymean) / sigmas[r]);
                    }
                }
                accum(&parents[0], &dx);
            }),
        )
    }

    /// Inverted dropout with keep-scaling; `mask` entries are 0 or 1.
    /// The caller samples the mask so training stays deterministic under a
    /// seeded RNG (see [`crate::layers::Dropout`]).
    pub fn dropout_with_mask(&self, mask: &Matrix, keep: f32) -> Var {
        assert!(keep > 0.0 && keep <= 1.0);
        let m = mask.clone();
        let value = self.value().hadamard(&m).scale(1.0 / keep);
        Var::from_op(
            "dropout_with_mask",
            value,
            vec![self.clone()],
            Box::new(move |g, parents| {
                accum(&parents[0], &g.hadamard(&m).scale(1.0 / keep));
            }),
        )
    }

    /// Mean cross-entropy of row-logits against integer targets:
    /// `−(1/T) Σ_t log softmax(logits_t)[target_t]`, as a `1×1` var.
    pub fn cross_entropy(&self, targets: &[usize]) -> Var {
        let (rows, cols) = self.shape();
        assert_eq!(rows, targets.len(), "cross_entropy: target length mismatch");
        let ls = self.value().log_softmax_rows();
        let mut loss = 0.0;
        for (t, &y) in targets.iter().enumerate() {
            debug_assert!(y < cols, "cross_entropy: target {y} out of {cols}");
            loss -= ls.get(t, y);
        }
        loss /= rows as f32;
        let soft = ls.map(f32::exp);
        let targets: Vec<usize> = targets.to_vec();
        Var::from_op(
            "cross_entropy",
            Matrix::from_vec(1, 1, vec![loss]),
            vec![self.clone()],
            Box::new(move |g, parents| {
                let scale = g.get(0, 0) / rows as f32;
                let mut dx = soft.clone();
                for (t, &y) in targets.iter().enumerate() {
                    dx.set(t, y, dx.get(t, y) - 1.0);
                }
                accum(&parents[0], &dx.scale(scale));
            }),
        )
    }

    /// Binary cross-entropy of a `1×1` probability against a 0/1 label.
    pub fn binary_cross_entropy(&self, label: f32) -> Var {
        let p = self.scalar().clamp(1e-6, 1.0 - 1e-6);
        let loss = -(label * p.ln() + (1.0 - label) * (1.0 - p).ln());
        Var::from_op(
            "binary_cross_entropy",
            Matrix::from_vec(1, 1, vec![loss]),
            vec![self.clone()],
            Box::new(move |g, parents| {
                let d = (-label / p + (1.0 - label) / (1.0 - p)) * g.get(0, 0);
                accum(&parents[0], &Matrix::from_vec(1, 1, vec![d]));
            }),
        )
    }
}

/// Runtime numeric sanitizer, compiled in only with the `sanitize`
/// feature. Catches the two bug classes that otherwise surface as silent
/// training divergence or a far-away index panic: non-finite op outputs
/// (named at the op that produced them) and gradient/value shape drift
/// (custom backward fns accumulating into the wrong parent).
#[cfg(feature = "sanitize")]
mod sanitize {
    use super::Var;
    use crate::matrix::Matrix;

    /// Panic if `value` holds a NaN/Inf, naming the op and parent shapes.
    pub(super) fn check_op_output(op: &'static str, value: &Matrix, parents: &[Var]) {
        let Some(bad) = first_non_finite(value) else {
            return;
        };
        let (r, c, v) = bad;
        let (rows, cols) = value.shape();
        let parent_shapes = parents
            .iter()
            .map(|p| {
                let (pr, pc) = p.shape();
                format!("{pr}\u{d7}{pc}")
            })
            .collect::<Vec<_>>()
            .join(", ");
        panic!(
            "sanitize: op `{op}` produced {v} at ({r}, {c}) of its \
             {rows}\u{d7}{cols} output; parent shapes: [{parent_shapes}]"
        );
    }

    /// Panic if a gradient's shape has drifted from its value's shape.
    pub(super) fn check_grad_shape(op: &'static str, grad: &Matrix, value: &Matrix) {
        let (gr, gc) = grad.shape();
        let (vr, vc) = value.shape();
        assert!(
            (gr, gc) == (vr, vc),
            "sanitize: op `{op}` carries a {gr}\u{d7}{gc} gradient for a \
             {vr}\u{d7}{vc} value"
        );
    }

    fn first_non_finite(m: &Matrix) -> Option<(usize, usize, f32)> {
        let (_, cols) = m.shape();
        m.data()
            .iter()
            .position(|v| !v.is_finite())
            .map(|i| (i / cols, i % cols, m.data()[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Finite-difference gradient check: perturb every entry of `leaf`,
    /// re-run `f`, and compare against the autograd gradient.
    fn check_grad(leaf: &Var, f: impl Fn() -> Var, tol: f32) {
        let loss = f();
        loss.backward();
        let analytic = leaf.grad().clone();
        let eps = 1e-3f32;
        let base = leaf.value_clone();
        for r in 0..base.rows() {
            for c in 0..base.cols() {
                let mut plus = base.clone();
                plus.set(r, c, base.get(r, c) + eps);
                leaf.set_value(plus);
                let lp = f().scalar();
                let mut minus = base.clone();
                minus.set(r, c, base.get(r, c) - eps);
                leaf.set_value(minus);
                let lm = f().scalar();
                leaf.set_value(base.clone());
                let numeric = (lp - lm) / (2.0 * eps);
                let a = analytic.get(r, c);
                assert!(
                    (a - numeric).abs() < tol * (1.0 + numeric.abs()),
                    "grad mismatch at ({r},{c}): analytic={a} numeric={numeric}"
                );
            }
        }
    }

    #[test]
    fn grad_of_matmul_chain() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = Var::leaf(Matrix::uniform(3, 2, 1.0, &mut rng));
        let x = Var::leaf(Matrix::uniform(2, 3, 1.0, &mut rng));
        check_grad(&w, || x.matmul(&w).tanh().sum(), 1e-2);
        w.zero_grad();
        x.zero_grad();
        check_grad(&x, || x.matmul(&w).tanh().sum(), 1e-2);
    }

    #[test]
    fn grad_of_softmax_cross_entropy() {
        let mut rng = StdRng::seed_from_u64(2);
        let logits = Var::leaf(Matrix::uniform(4, 3, 2.0, &mut rng));
        check_grad(&logits, || logits.cross_entropy(&[0, 2, 1, 1]), 1e-2);
    }

    #[test]
    fn grad_of_layer_norm() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Var::leaf(Matrix::uniform(2, 5, 1.0, &mut rng));
        check_grad(
            &x,
            || {
                x.layer_norm_rows(1e-5)
                    .hadamard(&x.layer_norm_rows(1e-5))
                    .sum()
            },
            2e-2,
        );
    }

    #[test]
    fn grad_of_sigmoid_hadamard() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = Var::leaf(Matrix::uniform(2, 3, 1.5, &mut rng));
        let y = Var::leaf(Matrix::uniform(2, 3, 1.5, &mut rng));
        check_grad(&x, || x.sigmoid().hadamard(&y.tanh()).sum(), 1e-2);
    }

    #[test]
    fn grad_of_broadcast_ops() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Var::leaf(Matrix::uniform(3, 4, 1.0, &mut rng));
        let b = Var::leaf(Matrix::uniform(1, 4, 1.0, &mut rng));
        check_grad(&b, || x.add_row_broadcast(&b).relu().sum(), 1e-2);
        b.zero_grad();
        x.zero_grad();
        check_grad(&b, || x.mul_row_broadcast(&b).sum(), 1e-2);
    }

    #[test]
    fn grad_of_gather_rows() {
        let mut rng = StdRng::seed_from_u64(6);
        let emb = Var::leaf(Matrix::uniform(5, 3, 1.0, &mut rng));
        // Repeated index 2 checks scatter-add accumulation.
        check_grad(&emb, || emb.gather_rows(&[2, 0, 2]).tanh().sum(), 1e-2);
    }

    #[test]
    fn grad_of_slices_and_stacks() {
        let mut rng = StdRng::seed_from_u64(7);
        let x = Var::leaf(Matrix::uniform(4, 4, 1.0, &mut rng));
        check_grad(
            &x,
            || {
                let top = x.slice_rows(0, 2);
                let left = x.slice_cols(0, 2);
                top.matmul(&left).sum()
            },
            2e-2,
        );
        x.zero_grad();
        check_grad(
            &x,
            || {
                let a = x.slice_rows(0, 2);
                let b = x.slice_rows(2, 4);
                a.hstack(&b).tanh().sum()
            },
            1e-2,
        );
        x.zero_grad();
        check_grad(&x, || x.vstack(&x).sigmoid().sum(), 1e-2);
    }

    #[test]
    fn grad_of_log_softmax_and_softmax() {
        let mut rng = StdRng::seed_from_u64(8);
        let x = Var::leaf(Matrix::uniform(2, 4, 2.0, &mut rng));
        let w = Matrix::uniform(2, 4, 1.0, &mut rng);
        let (xc, wc) = (x.clone(), w.clone());
        check_grad(
            &x,
            move || xc.log_softmax_rows().hadamard(&Var::leaf(wc.clone())).sum(),
            1e-2,
        );
        // fresh leaf for the second check
        let x = Var::leaf(Matrix::uniform(2, 4, 2.0, &mut rng));
        let xc = x.clone();
        check_grad(
            &x,
            move || xc.softmax_rows().hadamard(&Var::leaf(w.clone())).sum(),
            1e-2,
        );
    }

    #[test]
    fn grad_of_binary_cross_entropy() {
        let p = Var::leaf(Matrix::from_vec(1, 1, vec![0.3]));
        check_grad(&p, || p.binary_cross_entropy(1.0), 1e-2);
        p.zero_grad();
        check_grad(&p, || p.binary_cross_entropy(0.0), 1e-2);
    }

    #[test]
    fn shared_subexpression_accumulates() {
        // loss = sum(x ⊙ x) → d/dx = 2x
        let x = Var::leaf(Matrix::from_vec(1, 3, vec![1.0, -2.0, 3.0]));
        x.hadamard(&x).sum().backward();
        let g = x.grad().clone();
        assert_eq!(g.data(), &[2.0, -4.0, 6.0]);
    }

    #[test]
    fn grad_accumulates_across_backward_calls() {
        let x = Var::leaf(Matrix::from_vec(1, 1, vec![2.0]));
        x.scale(3.0).sum().backward();
        x.scale(3.0).sum().backward();
        assert_eq!(x.grad().get(0, 0), 6.0);
        x.zero_grad();
        assert_eq!(x.grad().get(0, 0), 0.0);
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        let x = Var::leaf(Matrix::from_vec(1, 1, vec![0.5]));
        let mut y = x.clone();
        for _ in 0..5000 {
            y = y.scale(1.0);
        }
        y.sum().backward();
        assert_eq!(x.grad().get(0, 0), 1.0);
    }

    #[test]
    fn dropout_mask_scales_and_blocks() {
        let x = Var::leaf(Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]));
        let mask = Matrix::from_vec(1, 4, vec![1.0, 0.0, 1.0, 0.0]);
        let y = x.dropout_with_mask(&mask, 0.5);
        assert_eq!(y.value().data(), &[2.0, 0.0, 6.0, 0.0]);
        y.sum().backward();
        assert_eq!(x.grad().data(), &[2.0, 0.0, 2.0, 0.0]);
    }
}

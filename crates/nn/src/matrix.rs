//! Dense row-major `f32` matrices.
//!
//! The raw numeric workhorse under the autograd engine. Vectors are `1×n`
//! matrices; a token sequence of length `T` embedded in `d` dimensions is a
//! `T×d` matrix. All shapes are checked with assertions — shape bugs are
//! programming errors, not recoverable conditions.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with `v`.
    pub fn full(rows: usize, cols: usize, v: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![v; rows * cols],
        }
    }

    /// Build from a row-major data vector; panics on length mismatch.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// A `1×n` row vector.
    pub fn row_vector(data: Vec<f32>) -> Self {
        Matrix {
            rows: 1,
            cols: data.len(),
            data,
        }
    }

    /// Uniform Xavier/Glorot initialization over `(-b, b)` with
    /// `b = sqrt(6 / (fan_in + fan_out))`.
    pub fn xavier<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Uniform init over `(-bound, bound)`.
    pub fn uniform<R: Rng>(rows: usize, cols: usize, bound: f32, rng: &mut R) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Matrix { rows, cols, data }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }
    pub fn cols(&self) -> usize {
        self.cols
    }
    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }
    pub fn len(&self) -> usize {
        self.data.len()
    }
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
    pub fn data(&self) -> &[f32] {
        &self.data
    }
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Bounds check behind the `sanitize` feature: release builds of a
    /// non-square matrix would otherwise *silently* read the wrong cell
    /// whenever `c < rows·cols/cols` holds but `c ≥ cols` (the flat
    /// index stays in range). Sanitize builds panic naming the index
    /// and shape; default builds keep the debug-only check.
    #[cfg(feature = "sanitize")]
    #[inline]
    fn check_bounds(&self, r: usize, c: usize, op: &str) {
        assert!(
            r < self.rows && c < self.cols,
            "{op}: index ({r}, {c}) out of bounds for {}\u{d7}{} matrix",
            self.rows,
            self.cols
        );
    }

    #[cfg(not(feature = "sanitize"))]
    #[inline(always)]
    fn check_bounds(&self, r: usize, c: usize, _op: &str) {
        debug_assert!(r < self.rows && c < self.cols);
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.check_bounds(r, c, "get");
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.check_bounds(r, c, "set");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self · other`; `(m×k) · (k×n) = (m×n)`.
    ///
    /// Dispatches to the cache-blocked SIMD kernel ([`crate::kernel`])
    /// and fans row blocks out across the `saccs-rt` pool for large
    /// shapes; results are bitwise identical at every thread count.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        self.matmul_with_threads(other, saccs_rt::threads())
    }

    /// [`Matrix::matmul`] with an explicit fan-out width (test/bench
    /// hook — the cross-thread-count determinism suite compares widths
    /// inside one process without touching the global pool override).
    pub fn matmul_with_threads(&self, other: &Matrix, width: usize) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}×{} · {}×{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, n) = (self.rows, other.cols);
        let mut out = Matrix::zeros(m, n);
        crate::kernel::matmul_into(
            &self.data,
            &other.data,
            m,
            self.cols,
            n,
            &mut out.data,
            width.max(1),
        );
        out
    }

    /// The pre-kernel serial matmul (scalar i-k-j with a zero-skip
    /// branch), kept as the bench baseline and as an independent oracle
    /// for the kernel equivalence tests.
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}×{} · {}×{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, n) = (self.rows, other.cols);
        let mut out = Matrix::zeros(m, n);
        crate::kernel::reference_zero_skip_into(
            &self.data,
            &other.data,
            m,
            self.cols,
            n,
            &mut out.data,
        );
        out
    }

    /// Transpose (blocked: 32×32 tiles keep both the read and the
    /// write side within a few cache lines, where the naive loop
    /// strides the destination by `rows` on every element).
    pub fn transpose(&self) -> Matrix {
        const TILE: usize = 32;
        let mut out = Matrix::zeros(self.cols, self.rows);
        for rb in (0..self.rows).step_by(TILE) {
            let r_hi = (rb + TILE).min(self.rows);
            for cb in (0..self.cols).step_by(TILE) {
                let c_hi = (cb + TILE).min(self.cols);
                for r in rb..r_hi {
                    for c in cb..c_hi {
                        out.data[c * self.rows + r] = self.data[r * self.cols + c];
                    }
                }
            }
        }
        out
    }

    /// Elementwise sum; shapes must match.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.shape(),
            other.shape(),
            "add: {}\u{d7}{} + {}\u{d7}{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// `self += other`, in place.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "add_assign: {}\u{d7}{} += {}\u{d7}{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += alpha * other`, in place (axpy).
    pub fn add_scaled(&mut self, other: &Matrix, alpha: f32) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "add_scaled: {}\u{d7}{} += \u{3b1}\u{b7}{}\u{d7}{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.shape(),
            other.shape(),
            "sub: {}\u{d7}{} - {}\u{d7}{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Hadamard (elementwise) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.shape(),
            other.shape(),
            "hadamard: {}\u{d7}{} \u{2218} {}\u{d7}{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Scalar multiple.
    pub fn scale(&self, alpha: f32) -> Matrix {
        let data = self.data.iter().map(|a| a * alpha).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Apply `f` elementwise.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        let data = self.data.iter().map(|&a| f(a)).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Add a `1×cols` row vector to every row (broadcast).
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        assert_eq!(
            row.rows, 1,
            "broadcast operand must be a row vector, got {}\u{d7}{}",
            row.rows, row.cols
        );
        assert_eq!(
            row.cols, self.cols,
            "broadcast: 1\u{d7}{} row against {}\u{d7}{}",
            row.cols, self.rows, self.cols
        );
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(&row.data) {
                *o += b;
            }
        }
        out
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Column-wise sum, producing a `1×cols` row vector.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for (o, &v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// L∞ norm (max absolute entry); 0 for empty matrices.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Vertically stack rows of `self` above rows of `other`.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "vstack: {}\u{d7}{} over {}\u{d7}{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Horizontally concatenate (same row count).
    pub fn hstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "hstack: {}\u{d7}{} beside {}\u{d7}{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Matrix {
            rows: self.rows,
            cols,
            data,
        }
    }

    /// Copy of rows `range`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(
            start <= end && end <= self.rows,
            "slice_rows: [{start}, {end}) of {}\u{d7}{}",
            self.rows,
            self.cols
        );
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Row-wise softmax (numerically stable).
    pub fn softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        out
    }

    /// Row-wise log-softmax (numerically stable).
    pub fn log_softmax_rows(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            let max = row.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
            let lse = max + row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln();
            for v in row.iter_mut() {
                *v -= lse;
            }
        }
        out
    }
}

/// Numerically stable `log(sum(exp(xs)))`.
pub fn log_sum_exp(xs: &[f32]) -> f32 {
    let max = xs.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v));
    if max == f32::NEG_INFINITY {
        return f32::NEG_INFINITY;
    }
    max + xs.iter().map(|&v| (v - max).exp()).sum::<f32>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Matrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn transpose_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.data(), &[1., 4., 2., 5., 3., 6.]);
        // Shapes straddling the 32-wide tile boundary.
        let big = Matrix::from_vec(33, 65, (0..33 * 65).map(|i| i as f32).collect());
        let bt = big.transpose();
        for r in 0..33 {
            for c in 0..65 {
                assert_eq!(bt.get(c, r), big.get(r, c), "({r}, {c})");
            }
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Matrix::from_vec(2, 3, vec![1., 2., 3., -1., 0., 1.]);
        let s = a.softmax_rows();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Monotone in the logits.
        assert!(s.get(0, 2) > s.get(0, 1));
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let a = Matrix::from_vec(1, 4, vec![0.5, -1.0, 2.0, 0.0]);
        let ls = a.log_softmax_rows();
        let s = a.softmax_rows();
        for c in 0..4 {
            assert!((ls.get(0, c) - s.get(0, c).ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn log_softmax_is_stable_for_large_inputs() {
        let a = Matrix::from_vec(1, 2, vec![1000.0, 1000.0]);
        let ls = a.log_softmax_rows();
        assert!((ls.get(0, 0) - (-std::f32::consts::LN_2)).abs() < 1e-4);
    }

    #[test]
    fn broadcast_adds_row() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::row_vector(vec![1., 2., 3.]);
        let c = a.add_row_broadcast(&b);
        assert_eq!(c.row(0), &[1., 2., 3.]);
        assert_eq!(c.row(1), &[1., 2., 3.]);
    }

    #[test]
    fn stack_and_slice() {
        let a = Matrix::from_vec(1, 2, vec![1., 2.]);
        let b = Matrix::from_vec(2, 2, vec![3., 4., 5., 6.]);
        let v = a.vstack(&b);
        assert_eq!(v.shape(), (3, 2));
        assert_eq!(v.slice_rows(1, 3), b);
        let h = a.hstack(&Matrix::from_vec(1, 1, vec![9.]));
        assert_eq!(h.data(), &[1., 2., 9.]);
    }

    #[test]
    fn log_sum_exp_stable() {
        assert!((log_sum_exp(&[0.0, 0.0]) - std::f32::consts::LN_2).abs() < 1e-6);
        let big = log_sum_exp(&[1000.0, 1000.0]);
        assert!((big - (1000.0 + std::f32::consts::LN_2)).abs() < 1e-3);
        assert_eq!(log_sum_exp(&[]), f32::NEG_INFINITY);
    }

    #[test]
    fn xavier_is_bounded_and_seeded() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = Matrix::xavier(10, 10, &mut rng);
        let bound = (6.0 / 20.0f32).sqrt();
        assert!(m.data().iter().all(|v| v.abs() < bound));
        let mut rng2 = StdRng::seed_from_u64(7);
        assert_eq!(m, Matrix::xavier(10, 10, &mut rng2));
    }

    proptest! {
        #[test]
        fn prop_matmul_identity(r in 1usize..5, c in 1usize..5, seed in 0u64..100) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Matrix::uniform(r, c, 1.0, &mut rng);
            let mut id = Matrix::zeros(c, c);
            for i in 0..c { id.set(i, i, 1.0); }
            let out = a.matmul(&id);
            for (x, y) in out.data().iter().zip(a.data()) {
                prop_assert!((x - y).abs() < 1e-6);
            }
        }

        #[test]
        fn prop_matmul_transpose_identity(m in 1usize..4, k in 1usize..4, n in 1usize..4, seed in 0u64..50) {
            // (A·B)ᵀ = Bᵀ·Aᵀ
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Matrix::uniform(m, k, 1.0, &mut rng);
            let b = Matrix::uniform(k, n, 1.0, &mut rng);
            let lhs = a.matmul(&b).transpose();
            let rhs = b.transpose().matmul(&a.transpose());
            for (x, y) in lhs.data().iter().zip(rhs.data()) {
                prop_assert!((x - y).abs() < 1e-5);
            }
        }

        #[test]
        fn prop_transpose_round_trips(r in 1usize..70, c in 1usize..70, seed in 0u64..20) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Matrix::uniform(r, c, 3.0, &mut rng);
            let t = a.transpose();
            prop_assert_eq!(t.shape(), (c, r));
            prop_assert_eq!(&t.transpose(), &a);
            // Spot-check the mapping itself, not just the involution.
            prop_assert_eq!(t.get(c - 1, r - 1), a.get(r - 1, c - 1));
            prop_assert_eq!(t.get(0, r - 1), a.get(r - 1, 0));
        }

        #[test]
        fn prop_blocked_matmul_matches_naive(m in 1usize..40, k in 1usize..40, n in 1usize..40, seed in 0u64..20) {
            // The blocked/SIMD kernel agrees with the legacy serial
            // kernel to fp tolerance (FMA changes rounding, not math).
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Matrix::uniform(m, k, 1.0, &mut rng);
            let b = Matrix::uniform(k, n, 1.0, &mut rng);
            let fast = a.matmul(&b);
            let slow = a.matmul_naive(&b);
            for (x, y) in fast.data().iter().zip(slow.data()) {
                prop_assert!((x - y).abs() < 1e-4, "{x} vs {y}");
            }
        }

        #[test]
        fn prop_add_commutes(r in 1usize..4, c in 1usize..4, seed in 0u64..50) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Matrix::uniform(r, c, 2.0, &mut rng);
            let b = Matrix::uniform(r, c, 2.0, &mut rng);
            prop_assert_eq!(a.add(&b), b.add(&a));
        }

        #[test]
        fn prop_softmax_rows_are_distributions(r in 1usize..4, c in 1usize..6, seed in 0u64..50) {
            let mut rng = StdRng::seed_from_u64(seed);
            let a = Matrix::uniform(r, c, 5.0, &mut rng);
            let s = a.softmax_rows();
            for i in 0..r {
                let sum: f32 = s.row(i).iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-4);
                prop_assert!(s.row(i).iter().all(|&p| (0.0..=1.0).contains(&p)));
            }
        }
    }
}

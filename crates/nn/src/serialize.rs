//! Binary serialization of parameter states.
//!
//! A minimal, dependency-light codec for `Vec<Matrix>` snapshots (the
//! output of [`crate::layers::Layer::state`]), so trained models can be
//! persisted and reloaded without retraining. Format (little-endian):
//!
//! ```text
//! magic "SNN1" | u32 count | count × ( u32 rows | u32 cols | rows·cols × f32 )
//! ```

use crate::matrix::Matrix;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"SNN1";

/// Encoding/decoding errors.
#[derive(Debug, PartialEq, Eq)]
pub enum CodecError {
    BadMagic,
    Truncated,
    Oversized,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => write!(f, "not an SNN1 state snapshot"),
            CodecError::Truncated => write!(f, "snapshot is truncated"),
            CodecError::Oversized => write!(f, "snapshot declares an implausible tensor size"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Serialize a parameter state to bytes.
pub fn encode_state(state: &[Matrix]) -> Bytes {
    let total: usize = state.iter().map(|m| 8 + 4 * m.len()).sum();
    let mut buf = BytesMut::with_capacity(4 + 4 + total);
    buf.put_slice(MAGIC);
    buf.put_u32_le(state.len() as u32);
    for m in state {
        buf.put_u32_le(m.rows() as u32);
        buf.put_u32_le(m.cols() as u32);
        for &v in m.data() {
            buf.put_f32_le(v);
        }
    }
    buf.freeze()
}

/// Deserialize a parameter state. Validates framing; NaNs and infinities
/// pass through (they are representable states, if unhealthy ones).
pub fn decode_state(mut bytes: &[u8]) -> Result<Vec<Matrix>, CodecError> {
    if bytes.len() < 4 || &bytes[..4] != MAGIC {
        return Err(CodecError::BadMagic);
    }
    if bytes.len() < 8 {
        return Err(CodecError::Truncated);
    }
    bytes.advance(4);
    let count = bytes.get_u32_le() as usize;
    let mut out = Vec::with_capacity(count.min(4096));
    for _ in 0..count {
        if bytes.remaining() < 8 {
            return Err(CodecError::Truncated);
        }
        let rows = bytes.get_u32_le() as usize;
        let cols = bytes.get_u32_le() as usize;
        let n = rows.checked_mul(cols).ok_or(CodecError::Oversized)?;
        if n > 64 * 1024 * 1024 {
            return Err(CodecError::Oversized);
        }
        if bytes.remaining() < 4 * n {
            return Err(CodecError::Truncated);
        }
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(bytes.get_f32_le());
        }
        out.push(Matrix::from_vec(rows, cols, data));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn roundtrip_preserves_every_bit() {
        let mut rng = StdRng::seed_from_u64(1);
        let state = vec![
            Matrix::uniform(3, 7, 2.0, &mut rng),
            Matrix::zeros(1, 1),
            Matrix::uniform(10, 2, 0.5, &mut rng),
        ];
        let bytes = encode_state(&state);
        let back = decode_state(&bytes).unwrap();
        assert_eq!(state, back);
    }

    #[test]
    fn empty_state_roundtrips() {
        let bytes = encode_state(&[]);
        assert_eq!(decode_state(&bytes).unwrap(), Vec::<Matrix>::new());
    }

    #[test]
    fn rejects_wrong_magic() {
        assert_eq!(
            decode_state(b"NOPE\x00\x00\x00\x00"),
            Err(CodecError::BadMagic)
        );
        assert_eq!(decode_state(b""), Err(CodecError::BadMagic));
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let state = vec![Matrix::full(4, 4, 1.5)];
        let bytes = encode_state(&state);
        for cut in 5..bytes.len() {
            let r = decode_state(&bytes[..cut]);
            assert!(r.is_err(), "accepted a snapshot cut at {cut}");
        }
    }

    #[test]
    fn rejects_absurd_sizes() {
        let mut buf = bytes::BytesMut::new();
        buf.put_slice(b"SNN1");
        buf.put_u32_le(1);
        buf.put_u32_le(u32::MAX);
        buf.put_u32_le(u32::MAX);
        assert_eq!(decode_state(&buf), Err(CodecError::Oversized));
    }

    #[test]
    fn layer_state_roundtrips_through_codec() {
        use crate::layers::{BiLstm, Layer};
        let mut rng = StdRng::seed_from_u64(9);
        let layer = BiLstm::new(4, 6, &mut rng);
        let bytes = encode_state(&layer.state());
        let restored = decode_state(&bytes).unwrap();
        // Perturb, then reload.
        for p in layer.params() {
            p.update_value(|v| *v = v.scale(3.0));
        }
        layer.load_state(&restored);
        assert_eq!(layer.state(), restored);
    }
}

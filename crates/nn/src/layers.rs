//! Neural layers composed from autograd [`Var`] operations.
//!
//! Everything the SACCS models need: [`Linear`], [`Embedding`], [`Lstm`] /
//! [`BiLstm`] (§4.1's encoder), [`MultiHeadSelfAttention`] (MiniBert's and
//! the pairing heuristic's attention, §5.1), learned [`LayerNorm`], and
//! seeded [`Dropout`]. Each layer exposes its parameters through
//! [`Layer::params`] for the optimizer and [`Layer::state`] /
//! [`Layer::load_state`] for serialization.

use crate::matrix::Matrix;
use crate::var::Var;
use rand::rngs::StdRng;
use rand::Rng;

/// Common layer interface: parameter access for optimizers and state
/// save/restore for serialization.
pub trait Layer {
    /// All trainable parameter vars, in a stable order.
    fn params(&self) -> Vec<Var>;

    /// Snapshot of all parameter values, matching [`Layer::params`] order.
    fn state(&self) -> Vec<Matrix> {
        self.params().iter().map(|p| p.value_clone()).collect()
    }

    /// Restore parameter values from a snapshot produced by [`Layer::state`].
    fn load_state(&self, state: &[Matrix]) {
        let params = self.params();
        assert_eq!(params.len(), state.len(), "load_state: wrong tensor count");
        for (p, m) in params.iter().zip(state) {
            p.set_value(m.clone());
        }
    }

    /// Zero all parameter gradients.
    fn zero_grad(&self) {
        for p in self.params() {
            p.zero_grad();
        }
    }
}

/// Fully connected layer `y = x·W + b`.
pub struct Linear {
    pub w: Var,
    pub b: Var,
}

impl Linear {
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        Linear {
            w: Var::leaf(Matrix::xavier(in_dim, out_dim, rng)),
            b: Var::leaf(Matrix::zeros(1, out_dim)),
        }
    }

    pub fn forward(&self, x: &Var) -> Var {
        x.matmul(&self.w).add_row_broadcast(&self.b)
    }
}

impl Layer for Linear {
    fn params(&self) -> Vec<Var> {
        vec![self.w.clone(), self.b.clone()]
    }
}

/// Token-id → dense-vector lookup table.
pub struct Embedding {
    pub table: Var,
}

impl Embedding {
    pub fn new(vocab: usize, dim: usize, rng: &mut StdRng) -> Self {
        // BERT-style small-std init keeps early softmaxes well-conditioned.
        Embedding {
            table: Var::leaf(Matrix::uniform(vocab, dim, 0.1, rng)),
        }
    }

    /// Look up a sequence of ids → `T×dim` var.
    pub fn forward(&self, ids: &[usize]) -> Var {
        self.table.gather_rows(ids)
    }
}

impl Layer for Embedding {
    fn params(&self) -> Vec<Var> {
        vec![self.table.clone()]
    }
}

/// A single-direction LSTM processing a `T×in_dim` sequence into `T×hidden`.
///
/// Gates are fused into one `in_dim×4h` input weight and one `h×4h`
/// recurrent weight, chunk order `[i, f, g, o]`. The forget-gate bias is
/// initialized to 1, the standard trick for trainable long dependencies.
pub struct Lstm {
    pub w: Var,
    pub u: Var,
    pub b: Var,
    hidden: usize,
}

impl Lstm {
    pub fn new(in_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        let mut b = Matrix::zeros(1, 4 * hidden);
        for c in hidden..2 * hidden {
            b.set(0, c, 1.0);
        }
        Lstm {
            w: Var::leaf(Matrix::xavier(in_dim, 4 * hidden, rng)),
            u: Var::leaf(Matrix::xavier(hidden, 4 * hidden, rng)),
            b: Var::leaf(b),
            hidden,
        }
    }

    pub fn hidden_dim(&self) -> usize {
        self.hidden
    }

    /// Run over the sequence, returning the `T×hidden` hidden states.
    /// `reverse` encodes right-to-left (the backward half of a BiLSTM).
    pub fn forward(&self, xs: &Var, reverse: bool) -> Var {
        let t_len = xs.shape().0;
        let h = self.hidden;
        let mut h_prev = Var::leaf(Matrix::zeros(1, h));
        let mut c_prev = Var::leaf(Matrix::zeros(1, h));
        let mut outs: Vec<Var> = Vec::with_capacity(t_len);
        let order: Vec<usize> = if reverse {
            (0..t_len).rev().collect()
        } else {
            (0..t_len).collect()
        };
        for &t in &order {
            let x_t = xs.slice_rows(t, t + 1);
            let gates = x_t
                .matmul(&self.w)
                .add(&h_prev.matmul(&self.u))
                .add_row_broadcast(&self.b);
            let i = gates.slice_cols(0, h).sigmoid();
            let f = gates.slice_cols(h, 2 * h).sigmoid();
            let g = gates.slice_cols(2 * h, 3 * h).tanh();
            let o = gates.slice_cols(3 * h, 4 * h).sigmoid();
            let c = f.hadamard(&c_prev).add(&i.hadamard(&g));
            let h_t = o.hadamard(&c.tanh());
            outs.push(h_t.clone());
            h_prev = h_t;
            c_prev = c;
        }
        if reverse {
            outs.reverse();
        }
        let mut seq = outs[0].clone();
        for o in &outs[1..] {
            seq = seq.vstack(o);
        }
        seq
    }
}

impl Layer for Lstm {
    fn params(&self) -> Vec<Var> {
        vec![self.w.clone(), self.u.clone(), self.b.clone()]
    }
}

/// Bidirectional LSTM: forward and backward passes concatenated, the
/// encoder of the paper's Figure 3 ("we encode the text sequence from both
/// left to right and right to left, then concatenate").
pub struct BiLstm {
    pub fwd: Lstm,
    pub bwd: Lstm,
}

impl BiLstm {
    pub fn new(in_dim: usize, hidden: usize, rng: &mut StdRng) -> Self {
        BiLstm {
            fwd: Lstm::new(in_dim, hidden, rng),
            bwd: Lstm::new(in_dim, hidden, rng),
        }
    }

    /// `T×in_dim` → `T×2·hidden`.
    pub fn forward(&self, xs: &Var) -> Var {
        self.fwd
            .forward(xs, false)
            .hstack(&self.bwd.forward(xs, true))
    }

    pub fn output_dim(&self) -> usize {
        2 * self.fwd.hidden_dim()
    }
}

impl Layer for BiLstm {
    fn params(&self) -> Vec<Var> {
        let mut p = self.fwd.params();
        p.extend(self.bwd.params());
        p
    }
}

/// Multi-head scaled-dot-product self-attention over a `T×dim` sequence.
///
/// Heads are materialized individually so callers (the pairing heuristic of
/// §5.1, Figure 5) can read per-head attention distributions after a
/// forward pass via [`MultiHeadSelfAttention::last_attention`].
pub struct MultiHeadSelfAttention {
    pub wq: Var,
    pub wk: Var,
    pub wv: Var,
    pub wo: Var,
    heads: usize,
    dim: usize,
    /// Per-head `T×T` attention matrices from the most recent forward.
    last_attention: std::cell::RefCell<Vec<Matrix>>,
}

impl MultiHeadSelfAttention {
    pub fn new(dim: usize, heads: usize, rng: &mut StdRng) -> Self {
        assert_eq!(dim % heads, 0, "dim must divide into heads");
        MultiHeadSelfAttention {
            wq: Var::leaf(Matrix::xavier(dim, dim, rng)),
            wk: Var::leaf(Matrix::xavier(dim, dim, rng)),
            wv: Var::leaf(Matrix::xavier(dim, dim, rng)),
            wo: Var::leaf(Matrix::xavier(dim, dim, rng)),
            heads,
            dim,
            last_attention: std::cell::RefCell::new(Vec::new()),
        }
    }

    pub fn heads(&self) -> usize {
        self.heads
    }

    /// `T×dim` → `T×dim`; records per-head attention matrices.
    pub fn forward(&self, xs: &Var) -> Var {
        let hd = self.dim / self.heads;
        let scale = 1.0 / (hd as f32).sqrt();
        let q = xs.matmul(&self.wq);
        let k = xs.matmul(&self.wk);
        let v = xs.matmul(&self.wv);
        let mut head_outs: Vec<Var> = Vec::with_capacity(self.heads);
        let mut atts: Vec<Matrix> = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let (s, e) = (h * hd, (h + 1) * hd);
            let qh = q.slice_cols(s, e);
            let kh = k.slice_cols(s, e);
            let vh = v.slice_cols(s, e);
            let att = qh.matmul(&kh.transpose()).scale(scale).softmax_rows();
            atts.push(att.value_clone());
            head_outs.push(att.matmul(&vh));
        }
        *self.last_attention.borrow_mut() = atts;
        let mut cat = head_outs[0].clone();
        for h in &head_outs[1..] {
            cat = cat.hstack(h);
        }
        cat.matmul(&self.wo)
    }

    /// The `T×T` attention matrix of head `h` from the last forward pass.
    pub fn last_attention(&self, h: usize) -> Matrix {
        self.last_attention.borrow()[h].clone()
    }
}

impl Layer for MultiHeadSelfAttention {
    fn params(&self) -> Vec<Var> {
        vec![
            self.wq.clone(),
            self.wk.clone(),
            self.wv.clone(),
            self.wo.clone(),
        ]
    }
}

/// Learned layer normalization: `γ ⊙ norm(x) + β` per row.
pub struct LayerNorm {
    pub gain: Var,
    pub bias: Var,
    eps: f32,
}

impl LayerNorm {
    pub fn new(dim: usize) -> Self {
        LayerNorm {
            gain: Var::leaf(Matrix::full(1, dim, 1.0)),
            bias: Var::leaf(Matrix::zeros(1, dim)),
            eps: 1e-5,
        }
    }

    pub fn forward(&self, x: &Var) -> Var {
        x.layer_norm_rows(self.eps)
            .mul_row_broadcast(&self.gain)
            .add_row_broadcast(&self.bias)
    }
}

impl Layer for LayerNorm {
    fn params(&self) -> Vec<Var> {
        vec![self.gain.clone(), self.bias.clone()]
    }
}

/// Inverted dropout; identity in eval mode. Masks are sampled from a caller
/// RNG so training is reproducible end to end.
pub struct Dropout {
    p: f32,
}

impl Dropout {
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p));
        Dropout { p }
    }

    pub fn forward(&self, x: &Var, train: bool, rng: &mut StdRng) -> Var {
        if !train || self.p == 0.0 {
            return x.clone();
        }
        let (rows, cols) = x.shape();
        let keep = 1.0 - self.p;
        let mask = Matrix::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|_| if rng.gen::<f32>() < keep { 1.0 } else { 0.0 })
                .collect(),
        );
        x.dropout_with_mask(&mask, keep)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn linear_shapes_and_bias() {
        let mut r = rng();
        let lin = Linear::new(4, 3, &mut r);
        let x = Var::leaf(Matrix::zeros(2, 4));
        let y = lin.forward(&x);
        assert_eq!(y.shape(), (2, 3));
        // Zero input → output equals bias rows.
        assert_eq!(y.value().row(0), lin.b.value().row(0));
    }

    #[test]
    fn linear_learns_identity_ish_mapping() {
        // Tiny regression sanity: y = 2x fit by SGD on a 1×1 linear layer.
        let mut r = rng();
        let lin = Linear::new(1, 1, &mut r);
        for _ in 0..300 {
            lin.zero_grad();
            let mut loss_acc = 0.0;
            for x_val in [-1.0f32, 0.5, 2.0] {
                let x = Var::leaf(Matrix::from_vec(1, 1, vec![x_val]));
                let pred = lin.forward(&x);
                let target = Var::leaf(Matrix::from_vec(1, 1, vec![2.0 * x_val]));
                let diff = pred.sub(&target);
                let loss = diff.hadamard(&diff).sum();
                loss.backward();
                loss_acc += loss.scalar();
            }
            for p in lin.params() {
                let g = p.grad().clone();
                p.update_value(|v| v.add_scaled(&g, -0.05));
            }
            if loss_acc < 1e-6 {
                break;
            }
        }
        assert!((lin.w.value().get(0, 0) - 2.0).abs() < 0.05);
        assert!(lin.b.value().get(0, 0).abs() < 0.05);
    }

    #[test]
    fn embedding_gathers_rows() {
        let mut r = rng();
        let emb = Embedding::new(10, 4, &mut r);
        let out = emb.forward(&[3, 3, 7]);
        assert_eq!(out.shape(), (3, 4));
        assert_eq!(out.value().row(0), out.value().row(1));
    }

    #[test]
    fn lstm_output_shape_and_direction() {
        let mut r = rng();
        let lstm = Lstm::new(3, 5, &mut r);
        let xs = Var::leaf(Matrix::uniform(4, 3, 1.0, &mut r));
        let fwd = lstm.forward(&xs, false);
        let bwd = lstm.forward(&xs, true);
        assert_eq!(fwd.shape(), (4, 5));
        assert_eq!(bwd.shape(), (4, 5));
        // Directions genuinely differ on asymmetric input.
        assert_ne!(fwd.value().row(0), bwd.value().row(0));
    }

    #[test]
    fn bilstm_concatenates() {
        let mut r = rng();
        let bi = BiLstm::new(3, 4, &mut r);
        let xs = Var::leaf(Matrix::uniform(5, 3, 1.0, &mut r));
        let out = bi.forward(&xs);
        assert_eq!(out.shape(), (5, 8));
        assert_eq!(bi.output_dim(), 8);
    }

    #[test]
    fn lstm_gradients_flow_to_all_params() {
        let mut r = rng();
        let lstm = Lstm::new(2, 3, &mut r);
        let xs = Var::leaf(Matrix::uniform(6, 2, 1.0, &mut r));
        lstm.forward(&xs, false).sum().backward();
        for p in lstm.params() {
            assert!(p.grad().max_abs() > 0.0, "a parameter received no gradient");
        }
        assert!(
            xs.grad().max_abs() > 0.0,
            "input received no gradient (FGSM needs this)"
        );
    }

    #[test]
    fn attention_rows_are_distributions() {
        let mut r = rng();
        let att = MultiHeadSelfAttention::new(8, 2, &mut r);
        let xs = Var::leaf(Matrix::uniform(5, 8, 1.0, &mut r));
        let out = att.forward(&xs);
        assert_eq!(out.shape(), (5, 8));
        for h in 0..2 {
            let a = att.last_attention(h);
            assert_eq!(a.shape(), (5, 5));
            for t in 0..5 {
                let s: f32 = a.row(t).iter().sum();
                assert!((s - 1.0).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn attention_gradients_flow() {
        let mut r = rng();
        let att = MultiHeadSelfAttention::new(4, 2, &mut r);
        let xs = Var::leaf(Matrix::uniform(3, 4, 1.0, &mut r));
        att.forward(&xs).sum().backward();
        for p in att.params() {
            assert!(p.grad().max_abs() > 0.0);
        }
    }

    #[test]
    fn attention_gradients_match_finite_differences() {
        // Compound check through the full attention stack (projections,
        // per-head softmax, concat, output projection).
        let mut r = rng();
        let att = MultiHeadSelfAttention::new(4, 2, &mut r);
        let x0 = Matrix::uniform(3, 4, 0.8, &mut r);
        let xs = Var::leaf(x0.clone());
        att.forward(&xs).sum().backward();
        let analytic = xs.grad().clone();
        let eps = 1e-3;
        for row in 0..3 {
            for col in 0..4 {
                let mut plus = x0.clone();
                plus.set(row, col, x0.get(row, col) + eps);
                let lp = att.forward(&Var::leaf(plus)).sum().scalar();
                let mut minus = x0.clone();
                minus.set(row, col, x0.get(row, col) - eps);
                let lm = att.forward(&Var::leaf(minus)).sum().scalar();
                let numeric = (lp - lm) / (2.0 * eps);
                let a = analytic.get(row, col);
                assert!(
                    (a - numeric).abs() < 2e-2 * (1.0 + numeric.abs()),
                    "attention grad mismatch at ({row},{col}): {a} vs {numeric}"
                );
            }
        }
    }

    #[test]
    fn layer_norm_normalizes_rows() {
        let ln = LayerNorm::new(4);
        let x = Var::leaf(Matrix::from_vec(1, 4, vec![1.0, 2.0, 3.0, 4.0]));
        let y = ln.forward(&x);
        let mean: f32 = y.value().row(0).iter().sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
    }

    #[test]
    fn dropout_eval_is_identity_and_train_masks() {
        let d = Dropout::new(0.5);
        let mut r = rng();
        let x = Var::leaf(Matrix::full(1, 100, 1.0));
        let eval = d.forward(&x, false, &mut r);
        assert_eq!(eval.value().clone(), x.value().clone());
        let train = d.forward(&x, true, &mut r);
        let zeros = train.value().data().iter().filter(|&&v| v == 0.0).count();
        assert!(zeros > 20 && zeros < 80, "mask rate off: {zeros} zeros");
        // Kept entries are scaled by 1/keep.
        assert!(train
            .value()
            .data()
            .iter()
            .all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn state_roundtrip_restores_outputs() {
        let mut r = rng();
        let bi = BiLstm::new(3, 4, &mut r);
        let xs = Var::leaf(Matrix::uniform(4, 3, 1.0, &mut r));
        let before = bi.forward(&xs).value_clone();
        let saved = bi.state();
        // Perturb, then restore.
        for p in bi.params() {
            p.update_value(|v| *v = v.scale(0.5));
        }
        assert_ne!(bi.forward(&xs).value_clone(), before);
        bi.load_state(&saved);
        assert_eq!(bi.forward(&xs).value_clone(), before);
    }
}

//! Optimizers: SGD with momentum and Adam.
//!
//! Optimizers hold their own per-parameter state keyed by position, so the
//! caller passes the same parameter list (same order) to every `step`.

use crate::matrix::Matrix;
use crate::var::Var;

/// Plain SGD with optional momentum and gradient clipping.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    clip: Option<f32>,
    velocity: Vec<Matrix>,
}

impl Sgd {
    pub fn new(lr: f32, momentum: f32) -> Self {
        Sgd {
            lr,
            momentum,
            clip: None,
            velocity: Vec::new(),
        }
    }

    /// Clip gradients elementwise to `[-c, c]` before applying.
    pub fn with_clip(mut self, c: f32) -> Self {
        self.clip = Some(c);
        self
    }

    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    pub fn step(&mut self, params: &[Var]) {
        if self.velocity.is_empty() {
            self.velocity = params
                .iter()
                .map(|p| Matrix::zeros(p.shape().0, p.shape().1))
                .collect();
        }
        assert_eq!(
            self.velocity.len(),
            params.len(),
            "parameter list changed size"
        );
        let lr = self.lr;
        let momentum = self.momentum;
        // `clamp(-∞, ∞)` is the identity (NaN included), so the no-clip
        // case shares the branch-free loop below.
        let (lo, hi) = match self.clip {
            Some(c) => (-c, c),
            None => (f32::NEG_INFINITY, f32::INFINITY),
        };
        for (p, v) in params.iter().zip(self.velocity.iter_mut()) {
            // One fused in-place, branch-free pass per parameter: the
            // per-element expressions are kept verbatim from the old
            // multi-temporary formulation (and SIMD min/max/mul/add are
            // bit-exact elementwise), so the update is bitwise identical.
            p.update_value(|val| {
                let g = p.grad();
                let w = val.data_mut();
                let n = w.len();
                let (vs, gd) = (&mut v.data_mut()[..n], &g.data()[..n]);
                if momentum > 0.0 {
                    for i in 0..n {
                        let gi = gd[i].clamp(lo, hi);
                        vs[i] = vs[i] * momentum + gi;
                        w[i] += -lr * vs[i];
                    }
                } else {
                    for i in 0..n {
                        let gi = gd[i].clamp(lo, hi);
                        w[i] += -lr * gi;
                    }
                }
            });
        }
    }
}

/// Adam (Kingma & Ba) with bias correction and optional gradient clipping.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    clip: Option<f32>,
    t: u32,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
}

impl Adam {
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip: None,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    pub fn with_clip(mut self, c: f32) -> Self {
        self.clip = Some(c);
        self
    }

    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    pub fn step(&mut self, params: &[Var]) {
        if self.m.is_empty() {
            self.m = params
                .iter()
                .map(|p| Matrix::zeros(p.shape().0, p.shape().1))
                .collect();
            self.v = self.m.clone();
        }
        assert_eq!(self.m.len(), params.len(), "parameter list changed size");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let lr = self.lr;
        let eps = self.eps;
        let (beta1, beta2) = (self.beta1, self.beta2);
        // `clamp(-∞, ∞)` is the identity (NaN included), so the no-clip
        // case shares the branch-free loop below.
        let (lo, hi) = match self.clip {
            Some(c) => (-c, c),
            None => (f32::NEG_INFINITY, f32::INFINITY),
        };
        for ((p, m), v) in params.iter().zip(self.m.iter_mut()).zip(self.v.iter_mut()) {
            // One fused in-place, branch-free pass instead of ~8
            // full-matrix temporaries per step — and, critically, a loop
            // shape LLVM turns into packed min/max/sqrt/div (the scalar
            // sqrt+div chain dominated every optimizer step). Elementwise
            // SIMD arithmetic is bit-exact, and the per-element
            // expressions are kept verbatim, so the update is bitwise
            // identical to the old formulation.
            p.update_value(|val| {
                let g = p.grad();
                let w = val.data_mut();
                let n = w.len();
                let (ms, vs, gd) = (
                    &mut m.data_mut()[..n],
                    &mut v.data_mut()[..n],
                    &g.data()[..n],
                );
                for i in 0..n {
                    let gi = gd[i].clamp(lo, hi);
                    ms[i] = ms[i] * beta1 + gi * (1.0 - beta1);
                    vs[i] = vs[i] * beta2 + (gi * gi) * (1.0 - beta2);
                    let mhat = ms[i] / bc1;
                    let vhat = vs[i] / bc2;
                    w[i] -= lr * mhat / (vhat.sqrt() + eps);
                }
            });
        }
    }
}

/// Zero the gradients of every parameter in the slice.
pub fn zero_grads(params: &[Var]) {
    for p in params {
        p.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Layer, Linear};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Train y = 3x − 1 on three points; the optimizer under test must
    /// drive the squared loss below `tol` within `iters` rounds.
    fn converges(mut step: impl FnMut(&[Var]), iters: usize, tol: f32) {
        let mut rng = StdRng::seed_from_u64(9);
        let lin = Linear::new(1, 1, &mut rng);
        let params = lin.params();
        let mut final_loss = f32::INFINITY;
        for _ in 0..iters {
            zero_grads(&params);
            let mut total = 0.0;
            for x_val in [-1.0f32, 0.0, 2.0] {
                let x = Var::leaf(Matrix::from_vec(1, 1, vec![x_val]));
                let target = 3.0 * x_val - 1.0;
                let diff = lin
                    .forward(&x)
                    .sub(&Var::leaf(Matrix::from_vec(1, 1, vec![target])));
                let loss = diff.hadamard(&diff).sum();
                loss.backward();
                total += loss.scalar();
            }
            step(&params);
            final_loss = total;
        }
        assert!(final_loss < tol, "did not converge: loss={final_loss}");
    }

    #[test]
    fn sgd_converges() {
        let mut opt = Sgd::new(0.05, 0.0);
        converges(|p| opt.step(p), 400, 1e-4);
    }

    #[test]
    fn sgd_momentum_converges_faster() {
        let mut opt = Sgd::new(0.02, 0.9);
        converges(|p| opt.step(p), 200, 1e-4);
    }

    #[test]
    fn adam_converges() {
        let mut opt = Adam::new(0.05);
        converges(|p| opt.step(p), 400, 1e-3);
    }

    #[test]
    fn clipping_bounds_update_magnitude() {
        let p = Var::leaf(Matrix::from_vec(1, 1, vec![0.0]));
        // Huge gradient.
        p.scale(1e6).sum().backward();
        let mut opt = Sgd::new(1.0, 0.0).with_clip(0.5);
        opt.step(std::slice::from_ref(&p));
        assert!((p.value().get(0, 0) + 0.5).abs() < 1e-6);
    }

    #[test]
    fn zero_grads_resets() {
        let p = Var::leaf(Matrix::from_vec(1, 1, vec![1.0]));
        p.scale(2.0).sum().backward();
        assert!(p.grad().get(0, 0) != 0.0);
        zero_grads(std::slice::from_ref(&p));
        assert_eq!(p.grad().get(0, 0), 0.0);
    }
}

//! Behavior of the `sanitize` feature, in both build modes.
//!
//! With `--features sanitize`, a NaN injected through [`Var::custom`] is
//! caught at op-construction time with a diagnostic naming the op;
//! without the feature, the same graph builds silently (the check —
//! and its cost — must not exist). Shape panics from `Matrix` carry the
//! offending dimensions in both modes.

use saccs_nn::{Matrix, Var};
use std::panic::{catch_unwind, AssertUnwindSafe};

fn nan_graph() -> Result<Var, String> {
    let leaf = Var::leaf(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
    catch_unwind(AssertUnwindSafe(|| {
        Var::custom(
            Matrix::from_vec(1, 2, vec![f32::NAN, 0.0]),
            vec![leaf],
            |_, _| {},
        )
    }))
    .map_err(|e| panic_text(&*e))
}

fn panic_text(e: &(dyn std::any::Any + Send)) -> String {
    e.downcast_ref::<String>()
        .cloned()
        .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

#[cfg(feature = "sanitize")]
#[test]
fn nan_injection_is_caught_with_op_name_and_parent_shapes() {
    let Err(msg) = nan_graph() else {
        panic!("sanitize build must reject a NaN op output");
    };
    assert!(msg.contains("op `custom`"), "op not named: {msg}");
    assert!(msg.contains("NaN"), "value not shown: {msg}");
    assert!(msg.contains("1×2"), "shapes not shown: {msg}");
}

#[cfg(not(feature = "sanitize"))]
#[test]
fn nan_injection_passes_silently_in_the_default_build() {
    let var = nan_graph().expect("default build must not screen op outputs");
    assert!(var.value().get(0, 0).is_nan());
}

#[cfg(feature = "sanitize")]
#[test]
fn built_in_ops_are_screened_too() {
    // 0/0 via hadamard of a zero row with an inf-scaled row: produce the
    // NaN *inside* an op so the op name in the diagnostic is the op's own.
    let zero = Var::leaf(Matrix::zeros(1, 3));
    let Err(msg) =
        catch_unwind(AssertUnwindSafe(|| zero.scale(f32::INFINITY))).map_err(|e| panic_text(&*e))
    else {
        panic!("inf scale of zero is NaN");
    };
    assert!(msg.contains("op `scale`"), "op not named: {msg}");
}

#[test]
fn shape_mismatch_panics_carry_the_dimensions() {
    // Regression: `matmul: (3×8)·(7×8)` class of message, not a bare
    // "shape mismatch".
    let a = Matrix::zeros(3, 8);
    let b = Matrix::zeros(7, 8);
    let msg = catch_unwind(AssertUnwindSafe(|| a.matmul(&b)))
        .map_err(|e| panic_text(&*e))
        .expect_err("3×8 · 7×8 must not multiply");
    assert!(msg.contains("3×8"), "lhs shape missing: {msg}");
    assert!(msg.contains("7×8"), "rhs shape missing: {msg}");

    let msg = catch_unwind(AssertUnwindSafe(|| a.add(&b)))
        .map_err(|e| panic_text(&*e))
        .expect_err("3×8 + 7×8 must not add");
    assert!(
        msg.contains("3×8") && msg.contains("7×8"),
        "shapes missing: {msg}"
    );
}

#[cfg(feature = "sanitize")]
#[test]
fn backward_validates_clean_graphs_quietly() {
    // A healthy training step under the sanitizer: no false positives,
    // gradients flow, shapes hold.
    let w = Var::leaf(Matrix::from_vec(2, 2, vec![0.5, -0.25, 0.75, 0.1]));
    let x = Var::leaf(Matrix::from_vec(1, 2, vec![1.0, 2.0]));
    let loss = x.matmul(&w).tanh().sum();
    loss.backward();
    assert_eq!(w.grad().shape(), (2, 2));
    assert_eq!(x.grad().shape(), (1, 2));
    assert!(w.grad().data().iter().all(|g| g.is_finite()));
}

#[cfg(feature = "sanitize")]
#[test]
fn out_of_bounds_get_names_index_and_shape() {
    // Regression: with only debug_assert!, release builds of get(0, 5)
    // on a 3×4 matrix read flat index 5 — in range, silently wrong
    // cell. Sanitize builds must panic naming row, col, and shape.
    let m = Matrix::zeros(3, 4);
    let msg = catch_unwind(AssertUnwindSafe(|| m.get(0, 5)))
        .map_err(|e| panic_text(&*e))
        .expect_err("column 5 of a 3×4 matrix must not read");
    assert!(msg.contains("get"), "op missing: {msg}");
    assert!(msg.contains("(0, 5)"), "index missing: {msg}");
    assert!(msg.contains("3×4"), "shape missing: {msg}");

    let msg = catch_unwind(AssertUnwindSafe(|| {
        let mut m = Matrix::zeros(3, 4);
        m.set(4, 0, 1.0);
    }))
    .map_err(|e| panic_text(&*e))
    .expect_err("row 4 of a 3×4 matrix must not write");
    assert!(msg.contains("set"), "op missing: {msg}");
    assert!(msg.contains("(4, 0)"), "index missing: {msg}");
}

#[cfg(feature = "sanitize")]
#[test]
fn in_bounds_get_set_pass_under_sanitize() {
    let mut m = Matrix::zeros(2, 5);
    m.set(1, 4, 7.5);
    assert_eq!(m.get(1, 4), 7.5);
}

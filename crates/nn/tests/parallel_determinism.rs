//! Bitwise determinism of the parallel matmul across thread counts.
//!
//! The kernel's contract (DESIGN.md §9) is that fan-out width only
//! changes *which thread* computes a row block, never the block's
//! bits: every output element accumulates its k terms in ascending
//! order against the same packed B panels. These tests compare
//! `SACCS_THREADS ∈ {1, 2, 8}` equivalents in one process via the
//! explicit-width hook.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use saccs_nn::Matrix;

/// Make sure the 8-wide runs really execute on a multi-worker pool.
fn widen_pool() {
    saccs_rt::set_threads(8);
}

#[test]
fn large_matmul_bitwise_identical_across_widths() {
    widen_pool();
    let mut rng = StdRng::seed_from_u64(0xA11);
    // 256³ is the bench shape and is comfortably above the parallel
    // threshold, so widths 2 and 8 take the fan-out path for real.
    let a = Matrix::uniform(256, 256, 1.0, &mut rng);
    let b = Matrix::uniform(256, 256, 1.0, &mut rng);
    let serial = a.matmul_with_threads(&b, 1);
    for width in [2, 8] {
        let par = a.matmul_with_threads(&b, width);
        assert!(
            serial.data() == par.data(),
            "width {width} diverged from serial"
        );
    }
}

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(16))]

    #[test]
    fn prop_matmul_bitwise_across_widths(
        m in 1usize..200,
        k in 1usize..96,
        n in 1usize..96,
        seed in 0u64..1000,
    ) {
        widen_pool();
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::uniform(m, k, 1.0, &mut rng);
        let b = Matrix::uniform(k, n, 1.0, &mut rng);
        let serial = a.matmul_with_threads(&b, 1);
        for width in [2usize, 8] {
            let par = a.matmul_with_threads(&b, width);
            prop_assert!(serial.data() == par.data(), "width {} diverged", width);
        }
    }
}

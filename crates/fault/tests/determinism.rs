//! Thread-count independence of armed fault schedules.
//!
//! Probability triggers decide per *call index*, not per RNG-stream
//! position, so the set of firing calls is a pure function of
//! `(seed, schedule)` — identical whether one thread or eight race
//! through the site. Requires the `fault` feature (the registry is
//! compiled out otherwise):
//!
//! ```text
//! cargo test -p saccs-fault --features fault --test determinism
//! ```

#![cfg(feature = "fault")]

use saccs_fault::{arm_guard, check, Scenario};

/// One test fn: the registry is process-global, so concurrent tests in
/// this binary would race on arm/disarm.
#[test]
fn identical_seeds_fire_identical_call_sets_across_8_threads() {
    saccs_rt::set_threads(8);
    let scenario = Scenario::parse("p.site=err@p=0.3").expect("parses");
    const CALLS: usize = 400;
    const SEED: u64 = 2024;

    let run_parallel = |seed: u64| -> Vec<u64> {
        let _guard = arm_guard(&scenario, seed);
        // All workers hammer the same site concurrently; each firing
        // call reports its 1-based index in the injected error.
        let fired: Vec<Option<u64>> =
            saccs_rt::parallel_map(CALLS, 1, |_| check("p.site").err().map(|e| e.call));
        let mut fired: Vec<u64> = fired.into_iter().flatten().collect();
        fired.sort_unstable();
        fired
    };

    let parallel_a = run_parallel(SEED);
    let parallel_b = run_parallel(SEED);
    assert_eq!(parallel_a, parallel_b, "same seed must replay exactly");

    // Serial reference: the *set* of firing call indices must match the
    // 8-thread runs bit for bit.
    let serial: Vec<u64> = {
        let _guard = arm_guard(&scenario, SEED);
        (0..CALLS)
            .filter_map(|_| check("p.site").err().map(|e| e.call))
            .collect()
    };
    assert_eq!(parallel_a, serial, "schedule depends on thread count");

    // And the seed actually matters.
    let other = run_parallel(SEED + 1);
    assert_ne!(parallel_a, other, "different seeds, different schedules");

    // Sanity: p=0.3 over 400 calls fires a plausible fraction.
    let p = parallel_a.len() as f64 / CALLS as f64;
    assert!((0.15..0.45).contains(&p), "p=0.3 fired at rate {p}");
}

//! Property tests for the deterministic resilience state machines.
//!
//! These run with the `fault` feature on or off: backoff and breaker
//! are plain library types, independent of the failpoint registry.

use proptest::prelude::*;
use saccs_fault::{Backoff, BreakerConfig, BreakerState, CircuitBreaker};
use std::time::Duration;

proptest! {
    #![proptest_config(proptest::test_runner::Config::with_cases(64))]

    /// Backoff delays never shrink as the attempt number grows, no
    /// matter how aggressive the requested jitter is (the policy clamps
    /// the jitter band to keep this true).
    #[test]
    fn prop_backoff_monotone_nondecreasing(
        base_ms in 0u64..200,
        factor in 1.0f64..4.0,
        max_ms in 1u64..2000,
        jitter in 0.0f64..6.0,
        seed in 0u64..10_000,
    ) {
        let b = Backoff::new(Duration::from_millis(base_ms), Duration::from_millis(max_ms))
            .factor(factor)
            .jitter(jitter)
            .seed(seed);
        let mut prev = b.delay(0);
        for attempt in 1..40 {
            let d = b.delay(attempt);
            prop_assert!(
                d >= prev,
                "delay({}) = {:?} < delay({}) = {:?}",
                attempt, d, attempt - 1, prev
            );
            prev = d;
        }
    }

    /// Backoff delays never exceed the configured max.
    #[test]
    fn prop_backoff_capped_at_max(
        base_ms in 0u64..500,
        factor in 1.0f64..8.0,
        max_ms in 1u64..1000,
        jitter in 0.0f64..6.0,
        seed in 0u64..10_000,
    ) {
        let max = Duration::from_millis(max_ms);
        let b = Backoff::new(Duration::from_millis(base_ms), max)
            .factor(factor)
            .jitter(jitter)
            .seed(seed);
        for attempt in [0u32, 1, 2, 5, 10, 31, 64, 1000, u32::MAX] {
            prop_assert!(b.delay(attempt) <= max, "delay({attempt}) over max");
        }
    }

    /// Backoff is a pure function: the same policy yields the same
    /// delay for the same attempt, every time.
    #[test]
    fn prop_backoff_is_pure(
        base_ms in 0u64..200,
        jitter in 0.0f64..1.0,
        seed in 0u64..10_000,
        attempt in 0u32..64,
    ) {
        let b = Backoff::new(Duration::from_millis(base_ms), Duration::from_secs(2))
            .jitter(jitter)
            .seed(seed);
        prop_assert_eq!(b.delay(attempt), b.delay(attempt));
    }

    /// Driving the breaker through a full open → half-open → closed
    /// cycle never loses a permit: once half-open, exactly
    /// `success_to_close` granted probes (each settled successfully)
    /// close it, with no spurious rejections along the way.
    #[test]
    fn prop_breaker_cycle_conserves_permits(
        failure_threshold in 1u32..6,
        open_calls in 1u32..8,
        half_open_permits in 1u32..4,
        success_to_close in 1u32..5,
    ) {
        let config = BreakerConfig {
            failure_threshold,
            open_calls,
            half_open_permits,
            success_to_close,
        };
        let mut b = CircuitBreaker::new(config);

        // Trip it with consecutive failures (each behind a permit).
        for _ in 0..failure_threshold {
            prop_assert!(b.allow(), "closed breaker must grant");
            b.on_failure();
        }
        prop_assert_eq!(b.state(), BreakerState::Open);

        // Open rejects exactly `open_calls` calls, then probing resumes.
        for i in 0..open_calls {
            prop_assert!(!b.allow(), "open breaker granted at rejection {i}");
        }
        prop_assert_eq!(b.state(), BreakerState::HalfOpen);

        // Settling each granted probe immediately: every grant must be
        // honored until the breaker closes, and exactly
        // `success_to_close` successful probes close it.
        let mut successes = 0u32;
        while b.state() == BreakerState::HalfOpen {
            prop_assert!(
                b.allow(),
                "half-open breaker lost a permit after {successes} successes"
            );
            b.on_success();
            successes += 1;
            prop_assert!(successes <= success_to_close, "breaker failed to close");
        }
        prop_assert_eq!(b.state(), BreakerState::Closed);
        prop_assert_eq!(successes, success_to_close);

        // And a closed breaker is fully reset: it takes the full
        // failure budget to trip again.
        for i in 0..failure_threshold {
            prop_assert_eq!(
                b.state(),
                BreakerState::Closed,
                "tripped early at failure {}", i
            );
            prop_assert!(b.allow());
            b.on_failure();
        }
        prop_assert_eq!(b.state(), BreakerState::Open);
    }

    /// Half-open concurrency: with permits outstanding (not yet
    /// settled), grants are capped at `half_open_permits`, and settling
    /// frees exactly one slot each.
    #[test]
    fn prop_half_open_bounds_outstanding_permits(
        half_open_permits in 1u32..5,
        extra_attempts in 1u32..8,
    ) {
        let config = BreakerConfig {
            failure_threshold: 1,
            open_calls: 1,
            half_open_permits,
            success_to_close: u32::MAX, // stay half-open while we count
        };
        let mut b = CircuitBreaker::new(config);
        b.on_failure();
        prop_assert!(!b.allow()); // lapse the open window
        prop_assert_eq!(b.state(), BreakerState::HalfOpen);

        let mut granted = 0u32;
        for _ in 0..half_open_permits + extra_attempts {
            if b.allow() {
                granted += 1;
            }
        }
        prop_assert_eq!(granted, half_open_permits, "outstanding grants exceeded cap");
        // Settle one: exactly one more grant becomes available.
        b.on_success();
        prop_assert!(b.allow());
        prop_assert!(!b.allow());
    }

    /// A half-open failure reopens immediately and the cycle restarts
    /// with a fresh rejection window (no permits carried over).
    #[test]
    fn prop_half_open_failure_restarts_cycle(
        open_calls in 1u32..6,
    ) {
        let config = BreakerConfig {
            failure_threshold: 1,
            open_calls,
            half_open_permits: 1,
            success_to_close: 2,
        };
        let mut b = CircuitBreaker::new(config);
        b.on_failure();
        for _ in 0..open_calls {
            prop_assert!(!b.allow());
        }
        prop_assert!(b.allow());
        b.on_failure(); // probe failed → reopen
        prop_assert_eq!(b.state(), BreakerState::Open);
        // The fresh window rejects the full `open_calls` again.
        for i in 0..open_calls {
            prop_assert!(!b.allow(), "window not reset at {i}");
        }
        prop_assert_eq!(b.state(), BreakerState::HalfOpen);
        prop_assert_eq!(b.times_opened(), 2);
    }
}

//! Deterministic exponential backoff with bounded jitter.
//!
//! The usual backoff-with-jitter draws a fresh random factor per retry,
//! which makes failure traces unreplayable. Here the jitter for attempt
//! `n` is a pure function of `(seed, n)`, so a logged `(seed, attempt)`
//! pair reproduces the exact delay sequence.
//!
//! Two properties hold by construction (and are proptested in
//! `tests/state_machines.rs`):
//!
//! - **Monotone:** `delay(n) <= delay(n + 1)`. The jitter fraction is
//!   clamped to `[0, factor - 1]`, so even a maximally jittered attempt
//!   `n` stays below the un-jittered attempt `n + 1`:
//!   `base·factorⁿ·(1 + jitter·u) <= base·factorⁿ·factor`.
//! - **Capped:** `delay(n) <= max`, always.

use std::time::Duration;

use crate::rng::{splitmix, Xoshiro};

/// Retry-delay policy: exponential growth, deterministic jitter, hard
/// cap. Construct with [`Backoff::new`] and tune with the builder
/// methods; `delay(attempt)` is a pure function of the policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Backoff {
    base: Duration,
    factor: f64,
    max: Duration,
    jitter: f64,
    seed: u64,
}

impl Backoff {
    /// A policy starting at `base`, doubling per attempt, capped at
    /// `max`, with no jitter. Jitter is opt-in via [`Backoff::jitter`].
    pub fn new(base: Duration, max: Duration) -> Backoff {
        Backoff {
            base,
            factor: 2.0,
            max,
            jitter: 0.0,
            seed: 0,
        }
    }

    /// Set the per-attempt growth factor (clamped to at least 1).
    pub fn factor(mut self, factor: f64) -> Backoff {
        self.factor = factor.max(1.0);
        self
    }

    /// Set the jitter fraction. Clamped to `[0, factor - 1]` — the
    /// widest band that keeps delays monotone non-decreasing.
    pub fn jitter(mut self, jitter: f64) -> Backoff {
        self.jitter = jitter.clamp(0.0, self.factor - 1.0);
        self
    }

    /// Set the seed the deterministic jitter stream derives from.
    pub fn seed(mut self, seed: u64) -> Backoff {
        self.seed = seed;
        self
    }

    /// Delay before retry number `attempt` (0-based: `delay(0)` is the
    /// wait after the first failure). Pure — no internal state.
    pub fn delay(&self, attempt: u32) -> Duration {
        let max = self.max.as_secs_f64();
        // Exponent capped so factor^attempt cannot overflow to inf
        // before the min() with max takes effect.
        let exponent = attempt.min(64);
        let raw = (self.base.as_secs_f64() * self.factor.powi(exponent as i32)).min(max);
        let jittered = if self.jitter > 0.0 {
            let mut rng = Xoshiro::seed_from_u64(splitmix(
                self.seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ));
            raw * (1.0 + self.jitter * rng.next_f64())
        } else {
            raw
        };
        Duration::from_secs_f64(jittered.min(max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_exponentially_without_jitter() {
        let b = Backoff::new(Duration::from_millis(10), Duration::from_secs(1));
        assert_eq!(b.delay(0), Duration::from_millis(10));
        assert_eq!(b.delay(1), Duration::from_millis(20));
        assert_eq!(b.delay(2), Duration::from_millis(40));
        assert_eq!(b.delay(10), Duration::from_secs(1), "capped at max");
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_attempt() {
        let a = Backoff::new(Duration::from_millis(10), Duration::from_secs(1))
            .jitter(0.5)
            .seed(7);
        let b = a;
        let c = a.seed(8);
        for attempt in 0..6 {
            assert_eq!(a.delay(attempt), b.delay(attempt));
        }
        assert!(
            (0..6).any(|n| a.delay(n) != c.delay(n)),
            "seed changes delays"
        );
    }

    #[test]
    fn jitter_clamps_to_preserve_monotonicity() {
        // Requested jitter 5.0 with factor 2.0 must clamp to 1.0.
        let b = Backoff::new(Duration::from_millis(10), Duration::from_secs(60))
            .jitter(5.0)
            .seed(3);
        for attempt in 0..20 {
            assert!(
                b.delay(attempt) <= b.delay(attempt + 1),
                "attempt {attempt}: {:?} > {:?}",
                b.delay(attempt),
                b.delay(attempt + 1)
            );
        }
    }

    #[test]
    fn huge_attempt_numbers_do_not_overflow() {
        let b = Backoff::new(Duration::from_millis(10), Duration::from_secs(5))
            .jitter(0.3)
            .seed(1);
        assert_eq!(b.delay(u32::MAX), Duration::from_secs(5));
    }
}

//! The armed-schedule registry behind [`failpoint!`](crate::failpoint).
//!
//! Exactly one [`Scenario`] can be armed at a time, process-wide (like
//! the `saccs-obs` exporter). Arming replaces any previous scenario and
//! resets all call counters, so tests that arm must serialize on a
//! mutex within a binary — the same discipline the obs tests follow.
//!
//! Without the `fault` cargo feature every function here is an inert
//! inline stub (`check` is literally `Ok(())`), so production builds
//! pay nothing for the seams threaded through the pipeline. With the
//! feature but no armed scenario, `check` is a single relaxed atomic
//! load.

#[cfg(not(feature = "fault"))]
use crate::error::FaultError;
use crate::scenario::Scenario;

/// Read-out of one site's activity since the scenario was armed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteStats {
    /// The failpoint site name.
    pub site: String,
    /// Total calls that reached the site (fired or not).
    pub calls: u64,
    /// Calls that returned an injected error.
    pub errors: u64,
    /// Calls that slept under a delay effect.
    pub delays: u64,
}

/// RAII guard returned by [`arm_guard`]; disarms the scenario on drop
/// so a panicking test cannot leak an armed schedule into the next one.
#[derive(Debug)]
pub struct ArmedGuard(());

impl Drop for ArmedGuard {
    fn drop(&mut self) {
        disarm();
    }
}

/// Arm `scenario` under `seed` and return a guard that disarms on drop.
pub fn arm_guard(scenario: &Scenario, seed: u64) -> ArmedGuard {
    arm(scenario, seed);
    ArmedGuard(())
}

#[cfg(feature = "fault")]
pub use imp::{arm, check, disarm, is_armed, stats};

#[cfg(feature = "fault")]
mod imp {
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Arc, OnceLock, PoisonError, RwLock};

    use super::SiteStats;
    use crate::error::FaultError;
    use crate::rng::splitmix;
    use crate::scenario::{Effect, FaultRule, Scenario};

    /// Fast-path gate: `true` iff a scenario is armed. Checked before
    /// taking any lock so un-armed `check` costs one relaxed load.
    static ACTIVE: AtomicBool = AtomicBool::new(false);

    struct ArmedRule {
        rule: FaultRule,
        /// Per-rule stream seed: `splitmix(seed ^ (index + 1) * GOLDEN)`,
        /// so rules draw from independent deterministic streams.
        rule_seed: u64,
    }

    #[derive(Default)]
    struct SiteState {
        rules: Vec<ArmedRule>,
        calls: AtomicU64,
        errors: AtomicU64,
        delays: AtomicU64,
    }

    struct Armed {
        sites: HashMap<String, SiteState>,
    }

    fn slot() -> &'static RwLock<Option<Arc<Armed>>> {
        static SLOT: OnceLock<RwLock<Option<Arc<Armed>>>> = OnceLock::new();
        SLOT.get_or_init(|| RwLock::new(None))
    }

    const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

    /// Arm `scenario` under `seed`, replacing any previous scenario and
    /// resetting all per-site counters.
    pub fn arm(scenario: &Scenario, seed: u64) {
        let mut sites: HashMap<String, SiteState> = HashMap::new();
        for (index, rule) in scenario.rules.iter().enumerate() {
            let rule_seed = splitmix(seed ^ ((index as u64 + 1).wrapping_mul(GOLDEN)));
            sites
                .entry(rule.site.clone())
                .or_default()
                .rules
                .push(ArmedRule {
                    rule: rule.clone(),
                    rule_seed,
                });
        }
        let armed = Arc::new(Armed { sites });
        *slot().write().unwrap_or_else(PoisonError::into_inner) = Some(armed);
        ACTIVE.store(true, Ordering::Release);
    }

    /// Disarm the active scenario, if any.
    pub fn disarm() {
        ACTIVE.store(false, Ordering::Release);
        *slot().write().unwrap_or_else(PoisonError::into_inner) = None;
    }

    /// Whether a scenario is currently armed.
    pub fn is_armed() -> bool {
        ACTIVE.load(Ordering::Acquire)
    }

    /// Evaluate the failpoint named `site`.
    ///
    /// Increments the site's 1-based call counter, sleeps under every
    /// firing delay rule, and returns the first firing error rule as an
    /// `Err`. Sites without rules are still counted (so [`stats`] can
    /// assert a seam was exercised).
    pub fn check(site: &str) -> Result<(), FaultError> {
        if !ACTIVE.load(Ordering::Relaxed) {
            return Ok(());
        }
        // Clone the Arc and drop the read guard before sleeping or
        // returning: delay effects must not hold the registry lock.
        let armed = match slot()
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
        {
            Some(armed) => Arc::clone(armed),
            None => return Ok(()),
        };
        let Some(state) = armed.sites.get(site) else {
            return Ok(());
        };
        let call = state.calls.fetch_add(1, Ordering::Relaxed) + 1;
        let mut fault = None;
        for armed_rule in &state.rules {
            if !armed_rule.rule.trigger.fires(call, armed_rule.rule_seed) {
                continue;
            }
            match armed_rule.rule.effect {
                Effect::Delay(duration) => {
                    state.delays.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(duration);
                }
                Effect::Error(kind) => {
                    if fault.is_none() {
                        state.errors.fetch_add(1, Ordering::Relaxed);
                        fault = Some(FaultError::new(site, kind, call));
                    }
                }
            }
        }
        match fault {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }

    /// Per-site activity for the armed scenario, sorted by site name.
    /// Empty when nothing is armed.
    pub fn stats() -> Vec<SiteStats> {
        let armed = match slot()
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
        {
            Some(armed) => Arc::clone(armed),
            None => return Vec::new(),
        };
        let mut out: Vec<SiteStats> = armed
            .sites
            .iter()
            .map(|(site, state)| SiteStats {
                site: site.clone(),
                calls: state.calls.load(Ordering::Relaxed),
                errors: state.errors.load(Ordering::Relaxed),
                delays: state.delays.load(Ordering::Relaxed),
            })
            .collect();
        out.sort_by(|a, b| a.site.cmp(&b.site));
        out
    }
}

/// Arm a scenario (inert: the `fault` feature is off).
#[cfg(not(feature = "fault"))]
pub fn arm(_scenario: &Scenario, _seed: u64) {}

/// Disarm (inert: the `fault` feature is off).
#[cfg(not(feature = "fault"))]
pub fn disarm() {}

/// Always `false` without the `fault` feature.
#[cfg(not(feature = "fault"))]
pub fn is_armed() -> bool {
    false
}

/// Evaluate a failpoint site (inert: always `Ok(())` without the
/// `fault` feature; the optimizer deletes the call entirely).
#[cfg(not(feature = "fault"))]
#[inline(always)]
pub fn check(_site: &str) -> Result<(), FaultError> {
    Ok(())
}

/// Always empty without the `fault` feature.
#[cfg(not(feature = "fault"))]
pub fn stats() -> Vec<SiteStats> {
    Vec::new()
}

#[cfg(test)]
mod tests {
    #[cfg(not(feature = "fault"))]
    use super::*;

    #[cfg(not(feature = "fault"))]
    #[test]
    fn inert_stubs_do_nothing() {
        let scenario = Scenario::new().fail("x");
        let _guard = arm_guard(&scenario, 1);
        assert!(!is_armed());
        assert!(check("x").is_ok());
        assert!(stats().is_empty());
    }

    // Armed-registry tests live here rather than an integration test so
    // they share the crate-internal lock discipline; they serialize on
    // a mutex because the registry is process-global.
    #[cfg(feature = "fault")]
    mod armed {
        use super::super::*;
        use crate::error::FaultKind;
        use crate::scenario::{Effect, Trigger};
        use std::sync::{Mutex, OnceLock, PoisonError};

        fn lock() -> std::sync::MutexGuard<'static, ()> {
            static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
            LOCK.get_or_init(|| Mutex::new(()))
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
        }

        #[test]
        fn unarmed_check_passes_and_armed_rules_fire() {
            let _serial = lock();
            disarm();
            assert!(check("algo1.probe").is_ok());

            let scenario = Scenario::parse("algo1.probe=err@2..4").expect("parses");
            let _guard = arm_guard(&scenario, 42);
            assert!(is_armed());
            assert!(check("algo1.probe").is_ok(), "call 1 passes");
            let err = check("algo1.probe").expect_err("call 2 fails");
            assert_eq!((err.kind, err.call), (FaultKind::Unavailable, 2));
            let err = check("algo1.probe").expect_err("call 3 fails");
            assert_eq!(err.call, 3);
            assert!(check("algo1.probe").is_ok(), "call 4 passes");
            assert!(check("other.site").is_ok(), "unlisted sites pass");
        }

        #[test]
        fn guard_drop_disarms_and_rearm_resets_counters() {
            let _serial = lock();
            let scenario =
                Scenario::new().rule("s", Effect::Error(FaultKind::Timeout), Trigger::Call(1));
            {
                let _guard = arm_guard(&scenario, 7);
                assert!(check("s").is_err());
                assert!(check("s").is_ok());
            }
            assert!(!is_armed());
            let _guard = arm_guard(&scenario, 7);
            assert!(check("s").is_err(), "re-arming resets the call counter");
        }

        #[test]
        fn stats_count_calls_errors_and_delays() {
            let _serial = lock();
            let scenario = Scenario::parse("a=err@1;a=delay(0ms)@2;b=delay(0ms)").expect("parses");
            let _guard = arm_guard(&scenario, 9);
            assert!(check("a").is_err());
            assert!(check("a").is_ok());
            assert!(check("b").is_ok());
            let stats = stats();
            assert_eq!(stats.len(), 2);
            assert_eq!(
                (
                    stats[0].site.as_str(),
                    stats[0].calls,
                    stats[0].errors,
                    stats[0].delays
                ),
                ("a", 2, 1, 1)
            );
            assert_eq!(
                (
                    stats[1].site.as_str(),
                    stats[1].calls,
                    stats[1].errors,
                    stats[1].delays
                ),
                ("b", 1, 0, 1)
            );
        }

        #[test]
        fn probability_rules_replay_identically_for_a_seed() {
            let _serial = lock();
            let scenario = Scenario::parse("p.site=err@p=0.5").expect("parses");
            let run = |seed: u64| -> Vec<bool> {
                let _guard = arm_guard(&scenario, seed);
                (0..64).map(|_| check("p.site").is_err()).collect()
            };
            let a = run(1234);
            let b = run(1234);
            let c = run(4321);
            assert_eq!(a, b, "same seed, same schedule");
            assert_ne!(a, c, "different seed, different schedule");
        }
    }
}

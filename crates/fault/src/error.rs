//! The injected-fault error type and its kinds.

use std::fmt;

/// The flavor of infrastructure failure a failpoint injects. The kinds
/// mirror what a network-backed `SearchApi` or model store would
/// actually produce, so hardened callers can exercise kind-specific
/// handling before any real backend exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The dependency is down or refusing connections.
    Unavailable,
    /// The dependency did not answer within its own budget.
    Timeout,
    /// The dependency answered with data that failed validation.
    Corrupt,
}

impl FaultKind {
    /// Stable lowercase name (used by the DSL and in error messages).
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Unavailable => "unavailable",
            FaultKind::Timeout => "timeout",
            FaultKind::Corrupt => "corrupt",
        }
    }

    pub(crate) fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "unavailable" => Some(FaultKind::Unavailable),
            "timeout" => Some(FaultKind::Timeout),
            "corrupt" => Some(FaultKind::Corrupt),
            _ => None,
        }
    }
}

/// One injected fault: which site fired, what kind of failure it
/// simulates, and the site's 1-based call index at which it fired (the
/// reproducibility breadcrumb — `(seed, schedule, call)` pins the event
/// exactly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultError {
    /// The failpoint site, e.g. `algo1.probe`.
    pub site: String,
    /// Simulated failure flavor.
    pub kind: FaultKind,
    /// 1-based call index at the site when the rule fired.
    pub call: u64,
}

impl FaultError {
    /// Build a fault error (public so hardened layers can synthesize
    /// faults for conditions the registry cannot see, e.g. a missing
    /// extractor).
    pub fn new(site: impl Into<String>, kind: FaultKind, call: u64) -> FaultError {
        FaultError {
            site: site.into(),
            kind,
            call,
        }
    }
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected {} fault at `{}` (call {})",
            self.kind.label(),
            self.site,
            self.call
        )
    }
}

impl std::error::Error for FaultError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip_through_parse() {
        for kind in [
            FaultKind::Unavailable,
            FaultKind::Timeout,
            FaultKind::Corrupt,
        ] {
            assert_eq!(FaultKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(FaultKind::parse("gremlins"), None);
    }

    #[test]
    fn display_names_site_kind_and_call() {
        let e = FaultError::new("algo1.probe", FaultKind::Timeout, 3);
        let s = e.to_string();
        assert!(s.contains("algo1.probe") && s.contains("timeout") && s.contains('3'));
    }
}

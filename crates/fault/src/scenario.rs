//! The scenario DSL: a declarative, printable fault schedule.
//!
//! Grammar (whitespace around tokens is ignored):
//!
//! ```text
//! scenario := rule (';' rule)*
//! rule     := site '=' effect ('@' trigger)?
//! effect   := 'err' | 'err(' kind ')' | 'delay(' millis 'ms)'
//! kind     := 'unavailable' | 'timeout' | 'corrupt'
//! trigger  := call | call '..' call | 'p=' probability
//! ```
//!
//! Examples:
//!
//! ```text
//! algo1.probe=err@2..4               # fail probe calls 2 and 3
//! algo1.search_api=delay(30ms)       # delay every objective search
//! embed.features_batch=err(corrupt)@p=0.25   # fail ~25% of batches
//! persist.load=err(timeout)@1        # fail only the first load
//! ```
//!
//! `Display` prints the canonical form of the same grammar, so a test
//! failure can log `(seed, scenario)` and the exact schedule replays
//! from that pair alone.

use std::fmt;
use std::time::Duration;

use crate::error::FaultKind;
use crate::rng::{splitmix, Xoshiro};

/// When a rule fires, as a function of the site's 1-based call index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// Fire on every call.
    Always,
    /// Fire on exactly the given 1-based call.
    Call(u64),
    /// Fire on calls in the half-open range `[start, end)` (1-based).
    Calls(u64, u64),
    /// Fire independently per call with this probability, drawn from a
    /// per-rule deterministic stream (see [`Trigger::fires`]).
    Probability(f64),
}

impl Trigger {
    /// Whether this trigger fires for the given 1-based call index.
    ///
    /// Probability triggers derive their coin flip purely from
    /// `(rule_seed, call)` — a fresh xoshiro256++ stream per call, not a
    /// shared advancing stream — so the *set* of firing call indices is
    /// identical regardless of how many threads interleave at the site.
    pub fn fires(self, call: u64, rule_seed: u64) -> bool {
        match self {
            Trigger::Always => true,
            Trigger::Call(n) => call == n,
            Trigger::Calls(start, end) => call >= start && call < end,
            Trigger::Probability(p) => {
                let mut rng =
                    Xoshiro::seed_from_u64(splitmix(rule_seed ^ call.wrapping_mul(0x9E37_79B9)));
                rng.next_f64() < p
            }
        }
    }
}

impl fmt::Display for Trigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trigger::Always => write!(f, "always"),
            Trigger::Call(n) => write!(f, "{n}"),
            Trigger::Calls(start, end) => write!(f, "{start}..{end}"),
            Trigger::Probability(p) => write!(f, "p={p}"),
        }
    }
}

/// What a firing rule does to the call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Effect {
    /// Return an injected [`crate::FaultError`] of this kind.
    Error(FaultKind),
    /// Sleep for this long, then let the call proceed normally.
    Delay(Duration),
}

impl fmt::Display for Effect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Effect::Error(FaultKind::Unavailable) => write!(f, "err"),
            Effect::Error(kind) => write!(f, "err({})", kind.label()),
            Effect::Delay(d) => write!(f, "delay({}ms)", d.as_millis()),
        }
    }
}

/// One site's `(trigger, effect)` rule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// The failpoint site this rule watches, e.g. `algo1.probe`.
    pub site: String,
    /// What happens when the trigger fires.
    pub effect: Effect,
    /// When the rule fires.
    pub trigger: Trigger,
}

impl fmt::Display for FaultRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.site, self.effect)?;
        match self.trigger {
            Trigger::Always => Ok(()),
            trigger => write!(f, "@{trigger}"),
        }
    }
}

/// A parseable, printable, seed-reproducible fault schedule.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scenario {
    /// The rules, in declaration order. Multiple rules may target the
    /// same site; the first rule whose trigger fires wins for errors,
    /// and every firing delay rule sleeps.
    pub rules: Vec<FaultRule>,
}

/// Error from [`Scenario::parse`], carrying the offending rule text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioParseError {
    /// The rule fragment that failed to parse.
    pub rule: String,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for ScenarioParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault rule `{}`: {}", self.rule, self.reason)
    }
}

impl std::error::Error for ScenarioParseError {}

fn bad(rule: &str, reason: impl Into<String>) -> ScenarioParseError {
    ScenarioParseError {
        rule: rule.to_string(),
        reason: reason.into(),
    }
}

fn parse_effect(rule: &str, text: &str) -> Result<Effect, ScenarioParseError> {
    if text == "err" {
        return Ok(Effect::Error(FaultKind::Unavailable));
    }
    if let Some(kind) = text.strip_prefix("err(").and_then(|r| r.strip_suffix(')')) {
        return FaultKind::parse(kind.trim())
            .map(Effect::Error)
            .ok_or_else(|| bad(rule, format!("unknown fault kind `{kind}`")));
    }
    if let Some(ms) = text
        .strip_prefix("delay(")
        .and_then(|r| r.strip_suffix("ms)"))
    {
        let ms: u64 = ms
            .trim()
            .parse()
            .map_err(|_| bad(rule, format!("bad delay millis `{ms}`")))?;
        return Ok(Effect::Delay(Duration::from_millis(ms)));
    }
    Err(bad(rule, format!("unknown effect `{text}`")))
}

fn parse_trigger(rule: &str, text: &str) -> Result<Trigger, ScenarioParseError> {
    if let Some(p) = text.strip_prefix("p=") {
        let p: f64 = p
            .trim()
            .parse()
            .map_err(|_| bad(rule, format!("bad probability `{p}`")))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(bad(rule, format!("probability {p} outside [0, 1]")));
        }
        return Ok(Trigger::Probability(p));
    }
    if let Some((start, end)) = text.split_once("..") {
        let start: u64 = start
            .trim()
            .parse()
            .map_err(|_| bad(rule, format!("bad range start `{start}`")))?;
        let end: u64 = end
            .trim()
            .parse()
            .map_err(|_| bad(rule, format!("bad range end `{end}`")))?;
        if start == 0 || end <= start {
            return Err(bad(
                rule,
                "call ranges are 1-based and half-open, start < end",
            ));
        }
        return Ok(Trigger::Calls(start, end));
    }
    let call: u64 = text
        .parse()
        .map_err(|_| bad(rule, format!("unknown trigger `{text}`")))?;
    if call == 0 {
        return Err(bad(rule, "call indices are 1-based"));
    }
    Ok(Trigger::Call(call))
}

impl Scenario {
    /// An empty scenario (no rules; arming it still counts calls).
    pub fn new() -> Scenario {
        Scenario::default()
    }

    /// Append a rule, builder style.
    pub fn rule(mut self, site: impl Into<String>, effect: Effect, trigger: Trigger) -> Scenario {
        self.rules.push(FaultRule {
            site: site.into(),
            effect,
            trigger,
        });
        self
    }

    /// Shorthand: fail `site` on every call with [`FaultKind::Unavailable`].
    pub fn fail(self, site: impl Into<String>) -> Scenario {
        self.rule(site, Effect::Error(FaultKind::Unavailable), Trigger::Always)
    }

    /// Parse the DSL described in the module docs.
    pub fn parse(text: &str) -> Result<Scenario, ScenarioParseError> {
        let mut rules = Vec::new();
        for rule_text in text.split(';') {
            let rule_text = rule_text.trim();
            if rule_text.is_empty() {
                continue;
            }
            let (site, rest) = rule_text
                .split_once('=')
                .ok_or_else(|| bad(rule_text, "expected `site=effect[@trigger]`"))?;
            let site = site.trim();
            if site.is_empty() {
                return Err(bad(rule_text, "empty site name"));
            }
            let (effect_text, trigger_text) = match rest.split_once('@') {
                Some((e, t)) => (e.trim(), Some(t.trim())),
                None => (rest.trim(), None),
            };
            let effect = parse_effect(rule_text, effect_text)?;
            let trigger = match trigger_text {
                Some(t) => parse_trigger(rule_text, t)?,
                None => Trigger::Always,
            };
            rules.push(FaultRule {
                site: site.to_string(),
                effect,
                trigger,
            });
        }
        Ok(Scenario { rules })
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, rule) in self.rules.iter().enumerate() {
            if i > 0 {
                write!(f, ";")?;
            }
            write!(f, "{rule}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_through_display() {
        let text = "algo1.probe=err@2..4;algo1.search_api=delay(30ms);\
                    embed.features_batch=err(corrupt)@p=0.25;persist.load=err(timeout)@1";
        let scenario = Scenario::parse(text).expect("parses");
        assert_eq!(scenario.rules.len(), 4);
        let printed = scenario.to_string();
        assert_eq!(Scenario::parse(&printed).expect("reparses"), scenario);
        assert_eq!(printed, text.replace(" ", ""));
    }

    #[test]
    fn parse_rejects_malformed_rules() {
        for text in [
            "algo1.probe",     // no '='
            "=err",            // empty site
            "x=explode",       // unknown effect
            "x=err(gremlins)", // unknown kind
            "x=delay(5s)",     // wrong unit
            "x=err@0",         // 0 is not a valid 1-based call
            "x=err@4..2",      // inverted range
            "x=err@p=1.5",     // probability out of range
            "x=err@soon",      // unknown trigger
        ] {
            assert!(Scenario::parse(text).is_err(), "{text} should not parse");
        }
    }

    #[test]
    fn empty_rules_between_separators_are_skipped() {
        let s = Scenario::parse("; a=err ;; b=delay(1ms) ;").expect("parses");
        assert_eq!(s.rules.len(), 2);
    }

    #[test]
    fn call_and_range_triggers_fire_on_exact_indices() {
        assert!(Trigger::Call(3).fires(3, 0));
        assert!(!Trigger::Call(3).fires(2, 0));
        let range = Trigger::Calls(2, 4);
        let fired: Vec<u64> = (1..=5).filter(|&c| range.fires(c, 0)).collect();
        assert_eq!(fired, vec![2, 3]);
        assert!(Trigger::Always.fires(1, 0) && Trigger::Always.fires(999, 0));
    }

    #[test]
    fn probability_trigger_is_a_pure_function_of_seed_and_call() {
        let t = Trigger::Probability(0.5);
        let a: Vec<bool> = (1..=64).map(|c| t.fires(c, 7)).collect();
        let b: Vec<bool> = (1..=64).map(|c| t.fires(c, 7)).collect();
        let c: Vec<bool> = (1..=64).map(|c| t.fires(c, 8)).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
        let fired = a.iter().filter(|&&f| f).count();
        assert!((10..=54).contains(&fired), "p=0.5 fired {fired}/64 times");
    }

    #[test]
    fn probability_extremes_never_and_always_fire() {
        for call in 1..=100 {
            assert!(!Trigger::Probability(0.0).fires(call, 1));
            assert!(Trigger::Probability(1.0).fires(call, 1));
        }
    }

    #[test]
    fn builder_matches_parsed_form() {
        let built = Scenario::new().fail("algo1.probe").rule(
            "algo1.search_api",
            Effect::Delay(Duration::from_millis(30)),
            Trigger::Calls(1, 3),
        );
        let parsed =
            Scenario::parse("algo1.probe=err;algo1.search_api=delay(30ms)@1..3").expect("parses");
        assert_eq!(built, parsed);
    }
}

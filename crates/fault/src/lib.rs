//! `saccs-fault` — deterministic fault injection for the SACCS serving
//! and training pipeline (stdlib only, zero dependencies).
//!
//! Four pieces:
//!
//! 1. **Failpoints** ([`failpoint!`], [`check`]): named sites threaded
//!    through the pipeline's hot seams (`algo1.search_api`,
//!    `algo1.extract`, `algo1.probe`, `index.build`,
//!    `embed.features_batch`, `tagger.train_step`, `persist.load`,
//!    `persist.save`) and the live-ingestion seams of the segmented
//!    index (`index.seal` defers sealing the mem-segment, `index.persist`
//!    tears a segment write mid-file, `index.merge` aborts compaction
//!    between the merged write and the manifest commit). Without the
//!    `fault` cargo feature, `check` is an
//!    inlined constant `Ok(())` and the whole subsystem compiles out;
//!    with it, an armed [`Scenario`] decides per call whether to inject
//!    a delay or an error.
//! 2. **Scenarios** ([`Scenario`], [`FaultRule`]): a declarative,
//!    seed-reproducible fault schedule with a compact text DSL —
//!    `"algo1.probe=err@2..4;algo1.search_api=delay(30ms)"` fails the
//!    2nd and 3rd probe calls and delays every objective search by
//!    30 ms. Probability triggers draw from a per-rule xoshiro256++
//!    stream that is a pure function of `(seed, rule, call index)`, so
//!    identical seeds fire on identical call indices no matter how many
//!    threads race through the site.
//! 3. **Backoff** ([`Backoff`]): deterministic exponential retry delays
//!    with bounded jitter — monotone non-decreasing in the attempt
//!    number and capped at the configured maximum (both properties are
//!    proptested).
//! 4. **Circuit breaker** ([`CircuitBreaker`]): a call-count-driven
//!    closed → open → half-open state machine (no wall clocks, so state
//!    transitions replay identically under a fixed request sequence).
//!
//! The registry itself records nothing to `saccs-obs` — it is below the
//! observability layer in the dependency graph. Consumers (the service
//! layer, the index, the encoder) count retries, breaker transitions
//! and degradations; the registry exposes raw per-site [`stats`] for
//! tests that want to assert on the injection itself.

/// Deterministic exponential backoff with bounded jitter.
pub mod backoff;
/// Call-count-driven circuit breaker state machine.
pub mod breaker;
/// Fault kinds and the injected error type.
pub mod error;
/// The armed-schedule registry behind `failpoint!`.
pub mod registry;
/// Tiny deterministic RNG (splitmix64 + xoshiro256++), self-contained.
pub(crate) mod rng;
/// The scenario DSL: rules, triggers, effects, parser and printer.
pub mod scenario;

/// Retry-delay policy: exponential growth, jitter, hard cap.
pub use backoff::Backoff;
/// Breaker tuning knobs (thresholds and permit counts).
pub use breaker::BreakerConfig;
/// Which of the three breaker states a breaker is in.
pub use breaker::BreakerState;
/// The before/after state pair one breaker operation observed.
pub use breaker::BreakerTransition;
/// The closed/open/half-open breaker state machine.
pub use breaker::CircuitBreaker;
/// The same state machine behind `&self`: one packed atomic word.
pub use breaker::SharedBreaker;
/// One injected fault: site, kind and the call index that fired.
pub use error::FaultError;
/// The flavor of infrastructure failure a failpoint injects.
pub use error::FaultKind;
/// Arm a scenario under a seed (no-op without the `fault` feature).
pub use registry::arm;
/// Arm a scenario and get an RAII guard that disarms on drop.
pub use registry::arm_guard;
/// Evaluate a failpoint site (the function behind [`failpoint!`]).
pub use registry::check;
/// Disarm the active scenario, if any.
pub use registry::disarm;
/// Whether a scenario is currently armed.
pub use registry::is_armed;
/// Per-site injection statistics for the armed scenario.
pub use registry::stats;
/// RAII guard returned by [`arm_guard`].
pub use registry::ArmedGuard;
/// Read-out of one site's calls/errors/delays since arming.
pub use registry::SiteStats;
/// What a firing rule does: inject an error or sleep.
pub use scenario::Effect;
/// One site's `(trigger, effect)` rule.
pub use scenario::FaultRule;
/// A parseable, printable, seed-reproducible fault schedule.
pub use scenario::Scenario;
/// Error from [`Scenario::parse`] with the offending rule text.
pub use scenario::ScenarioParseError;
/// When a rule fires, as a function of the site's 1-based call index.
pub use scenario::Trigger;

/// Evaluate the failpoint named `$site`.
///
/// Expands to [`check`]`($site)`, which returns
/// `Result<(), `[`FaultError`]`>`: `Ok(())` to proceed (possibly after
/// an injected delay), `Err` when the armed scenario fails this call.
/// Without the `fault` cargo feature the call is an inlined constant
/// `Ok(())` and optimizes away entirely; with the feature but no armed
/// scenario it is a single relaxed atomic load.
///
/// ```
/// fn fetch() -> Result<Vec<u8>, saccs_fault::FaultError> {
///     saccs_fault::failpoint!("demo.fetch")?;
///     Ok(vec![42])
/// }
/// assert!(fetch().is_ok());
/// ```
#[macro_export]
macro_rules! failpoint {
    ($site:expr) => {
        $crate::check($site)
    };
}

//! Self-contained deterministic randomness for schedules and jitter.
//!
//! `saccs-fault` is intentionally zero-dependency (it must not depend on
//! anything it could be asked to break), so it carries its own ~40-line
//! splitmix64 + xoshiro256++ pair instead of using the vendored `rand`.
//! Both are bit-reproducible across platforms; every draw in this crate
//! is a pure function of `(seed, …indices)`, never of shared mutable
//! state, so concurrent callers observe the same schedule.

/// One splitmix64 output for the given state (stateless mixing step).
pub(crate) fn splitmix(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ with splitmix64 seeding (the workspace's standard
/// generator family; see `vendor/rand`).
pub(crate) struct Xoshiro {
    s: [u64; 4],
}

impl Xoshiro {
    pub(crate) fn seed_from_u64(seed: u64) -> Xoshiro {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Xoshiro {
            s: [next(), next(), next(), next()],
        }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)` with full `f64` mantissa precision.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro::seed_from_u64(7);
        let mut b = Xoshiro::seed_from_u64(7);
        let mut c = Xoshiro::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_draws_stay_in_unit_interval() {
        let mut r = Xoshiro::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn splitmix_mixes() {
        assert_ne!(splitmix(0), splitmix(1));
        assert_eq!(splitmix(42), splitmix(42));
    }
}

//! Call-count-driven circuit breaker.
//!
//! Textbook breakers open on failures and transition to half-open after
//! a wall-clock cooldown — which makes chaos tests time-dependent and
//! unreplayable. This breaker is driven entirely by call counts:
//!
//! ```text
//! Closed ──(failure_threshold consecutive failures)──▶ Open
//! Open   ──(rejects open_calls calls)───────────────▶ HalfOpen
//! HalfOpen ──(success_to_close successes)───────────▶ Closed
//! HalfOpen ──(any failure)──────────────────────────▶ Open
//! ```
//!
//! In `HalfOpen` at most `half_open_permits` probe calls may be in
//! flight; [`CircuitBreaker::allow`] hands out permits and every permit
//! is returned by exactly one later `on_success`/`on_failure` (the
//! permit-conservation invariant, proptested in
//! `tests/state_machines.rs`). The breaker is not internally
//! synchronized — the service layer owns one per stage behind
//! `&mut self`, which matches how `SaccsService` is already driven.

/// Which of the three states a breaker is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow; consecutive failures are counted.
    Closed,
    /// Calls are rejected outright until the open window lapses.
    Open,
    /// A bounded number of probe calls may test the dependency.
    HalfOpen,
}

/// Breaker tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures in `Closed` that trip the breaker.
    pub failure_threshold: u32,
    /// Calls rejected in `Open` before probing resumes (the
    /// call-count analogue of a cooldown timer).
    pub open_calls: u32,
    /// Maximum concurrent probe calls allowed in `HalfOpen`.
    pub half_open_permits: u32,
    /// Probe successes required to close from `HalfOpen`.
    pub success_to_close: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            open_calls: 5,
            half_open_permits: 1,
            success_to_close: 2,
        }
    }
}

impl BreakerConfig {
    /// Normalize zero thresholds up to 1 so every state is reachable
    /// and no transition divides by a zero budget.
    fn sanitized(self) -> BreakerConfig {
        BreakerConfig {
            failure_threshold: self.failure_threshold.max(1),
            open_calls: self.open_calls.max(1),
            half_open_permits: self.half_open_permits.max(1),
            success_to_close: self.success_to_close.max(1),
        }
    }
}

/// The closed/open/half-open breaker state machine. One instance per
/// protected stage; see the module docs for the transition diagram.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    /// Consecutive failures observed in `Closed`.
    consecutive_failures: u32,
    /// Calls rejected so far in the current `Open` window.
    rejected: u32,
    /// Probe permits currently handed out in `HalfOpen`.
    permits_out: u32,
    /// Probe successes accumulated in the current `HalfOpen` episode.
    half_open_successes: u32,
    /// Lifetime count of `Closed → Open` and `HalfOpen → Open` trips.
    times_opened: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given config (zeros normalized to 1).
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config: config.sanitized(),
            state: BreakerState::Closed,
            consecutive_failures: 0,
            rejected: 0,
            permits_out: 0,
            half_open_successes: 0,
            times_opened: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Lifetime number of transitions into `Open`.
    pub fn times_opened(&self) -> u64 {
        self.times_opened
    }

    /// Ask to make a call. `true` hands out a permit that MUST be
    /// returned by exactly one later [`on_success`](Self::on_success)
    /// or [`on_failure`](Self::on_failure); `false` means the call is
    /// rejected (fail fast) and nothing may be reported back.
    pub fn allow(&mut self) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                self.rejected += 1;
                if self.rejected >= self.config.open_calls {
                    self.state = BreakerState::HalfOpen;
                    self.permits_out = 0;
                    self.half_open_successes = 0;
                }
                false
            }
            BreakerState::HalfOpen => {
                if self.permits_out < self.config.half_open_permits {
                    self.permits_out += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Report that a permitted call succeeded.
    pub fn on_success(&mut self) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures = 0;
            }
            BreakerState::HalfOpen => {
                self.permits_out = self.permits_out.saturating_sub(1);
                self.half_open_successes += 1;
                if self.half_open_successes >= self.config.success_to_close {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                    self.permits_out = 0;
                }
            }
            // A success racing a trip (permit issued in Closed, breaker
            // opened meanwhile) is stale news: ignore it.
            BreakerState::Open => {}
        }
    }

    /// Report that a permitted call failed.
    pub fn on_failure(&mut self) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.trip();
                }
            }
            BreakerState::HalfOpen => {
                self.permits_out = self.permits_out.saturating_sub(1);
                self.trip();
            }
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open;
        self.rejected = 0;
        self.permits_out = 0;
        self.half_open_successes = 0;
        self.consecutive_failures = 0;
        self.times_opened += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 2,
            open_calls: 3,
            half_open_permits: 1,
            success_to_close: 2,
        }
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let mut b = CircuitBreaker::new(config());
        assert!(b.allow());
        b.on_failure();
        assert!(b.allow());
        b.on_success(); // success resets the streak
        assert!(b.allow());
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.times_opened(), 1);
    }

    #[test]
    fn open_rejects_then_half_opens_after_open_calls() {
        let mut b = CircuitBreaker::new(config());
        b.on_failure();
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());
        assert!(!b.allow());
        assert!(!b.allow()); // third rejection lapses the window
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn half_open_bounds_permits_and_closes_on_successes() {
        let mut b = CircuitBreaker::new(config());
        b.on_failure();
        b.on_failure();
        for _ in 0..3 {
            b.allow();
        }
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.allow(), "first probe permitted");
        assert!(!b.allow(), "second concurrent probe rejected");
        b.on_success();
        assert_eq!(b.state(), BreakerState::HalfOpen, "needs 2 successes");
        assert!(b.allow());
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_failure_reopens() {
        let mut b = CircuitBreaker::new(config());
        b.on_failure();
        b.on_failure();
        for _ in 0..3 {
            b.allow();
        }
        assert!(b.allow());
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.times_opened(), 2);
    }

    #[test]
    fn zero_config_is_normalized_not_divergent() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 0,
            open_calls: 0,
            half_open_permits: 0,
            success_to_close: 0,
        });
        assert!(b.allow());
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open, "threshold 0 acts as 1");
        assert!(!b.allow());
        assert_eq!(b.state(), BreakerState::HalfOpen, "open_calls 0 acts as 1");
        assert!(b.allow(), "permit budget 0 acts as 1");
        b.on_success();
        assert_eq!(
            b.state(),
            BreakerState::Closed,
            "success_to_close 0 acts as 1"
        );
    }
}

//! Call-count-driven circuit breaker.
//!
//! Textbook breakers open on failures and transition to half-open after
//! a wall-clock cooldown — which makes chaos tests time-dependent and
//! unreplayable. This breaker is driven entirely by call counts:
//!
//! ```text
//! Closed ──(failure_threshold consecutive failures)──▶ Open
//! Open   ──(rejects open_calls calls)───────────────▶ HalfOpen
//! HalfOpen ──(success_to_close successes)───────────▶ Closed
//! HalfOpen ──(any failure)──────────────────────────▶ Open
//! ```
//!
//! In `HalfOpen` at most `half_open_permits` probe calls may be in
//! flight; [`CircuitBreaker::allow`] hands out permits and every permit
//! is returned by exactly one later `on_success`/`on_failure` (the
//! permit-conservation invariant, proptested in
//! `tests/state_machines.rs`).
//!
//! Two implementations share the state machine: [`CircuitBreaker`] is
//! the original `&mut self` version (single caller, zero
//! synchronization), and [`SharedBreaker`] packs the same counters into
//! one `AtomicU64` so many serving threads can drive one breaker
//! through `&self` — every transition is a single CAS, and the permit
//! invariant holds under arbitrary interleavings because the permit
//! count changes in the same CAS that consults it.

use std::sync::atomic::{AtomicU64, Ordering};

/// Which of the three states a breaker is in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Calls flow; consecutive failures are counted.
    Closed,
    /// Calls are rejected outright until the open window lapses.
    Open,
    /// A bounded number of probe calls may test the dependency.
    HalfOpen,
}

/// Breaker tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive failures in `Closed` that trip the breaker.
    pub failure_threshold: u32,
    /// Calls rejected in `Open` before probing resumes (the
    /// call-count analogue of a cooldown timer).
    pub open_calls: u32,
    /// Maximum concurrent probe calls allowed in `HalfOpen`.
    pub half_open_permits: u32,
    /// Probe successes required to close from `HalfOpen`.
    pub success_to_close: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            open_calls: 5,
            half_open_permits: 1,
            success_to_close: 2,
        }
    }
}

impl BreakerConfig {
    /// Normalize zero thresholds up to 1 so every state is reachable
    /// and no transition divides by a zero budget.
    fn sanitized(self) -> BreakerConfig {
        BreakerConfig {
            failure_threshold: self.failure_threshold.max(1),
            open_calls: self.open_calls.max(1),
            half_open_permits: self.half_open_permits.max(1),
            success_to_close: self.success_to_close.max(1),
        }
    }
}

/// The closed/open/half-open breaker state machine. One instance per
/// protected stage; see the module docs for the transition diagram.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    /// Consecutive failures observed in `Closed`.
    consecutive_failures: u32,
    /// Calls rejected so far in the current `Open` window.
    rejected: u32,
    /// Probe permits currently handed out in `HalfOpen`.
    permits_out: u32,
    /// Probe successes accumulated in the current `HalfOpen` episode.
    half_open_successes: u32,
    /// Lifetime count of `Closed → Open` and `HalfOpen → Open` trips.
    times_opened: u64,
}

impl CircuitBreaker {
    /// A closed breaker with the given config (zeros normalized to 1).
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config: config.sanitized(),
            state: BreakerState::Closed,
            consecutive_failures: 0,
            rejected: 0,
            permits_out: 0,
            half_open_successes: 0,
            times_opened: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Lifetime number of transitions into `Open`.
    pub fn times_opened(&self) -> u64 {
        self.times_opened
    }

    /// Ask to make a call. `true` hands out a permit that MUST be
    /// returned by exactly one later [`on_success`](Self::on_success)
    /// or [`on_failure`](Self::on_failure); `false` means the call is
    /// rejected (fail fast) and nothing may be reported back.
    pub fn allow(&mut self) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                self.rejected += 1;
                if self.rejected >= self.config.open_calls {
                    self.state = BreakerState::HalfOpen;
                    self.permits_out = 0;
                    self.half_open_successes = 0;
                }
                false
            }
            BreakerState::HalfOpen => {
                if self.permits_out < self.config.half_open_permits {
                    self.permits_out += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Report that a permitted call succeeded.
    pub fn on_success(&mut self) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures = 0;
            }
            BreakerState::HalfOpen => {
                self.permits_out = self.permits_out.saturating_sub(1);
                self.half_open_successes += 1;
                if self.half_open_successes >= self.config.success_to_close {
                    self.state = BreakerState::Closed;
                    self.consecutive_failures = 0;
                    self.permits_out = 0;
                }
            }
            // A success racing a trip (permit issued in Closed, breaker
            // opened meanwhile) is stale news: ignore it.
            BreakerState::Open => {}
        }
    }

    /// Report that a permitted call failed.
    pub fn on_failure(&mut self) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.trip();
                }
            }
            BreakerState::HalfOpen => {
                self.permits_out = self.permits_out.saturating_sub(1);
                self.trip();
            }
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open;
        self.rejected = 0;
        self.permits_out = 0;
        self.half_open_successes = 0;
        self.consecutive_failures = 0;
        self.times_opened += 1;
    }
}

/// A state change observed by one breaker operation. `before == after`
/// means the operation left the state untouched (counters may still have
/// moved). Callers use this to count transitions on metrics without
/// racing a second state read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerTransition {
    pub before: BreakerState,
    pub after: BreakerState,
}

impl BreakerTransition {
    /// Whether the operation changed the state.
    pub fn changed(self) -> bool {
        self.before != self.after
    }
}

// Bit layout of the packed breaker word (see `SharedBreaker`):
// counters saturate at 16 bits, which is far above any sane threshold
// (configs are normalized below `COUNTER_MAX` at construction).
const FAILURES_SHIFT: u32 = 0;
const REJECTED_SHIFT: u32 = 16;
const PERMITS_SHIFT: u32 = 32;
const SUCCESSES_SHIFT: u32 = 48;
const STATE_SHIFT: u32 = 62;
/// The successes field stops at bit 61 — bits 62–63 hold the state tag.
const FIELD_MASKS: [u64; 4] = [0xFFFF, 0xFFFF, 0xFFFF, 0x3FFF];
/// Counters saturate at the narrowest field's capacity; configs are
/// clamped one below so thresholds stay reachable.
const COUNTER_MAX: u64 = 0x3FFF;

#[inline]
fn mask_for(shift: u32) -> u64 {
    FIELD_MASKS[(shift / 16) as usize]
}

#[inline]
fn field(bits: u64, shift: u32) -> u64 {
    (bits >> shift) & mask_for(shift)
}

#[inline]
fn set_field(bits: u64, shift: u32, value: u64) -> u64 {
    let mask = mask_for(shift);
    (bits & !(mask << shift)) | ((value.min(mask)) << shift)
}

#[inline]
fn state_of(bits: u64) -> BreakerState {
    match bits >> STATE_SHIFT {
        0 => BreakerState::Closed,
        1 => BreakerState::Open,
        _ => BreakerState::HalfOpen,
    }
}

#[inline]
fn with_state(bits: u64, state: BreakerState) -> u64 {
    let tag: u64 = match state {
        BreakerState::Closed => 0,
        BreakerState::Open => 1,
        BreakerState::HalfOpen => 2,
    };
    (bits & !(0b11 << STATE_SHIFT)) | (tag << STATE_SHIFT)
}

/// The same closed/open/half-open state machine as [`CircuitBreaker`],
/// internally synchronized for concurrent callers.
///
/// All mutable state (state tag + the four counters) lives in one packed
/// `AtomicU64`; every operation is a compare-and-swap loop over that
/// word, so concurrent `allow`/`on_success`/`on_failure` calls serialize
/// per-operation and can never hand out more than `half_open_permits`
/// probe permits or double-count a transition. Counters saturate at
/// the narrowest field's 14 bits; thresholds are clamped below that at
/// construction so the saturation is unreachable in practice.
#[derive(Debug)]
pub struct SharedBreaker {
    config: BreakerConfig,
    bits: AtomicU64,
    /// Lifetime `* → Open` trips (monotonic; incremented once by the CAS
    /// winner of each trip).
    times_opened: AtomicU64,
}

impl SharedBreaker {
    /// A closed breaker with the given config (zeros normalized to 1,
    /// thresholds clamped below the 16-bit counter saturation point).
    pub fn new(config: BreakerConfig) -> SharedBreaker {
        let s = config.sanitized();
        let cap = (COUNTER_MAX - 1) as u32;
        SharedBreaker {
            config: BreakerConfig {
                failure_threshold: s.failure_threshold.min(cap),
                open_calls: s.open_calls.min(cap),
                half_open_permits: s.half_open_permits.min(cap),
                success_to_close: s.success_to_close.min(cap),
            },
            bits: AtomicU64::new(with_state(0, BreakerState::Closed)),
            times_opened: AtomicU64::new(0),
        }
    }

    /// Current state (a racy snapshot under concurrency).
    pub fn state(&self) -> BreakerState {
        state_of(self.bits.load(Ordering::Acquire))
    }

    /// Lifetime number of transitions into `Open`.
    pub fn times_opened(&self) -> u64 {
        self.times_opened.load(Ordering::Acquire)
    }

    /// Ask to make a call; same contract as [`CircuitBreaker::allow`]:
    /// `true` hands out a permit that MUST be settled by exactly one
    /// later `on_success`/`on_failure`.
    pub fn allow(&self) -> (bool, BreakerTransition) {
        self.update(|bits| match state_of(bits) {
            BreakerState::Closed => (bits, true),
            BreakerState::Open => {
                let rejected = field(bits, REJECTED_SHIFT) + 1;
                let next = if rejected >= u64::from(self.config.open_calls) {
                    let half = with_state(bits, BreakerState::HalfOpen);
                    let half = set_field(half, PERMITS_SHIFT, 0);
                    set_field(half, SUCCESSES_SHIFT, 0)
                } else {
                    set_field(bits, REJECTED_SHIFT, rejected)
                };
                (next, false)
            }
            BreakerState::HalfOpen => {
                let permits = field(bits, PERMITS_SHIFT);
                if permits < u64::from(self.config.half_open_permits) {
                    (set_field(bits, PERMITS_SHIFT, permits + 1), true)
                } else {
                    (bits, false)
                }
            }
        })
    }

    /// Report that a permitted call succeeded.
    pub fn on_success(&self) -> BreakerTransition {
        self.update(|bits| match state_of(bits) {
            BreakerState::Closed => (set_field(bits, FAILURES_SHIFT, 0), ()),
            BreakerState::HalfOpen => {
                let permits = field(bits, PERMITS_SHIFT).saturating_sub(1);
                let successes = field(bits, SUCCESSES_SHIFT) + 1;
                let next = if successes >= u64::from(self.config.success_to_close) {
                    let closed = with_state(bits, BreakerState::Closed);
                    let closed = set_field(closed, FAILURES_SHIFT, 0);
                    set_field(closed, PERMITS_SHIFT, 0)
                } else {
                    let b = set_field(bits, PERMITS_SHIFT, permits);
                    set_field(b, SUCCESSES_SHIFT, successes)
                };
                (next, ())
            }
            // A success racing a trip is stale news: ignore it.
            BreakerState::Open => (bits, ()),
        })
        .1
    }

    /// Report that a permitted call failed.
    pub fn on_failure(&self) -> BreakerTransition {
        self.update(|bits| match state_of(bits) {
            BreakerState::Closed => {
                let failures = field(bits, FAILURES_SHIFT) + 1;
                let next = if failures >= u64::from(self.config.failure_threshold) {
                    Self::tripped(bits)
                } else {
                    set_field(bits, FAILURES_SHIFT, failures)
                };
                (next, ())
            }
            BreakerState::HalfOpen => (Self::tripped(bits), ()),
            BreakerState::Open => (bits, ()),
        })
        .1
    }

    /// The fully-reset `Open` word (the atomic analogue of
    /// [`CircuitBreaker::trip`]).
    fn tripped(bits: u64) -> u64 {
        let open = with_state(bits, BreakerState::Open);
        let open = set_field(open, REJECTED_SHIFT, 0);
        let open = set_field(open, PERMITS_SHIFT, 0);
        let open = set_field(open, SUCCESSES_SHIFT, 0);
        set_field(open, FAILURES_SHIFT, 0)
    }

    /// CAS loop: apply `f` to the current word until the swap sticks.
    /// The winner (and only the winner) counts a trip into `Open`.
    fn update<R: Copy>(&self, f: impl Fn(u64) -> (u64, R)) -> (R, BreakerTransition) {
        let mut current = self.bits.load(Ordering::Acquire);
        loop {
            let (next, out) = f(current);
            match self
                .bits
                .compare_exchange(current, next, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => {
                    let transition = BreakerTransition {
                        before: state_of(current),
                        after: state_of(next),
                    };
                    if transition.changed() && transition.after == BreakerState::Open {
                        self.times_opened.fetch_add(1, Ordering::AcqRel);
                    }
                    return (out, transition);
                }
                Err(actual) => current = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 2,
            open_calls: 3,
            half_open_permits: 1,
            success_to_close: 2,
        }
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let mut b = CircuitBreaker::new(config());
        assert!(b.allow());
        b.on_failure();
        assert!(b.allow());
        b.on_success(); // success resets the streak
        assert!(b.allow());
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow());
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.times_opened(), 1);
    }

    #[test]
    fn open_rejects_then_half_opens_after_open_calls() {
        let mut b = CircuitBreaker::new(config());
        b.on_failure();
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow());
        assert!(!b.allow());
        assert!(!b.allow()); // third rejection lapses the window
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn half_open_bounds_permits_and_closes_on_successes() {
        let mut b = CircuitBreaker::new(config());
        b.on_failure();
        b.on_failure();
        for _ in 0..3 {
            b.allow();
        }
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.allow(), "first probe permitted");
        assert!(!b.allow(), "second concurrent probe rejected");
        b.on_success();
        assert_eq!(b.state(), BreakerState::HalfOpen, "needs 2 successes");
        assert!(b.allow());
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_failure_reopens() {
        let mut b = CircuitBreaker::new(config());
        b.on_failure();
        b.on_failure();
        for _ in 0..3 {
            b.allow();
        }
        assert!(b.allow());
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.times_opened(), 2);
    }

    #[test]
    fn zero_config_is_normalized_not_divergent() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 0,
            open_calls: 0,
            half_open_permits: 0,
            success_to_close: 0,
        });
        assert!(b.allow());
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open, "threshold 0 acts as 1");
        assert!(!b.allow());
        assert_eq!(b.state(), BreakerState::HalfOpen, "open_calls 0 acts as 1");
        assert!(b.allow(), "permit budget 0 acts as 1");
        b.on_success();
        assert_eq!(
            b.state(),
            BreakerState::Closed,
            "success_to_close 0 acts as 1"
        );
    }

    // ---- SharedBreaker: the same state machine through `&self` ----

    #[test]
    fn shared_trips_after_consecutive_failures_only() {
        let b = SharedBreaker::new(config());
        assert!(b.allow().0);
        b.on_failure();
        assert!(b.allow().0);
        b.on_success(); // success resets the streak
        assert!(b.allow().0);
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allow().0);
        let t = b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.times_opened(), 1);
        assert_eq!(
            t,
            BreakerTransition {
                before: BreakerState::Closed,
                after: BreakerState::Open,
            }
        );
    }

    #[test]
    fn shared_open_rejects_then_half_opens_after_open_calls() {
        let b = SharedBreaker::new(config());
        b.on_failure();
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allow().0);
        assert!(!b.allow().0);
        let (ok, t) = b.allow(); // third rejection lapses the window
        assert!(!ok);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(t.after, BreakerState::HalfOpen);
    }

    #[test]
    fn shared_half_open_bounds_permits_and_closes_on_successes() {
        let b = SharedBreaker::new(config());
        b.on_failure();
        b.on_failure();
        for _ in 0..3 {
            b.allow();
        }
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.allow().0, "first probe permitted");
        assert!(!b.allow().0, "second concurrent probe rejected");
        b.on_success();
        assert_eq!(b.state(), BreakerState::HalfOpen, "needs 2 successes");
        assert!(b.allow().0);
        let t = b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(t.after, BreakerState::Closed);
    }

    #[test]
    fn shared_half_open_failure_reopens() {
        let b = SharedBreaker::new(config());
        b.on_failure();
        b.on_failure();
        for _ in 0..3 {
            b.allow();
        }
        assert!(b.allow().0);
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.times_opened(), 2);
    }

    #[test]
    fn shared_zero_config_is_normalized_not_divergent() {
        let b = SharedBreaker::new(BreakerConfig {
            failure_threshold: 0,
            open_calls: 0,
            half_open_permits: 0,
            success_to_close: 0,
        });
        assert!(b.allow().0);
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open, "threshold 0 acts as 1");
        assert!(!b.allow().0);
        assert_eq!(b.state(), BreakerState::HalfOpen, "open_calls 0 acts as 1");
        assert!(b.allow().0, "permit budget 0 acts as 1");
        b.on_success();
        assert_eq!(
            b.state(),
            BreakerState::Closed,
            "success_to_close 0 acts as 1"
        );
    }

    /// Drive one shared breaker from many threads with an
    /// always-failing workload: permits must be conserved (never more
    /// than `half_open_permits` concurrent probes) and the trip counter
    /// must equal the number of Closed/HalfOpen → Open transitions the
    /// CAS winners observed.
    #[test]
    fn shared_breaker_conserves_permits_under_contention() {
        use std::sync::atomic::{AtomicI64, AtomicU64 as Au64};

        let b = SharedBreaker::new(BreakerConfig {
            failure_threshold: 3,
            open_calls: 2,
            half_open_permits: 2,
            success_to_close: 2,
        });
        let outstanding = AtomicI64::new(0);
        let max_outstanding = AtomicI64::new(0);
        let trips_seen = Au64::new(0);

        saccs_rt::scope(|s| {
            for worker in 0..8 {
                let (b, outstanding, max_outstanding, trips_seen) =
                    (&b, &outstanding, &max_outstanding, &trips_seen);
                s.spawn(move || {
                    for call in 0..500u32 {
                        let (ok, t) = b.allow();
                        if t.changed() && t.after == BreakerState::Open {
                            trips_seen.fetch_add(1, Ordering::AcqRel);
                        }
                        if !ok {
                            continue;
                        }
                        let now = outstanding.fetch_add(1, Ordering::AcqRel) + 1;
                        max_outstanding.fetch_max(now, Ordering::AcqRel);
                        let t = if (worker + call) % 3 == 0 {
                            outstanding.fetch_sub(1, Ordering::AcqRel);
                            b.on_success()
                        } else {
                            outstanding.fetch_sub(1, Ordering::AcqRel);
                            b.on_failure()
                        };
                        if t.changed() && t.after == BreakerState::Open {
                            trips_seen.fetch_add(1, Ordering::AcqRel);
                        }
                    }
                });
            }
        });

        assert_eq!(outstanding.load(Ordering::Acquire), 0, "permit leak");
        assert!(
            b.times_opened() >= 1,
            "a 2/3-failure workload never tripped the breaker"
        );
        assert_eq!(
            trips_seen.load(Ordering::Acquire),
            b.times_opened(),
            "every trip must be observed by exactly one transition"
        );
    }

    /// The shared breaker replays the exact `CircuitBreaker` transcript
    /// under a serial call sequence: same allows, same states.
    #[test]
    fn shared_breaker_matches_serial_breaker_transcript() {
        let mut serial = CircuitBreaker::new(config());
        let shared = SharedBreaker::new(config());
        // A deterministic mixed workload long enough to cycle
        // closed → open → half-open → closed → open again.
        for step in 0..200u32 {
            let a = serial.allow();
            let b = shared.allow().0;
            assert_eq!(a, b, "allow diverged at step {step}");
            if a {
                if step % 5 == 0 {
                    serial.on_success();
                    shared.on_success();
                } else {
                    serial.on_failure();
                    shared.on_failure();
                }
            }
            assert_eq!(serial.state(), shared.state(), "state at step {step}");
        }
        assert_eq!(serial.times_opened(), shared.times_opened());
    }
}

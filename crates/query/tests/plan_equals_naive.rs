//! Property tests: every compiled plan equals the naive tree-walking
//! evaluator over random corpora × random ASTs × random θ thresholds,
//! under both join orders, with ANN on and off, and under random
//! permutations of `AND`/`OR` children (join-order invariance).

use proptest::prelude::*;
use saccs_index::{IndexConfig, SubjectiveIndex};
use saccs_query::{
    compile, naive_matches, CmpOp, Filter, FilterExpr, JoinOrder, ObjectiveCatalog, ObjectivePred,
};
use saccs_text::{ConceptualSimilarity, Domain, Lexicon, SubjectiveTag};

/// Deterministic generator state derived from the proptest case seed.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        // splitmix64
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn unit(&mut self) -> f32 {
        (self.next() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// The tag vocabulary corpora draw from (restaurant-domain words so the
/// similarity fallback for unknown tags has a lexicon to work with).
const VOCAB: [(&str, &str); 8] = [
    ("delicious", "food"),
    ("quiet", "noise level"),
    ("romantic", "ambience"),
    ("expensive", "price"),
    ("friendly", "staff"),
    ("fresh", "fish"),
    ("slow", "service"),
    ("good", "atmosphere"),
];

/// Synthetic objective catalog: every attribute a pure function of the
/// entity id and the corpus seed.
struct SynthCatalog {
    universe: usize,
    salt: u64,
}

impl SynthCatalog {
    fn h(&self, id: usize, k: u64) -> u64 {
        let mut g = Gen(self.salt ^ (id as u64).wrapping_mul(0x100000001b3) ^ k);
        g.next()
    }
}

impl ObjectiveCatalog for SynthCatalog {
    fn universe(&self) -> usize {
        self.universe
    }
    fn attribute(&self, id: usize, name: &str) -> Option<&str> {
        match name {
            "PriceRange" => Some(["1", "2", "3", "4"][(self.h(id, 1) % 4) as usize]),
            "NoiseLevel" => Some(["quiet", "average", "loud"][(self.h(id, 2) % 3) as usize]),
            "Ambience" => Some(["romantic", "casual", "classy"][(self.h(id, 3) % 3) as usize]),
            _ => None,
        }
    }
    fn stars(&self, id: usize) -> Option<f32> {
        Some(3.0 + 0.5 * (self.h(id, 4) % 5) as f32)
    }
    fn has_attribute(&self, name: &str) -> bool {
        matches!(name, "PriceRange" | "NoiseLevel" | "Ambience")
    }
}

fn build_index(g: &mut Gen, universe: usize, ann: bool) -> SubjectiveIndex {
    let mut config = IndexConfig::default();
    config.ann_enabled = ann;
    let mut ix = SubjectiveIndex::new(
        ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants)),
        config,
    );
    // Index a random subset of the vocabulary (so some query tags are
    // unknown and exercise the probe fallback), with random posting
    // densities per tag.
    for (op, asp) in VOCAB {
        if g.below(4) == 0 {
            continue; // leave this tag unindexed
        }
        let density = 1 + g.below(3); // keep 1/4 .. 3/4 of entities
        let mut raw = Vec::new();
        for id in 0..universe {
            if g.below(4) < density {
                raw.push((id, 0.05 + 0.95 * g.unit()));
            }
        }
        ix.install_postings(SubjectiveTag::new(op, asp), raw);
    }
    ix
}

fn gen_leaf(g: &mut Gen) -> FilterExpr {
    match g.below(6) {
        0 | 1 => {
            let (op, asp) = VOCAB[g.below(VOCAB.len() as u64) as usize];
            FilterExpr::Threshold {
                tag: SubjectiveTag::new(op, asp),
                theta: g.unit() * 0.8,
            }
        }
        2 => {
            let (op, _) = VOCAB[g.below(VOCAB.len() as u64) as usize];
            FilterExpr::Opinion {
                word: op.to_string(),
                theta: g.unit() * 0.8,
            }
        }
        3 => FilterExpr::Objective(ObjectivePred::Price {
            op: gen_cmp(g),
            value: 1 + g.below(4) as u8,
        }),
        4 => FilterExpr::Objective(ObjectivePred::Stars {
            op: gen_cmp(g),
            value: 3.0 + 0.5 * g.below(5) as f32,
        }),
        _ => {
            let (name, values): (&str, &[&str]) = match g.below(2) {
                0 => ("NoiseLevel", &["quiet", "average", "loud"]),
                _ => ("Ambience", &["romantic", "casual", "classy"]),
            };
            FilterExpr::Objective(ObjectivePred::Attribute {
                name: name.to_string(),
                value: values[g.below(values.len() as u64) as usize].to_string(),
                negated: g.below(2) == 0,
            })
        }
    }
}

fn gen_cmp(g: &mut Gen) -> CmpOp {
    [
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
        CmpOp::Eq,
        CmpOp::Ne,
    ][g.below(6) as usize]
}

fn gen_expr(g: &mut Gen, depth: usize) -> FilterExpr {
    if depth == 0 || g.below(5) < 2 {
        return gen_leaf(g);
    }
    match g.below(3) {
        0 => FilterExpr::And(
            (0..2 + g.below(3))
                .map(|_| gen_expr(g, depth - 1))
                .collect(),
        ),
        1 => FilterExpr::Or(
            (0..2 + g.below(3))
                .map(|_| gen_expr(g, depth - 1))
                .collect(),
        ),
        _ => FilterExpr::Not(Box::new(gen_expr(g, depth - 1))),
    }
}

/// Recursively shuffle the children of every `AND`/`OR` node.
fn permute(expr: &FilterExpr, g: &mut Gen) -> FilterExpr {
    match expr {
        FilterExpr::And(cs) | FilterExpr::Or(cs) => {
            let mut kids: Vec<FilterExpr> = cs.iter().map(|c| permute(c, g)).collect();
            // Fisher–Yates on the derived generator.
            for i in (1..kids.len()).rev() {
                let j = g.below((i + 1) as u64) as usize;
                kids.swap(i, j);
            }
            if matches!(expr, FilterExpr::And(_)) {
                FilterExpr::And(kids)
            } else {
                FilterExpr::Or(kids)
            }
        }
        FilterExpr::Not(c) => FilterExpr::Not(Box::new(permute(c, g))),
        leaf => leaf.clone(),
    }
}

proptest! {
    #![proptest_config(prop::test_runner::Config::with_cases(96))]

    /// Planner == naive evaluator, both join orders, ANN on and off,
    /// and invariant under random permutations of connective children.
    #[test]
    fn plan_equals_naive(seed in 0u64..u64::MAX) {
        let mut g = Gen(seed);
        let universe = 2 + g.below(63) as usize;
        let corpus_seed = g.next();
        let mut cg = Gen(corpus_seed);
        let ix = build_index(&mut cg, universe, false);
        let mut cg_ann = Gen(corpus_seed);
        let ix_ann = build_index(&mut cg_ann, universe, true);
        let catalog = SynthCatalog { universe, salt: g.next() };

        let filter = Filter::from_expr(gen_expr(&mut g, 3));
        prop_assume!(filter.validate().is_ok());

        let naive = naive_matches(&filter, &ix, &catalog).expect("naive evaluates");
        let rarest = compile(&filter, &ix, &catalog, JoinOrder::RarestFirst)
            .expect("compiles")
            .bitmap()
            .to_vec();
        let ltr = compile(&filter, &ix, &catalog, JoinOrder::LeftToRight)
            .expect("compiles")
            .bitmap()
            .to_vec();
        prop_assert_eq!(&rarest, &naive, "rarest-first vs naive, filter {}", filter.normal());
        prop_assert_eq!(&ltr, &naive, "left-to-right vs naive, filter {}", filter.normal());

        // ANN on: identical postings, identical result sets (the probe
        // fallback is bitwise-equal by the index contract).
        let rarest_ann = compile(&filter, &ix_ann, &catalog, JoinOrder::RarestFirst)
            .expect("compiles")
            .bitmap()
            .to_vec();
        prop_assert_eq!(&rarest_ann, &naive, "ANN on vs naive, filter {}", filter.normal());

        // Join-order invariance: any permutation of AND/OR children
        // yields the same result set.
        let shuffled = Filter::from_expr(permute(filter.expr(), &mut g));
        let shuffled_ids = compile(&shuffled, &ix, &catalog, JoinOrder::RarestFirst)
            .expect("compiles")
            .bitmap()
            .to_vec();
        prop_assert_eq!(&shuffled_ids, &naive, "permuted children, filter {}", shuffled.normal());
    }
}

//! # saccs-query
//!
//! The subjective query language: compose degree-of-truth predicates
//! over index tags with objective catalog constraints, under
//! `AND`/`OR`/`NOT`, and compile the result against a pinned index
//! snapshot into an entity bitmap a ranking pass can intersect with.
//!
//! The paper ranks the tags of a single utterance; Subjective Databases
//! (Trummer et al., PAPERS.md) motivates the compositional form this
//! crate adds — "clean rooms AND quiet, NOT expensive, rating > 4".
//! Three layers:
//!
//! * [`ast`] — the typed [`Filter`] / [`FilterExpr`] tree and its
//!   validation seam (depth/leaf bounds, θ and literal ranges),
//! * [`parse`] — the tiny text DSL
//!   (`"delicious AND (quiet OR romantic) AND NOT expensive, price<=2"`),
//!   with byte-offset error spans,
//! * [`plan`] + [`bitmap`] — compilation to entity bitmaps: posting
//!   streams with θ folded into iteration, word-wise boolean
//!   combinators, and a cost-based planner that intersects rarest-first
//!   on per-tag posting-length statistics, with objective predicates
//!   folded into the same plan (never post-filtered).
//!
//! `saccs-core` surfaces all of this as `RankRequest::with_filter`, the
//! one front door: the serve path, resilience ladder, tracing and live
//! pinned snapshots get it without any new entry point. The planner is
//! deterministic — identical plans and bitwise-identical results at any
//! serve width, ANN on or off, across interleaved ingestion states —
//! and [`plan::naive_matches`] is the reference evaluator the property
//! tests hold it to.

/// The typed filter AST and validation.
pub mod ast;
/// Entity-id bitmaps and their boolean combinators.
pub mod bitmap;
/// The text DSL parser.
pub mod parse;
/// Compilation, cost-based planning, and the naive reference evaluator.
pub mod plan;

/// The filter value a `RankRequest` carries.
pub use ast::{CmpOp, Filter, FilterExpr, ObjectivePred, QueryError};
/// Bitmap type for compiled predicate streams.
pub use bitmap::EntityBitmap;
/// Compilation entry points and the catalog trait the core implements.
pub use plan::{compile, naive_matches, CompiledFilter, JoinOrder, ObjectiveCatalog, PlanSummary};

//! Entity-id bitmaps: the physical representation a compiled filter
//! evaluates over.
//!
//! Each predicate leaf materializes into an [`EntityBitmap`] over the
//! snapshot's entity universe `0..universe`; the boolean connectives
//! become word-wise `AND`/`OR`/`AND-NOT` over `u64` blocks, so a
//! 100k-entity universe is ~1.6k words and an intersection is a few
//! microseconds regardless of how selective the predicates are. The
//! planner ([`crate::plan`]) orders these combines rarest-first.

/// A fixed-universe bitset of entity ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityBitmap {
    words: Vec<u64>,
    universe: usize,
}

impl EntityBitmap {
    /// An empty bitmap over `0..universe`.
    pub fn empty(universe: usize) -> EntityBitmap {
        EntityBitmap {
            words: vec![0; universe.div_ceil(64)],
            universe,
        }
    }

    /// A bitmap with every id in `0..universe` set.
    pub fn full(universe: usize) -> EntityBitmap {
        let mut b = EntityBitmap {
            words: vec![u64::MAX; universe.div_ceil(64)],
            universe,
        };
        b.clear_tail();
        b
    }

    /// The universe size this bitmap was built over.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Zero the bits above `universe` in the last word so popcounts and
    /// complements stay exact.
    fn clear_tail(&mut self) {
        let tail = self.universe % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Set entity `id`. Ids at or beyond the universe are ignored (a
    /// posting for an entity the pinned snapshot has not admitted yet
    /// cannot pass the filter anyway).
    pub fn insert(&mut self, id: usize) {
        if id < self.universe {
            self.words[id / 64] |= 1u64 << (id % 64);
        }
    }

    /// Is entity `id` set?
    pub fn contains(&self, id: usize) -> bool {
        id < self.universe && self.words[id / 64] & (1u64 << (id % 64)) != 0
    }

    /// `self &= other` word-wise.
    pub fn and_assign(&mut self, other: &EntityBitmap) {
        debug_assert_eq!(self.universe, other.universe);
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w &= *o;
        }
    }

    /// `self |= other` word-wise.
    pub fn or_assign(&mut self, other: &EntityBitmap) {
        debug_assert_eq!(self.universe, other.universe);
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w |= *o;
        }
    }

    /// `self &= !other` word-wise (AND-NOT).
    pub fn and_not_assign(&mut self, other: &EntityBitmap) {
        debug_assert_eq!(self.universe, other.universe);
        for (w, o) in self.words.iter_mut().zip(other.words.iter()) {
            *w &= !*o;
        }
    }

    /// Flip every bit within the universe (complement relative to
    /// `0..universe`).
    pub fn complement(&mut self) {
        for w in self.words.iter_mut() {
            *w = !*w;
        }
        self.clear_tail();
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Is the bitmap empty?
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Iterate set entity ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + b)
            })
        })
    }

    /// Collect the set ids into a `Vec`, ascending.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_count_roundtrip() {
        let mut b = EntityBitmap::empty(130);
        for id in [0, 63, 64, 65, 129] {
            b.insert(id);
        }
        b.insert(130); // beyond the universe: ignored
        assert_eq!(b.count(), 5);
        assert!(b.contains(64));
        assert!(!b.contains(1));
        assert!(!b.contains(130));
        assert_eq!(b.to_vec(), vec![0, 63, 64, 65, 129]);
    }

    #[test]
    fn combinators_match_set_algebra() {
        let mut a = EntityBitmap::empty(100);
        let mut b = EntityBitmap::empty(100);
        for id in 0..50 {
            a.insert(id);
        }
        for id in 25..75 {
            b.insert(id);
        }
        let mut and = a.clone();
        and.and_assign(&b);
        assert_eq!(and.to_vec(), (25..50).collect::<Vec<_>>());
        let mut or = a.clone();
        or.or_assign(&b);
        assert_eq!(or.count(), 75);
        let mut anb = a.clone();
        anb.and_not_assign(&b);
        assert_eq!(anb.to_vec(), (0..25).collect::<Vec<_>>());
    }

    #[test]
    fn complement_respects_the_universe_tail() {
        let mut b = EntityBitmap::empty(70);
        b.insert(3);
        b.complement();
        assert_eq!(b.count(), 69);
        assert!(!b.contains(3));
        assert!(b.contains(69));
        assert!(!b.contains(70));
        let full = EntityBitmap::full(70);
        assert_eq!(full.count(), 70);
    }
}

//! Compiling a [`Filter`] against a pinned index snapshot.
//!
//! Each subjective leaf materializes an entity bitmap from the
//! snapshot's posting lists (degree-of-truth thresholding folded into
//! the posting iteration; unindexed tags go through the same θ_filter
//! similarity fallback a probe uses, so ANN on/off stays bitwise
//! invisible here too). Objective leaves test the catalog directly and
//! are folded into the same plan — under an `AND` they only ever
//! iterate the ids the subjective leaves already admitted, never the
//! whole universe, which is what "not post-filtered" buys.
//!
//! The cost model is deliberately small: per-tag posting lengths from
//! [`SubjectiveIndex::posting_stats`]-style statistics estimate each
//! leaf's cardinality, and `AND` nodes intersect rarest-first
//! (ties broken by original position, so plans are deterministic).
//! [`naive_matches`] is the reference evaluator the property tests and
//! the `BENCH_query` bin compare against.

use crate::ast::{Filter, FilterExpr, ObjectivePred, QueryError};
use crate::bitmap::EntityBitmap;
use saccs_index::SubjectiveIndex;

/// The objective-slot side of the catalog a filter compiles against.
/// `saccs-core` implements this for its `SearchApi` so price, rating
/// and categorical attributes resolve against the same entity set the
/// objective search stage answers from.
pub trait ObjectiveCatalog {
    /// Number of entities; entity ids are `0..universe`.
    fn universe(&self) -> usize;
    /// The entity's value for a categorical attribute, if present.
    fn attribute(&self, id: usize, name: &str) -> Option<&str>;
    /// The entity's star rating, if known.
    fn stars(&self, id: usize) -> Option<f32>;
    /// Does the schema define this attribute at all? Unknown names are
    /// a compile error (→ the service's unfiltered degradation rung),
    /// not a silently-empty predicate.
    fn has_attribute(&self, name: &str) -> bool;
}

/// Join-order policy for `AND` nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinOrder {
    /// Intersect in ascending estimated-cardinality order (the cost-based
    /// default).
    RarestFirst,
    /// Intersect in source order (the naive baseline the bench A/Bs).
    LeftToRight,
}

impl JoinOrder {
    /// Label used in plan summaries and reports.
    pub fn label(self) -> &'static str {
        match self {
            JoinOrder::RarestFirst => "rarest_first",
            JoinOrder::LeftToRight => "left_to_right",
        }
    }
}

/// What the planner did, for the `algo1.filter` trace span and the
/// flight recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanSummary {
    /// Total predicate leaves.
    pub leaves: u32,
    /// Subjective (threshold/opinion) leaves.
    pub subjective: u32,
    /// Objective (price/rating/attribute) leaves.
    pub objective: u32,
    /// Entities in the compiled bitmap.
    pub matched: u32,
    /// Join-order policy label.
    pub order: &'static str,
}

/// A filter compiled against one pinned snapshot: the final entity
/// bitmap plus the plan summary.
#[derive(Debug, Clone)]
pub struct CompiledFilter {
    bitmap: EntityBitmap,
    summary: PlanSummary,
}

impl CompiledFilter {
    /// Does entity `id` pass the filter?
    pub fn contains(&self, id: usize) -> bool {
        self.bitmap.contains(id)
    }

    /// Number of entities passing the filter.
    pub fn count(&self) -> usize {
        self.bitmap.count()
    }

    /// The compiled entity bitmap.
    pub fn bitmap(&self) -> &EntityBitmap {
        &self.bitmap
    }

    /// The plan summary.
    pub fn summary(&self) -> PlanSummary {
        self.summary
    }
}

struct Ctx<'a> {
    index: &'a SubjectiveIndex,
    catalog: &'a dyn ObjectiveCatalog,
    order: JoinOrder,
    universe: usize,
}

/// Compile `filter` against a pinned `index` snapshot and objective
/// `catalog`. Fails (without touching the index) on unknown attribute
/// names or invalid ASTs — the service maps that to the unfiltered
/// degradation rung.
pub fn compile(
    filter: &Filter,
    index: &SubjectiveIndex,
    catalog: &dyn ObjectiveCatalog,
    order: JoinOrder,
) -> Result<CompiledFilter, QueryError> {
    filter.validate()?;
    check_schema(filter.expr(), catalog)?;
    let ctx = Ctx {
        index,
        catalog,
        order,
        universe: catalog.universe(),
    };
    let bitmap = eval(filter.expr(), &ctx, None);
    let (subjective, objective) = leaf_counts(filter.expr());
    let summary = PlanSummary {
        leaves: filter.leaves() as u32,
        subjective,
        objective,
        matched: bitmap.count() as u32,
        order: order.label(),
    };
    Ok(CompiledFilter { bitmap, summary })
}

/// Reject predicates over attributes the catalog does not define.
fn check_schema(expr: &FilterExpr, catalog: &dyn ObjectiveCatalog) -> Result<(), QueryError> {
    match expr {
        FilterExpr::And(cs) | FilterExpr::Or(cs) => {
            for c in cs {
                check_schema(c, catalog)?;
            }
            Ok(())
        }
        FilterExpr::Not(c) => check_schema(c, catalog),
        FilterExpr::Objective(ObjectivePred::Attribute { name, .. }) => {
            if catalog.has_attribute(name) {
                Ok(())
            } else {
                Err(QueryError::invalid(format!(
                    "unknown catalog attribute {name:?}"
                )))
            }
        }
        FilterExpr::Objective(ObjectivePred::Price { .. }) => {
            if catalog.has_attribute("PriceRange") {
                Ok(())
            } else {
                Err(QueryError::invalid(
                    "catalog has no PriceRange attribute for price predicates",
                ))
            }
        }
        _ => Ok(()),
    }
}

fn leaf_counts(expr: &FilterExpr) -> (u32, u32) {
    match expr {
        FilterExpr::And(cs) | FilterExpr::Or(cs) => cs.iter().fold((0, 0), |(s, o), c| {
            let (cs_, co) = leaf_counts(c);
            (s + cs_, o + co)
        }),
        FilterExpr::Not(c) => leaf_counts(c),
        FilterExpr::Threshold { .. } | FilterExpr::Opinion { .. } => (1, 0),
        FilterExpr::Objective(_) => (0, 1),
    }
}

/// Estimated result cardinality of a node, from per-tag posting-length
/// statistics. Exact for indexed thresholds; `universe` for anything we
/// cannot bound (probe fallbacks, objective tests, complements).
fn estimate(expr: &FilterExpr, ctx: &Ctx<'_>) -> usize {
    match expr {
        FilterExpr::And(cs) => cs.iter().map(|c| estimate(c, ctx)).min().unwrap_or(0),
        FilterExpr::Or(cs) => cs
            .iter()
            .map(|c| estimate(c, ctx))
            .fold(0usize, |a, b| a.saturating_add(b))
            .min(ctx.universe),
        FilterExpr::Not(_) => ctx.universe,
        FilterExpr::Threshold { tag, .. } => {
            let len = ctx.index.posting_len(tag);
            if len > 0 {
                len
            } else {
                // Unindexed (or indexed-empty): the similarity fallback
                // can admit anything, so assume the worst.
                ctx.universe
            }
        }
        FilterExpr::Opinion { word, .. } => {
            let mut sum = 0usize;
            for (tag, len) in ctx.index.posting_stats() {
                if tag.opinion == *word {
                    sum = sum.saturating_add(len);
                }
            }
            sum.min(ctx.universe)
        }
        FilterExpr::Objective(_) => ctx.universe,
    }
}

/// Evaluate a node into an entity bitmap. `restrict` is the candidate
/// set already admitted by earlier conjuncts: objective leaves only
/// test those ids, and complements stay within it. Posting-backed
/// leaves may return ids outside `restrict` — the caller intersects.
fn eval(expr: &FilterExpr, ctx: &Ctx<'_>, restrict: Option<&EntityBitmap>) -> EntityBitmap {
    match expr {
        FilterExpr::And(cs) => eval_and(cs, ctx, restrict),
        FilterExpr::Or(cs) => {
            let mut acc = EntityBitmap::empty(ctx.universe);
            for c in cs {
                let b = eval(c, ctx, restrict);
                acc.or_assign(&b);
            }
            acc
        }
        FilterExpr::Not(c) => {
            let mut base = match restrict {
                Some(r) => r.clone(),
                None => EntityBitmap::full(ctx.universe),
            };
            let inner = eval(c, ctx, Some(&base));
            base.and_not_assign(&inner);
            base
        }
        FilterExpr::Threshold { tag, theta } => {
            let mut b = EntityBitmap::empty(ctx.universe);
            match ctx.index.lookup(tag) {
                // A known, non-empty tag answers from its postings —
                // the θ threshold folds into the posting iteration.
                Some(postings) if !postings.is_empty() => {
                    for e in postings {
                        if e.degree_of_truth > *theta {
                            b.insert(e.entity_id);
                        }
                    }
                }
                // Unknown (or indexed-empty) tag: the same θ_filter
                // similarity fallback a ranking probe uses, so a filter
                // never disagrees with ranking about what a tag means.
                // ANN on/off is bitwise invisible by the probe contract.
                _ => {
                    for (id, score) in ctx.index.probe_readonly(tag) {
                        if score > *theta {
                            b.insert(id);
                        }
                    }
                }
            }
            b
        }
        FilterExpr::Opinion { word, theta } => {
            // Union of exact postings over every index tag carrying this
            // opinion, whatever the aspect. BTreeMap iteration order
            // keeps this deterministic.
            let mut b = EntityBitmap::empty(ctx.universe);
            let matching: Vec<_> = ctx
                .index
                .tags()
                .filter(|t| t.opinion == *word)
                .cloned()
                .collect();
            for tag in &matching {
                if let Some(postings) = ctx.index.lookup(tag) {
                    for e in postings {
                        if e.degree_of_truth > *theta {
                            b.insert(e.entity_id);
                        }
                    }
                }
            }
            b
        }
        FilterExpr::Objective(pred) => {
            let mut b = EntityBitmap::empty(ctx.universe);
            match restrict {
                // The payoff of folding objective predicates into the
                // plan: under an AND they only test the already-admitted
                // candidate ids, not the whole universe.
                Some(r) => {
                    for id in r.iter() {
                        if objective_holds(pred, ctx.catalog, id) {
                            b.insert(id);
                        }
                    }
                }
                None => {
                    for id in 0..ctx.universe {
                        if objective_holds(pred, ctx.catalog, id) {
                            b.insert(id);
                        }
                    }
                }
            }
            b
        }
    }
}

/// `AND` node: positives first (rarest-first under the cost-based
/// policy, stable on the original position so plans are deterministic),
/// with early exit once the accumulator is empty; `NOT` children are
/// applied last as AND-NOTs, evaluated restricted to the accumulator.
fn eval_and(
    children: &[FilterExpr],
    ctx: &Ctx<'_>,
    restrict: Option<&EntityBitmap>,
) -> EntityBitmap {
    let mut positives: Vec<usize> = Vec::new();
    let mut negatives: Vec<usize> = Vec::new();
    for (i, c) in children.iter().enumerate() {
        if matches!(c, FilterExpr::Not(_)) {
            negatives.push(i);
        } else {
            positives.push(i);
        }
    }
    if ctx.order == JoinOrder::RarestFirst {
        // Stable sort by estimated cardinality; ties keep source order.
        let mut keyed: Vec<(usize, usize)> = positives
            .iter()
            .map(|&i| (estimate(&children[i], ctx), i))
            .collect();
        keyed.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        positives = keyed.into_iter().map(|(_, i)| i).collect();
    }
    let mut acc: Option<EntityBitmap> = None;
    for &i in &positives {
        let narrowed = acc.as_ref().or(restrict);
        let b = eval(&children[i], ctx, narrowed);
        match acc.as_mut() {
            Some(a) => a.and_assign(&b),
            None => {
                let mut first = b;
                if let Some(r) = restrict {
                    first.and_assign(r);
                }
                acc = Some(first);
            }
        }
        if acc.as_ref().is_some_and(EntityBitmap::is_empty) {
            return acc.unwrap_or_else(|| EntityBitmap::empty(ctx.universe));
        }
    }
    let mut acc = acc.unwrap_or_else(|| match restrict {
        // All children are NOTs: start from the candidate base.
        Some(r) => r.clone(),
        None => EntityBitmap::full(ctx.universe),
    });
    for &i in &negatives {
        if acc.is_empty() {
            break;
        }
        let FilterExpr::Not(inner) = &children[i] else {
            continue;
        };
        let b = eval(inner, ctx, Some(&acc));
        acc.and_not_assign(&b);
    }
    acc
}

fn objective_holds(pred: &ObjectivePred, catalog: &dyn ObjectiveCatalog, id: usize) -> bool {
    match pred {
        ObjectivePred::Price { op, value } => catalog
            .attribute(id, "PriceRange")
            .and_then(|v| v.parse::<u8>().ok())
            .map(|p| op.holds(p, *value))
            .unwrap_or(false),
        ObjectivePred::Stars { op, value } => catalog
            .stars(id)
            .map(|s| op.holds(s, *value))
            .unwrap_or(false),
        ObjectivePred::Attribute {
            name,
            value,
            negated,
        } => match catalog.attribute(id, name) {
            // An entity missing the attribute entirely fails both forms:
            // `Ambience!=classy` asks for a known, different ambience,
            // not for ignorance.
            Some(v) => (v == value) != *negated,
            None => false,
        },
    }
}

/// The reference evaluator: a per-entity tree walk with no bitmaps, no
/// planning and no early exit. Subjective leaves resolve to sorted id
/// lists from exactly the same posting/probe source as [`compile`], so
/// any disagreement between the two is a planner bug, not a data-source
/// difference. Returns matching ids ascending.
pub fn naive_matches(
    filter: &Filter,
    index: &SubjectiveIndex,
    catalog: &dyn ObjectiveCatalog,
) -> Result<Vec<usize>, QueryError> {
    filter.validate()?;
    check_schema(filter.expr(), catalog)?;
    let universe = catalog.universe();
    let node = build_naive(filter.expr(), index, universe);
    Ok((0..universe)
        .filter(|&id| naive_holds(&node, catalog, id))
        .collect())
}

enum NaiveNode {
    And(Vec<NaiveNode>),
    Or(Vec<NaiveNode>),
    Not(Box<NaiveNode>),
    /// Sorted matching entity ids for a subjective leaf.
    Subjective(Vec<usize>),
    Objective(ObjectivePred),
}

fn build_naive(expr: &FilterExpr, index: &SubjectiveIndex, universe: usize) -> NaiveNode {
    match expr {
        FilterExpr::And(cs) => {
            NaiveNode::And(cs.iter().map(|c| build_naive(c, index, universe)).collect())
        }
        FilterExpr::Or(cs) => {
            NaiveNode::Or(cs.iter().map(|c| build_naive(c, index, universe)).collect())
        }
        FilterExpr::Not(c) => NaiveNode::Not(Box::new(build_naive(c, index, universe))),
        FilterExpr::Threshold { tag, theta } => {
            let mut ids: Vec<usize> = match index.lookup(tag) {
                Some(postings) if !postings.is_empty() => postings
                    .iter()
                    .filter(|e| e.degree_of_truth > *theta)
                    .map(|e| e.entity_id)
                    .collect(),
                _ => index
                    .probe_readonly(tag)
                    .into_iter()
                    .filter(|(_, s)| *s > *theta)
                    .map(|(id, _)| id)
                    .collect(),
            };
            ids.retain(|&id| id < universe);
            ids.sort_unstable();
            ids.dedup();
            NaiveNode::Subjective(ids)
        }
        FilterExpr::Opinion { word, theta } => {
            let mut ids: Vec<usize> = Vec::new();
            let matching: Vec<_> = index
                .tags()
                .filter(|t| t.opinion == *word)
                .cloned()
                .collect();
            for tag in &matching {
                if let Some(postings) = index.lookup(tag) {
                    ids.extend(
                        postings
                            .iter()
                            .filter(|e| e.degree_of_truth > *theta)
                            .map(|e| e.entity_id),
                    );
                }
            }
            ids.retain(|&id| id < universe);
            ids.sort_unstable();
            ids.dedup();
            NaiveNode::Subjective(ids)
        }
        FilterExpr::Objective(p) => NaiveNode::Objective(p.clone()),
    }
}

fn naive_holds(node: &NaiveNode, catalog: &dyn ObjectiveCatalog, id: usize) -> bool {
    match node {
        NaiveNode::And(cs) => cs.iter().all(|c| naive_holds(c, catalog, id)),
        NaiveNode::Or(cs) => cs.iter().any(|c| naive_holds(c, catalog, id)),
        NaiveNode::Not(c) => !naive_holds(c, catalog, id),
        NaiveNode::Subjective(ids) => ids.binary_search(&id).is_ok(),
        NaiveNode::Objective(p) => objective_holds(p, catalog, id),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;
    use saccs_index::IndexConfig;
    use saccs_text::{ConceptualSimilarity, Domain, Lexicon, SubjectiveTag};

    /// A small synthetic catalog: price cycles 1..=4, stars cycle over
    /// five values, NoiseLevel alternates quiet/average/loud.
    struct TestCatalog {
        universe: usize,
    }

    impl ObjectiveCatalog for TestCatalog {
        fn universe(&self) -> usize {
            self.universe
        }
        fn attribute(&self, id: usize, name: &str) -> Option<&str> {
            match name {
                "PriceRange" => Some(["1", "2", "3", "4"][id % 4]),
                "NoiseLevel" => Some(["quiet", "average", "loud"][id % 3]),
                _ => None,
            }
        }
        fn stars(&self, id: usize) -> Option<f32> {
            Some([3.0, 3.5, 4.0, 4.5, 5.0][id % 5])
        }
        fn has_attribute(&self, name: &str) -> bool {
            matches!(name, "PriceRange" | "NoiseLevel")
        }
    }

    fn index_with(postings: &[(&str, &str, &[(usize, f32)])]) -> SubjectiveIndex {
        let mut ix = SubjectiveIndex::new(
            ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants)),
            IndexConfig::default(),
        );
        for (op, asp, raw) in postings {
            ix.install_postings(SubjectiveTag::new(op, asp), raw.to_vec());
        }
        ix
    }

    fn compile_ids(
        filter: &Filter,
        ix: &SubjectiveIndex,
        cat: &TestCatalog,
        order: JoinOrder,
    ) -> Vec<usize> {
        compile(filter, ix, cat, order)
            .expect("compiles")
            .bitmap()
            .to_vec()
    }

    #[test]
    fn planner_matches_naive_on_the_issue_query() {
        let ix = index_with(&[
            (
                "delicious",
                "food",
                &[(0, 0.9), (1, 0.7), (2, 0.5), (5, 0.4)],
            ),
            ("quiet", "noise level", &[(1, 0.8), (3, 0.6)]),
            ("romantic", "ambience", &[(2, 0.9), (5, 0.3)]),
            ("expensive", "price", &[(0, 0.95), (5, 0.2)]),
        ]);
        let cat = TestCatalog { universe: 8 };
        let f = Filter::parse("delicious AND (quiet OR romantic) AND NOT expensive, price<=2")
            .expect("parses");
        let naive = naive_matches(&f, &ix, &cat).expect("evaluates");
        let rarest = compile_ids(&f, &ix, &cat, JoinOrder::RarestFirst);
        let ltr = compile_ids(&f, &ix, &cat, JoinOrder::LeftToRight);
        assert_eq!(rarest, naive);
        assert_eq!(ltr, naive);
        // delicious:{0,1,2,5} ∩ (quiet:{1,3} ∪ romantic:{2,5}) = {1,2,5};
        // minus expensive:{0,5} = {1,2}; price<=2 keeps id%4 ∈ {0,1} → {1}.
        assert_eq!(naive, vec![1]);
    }

    #[test]
    fn theta_folds_into_posting_iteration() {
        let ix = index_with(&[("delicious", "food", &[(0, 0.9), (1, 0.5), (2, 0.2)])]);
        let cat = TestCatalog { universe: 4 };
        let f = Filter::parse("delicious food@0.4").expect("parses");
        assert_eq!(
            compile_ids(&f, &ix, &cat, JoinOrder::RarestFirst),
            vec![0, 1]
        );
    }

    #[test]
    fn unknown_attribute_is_a_compile_error() {
        let ix = index_with(&[("quiet", "noise level", &[(0, 0.5)])]);
        let cat = TestCatalog { universe: 4 };
        let f = Filter::parse("quiet AND Parking=garage").expect("parses");
        let err = compile(&f, &ix, &cat, JoinOrder::RarestFirst).expect_err("unknown attribute");
        assert!(err.reason.contains("Parking"));
        assert!(naive_matches(&f, &ix, &cat).is_err());
    }

    #[test]
    fn pure_negation_filters_within_the_universe() {
        let ix = index_with(&[("expensive", "price", &[(1, 0.9), (2, 0.8)])]);
        let cat = TestCatalog { universe: 5 };
        let f = Filter::parse("NOT expensive price").expect("parses");
        assert_eq!(
            compile_ids(&f, &ix, &cat, JoinOrder::RarestFirst),
            vec![0, 3, 4]
        );
    }

    #[test]
    fn summary_counts_leaves_and_matches() {
        let ix = index_with(&[("quiet", "noise level", &[(0, 0.5), (3, 0.4)])]);
        let cat = TestCatalog { universe: 6 };
        let f = Filter::parse("quiet, price<=2, rating>=3.5").expect("parses");
        let c = compile(&f, &ix, &cat, JoinOrder::RarestFirst).expect("compiles");
        let s = c.summary();
        assert_eq!(s.leaves, 3);
        assert_eq!(s.subjective, 1);
        assert_eq!(s.objective, 2);
        assert_eq!(s.order, "rarest_first");
        assert_eq!(s.matched as usize, c.count());
    }

    #[test]
    fn objective_leaf_stars_comparison() {
        let ix = index_with(&[]);
        let cat = TestCatalog { universe: 10 };
        let f = Filter::from_expr(FilterExpr::Objective(ObjectivePred::Stars {
            op: CmpOp::Gt,
            value: 4.0,
        }));
        let got = compile_ids(&f, &ix, &cat, JoinOrder::RarestFirst);
        let want: Vec<usize> = (0..10)
            .filter(|i| [3.0, 3.5, 4.0, 4.5, 5.0][i % 5] > 4.0)
            .collect();
        assert_eq!(got, want);
    }
}

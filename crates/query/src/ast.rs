//! The typed query AST and the [`Filter`] value carried by a
//! `RankRequest`.
//!
//! A filter composes *subjective* predicates (degree-of-truth
//! thresholds over index tags) and *objective* predicates (price,
//! rating, categorical attributes) under `AND`/`OR`/`NOT`. Subjective
//! Databases (Trummer et al.) motivates exactly this shape: "clean
//! rooms AND quiet, NOT expensive, rating > 4". The AST is pure data —
//! compilation against a pinned index snapshot lives in
//! [`crate::plan`], parsing from the text DSL in [`crate::parse`].

use saccs_text::SubjectiveTag;
use std::fmt;

/// Hard cap on nesting depth accepted by [`Filter::validate`].
pub const MAX_DEPTH: usize = 16;
/// Hard cap on predicate leaves accepted by [`Filter::validate`].
pub const MAX_LEAVES: usize = 64;

/// A comparison operator in an objective predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Apply the comparison to two totally-ordered values.
    pub fn holds<T: PartialOrd>(self, lhs: T, rhs: T) -> bool {
        match self {
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
        }
    }

    /// The DSL surface form.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
        }
    }
}

/// An objective-slot predicate over the entity catalog, folded into the
/// same plan as the subjective leaves (never post-filtered).
#[derive(Debug, Clone, PartialEq)]
pub enum ObjectivePred {
    /// `price<=2`: the catalog's `PriceRange` attribute (1–4) compared
    /// against a literal.
    Price { op: CmpOp, value: u8 },
    /// `rating>4` / `stars>=3.5`: the star rating compared against a
    /// literal.
    Stars { op: CmpOp, value: f32 },
    /// `NoiseLevel=quiet`: a categorical attribute equality (or `!=`).
    Attribute {
        name: String,
        value: String,
        negated: bool,
    },
}

/// One node of the typed filter expression.
#[derive(Debug, Clone, PartialEq)]
pub enum FilterExpr {
    /// Every child must hold.
    And(Vec<FilterExpr>),
    /// At least one child must hold.
    Or(Vec<FilterExpr>),
    /// The child must not hold (complement within the candidate
    /// universe; the service always intersects the filter with the
    /// objective API results, so the complement never invents
    /// entities).
    Not(Box<FilterExpr>),
    /// The entity's degree of truth for `tag` must exceed `theta`.
    /// Unindexed tags score through the same θ_filter similarity
    /// fallback a probe uses, so a filter never silently diverges from
    /// what ranking would say about the tag.
    Threshold { tag: SubjectiveTag, theta: f32 },
    /// Opinion-only subjective leaf (single-word DSL terms such as
    /// `quiet`): the entity must clear `theta` under *some* index tag
    /// carrying this opinion, whatever the aspect.
    Opinion { word: String, theta: f32 },
    /// An objective catalog predicate.
    Objective(ObjectivePred),
}

impl FilterExpr {
    /// Number of predicate leaves under this node.
    pub fn leaves(&self) -> usize {
        match self {
            FilterExpr::And(cs) | FilterExpr::Or(cs) => cs.iter().map(FilterExpr::leaves).sum(),
            FilterExpr::Not(c) => c.leaves(),
            _ => 1,
        }
    }

    /// Maximum nesting depth of this node (a leaf is depth 1).
    pub fn depth(&self) -> usize {
        match self {
            FilterExpr::And(cs) | FilterExpr::Or(cs) => {
                1 + cs.iter().map(FilterExpr::depth).max().unwrap_or(0)
            }
            FilterExpr::Not(c) => 1 + c.depth(),
            _ => 1,
        }
    }

    fn check(&self) -> Result<(), QueryError> {
        match self {
            FilterExpr::And(cs) | FilterExpr::Or(cs) => {
                if cs.is_empty() {
                    return Err(QueryError::invalid("AND/OR node with no children"));
                }
                for c in cs {
                    c.check()?;
                }
                Ok(())
            }
            FilterExpr::Not(c) => c.check(),
            FilterExpr::Threshold { tag, theta } => {
                if tag.opinion.is_empty() {
                    return Err(QueryError::invalid("threshold tag has an empty opinion"));
                }
                check_theta(*theta)
            }
            FilterExpr::Opinion { word, theta } => {
                if word.is_empty() {
                    return Err(QueryError::invalid("opinion leaf is empty"));
                }
                check_theta(*theta)
            }
            FilterExpr::Objective(p) => match p {
                ObjectivePred::Price { value, .. } => {
                    if !(1..=4).contains(value) {
                        return Err(QueryError::invalid(format!(
                            "price literal {value} outside the 1..=4 range"
                        )));
                    }
                    Ok(())
                }
                ObjectivePred::Stars { value, .. } => {
                    if !value.is_finite() || !(0.0..=5.0).contains(value) {
                        return Err(QueryError::invalid(format!(
                            "rating literal {value} outside the 0..=5 range"
                        )));
                    }
                    Ok(())
                }
                ObjectivePred::Attribute { name, value, .. } => {
                    if name.is_empty() || value.is_empty() {
                        return Err(QueryError::invalid("attribute predicate with empty side"));
                    }
                    Ok(())
                }
            },
        }
    }
}

fn check_theta(theta: f32) -> Result<(), QueryError> {
    if !theta.is_finite() || !(0.0..=1.0).contains(&theta) {
        return Err(QueryError::invalid(format!(
            "theta {theta} outside the [0, 1] range"
        )));
    }
    Ok(())
}

impl fmt::Display for FilterExpr {
    /// Canonical text form: fully parenthesized, thresholds explicit.
    /// This is the normal form hashed into a request's trace key, so it
    /// must be a pure function of the AST.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterExpr::And(cs) | FilterExpr::Or(cs) => {
                let joiner = if matches!(self, FilterExpr::And(_)) {
                    " AND "
                } else {
                    " OR "
                };
                f.write_str("(")?;
                for (i, c) in cs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(joiner)?;
                    }
                    write!(f, "{c}")?;
                }
                f.write_str(")")
            }
            FilterExpr::Not(c) => write!(f, "NOT {c}"),
            FilterExpr::Threshold { tag, theta } => {
                write!(f, "{} {}@{theta}", tag.opinion, tag.aspect)
            }
            FilterExpr::Opinion { word, theta } => write!(f, "{word}@{theta}"),
            FilterExpr::Objective(ObjectivePred::Price { op, value }) => {
                write!(f, "price{}{value}", op.symbol())
            }
            FilterExpr::Objective(ObjectivePred::Stars { op, value }) => {
                write!(f, "rating{}{value}", op.symbol())
            }
            FilterExpr::Objective(ObjectivePred::Attribute {
                name,
                value,
                negated,
            }) => {
                write!(f, "{name}{}{value}", if *negated { "!=" } else { "=" })
            }
        }
    }
}

/// Why a filter could not be parsed, validated, or compiled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryError {
    /// Human-readable reason.
    pub reason: String,
    /// Byte-offset span `[start, end)` into the DSL source, when the
    /// error came out of the parser.
    pub span: Option<(usize, usize)>,
}

impl QueryError {
    /// A validation/compile error with no source location.
    pub fn invalid(reason: impl Into<String>) -> QueryError {
        QueryError {
            reason: reason.into(),
            span: None,
        }
    }

    /// A parse error anchored at byte span `[start, end)`.
    pub fn at(reason: impl Into<String>, start: usize, end: usize) -> QueryError {
        QueryError {
            reason: reason.into(),
            span: Some((start, end)),
        }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some((s, e)) => write!(f, "{} (at bytes {s}..{e})", self.reason),
            None => f.write_str(&self.reason),
        }
    }
}

impl std::error::Error for QueryError {}

/// A validated filter attached to a `RankRequest` via `with_filter` —
/// the value the whole serving stack passes through unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct Filter {
    expr: FilterExpr,
    /// The original DSL text, when the filter was parsed from one.
    source: Option<String>,
}

impl Filter {
    /// Parse a DSL string (see [`crate::parse`] for the grammar) and
    /// validate the result. Errors carry byte-offset spans.
    pub fn parse(dsl: &str) -> Result<Filter, QueryError> {
        let expr = crate::parse::parse_expr(dsl)?;
        let filter = Filter {
            expr,
            source: Some(dsl.to_string()),
        };
        filter.validate()?;
        Ok(filter)
    }

    /// Wrap an already-built AST. Validation is deferred to the
    /// `sanitized()` seam of the request builders — [`Filter::validate`]
    /// — so programmatic construction stays infallible.
    pub fn from_expr(expr: FilterExpr) -> Filter {
        Filter { expr, source: None }
    }

    /// The single validation seam: bounds on depth and leaf count, θ
    /// and literal ranges, no empty connectives. `RankRequest::sanitized`
    /// funnels through here instead of clamping silently.
    pub fn validate(&self) -> Result<(), QueryError> {
        if self.expr.depth() > MAX_DEPTH {
            return Err(QueryError::invalid(format!(
                "filter nests deeper than {MAX_DEPTH}"
            )));
        }
        let leaves = self.expr.leaves();
        if leaves == 0 {
            return Err(QueryError::invalid("filter has no predicate leaves"));
        }
        if leaves > MAX_LEAVES {
            return Err(QueryError::invalid(format!(
                "filter has {leaves} leaves (max {MAX_LEAVES})"
            )));
        }
        self.expr.check()
    }

    /// The expression tree.
    pub fn expr(&self) -> &FilterExpr {
        &self.expr
    }

    /// The DSL source this filter was parsed from, if any.
    pub fn source(&self) -> Option<&str> {
        self.source.as_deref()
    }

    /// Canonical normal form (a pure function of the AST, independent
    /// of the surface text) — the form request trace keys hash.
    pub fn normal(&self) -> String {
        self.expr.to_string()
    }

    /// Number of predicate leaves.
    pub fn leaves(&self) -> usize {
        self.expr.leaves()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(op: &str, asp: &str) -> SubjectiveTag {
        SubjectiveTag::new(op, asp)
    }

    #[test]
    fn cmp_ops_hold_as_named() {
        assert!(CmpOp::Le.holds(2, 2));
        assert!(!CmpOp::Lt.holds(2, 2));
        assert!(CmpOp::Ge.holds(4.5, 4.0));
        assert!(CmpOp::Ne.holds("a", "b"));
    }

    #[test]
    fn leaves_and_depth_count_the_tree() {
        let e = FilterExpr::And(vec![
            FilterExpr::Opinion {
                word: "quiet".into(),
                theta: 0.0,
            },
            FilterExpr::Not(Box::new(FilterExpr::Or(vec![
                FilterExpr::Threshold {
                    tag: t("delicious", "food"),
                    theta: 0.2,
                },
                FilterExpr::Objective(ObjectivePred::Price {
                    op: CmpOp::Le,
                    value: 2,
                }),
            ]))),
        ]);
        assert_eq!(e.leaves(), 3);
        assert_eq!(e.depth(), 4);
    }

    #[test]
    fn validate_rejects_out_of_range_literals() {
        let bad_theta = Filter::from_expr(FilterExpr::Threshold {
            tag: t("delicious", "food"),
            theta: 1.5,
        });
        assert!(bad_theta.validate().is_err());
        let bad_price = Filter::from_expr(FilterExpr::Objective(ObjectivePred::Price {
            op: CmpOp::Eq,
            value: 9,
        }));
        assert!(bad_price.validate().is_err());
        let bad_stars = Filter::from_expr(FilterExpr::Objective(ObjectivePred::Stars {
            op: CmpOp::Gt,
            value: f32::NAN,
        }));
        assert!(bad_stars.validate().is_err());
        let empty_and = Filter::from_expr(FilterExpr::And(Vec::new()));
        assert!(empty_and.validate().is_err());
    }

    #[test]
    fn validate_bounds_depth_and_leaves() {
        let mut deep = FilterExpr::Opinion {
            word: "quiet".into(),
            theta: 0.0,
        };
        for _ in 0..MAX_DEPTH {
            deep = FilterExpr::Not(Box::new(deep));
        }
        assert!(Filter::from_expr(deep).validate().is_err());
        let wide = FilterExpr::Or(
            (0..=MAX_LEAVES)
                .map(|i| FilterExpr::Opinion {
                    word: format!("w{i}"),
                    theta: 0.0,
                })
                .collect(),
        );
        assert!(Filter::from_expr(wide).validate().is_err());
    }

    #[test]
    fn normal_form_is_stable_and_content_sensitive() {
        let a = Filter::parse("delicious AND NOT expensive, price<=2").expect("parses");
        let b = Filter::parse("delicious AND NOT expensive, price<=2").expect("parses");
        assert_eq!(a.normal(), b.normal());
        let c = Filter::parse("delicious AND NOT expensive, price<=3").expect("parses");
        assert_ne!(a.normal(), c.normal());
    }
}

//! The text DSL for subjective filters.
//!
//! Grammar (lowest to highest precedence):
//!
//! ```text
//! filter  := clause (',' clause)*          -- comma is a top-level AND
//! clause  := orexpr
//! orexpr  := andexpr ('OR' andexpr)*
//! andexpr := unary ('AND' unary)*
//! unary   := 'NOT' unary | primary
//! primary := '(' orexpr ')' | term
//! term    := objective | subjective
//! objective  := 'price' cmp INT            -- PriceRange, 1..=4
//!             | ('rating'|'stars') cmp NUM -- star rating, 0..=5
//!             | WORD ('='|'!=') WORD       -- catalog attribute
//! subjective := WORD [WORD] ['@' NUM]      -- opinion [aspect] [theta]
//! cmp     := '<' | '<=' | '>' | '>=' | '=' | '!='
//! ```
//!
//! `AND`/`OR`/`NOT` are case-insensitive and reserved. A one-word
//! subjective term (`quiet`) matches the opinion under any aspect; a
//! two-word term (`delicious food`) names the full tag. `@0.3` sets the
//! degree-of-truth threshold θ (default 0, i.e. any positive degree).
//! All parse errors carry byte-offset spans into the source string.

use crate::ast::{CmpOp, FilterExpr, ObjectivePred, QueryError};
use saccs_text::SubjectiveTag;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    LParen,
    RParen,
    Comma,
    At,
    Cmp(CmpOp),
    Word(String),
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    start: usize,
    end: usize,
}

fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'.' || b == b'-'
}

fn tokenize(src: &str) -> Result<Vec<Spanned>, QueryError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        let (tok, len) = match b {
            b' ' | b'\t' | b'\n' | b'\r' => {
                i += 1;
                continue;
            }
            b'(' => (Tok::LParen, 1),
            b')' => (Tok::RParen, 1),
            b',' => (Tok::Comma, 1),
            b'@' => (Tok::At, 1),
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    (Tok::Cmp(CmpOp::Le), 2)
                } else {
                    (Tok::Cmp(CmpOp::Lt), 1)
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    (Tok::Cmp(CmpOp::Ge), 2)
                } else {
                    (Tok::Cmp(CmpOp::Gt), 1)
                }
            }
            b'=' => (Tok::Cmp(CmpOp::Eq), 1),
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    (Tok::Cmp(CmpOp::Ne), 2)
                } else {
                    return Err(QueryError::at("expected '=' after '!'", i, i + 1));
                }
            }
            _ if is_word_byte(b) => {
                let mut j = i + 1;
                while j < bytes.len() && is_word_byte(bytes[j]) {
                    j += 1;
                }
                (Tok::Word(src[i..j].to_string()), j - i)
            }
            _ => {
                return Err(QueryError::at(
                    format!(
                        "unexpected character {:?}",
                        src[i..].chars().next().unwrap_or('?')
                    ),
                    i,
                    i + 1,
                ));
            }
        };
        out.push(Spanned {
            tok,
            start: i,
            end: i + len,
        });
        i += len;
    }
    Ok(out)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    src_len: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Spanned> {
        self.toks.get(self.pos)
    }

    fn bump(&mut self) -> Option<Spanned> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> (usize, usize) {
        match self.peek() {
            Some(t) => (t.start, t.end),
            None => (self.src_len, self.src_len),
        }
    }

    /// Is the token at `pos` a reserved keyword (case-insensitive)?
    fn keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Spanned { tok: Tok::Word(w), .. }) if w.eq_ignore_ascii_case(kw))
    }

    fn parse_filter(&mut self) -> Result<FilterExpr, QueryError> {
        let mut clauses = vec![self.parse_or()?];
        while matches!(
            self.peek(),
            Some(Spanned {
                tok: Tok::Comma,
                ..
            })
        ) {
            self.bump();
            clauses.push(self.parse_or()?);
        }
        Ok(flatten_and(clauses))
    }

    fn parse_or(&mut self) -> Result<FilterExpr, QueryError> {
        let mut arms = vec![self.parse_and()?];
        while self.keyword("or") {
            self.bump();
            arms.push(self.parse_and()?);
        }
        if arms.len() == 1 {
            Ok(arms.pop().unwrap_or(FilterExpr::And(Vec::new())))
        } else {
            Ok(flatten_or(arms))
        }
    }

    fn parse_and(&mut self) -> Result<FilterExpr, QueryError> {
        let mut arms = vec![self.parse_unary()?];
        while self.keyword("and") {
            self.bump();
            arms.push(self.parse_unary()?);
        }
        if arms.len() == 1 {
            Ok(arms.pop().unwrap_or(FilterExpr::And(Vec::new())))
        } else {
            Ok(flatten_and(arms))
        }
    }

    fn parse_unary(&mut self) -> Result<FilterExpr, QueryError> {
        if self.keyword("not") {
            self.bump();
            let inner = self.parse_unary()?;
            return Ok(FilterExpr::Not(Box::new(inner)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<FilterExpr, QueryError> {
        match self.peek() {
            Some(Spanned {
                tok: Tok::LParen,
                start,
                ..
            }) => {
                let open = *start;
                self.bump();
                let inner = self.parse_or()?;
                match self.bump() {
                    Some(Spanned {
                        tok: Tok::RParen, ..
                    }) => Ok(inner),
                    _ => Err(QueryError::at("unclosed '('", open, open + 1)),
                }
            }
            Some(Spanned {
                tok: Tok::Word(_), ..
            }) => self.parse_term(),
            _ => {
                let (s, e) = self.here();
                Err(QueryError::at("expected a predicate", s, e))
            }
        }
    }

    fn parse_term(&mut self) -> Result<FilterExpr, QueryError> {
        let first = match self.bump() {
            Some(Spanned {
                tok: Tok::Word(w),
                start,
                end,
            }) => (w, start, end),
            other => {
                let (s, e) = other
                    .map(|t| (t.start, t.end))
                    .unwrap_or((self.src_len, self.src_len));
                return Err(QueryError::at("expected a predicate", s, e));
            }
        };
        // Objective form: WORD cmp WORD.
        if let Some(Spanned {
            tok: Tok::Cmp(op),
            start,
            end,
        }) = self.peek().cloned()
        {
            let (op_s, op_e) = (start, end);
            self.bump();
            let (rhs, rhs_s, rhs_e) = match self.bump() {
                Some(Spanned {
                    tok: Tok::Word(w),
                    start,
                    end,
                }) => (w, start, end),
                _ => {
                    return Err(QueryError::at(
                        "expected a value after comparison",
                        op_s,
                        op_e,
                    ));
                }
            };
            return objective(
                &first.0, first.1, first.2, op, op_s, op_e, &rhs, rhs_s, rhs_e,
            );
        }
        if is_reserved(&first.0) {
            return Err(QueryError::at(
                format!("keyword {:?} cannot start a predicate", first.0),
                first.1,
                first.2,
            ));
        }
        // Subjective form: opinion [aspect] [@ theta].
        let mut aspect = None;
        if let Some(Spanned {
            tok: Tok::Word(w), ..
        }) = self.peek()
        {
            if !is_reserved(w) {
                // Peek one further: `quiet NoiseLevel=x` must leave the
                // attribute word for the *next* clause only if followed
                // by a comparison — but that split is ambiguous, so we
                // simply take the word as the aspect unless a cmp
                // follows it (then it belongs to an objective term).
                let next_is_cmp = matches!(
                    self.toks.get(self.pos + 1),
                    Some(Spanned {
                        tok: Tok::Cmp(_),
                        ..
                    })
                );
                if !next_is_cmp {
                    if let Some(Spanned {
                        tok: Tok::Word(w), ..
                    }) = self.bump()
                    {
                        aspect = Some(w);
                    }
                }
            }
        }
        let mut theta = 0.0f32;
        if matches!(self.peek(), Some(Spanned { tok: Tok::At, .. })) {
            self.bump();
            let (word, s, e) = match self.bump() {
                Some(Spanned {
                    tok: Tok::Word(w),
                    start,
                    end,
                }) => (w, start, end),
                other => {
                    let (s, e) = other
                        .map(|t| (t.start, t.end))
                        .unwrap_or((self.src_len, self.src_len));
                    return Err(QueryError::at("expected a threshold after '@'", s, e));
                }
            };
            theta = word
                .parse::<f32>()
                .map_err(|_| QueryError::at(format!("bad threshold {word:?}"), s, e))?;
        }
        Ok(match aspect {
            Some(a) => FilterExpr::Threshold {
                tag: SubjectiveTag::new(&first.0, &a),
                theta,
            },
            None => FilterExpr::Opinion {
                word: first.0.to_ascii_lowercase(),
                theta,
            },
        })
    }
}

fn is_reserved(w: &str) -> bool {
    w.eq_ignore_ascii_case("and") || w.eq_ignore_ascii_case("or") || w.eq_ignore_ascii_case("not")
}

#[allow(clippy::too_many_arguments)]
fn objective(
    lhs: &str,
    lhs_s: usize,
    lhs_e: usize,
    op: CmpOp,
    op_s: usize,
    op_e: usize,
    rhs: &str,
    rhs_s: usize,
    rhs_e: usize,
) -> Result<FilterExpr, QueryError> {
    if lhs.eq_ignore_ascii_case("price") {
        let value = rhs
            .parse::<u8>()
            .map_err(|_| QueryError::at(format!("bad price literal {rhs:?}"), rhs_s, rhs_e))?;
        return Ok(FilterExpr::Objective(ObjectivePred::Price { op, value }));
    }
    if lhs.eq_ignore_ascii_case("rating") || lhs.eq_ignore_ascii_case("stars") {
        let value = rhs
            .parse::<f32>()
            .map_err(|_| QueryError::at(format!("bad rating literal {rhs:?}"), rhs_s, rhs_e))?;
        return Ok(FilterExpr::Objective(ObjectivePred::Stars { op, value }));
    }
    match op {
        CmpOp::Eq | CmpOp::Ne => Ok(FilterExpr::Objective(ObjectivePred::Attribute {
            name: lhs.to_string(),
            value: rhs.to_string(),
            negated: op == CmpOp::Ne,
        })),
        _ => Err(QueryError::at(
            format!("attribute {lhs:?} only supports '=' or '!=' (ordering is for price/rating)"),
            op_s,
            op_e,
        )),
    }
    .map_err(|e| {
        // Anchor attribute-shape errors at the lhs if the op span is
        // degenerate (defensive; spans always exist today).
        if e.span == Some((0, 0)) {
            QueryError::at(e.reason, lhs_s, lhs_e)
        } else {
            e
        }
    })
}

fn flatten_and(arms: Vec<FilterExpr>) -> FilterExpr {
    let mut out = Vec::with_capacity(arms.len());
    for a in arms {
        match a {
            FilterExpr::And(cs) => out.extend(cs),
            other => out.push(other),
        }
    }
    if out.len() == 1 {
        out.pop().unwrap_or(FilterExpr::And(Vec::new()))
    } else {
        FilterExpr::And(out)
    }
}

fn flatten_or(arms: Vec<FilterExpr>) -> FilterExpr {
    let mut out = Vec::with_capacity(arms.len());
    for a in arms {
        match a {
            FilterExpr::Or(cs) => out.extend(cs),
            other => out.push(other),
        }
    }
    if out.len() == 1 {
        out.pop().unwrap_or(FilterExpr::Or(Vec::new()))
    } else {
        FilterExpr::Or(out)
    }
}

/// Parse a DSL string into an expression tree. Called by
/// [`crate::Filter::parse`]; errors carry byte-offset spans.
pub fn parse_expr(src: &str) -> Result<FilterExpr, QueryError> {
    let toks = tokenize(src)?;
    if toks.is_empty() {
        return Err(QueryError::at("empty filter", 0, 0));
    }
    let mut p = Parser {
        toks,
        pos: 0,
        src_len: src.len(),
    };
    let expr = p.parse_filter()?;
    if let Some(t) = p.peek() {
        return Err(QueryError::at(
            "trailing input after filter",
            t.start,
            t.end,
        ));
    }
    Ok(expr)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(op: &str, asp: &str) -> SubjectiveTag {
        SubjectiveTag::new(op, asp)
    }

    #[test]
    fn parses_the_issue_example() {
        let e = parse_expr("delicious AND (quiet OR romantic) AND NOT expensive, price<=2")
            .expect("parses");
        let FilterExpr::And(arms) = e else {
            panic!("top level should be AND")
        };
        assert_eq!(arms.len(), 4);
        assert_eq!(
            arms[0],
            FilterExpr::Opinion {
                word: "delicious".into(),
                theta: 0.0
            }
        );
        assert!(matches!(&arms[1], FilterExpr::Or(inner) if inner.len() == 2));
        assert!(matches!(&arms[2], FilterExpr::Not(_)));
        assert_eq!(
            arms[3],
            FilterExpr::Objective(ObjectivePred::Price {
                op: CmpOp::Le,
                value: 2
            })
        );
    }

    #[test]
    fn two_word_terms_name_the_full_tag_with_theta() {
        let e = parse_expr("delicious food@0.3").expect("parses");
        assert_eq!(
            e,
            FilterExpr::Threshold {
                tag: tag("delicious", "food"),
                theta: 0.3
            }
        );
    }

    #[test]
    fn rating_and_attribute_objectives() {
        let e =
            parse_expr("rating>=3.5 AND NoiseLevel=quiet AND Ambience!=classy").expect("parses");
        let FilterExpr::And(arms) = e else {
            panic!("AND")
        };
        assert_eq!(
            arms[0],
            FilterExpr::Objective(ObjectivePred::Stars {
                op: CmpOp::Ge,
                value: 3.5
            })
        );
        assert_eq!(
            arms[1],
            FilterExpr::Objective(ObjectivePred::Attribute {
                name: "NoiseLevel".into(),
                value: "quiet".into(),
                negated: false,
            })
        );
        assert_eq!(
            arms[2],
            FilterExpr::Objective(ObjectivePred::Attribute {
                name: "Ambience".into(),
                value: "classy".into(),
                negated: true,
            })
        );
    }

    #[test]
    fn keywords_are_case_insensitive_and_reserved() {
        let a = parse_expr("quiet and not loud").expect("parses");
        let b = parse_expr("quiet AND NOT loud").expect("parses");
        assert_eq!(a, b);
        assert!(parse_expr("AND quiet").is_err());
    }

    #[test]
    fn errors_carry_byte_spans() {
        let err = parse_expr("quiet AND price<<2").expect_err("double cmp");
        assert!(err.span.is_some());
        let err = parse_expr("price<=nine").expect_err("bad literal");
        assert_eq!(err.span, Some((7, 11)));
        let err = parse_expr("(quiet OR loud").expect_err("unclosed");
        assert_eq!(err.span, Some((0, 1)));
        let err = parse_expr("Ambience<casual").expect_err("ordering on attribute");
        assert_eq!(err.span, Some((8, 9)));
    }

    #[test]
    fn adjacent_objective_term_is_not_swallowed_as_an_aspect() {
        // The aspect-word is only consumed when NOT followed by a
        // comparison, so `quiet NoiseLevel=average` keeps `NoiseLevel`
        // out of the subjective term — and without an explicit AND the
        // leftover objective term is a trailing-input error.
        let err = parse_expr("quiet NoiseLevel=average").expect_err("needs AND");
        assert!(err.reason.contains("trailing"));
        let e = parse_expr("quiet AND NoiseLevel=average").expect("parses");
        let FilterExpr::And(arms) = e else {
            panic!("AND")
        };
        assert_eq!(
            arms[0],
            FilterExpr::Opinion {
                word: "quiet".into(),
                theta: 0.0
            }
        );
        assert!(matches!(
            &arms[1],
            FilterExpr::Objective(ObjectivePred::Attribute { .. })
        ));
    }
}

//! `xtask audit`: the determinism & concurrency hazard report.
//!
//! Runs every pass in [`crate::lints::audit_passes`] (the eight `check`
//! lints plus the five determinism/concurrency analyses) over the
//! workspace, honouring the same inline waivers and allowlist as
//! `check`, and gates the result on the committed ratchet baseline
//! (`crates/xtask/audit_baseline.txt`): per-pass counts may only go
//! *down*. `--json PATH` additionally writes a machine-readable report
//! — fully deterministic (sorted file walk, fixed pass order, no
//! timestamps), so CI runs the audit twice and byte-diffs the two
//! reports to prove it. `--update-baseline` rewrites the baseline to
//! the current counts after a deliberate tightening (or a reviewed,
//! waived regression).

use crate::lints::{audit_passes, snippet_hash, Violation};
use crate::scan::SourceFile;
use crate::Disposition;
use std::path::Path;
use std::process::ExitCode;

const BASELINE_REL: &str = "crates/xtask/audit_baseline.txt";

struct PassReport {
    id: &'static str,
    violations: Vec<(Violation, String)>,
    waived: usize,
    allowlisted: usize,
    baseline: usize,
}

pub(crate) fn run(args: &[String]) -> ExitCode {
    let mut json_out: Option<String> = None;
    let mut update_baseline = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => match it.next() {
                Some(p) => json_out = Some(p.clone()),
                None => {
                    eprintln!("xtask audit: --json requires a path");
                    return ExitCode::from(2);
                }
            },
            "--update-baseline" => update_baseline = true,
            other => {
                eprintln!("xtask audit: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let root = crate::workspace_root();
    let allowlist = crate::load_allowlist(&root);
    let passes = audit_passes();
    let baseline = load_baseline(&root);
    let mut reports: Vec<PassReport> = passes
        .iter()
        .map(|p| PassReport {
            id: p.id(),
            violations: Vec::new(),
            waived: 0,
            allowlisted: 0,
            baseline: baseline
                .iter()
                .find(|(id, _)| id == p.id())
                .map_or(0, |&(_, n)| n),
        })
        .collect();

    let mut used_entries = vec![false; allowlist.len()];
    let mut files_scanned = 0usize;
    for rel in crate::workspace_sources(&root) {
        let file = match SourceFile::read(&root, &rel) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("xtask audit: cannot read {rel}: {e}");
                return ExitCode::from(2);
            }
        };
        files_scanned += 1;
        for (pi, pass) in passes.iter().enumerate() {
            if !pass.applies(&rel) {
                continue;
            }
            for v in pass.run(&file) {
                match crate::classify(&file, &v, &allowlist, &mut used_entries) {
                    Disposition::Waived => reports[pi].waived += 1,
                    Disposition::Allowlisted => reports[pi].allowlisted += 1,
                    Disposition::Report => {
                        let hash = snippet_hash(&file.lines[v.line - 1].raw);
                        reports[pi].violations.push((v, hash));
                    }
                }
            }
        }
    }

    let mut regressed = false;
    let mut tightenable = false;
    for r in &reports {
        let n = r.violations.len();
        println!(
            "audit {}: {} violation(s) (baseline {}, {} waived, {} allowlisted)",
            r.id, n, r.baseline, r.waived, r.allowlisted
        );
        for (v, _) in &r.violations {
            println!("  {}:{}: {}", v.path, v.line, v.message);
        }
        if n > r.baseline {
            regressed = true;
            eprintln!(
                "xtask audit: {} regressed: {} violation(s) > baseline {}",
                r.id, n, r.baseline
            );
        } else if n < r.baseline {
            tightenable = true;
        }
    }
    println!(
        "xtask audit: {} files, {} pass(es), {} violation(s) total",
        files_scanned,
        reports.len(),
        reports.iter().map(|r| r.violations.len()).sum::<usize>()
    );

    if update_baseline {
        let text = render_baseline(&reports);
        if let Err(e) = std::fs::write(root.join(BASELINE_REL), text) {
            eprintln!("xtask audit: cannot write {BASELINE_REL}: {e}");
            return ExitCode::from(2);
        }
        println!("xtask audit: baseline updated ({BASELINE_REL})");
    } else if tightenable && !regressed {
        println!(
            "xtask audit: counts dropped below the baseline — tighten the \
             ratchet with `cargo run -p xtask -- audit --update-baseline`"
        );
    }

    if let Some(path) = json_out {
        let json = render_json(files_scanned, &reports);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("xtask audit: cannot write {path}: {e}");
            return ExitCode::from(2);
        }
        println!("xtask audit: report written to {path}");
    }

    if regressed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Parse `audit_baseline.txt`: `<pass-id> <count>` per line, blank lines
/// and `#` comments ignored. A missing file is an all-zero baseline.
fn load_baseline(root: &Path) -> Vec<(String, usize)> {
    let text = std::fs::read_to_string(root.join(BASELINE_REL)).unwrap_or_default();
    parse_baseline(&text)
}

fn parse_baseline(text: &str) -> Vec<(String, usize)> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let mut it = l.split_whitespace();
            let id = it.next()?.to_string();
            let n = it.next()?.parse().ok()?;
            Some((id, n))
        })
        .collect()
}

fn render_baseline(reports: &[PassReport]) -> String {
    let mut out = String::from(
        "# xtask audit ratchet baseline: `<pass-id> <count>` per line.\n\
         # Counts may only go down. Regenerate after a deliberate tightening\n\
         # with `cargo run -p xtask -- audit --update-baseline`.\n",
    );
    for r in reports {
        out.push_str(&format!("{} {}\n", r.id, r.violations.len()));
    }
    out
}

/// Render the machine-readable report. Key order and formatting are
/// fixed so two runs over the same tree are byte-identical.
fn render_json(files: usize, reports: &[PassReport]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str("  \"tool\": \"audit\",\n");
    out.push_str(&format!("  \"files\": {files},\n"));
    out.push_str("  \"passes\": {\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str(&format!("    \"{}\": {{\n", r.id));
        out.push_str(&format!("      \"count\": {},\n", r.violations.len()));
        out.push_str(&format!("      \"baseline\": {},\n", r.baseline));
        out.push_str(&format!("      \"waived\": {},\n", r.waived));
        out.push_str(&format!("      \"allowlisted\": {},\n", r.allowlisted));
        out.push_str("      \"violations\": [");
        for (j, (v, hash)) in r.violations.iter().enumerate() {
            out.push_str(if j == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "        {{ \"path\": \"{}\", \"line\": {}, \"hash\": \"{}\", \"message\": \"{}\" }}",
                esc(&v.path),
                v.line,
                hash,
                esc(&v.message)
            ));
        }
        if !r.violations.is_empty() {
            out.push_str("\n      ");
        }
        out.push_str("]\n");
        out.push_str(if i + 1 == reports.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_report(id: &'static str, msgs: &[(&str, usize, &str)], baseline: usize) -> PassReport {
        PassReport {
            id,
            violations: msgs
                .iter()
                .map(|&(path, line, msg)| {
                    (
                        Violation {
                            lint: id,
                            path: path.into(),
                            line,
                            message: msg.into(),
                        },
                        snippet_hash("let x = y.unwrap();"),
                    )
                })
                .collect(),
            waived: 0,
            allowlisted: 0,
            baseline,
        }
    }

    #[test]
    fn baseline_round_trips() {
        let reports = vec![
            fake_report("nondet-iteration", &[("a.rs", 3, "m")], 1),
            fake_report("wallclock-in-core", &[], 0),
        ];
        let text = render_baseline(&reports);
        let parsed = parse_baseline(&text);
        assert_eq!(
            parsed,
            vec![
                ("nondet-iteration".to_string(), 1),
                ("wallclock-in-core".to_string(), 0)
            ]
        );
    }

    #[test]
    fn baseline_parser_skips_comments_and_garbage() {
        let parsed = parse_baseline("# header\n\nno-unwrap-in-lib 2\nbad-line\nx notanumber\n");
        assert_eq!(parsed, vec![("no-unwrap-in-lib".to_string(), 2)]);
    }

    #[test]
    fn json_report_is_valid_and_deterministic() {
        let reports = vec![
            fake_report(
                "nondet-iteration",
                &[("crates/ir/src/bm25.rs", 55, "iteration over `tf`")],
                1,
            ),
            fake_report("env-read-in-lib", &[], 0),
        ];
        let a = render_json(12, &reports);
        let b = render_json(12, &reports);
        assert_eq!(a, b, "same inputs must render byte-identically");
        assert!(
            crate::auditjson::validate(&a).is_empty(),
            "render/validate disagree: {:?}",
            crate::auditjson::validate(&a)
        );
    }

    #[test]
    fn json_escaping_survives_quotes_and_newlines() {
        let reports = vec![fake_report(
            "no-print-in-lib",
            &[("a.rs", 1, "message with \"quotes\" and\nnewline")],
            1,
        )];
        let json = render_json(1, &reports);
        assert!(
            crate::auditjson::validate(&json).is_empty(),
            "unexpected: {:?}",
            crate::auditjson::validate(&json)
        );
    }
}

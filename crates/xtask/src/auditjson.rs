//! Validator for `xtask audit --json` reports (`xtask check-audit`).
//!
//! CI writes the audit report twice and byte-diffs the copies to prove
//! the analyzer is deterministic; this validator then checks the report
//! is structurally sound — same recursive-descent parser as the bench
//! snapshot checker (`benchjson`), no serde. It verifies the top-level
//! shape, every pass body, every violation record, and the internal
//! consistency `count == violations.len()`.

use crate::benchjson::{Parser, Value};

/// Validate one audit report; returns the list of problems (empty =
/// valid).
pub(crate) fn validate(text: &str) -> Vec<String> {
    let root = match Parser::new(text).document() {
        Ok(v) => v,
        Err(e) => return vec![format!("not valid JSON: {e}")],
    };
    let mut problems = Vec::new();
    if !matches!(root, Value::Object(_)) {
        return vec!["top level is not a JSON object".into()];
    }
    match root.get("schema") {
        Some(Value::Number(_)) => {}
        other => problems.push(schema_problem("schema", "number", other)),
    }
    match root.get("tool") {
        Some(Value::String(s)) if s == "audit" => {}
        Some(Value::String(s)) => problems.push(format!("`tool` is `{s}`, expected `audit`")),
        other => problems.push(schema_problem("tool", "string", other)),
    }
    match root.get("files") {
        Some(Value::Number(n)) if *n >= 1.0 => {}
        Some(Value::Number(_)) => problems.push("`files` must be >= 1".into()),
        other => problems.push(schema_problem("files", "number", other)),
    }
    match root.get("passes") {
        Some(Value::Object(passes)) => {
            if passes.is_empty() {
                problems.push("`passes` is empty".into());
            }
            for (id, body) in passes {
                check_pass(id, body, &mut problems);
            }
        }
        other => problems.push(schema_problem("passes", "object", other)),
    }
    problems
}

fn check_pass(id: &str, body: &Value, problems: &mut Vec<String>) {
    for key in ["count", "baseline", "waived", "allowlisted"] {
        if !matches!(body.get(key), Some(Value::Number(_))) {
            problems.push(format!("pass `{id}` missing numeric `{key}`"));
        }
    }
    let Some(Value::Array(violations)) = body.get("violations") else {
        problems.push(format!("pass `{id}` missing `violations` array"));
        return;
    };
    if let Some(Value::Number(count)) = body.get("count") {
        if *count as usize != violations.len() {
            problems.push(format!(
                "pass `{id}`: count {} != {} recorded violation(s)",
                count,
                violations.len()
            ));
        }
    }
    for (i, v) in violations.iter().enumerate() {
        if !matches!(v.get("path"), Some(Value::String(s)) if !s.is_empty()) {
            problems.push(format!("pass `{id}` violation {i}: bad `path`"));
        }
        if !matches!(v.get("line"), Some(Value::Number(n)) if *n >= 1.0) {
            problems.push(format!("pass `{id}` violation {i}: bad `line`"));
        }
        match v.get("hash") {
            Some(Value::String(h)) if h.len() == 16 && h.bytes().all(|b| b.is_ascii_hexdigit()) => {
            }
            _ => problems.push(format!("pass `{id}` violation {i}: bad `hash`")),
        }
        if !matches!(v.get("message"), Some(Value::String(s)) if !s.is_empty()) {
            problems.push(format!("pass `{id}` violation {i}: bad `message`"));
        }
    }
}

fn schema_problem(key: &str, want: &str, got: Option<&Value>) -> String {
    match got {
        None => format!("missing required key `{key}`"),
        Some(_) => format!("`{key}` is not a {want}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{
  "schema": 1,
  "tool": "audit",
  "files": 40,
  "passes": {
    "no-unwrap-in-lib": {
      "count": 1,
      "baseline": 1,
      "waived": 0,
      "allowlisted": 2,
      "violations": [
        { "path": "crates/ir/src/bm25.rs", "line": 55,
          "hash": "0123456789abcdef", "message": "iteration over `tf`" }
      ]
    },
    "wallclock-in-core": {
      "count": 0, "baseline": 0, "waived": 0, "allowlisted": 0,
      "violations": []
    }
  }
}"#;

    #[test]
    fn accepts_a_well_formed_report() {
        assert_eq!(validate(GOOD), Vec::<String>::new());
    }

    #[test]
    fn rejects_syntax_errors_wrong_tool_and_empty_passes() {
        assert!(validate("{")[0].contains("not valid JSON"));
        let wrong_tool = GOOD.replace("\"audit\"", "\"lint\"");
        assert!(validate(&wrong_tool).iter().any(|p| p.contains("`tool`")));
        let problems = validate(r#"{ "schema": 1, "tool": "audit", "files": 1, "passes": {} }"#);
        assert!(problems.iter().any(|p| p.contains("`passes` is empty")));
    }

    #[test]
    fn rejects_count_violation_mismatch_and_bad_records() {
        let mismatch = GOOD.replace("\"count\": 1", "\"count\": 3");
        assert!(
            validate(&mismatch)
                .iter()
                .any(|p| p.contains("count 3 != 1")),
            "unexpected: {:?}",
            validate(&mismatch)
        );
        let bad_hash = GOOD.replace("0123456789abcdef", "zz");
        assert!(validate(&bad_hash).iter().any(|p| p.contains("bad `hash`")));
        let bad_line = GOOD.replace("\"line\": 55", "\"line\": 0");
        assert!(validate(&bad_line).iter().any(|p| p.contains("bad `line`")));
    }

    #[test]
    fn rejects_missing_sections() {
        let problems = validate(r#"{ "schema": 1 }"#);
        for key in ["tool", "files", "passes"] {
            assert!(
                problems.iter().any(|p| p.contains(key)),
                "no report for {key}: {problems:?}"
            );
        }
    }
}

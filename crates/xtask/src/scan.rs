//! Source model for the lint passes.
//!
//! The driver works at line/token level on purpose: no `syn`, no parsing
//! crates, so it builds instantly offline and survives rustc syntax it
//! has never seen. The trade-off is that every pass here is a heuristic;
//! each one errs toward silence (comments and string literals are blanked
//! out before matching, test regions are excluded) and anything it still
//! gets wrong can be waived inline (`// lint:allow(<id>): reason`) or in
//! `crates/xtask/allowlist.txt`.

use std::fs;
use std::path::{Path, PathBuf};

/// One scanned line with the context the lints need.
pub(crate) struct Line {
    /// Original text, used for waiver comments and violation excerpts.
    pub(crate) raw: String,
    /// Text with comments and string/char-literal contents blanked to
    /// spaces (same byte positions), so pattern matches never fire on
    /// prose or literals.
    pub(crate) code: String,
    /// Brace depth at the start of the line.
    pub(crate) depth: usize,
    /// Inside a `#[cfg(test)]` item body.
    pub(crate) in_test: bool,
    /// Number of enclosing `for`/`while`/`loop` bodies.
    pub(crate) loop_depth: usize,
}

/// A scanned file: workspace-relative path plus per-line model.
pub(crate) struct SourceFile {
    pub(crate) path: String,
    pub(crate) lines: Vec<Line>,
}

impl SourceFile {
    /// Build the model from source text. `path` is workspace-relative
    /// with forward slashes (tests pass synthetic paths).
    pub(crate) fn parse(path: &str, text: &str) -> SourceFile {
        let stripped = strip_comments_and_strings(text);
        let raw_lines: Vec<&str> = text.lines().collect();
        let code_lines: Vec<&str> = stripped.lines().collect();

        let mut lines = Vec::with_capacity(raw_lines.len());
        let mut depth = 0usize;
        // Depths *below which* each open test / loop region closes.
        let mut test_stack: Vec<usize> = Vec::new();
        let mut loop_stack: Vec<usize> = Vec::new();
        let mut pending_test = false;
        let mut pending_loop = false;

        for (i, raw) in raw_lines.iter().enumerate() {
            let code = code_lines.get(i).copied().unwrap_or("");
            let line_depth = depth;
            let in_test = !test_stack.is_empty();
            let loop_depth = loop_stack.len();

            if code.contains("#[cfg(test)]") || code.contains("#[cfg(all(test") {
                pending_test = true;
            }
            if is_loop_header(code) {
                pending_loop = true;
            }

            for ch in code.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        if pending_test {
                            test_stack.push(depth);
                            pending_test = false;
                        }
                        if pending_loop {
                            loop_stack.push(depth);
                            pending_loop = false;
                        }
                    }
                    '}' => {
                        if test_stack.last() == Some(&depth) {
                            test_stack.pop();
                        }
                        if loop_stack.last() == Some(&depth) {
                            loop_stack.pop();
                        }
                        depth = depth.saturating_sub(1);
                    }
                    // An item that ends before any body cancels a pending
                    // attribute (`#[cfg(test)] use ...;`).
                    ';' => {
                        pending_test = false;
                    }
                    _ => {}
                }
            }

            lines.push(Line {
                raw: (*raw).to_string(),
                code: code.to_string(),
                depth: line_depth,
                in_test,
                loop_depth,
            });
        }

        SourceFile {
            path: path.to_string(),
            lines,
        }
    }

    /// Read and model a file on disk; `rel` is its workspace-relative path.
    pub(crate) fn read(root: &Path, rel: &str) -> std::io::Result<SourceFile> {
        let text = fs::read_to_string(root.join(rel))?;
        Ok(SourceFile::parse(rel, &text))
    }
}

/// A `for`/`while`/`loop` that starts a statement. First-word-of-line is
/// the pragmatic test: it excludes `impl Trait for Type` and method names
/// like `.for_each`, and rustfmt puts real loop headers at line starts.
fn is_loop_header(code: &str) -> bool {
    let t = code.trim_start();
    t.starts_with("for ")
        || t.starts_with("while ")
        || t == "loop" // rare but legal: `loop` + `{` on the next line
        || t.starts_with("loop {")
}

/// Blank comments and string/char-literal contents to spaces, preserving
/// byte positions and newlines so line/column numbers survive.
fn strip_comments_and_strings(text: &str) -> String {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(usize),
        Str,
        RawStr(usize),
        Char,
    }
    let b: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut st = St::Code;
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match st {
            St::Code => {
                if c == '/' && b.get(i + 1) == Some(&'/') {
                    st = St::LineComment;
                    out.push(' ');
                } else if c == '/' && b.get(i + 1) == Some(&'*') {
                    st = St::BlockComment(1);
                    out.push(' ');
                } else if c == '"' {
                    st = St::Str;
                    out.push('"');
                } else if c == 'r' && matches!(b.get(i + 1), Some(&'"') | Some(&'#')) {
                    // Possible raw string: r"..." or r#"..."#.
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while b.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if b.get(j) == Some(&'"') {
                        out.push('r');
                        for _ in 0..hashes {
                            out.push('#');
                        }
                        out.push('"');
                        i = j + 1;
                        st = St::RawStr(hashes);
                        continue;
                    }
                    out.push(c);
                } else if c == '\'' {
                    // Char literal vs lifetime: a literal closes after one
                    // (possibly escaped) char; a lifetime never closes.
                    let lit = match b.get(i + 1) {
                        Some(&'\\') => true,
                        Some(_) => b.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    if lit {
                        st = St::Char;
                        out.push('\'');
                    } else {
                        out.push('\'');
                    }
                } else {
                    out.push(c);
                }
            }
            St::LineComment => {
                if c == '\n' {
                    st = St::Code;
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            St::BlockComment(n) => {
                if c == '\n' {
                    out.push('\n');
                } else if c == '/' && b.get(i + 1) == Some(&'*') {
                    st = St::BlockComment(n + 1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                } else if c == '*' && b.get(i + 1) == Some(&'/') {
                    st = if n == 1 {
                        St::Code
                    } else {
                        St::BlockComment(n - 1)
                    };
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                } else {
                    out.push(' ');
                }
            }
            St::Str => {
                if c == '\\' {
                    out.push(' ');
                    if b.get(i + 1).is_some() {
                        out.push(' ');
                        i += 2;
                        continue;
                    }
                } else if c == '"' {
                    st = St::Code;
                    out.push('"');
                } else if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut h = 0;
                    while h < hashes && b.get(j) == Some(&'#') {
                        h += 1;
                        j += 1;
                    }
                    if h == hashes {
                        out.push('"');
                        for _ in 0..hashes {
                            out.push('#');
                        }
                        i = j;
                        st = St::Code;
                        continue;
                    }
                    out.push(' ');
                } else if c == '\n' {
                    out.push('\n');
                } else {
                    out.push(' ');
                }
            }
            St::Char => {
                if c == '\\' {
                    out.push(' ');
                    if b.get(i + 1).is_some() {
                        out.push(' ');
                        i += 2;
                        continue;
                    }
                } else if c == '\'' {
                    st = St::Code;
                    out.push('\'');
                } else {
                    out.push(' ');
                }
            }
        }
        i += 1;
    }
    out
}

/// Recursively collect `.rs` files under `dir`, returning paths relative
/// to `root` with forward slashes, sorted for deterministic output.
pub(crate) fn rust_files(root: &Path, dir: &Path) -> Vec<String> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let p: PathBuf = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                if let Ok(rel) = p.strip_prefix(root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = SourceFile::parse(
            "t.rs",
            "let s = \"x.unwrap()\"; // .unwrap()\nlet c = 'u'; /* .unwrap() */ s.unwrap();\n",
        );
        assert!(!f.lines[0].code.contains(".unwrap()"));
        assert!(f.lines[1].code.contains("s.unwrap()"));
        assert!(!f.lines[1].code.contains("'u'"));
        assert!(
            f.lines[0].raw.contains("// .unwrap()"),
            "raw text preserved"
        );
    }

    #[test]
    fn raw_strings_and_lifetimes_survive() {
        let f = SourceFile::parse(
            "t.rs",
            "fn f<'a>(x: &'a str) -> &'a str { x }\nlet p = r#\"a \"quoted\" .lock()\"#;\n",
        );
        assert!(f.lines[0].code.contains("<'a>"));
        assert!(!f.lines[1].code.contains(".lock()"));
    }

    #[test]
    fn test_regions_are_tracked() {
        let src = "\
pub(crate) fn lib_code() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { helper(); }
}
pub(crate) fn more_lib() {}
";
        let f = SourceFile::parse("t.rs", src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[3].in_test, "inside cfg(test) mod");
        assert!(f.lines[4].in_test);
        assert!(!f.lines[6].in_test, "after the test mod closes");
    }

    #[test]
    fn cfg_test_on_bodyless_item_does_not_leak() {
        let src = "\
#[cfg(test)]
use std::collections::HashMap;
fn real() {
    work();
}
";
        let f = SourceFile::parse("t.rs", src);
        assert!(
            !f.lines[3].in_test,
            "fn body after cfg(test) use is lib code"
        );
    }

    #[test]
    fn loop_depth_counts_enclosing_loops_only() {
        let src = "\
impl Fake for Thing {
    fn run(&self) {
        for i in 0..3 {
            while i > 0 {
                body();
            }
        }
        after();
    }
}
";
        let f = SourceFile::parse("t.rs", src);
        assert_eq!(f.lines[1].loop_depth, 0, "impl-for is not a loop");
        assert_eq!(f.lines[3].loop_depth, 1);
        assert_eq!(f.lines[4].loop_depth, 2);
        assert_eq!(f.lines[7].loop_depth, 0);
    }
}

//! Token-level source model for the lint and audit passes.
//!
//! The driver deliberately carries its own lexer: no `syn`, no parsing
//! crates, so it builds instantly offline and survives rustc syntax it
//! has never seen. Unlike the line-regex scanner it replaced, this is a
//! real Rust lexer — comments (line, doc, nested block), string
//! literals (plain, raw `r#"…"#`, byte), char literals vs lifetimes and
//! numeric literals are tokenized correctly, so a pass matching
//! `.unwrap()` can never fire on prose inside a doc comment or a string.
//! On top of the raw token stream a context pass tracks brace depth,
//! `#[cfg(test)]` / `#[test]` regions (mod *and* fn granularity),
//! enclosing-loop depth and `fn` boundaries, and stamps each token with
//! all four. Every pass is still a heuristic — anything it gets wrong
//! can be waived inline (`// lint:allow(<id>): reason`) or in
//! `crates/xtask/allowlist.txt`.

use std::fs;
use std::path::{Path, PathBuf};

/// Lexical class of one token.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum TokenKind {
    /// Identifier or keyword (`fn`, `unwrap`, `r#match`).
    Ident,
    /// Lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// String literal (`"…"`, `b"…"`); `text` is the unquoted content.
    Str,
    /// Raw string literal (`r"…"`, `r#"…"#`, `br"…"`); `text` is the
    /// content between the quotes.
    RawStr,
    /// Char or byte-char literal (`'x'`, `b'\n'`); `text` is the content.
    Char,
    /// Numeric literal including any suffix (`42`, `0.0f32`, `0x1F`).
    Num,
    /// One punctuation character; `text` is that character.
    Punct,
}

/// One lexed token plus the structural context it sits in.
#[derive(Debug, Clone)]
pub(crate) struct Token {
    pub(crate) kind: TokenKind,
    pub(crate) text: String,
    /// 0-based line index.
    pub(crate) line: usize,
    /// Brace depth: `{` carries the depth *outside* the block it opens,
    /// `}` the depth outside the block it closes, so a fn body's interior
    /// tokens all sit one deeper than its braces.
    pub(crate) depth: usize,
    /// Inside a `#[cfg(test)]` mod/item body or a `#[test]` fn.
    pub(crate) in_test: bool,
    /// Number of enclosing `for`/`while`/`loop` bodies.
    pub(crate) loop_depth: usize,
    /// Index into [`SourceFile::fns`] of the innermost enclosing fn.
    pub(crate) fn_idx: Option<u32>,
}

/// One `fn` item: name and the line its signature starts on.
#[derive(Debug, Clone)]
pub(crate) struct FnSpan {
    pub(crate) name: String,
    pub(crate) line: usize,
}

/// One source line; passes match on tokens, but waiver comments and
/// violation excerpts still need the raw text.
pub(crate) struct Line {
    pub(crate) raw: String,
}

/// A scanned file: workspace-relative path, raw lines, token stream and
/// fn table.
pub(crate) struct SourceFile {
    pub(crate) path: String,
    pub(crate) lines: Vec<Line>,
    pub(crate) tokens: Vec<Token>,
    pub(crate) fns: Vec<FnSpan>,
}

impl SourceFile {
    /// Lex and contextualize source text. `path` is workspace-relative
    /// with forward slashes (tests pass synthetic paths).
    pub(crate) fn parse(path: &str, text: &str) -> SourceFile {
        let mut tokens = lex(text);
        let mut fns = Vec::new();
        contextualize(&mut tokens, &mut fns);
        SourceFile {
            path: path.to_string(),
            lines: text
                .lines()
                .map(|raw| Line {
                    raw: raw.to_string(),
                })
                .collect(),
            tokens,
            fns,
        }
    }

    /// Read and model a file on disk; `rel` is its workspace-relative path.
    pub(crate) fn read(root: &Path, rel: &str) -> std::io::Result<SourceFile> {
        let text = fs::read_to_string(root.join(rel))?;
        Ok(SourceFile::parse(rel, &text))
    }

    /// Name of the fn enclosing token `i`, if any.
    pub(crate) fn fn_name_at(&self, i: usize) -> Option<&str> {
        self.tokens
            .get(i)
            .and_then(|t| t.fn_idx)
            .map(|f| self.fns[f as usize].name.as_str())
    }
}

/// True if `t` is the punctuation character `c`.
pub(crate) fn is_punct(t: &Token, c: char) -> bool {
    t.kind == TokenKind::Punct && t.text.as_bytes().first() == Some(&(c as u8))
}

/// True if `t` is exactly the identifier `s`.
pub(crate) fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == TokenKind::Ident && t.text == s
}

/// Match a token pattern starting at `tokens[i]`, returning how many
/// tokens it consumed. Pattern elements:
///
/// - `"::"` — two consecutive `:` puncts;
/// - a single punctuation character (`"."`, `"("`, `"!"`) — that punct;
/// - `"*"` — any one identifier;
/// - anything else — exactly that identifier.
pub(crate) fn seq(tokens: &[Token], i: usize, pat: &[&str]) -> Option<usize> {
    let mut j = i;
    for p in pat {
        match *p {
            "::" => {
                if !(is_punct(tokens.get(j)?, ':') && is_punct(tokens.get(j + 1)?, ':')) {
                    return None;
                }
                j += 2;
            }
            "*" => {
                if tokens.get(j)?.kind != TokenKind::Ident {
                    return None;
                }
                j += 1;
            }
            p if p.len() == 1 && !p.as_bytes()[0].is_ascii_alphanumeric() && p != "_" => {
                if !is_punct(tokens.get(j)?, p.as_bytes()[0] as char) {
                    return None;
                }
                j += 1;
            }
            p => {
                if !is_ident(tokens.get(j)?, p) {
                    return None;
                }
                j += 1;
            }
        }
    }
    Some(j - i)
}

/// Index of the punct that closes the one at `open` (`(`/`[`/`{`),
/// honouring nesting of all three bracket kinds.
pub(crate) fn matching_close(tokens: &[Token], open: usize) -> Option<usize> {
    let close = match tokens[open].text.as_str() {
        "(" => ')',
        "[" => ']',
        "{" => '}',
        _ => return None,
    };
    let open_ch = tokens[open].text.as_bytes()[0] as char;
    let mut level = 0usize;
    for (k, t) in tokens.iter().enumerate().skip(open) {
        if is_punct(t, open_ch) {
            level += 1;
        } else if is_punct(t, close) {
            level -= 1;
            if level == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Raw lexer: source text → token stream (context fields zeroed).
fn lex(text: &str) -> Vec<Token> {
    let b: Vec<char> = text.chars().collect();
    let mut out = Vec::new();
    let mut line = 0usize;
    let mut i = 0usize;

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident_cont = |c: char| c.is_alphanumeric() || c == '_';

    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            // Line comment (incl. /// and //!).
            '/' if b.get(i + 1) == Some(&'/') => {
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
            }
            // Nested block comment.
            '/' if b.get(i + 1) == Some(&'*') => {
                let mut level = 1usize;
                i += 2;
                while i < b.len() && level > 0 {
                    if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        level += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        level -= 1;
                        i += 2;
                    } else {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
            }
            '"' => {
                let (content, next, newlines) = lex_string(&b, i + 1);
                out.push(tok(TokenKind::Str, content, line));
                line += newlines;
                i = next;
            }
            // r"…" / r#"…"# raw strings, r#ident raw identifiers.
            'r' | 'b' if raw_string_start(&b, i).is_some() => {
                let (hashes, quote_at) = raw_string_start(&b, i).expect("checked");
                let (content, next, newlines) = lex_raw_string(&b, quote_at + 1, hashes);
                out.push(tok(TokenKind::RawStr, content, line));
                line += newlines;
                i = next;
            }
            'r' if b.get(i + 1) == Some(&'#')
                && b.get(i + 2).is_some_and(|&c| is_ident_start(c)) =>
            {
                // Raw identifier r#match — lex as the bare identifier.
                let mut j = i + 2;
                while j < b.len() && is_ident_cont(b[j]) {
                    j += 1;
                }
                out.push(tok(TokenKind::Ident, b[i + 2..j].iter().collect(), line));
                i = j;
            }
            // b"…" byte string / b'…' byte char.
            'b' if b.get(i + 1) == Some(&'"') => {
                let (content, next, newlines) = lex_string(&b, i + 2);
                out.push(tok(TokenKind::Str, content, line));
                line += newlines;
                i = next;
            }
            'b' if b.get(i + 1) == Some(&'\'') => {
                let (content, next) = lex_char(&b, i + 2);
                out.push(tok(TokenKind::Char, content, line));
                i = next;
            }
            '\'' => {
                // Char literal vs lifetime: a literal closes after one
                // (possibly escaped) char; a lifetime never closes.
                let is_char = match b.get(i + 1) {
                    Some(&'\\') => true,
                    Some(_) => b.get(i + 2) == Some(&'\''),
                    None => false,
                };
                if is_char {
                    let (content, next) = lex_char(&b, i + 1);
                    out.push(tok(TokenKind::Char, content, line));
                    i = next;
                } else {
                    let mut j = i + 1;
                    while j < b.len() && is_ident_cont(b[j]) {
                        j += 1;
                    }
                    out.push(tok(TokenKind::Lifetime, b[i..j].iter().collect(), line));
                    i = j;
                }
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                // Digits, `_`, radix prefixes, suffixes, exponents; a `.`
                // continues the number only when followed by a digit
                // (`0..3` stays three tokens).
                while j < b.len() {
                    let d = b[j];
                    if is_ident_cont(d) {
                        // e/E exponent sign.
                        if (d == 'e' || d == 'E')
                            && matches!(b.get(j + 1), Some(&'+') | Some(&'-'))
                            && b.get(j + 2).is_some_and(|c| c.is_ascii_digit())
                        {
                            j += 2;
                        }
                        j += 1;
                    } else if d == '.' && b.get(j + 1).is_some_and(|c| c.is_ascii_digit()) {
                        j += 1;
                    } else {
                        break;
                    }
                }
                out.push(tok(TokenKind::Num, b[i..j].iter().collect(), line));
                i = j;
            }
            c if is_ident_start(c) => {
                let mut j = i + 1;
                while j < b.len() && is_ident_cont(b[j]) {
                    j += 1;
                }
                out.push(tok(TokenKind::Ident, b[i..j].iter().collect(), line));
                i = j;
            }
            c => {
                out.push(tok(TokenKind::Punct, c.to_string(), line));
                i += 1;
            }
        }
    }
    out
}

fn tok(kind: TokenKind, text: String, line: usize) -> Token {
    Token {
        kind,
        text,
        line,
        depth: 0,
        in_test: false,
        loop_depth: 0,
        fn_idx: None,
    }
}

/// `r…` / `br…` raw-string opener: returns (hash count, index of the
/// opening quote) if the chars at `i` begin a raw string.
fn raw_string_start(b: &[char], i: usize) -> Option<(usize, usize)> {
    let mut j = i + 1;
    if b.get(i) == Some(&'b') {
        if b.get(j) != Some(&'r') {
            return None;
        }
        j += 1;
    }
    let mut hashes = 0usize;
    while b.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (b.get(j) == Some(&'"')).then_some((hashes, j))
}

/// Lex a plain string body starting just after the opening quote;
/// returns (content, index after closing quote, newlines consumed).
fn lex_string(b: &[char], start: usize) -> (String, usize, usize) {
    let mut content = String::new();
    let mut newlines = 0usize;
    let mut i = start;
    while i < b.len() {
        match b[i] {
            '\\' => {
                if let Some(&e) = b.get(i + 1) {
                    content.push('\\');
                    content.push(e);
                    if e == '\n' {
                        newlines += 1;
                    }
                    i += 2;
                } else {
                    i += 1;
                }
            }
            '"' => return (content, i + 1, newlines),
            c => {
                if c == '\n' {
                    newlines += 1;
                }
                content.push(c);
                i += 1;
            }
        }
    }
    (content, i, newlines)
}

/// Lex a raw string body starting just after the opening quote; closes
/// at `"` followed by `hashes` `#`s.
fn lex_raw_string(b: &[char], start: usize, hashes: usize) -> (String, usize, usize) {
    let mut content = String::new();
    let mut newlines = 0usize;
    let mut i = start;
    while i < b.len() {
        if b[i] == '"' {
            let mut h = 0usize;
            while h < hashes && b.get(i + 1 + h) == Some(&'#') {
                h += 1;
            }
            if h == hashes {
                return (content, i + 1 + hashes, newlines);
            }
        }
        if b[i] == '\n' {
            newlines += 1;
        }
        content.push(b[i]);
        i += 1;
    }
    (content, i, newlines)
}

/// Lex a char-literal body starting just after the opening quote.
fn lex_char(b: &[char], start: usize) -> (String, usize) {
    let mut content = String::new();
    let mut i = start;
    while i < b.len() {
        match b[i] {
            '\\' => {
                if let Some(&e) = b.get(i + 1) {
                    content.push('\\');
                    content.push(e);
                    i += 2;
                } else {
                    i += 1;
                }
            }
            '\'' => return (content, i + 1),
            c => {
                content.push(c);
                i += 1;
            }
        }
    }
    (content, i)
}

/// Context pass: stamp each token with brace depth, test-region
/// membership, loop depth and enclosing fn, and collect the fn table.
///
/// Test regions come from `#[cfg(test)]` / `#[cfg(all(test, …))]` /
/// `#[test]` attributes: the attribute arms a pending flag, the next `{`
/// opens the region (a `;` first — a bodyless item — cancels it).
/// `#[cfg(not(test))]` does *not* arm. Loop headers are `for`/`while`/
/// `loop` keywords at statement start (which excludes `impl Trait for
/// Type` and HRTB `for<'a>`); labeled loops (`'outer: loop`) count.
fn contextualize(tokens: &mut [Token], fns: &mut Vec<FnSpan>) {
    let mut depth = 0usize;
    // Depths *at which* each open region's `{` sits.
    let mut test_stack: Vec<usize> = Vec::new();
    let mut loop_stack: Vec<usize> = Vec::new();
    // (fn table index, depth of the body's `{`).
    let mut fn_stack: Vec<(u32, usize)> = Vec::new();
    let mut pending_test = false;
    let mut pending_loop = false;
    let mut pending_fn: Option<FnSpan> = None;
    // Statement start: after `{`, `}`, `;`, or at the file start; a
    // label (`'outer:`) keeps the flag alive for the loop keyword.
    let mut stmt_start = true;

    let mut i = 0usize;
    while i < tokens.len() {
        // Attribute: `#[ … ]` — classify, stamp its tokens, skip past.
        if is_punct(&tokens[i], '#') && tokens.get(i + 1).is_some_and(|t| is_punct(t, '[')) {
            let close = matching_close(tokens, i + 1).unwrap_or(tokens.len() - 1);
            let mut saw_test = false;
            let mut saw_not = false;
            for t in &tokens[i..=close] {
                if is_ident(t, "test") {
                    saw_test = true;
                }
                if is_ident(t, "not") {
                    saw_not = true;
                }
            }
            if saw_test && !saw_not {
                pending_test = true;
            }
            let in_test = !test_stack.is_empty();
            let loop_depth = loop_stack.len();
            let fn_idx = fn_stack.last().map(|&(f, _)| f);
            for t in &mut tokens[i..=close] {
                t.depth = depth;
                t.in_test = in_test;
                t.loop_depth = loop_depth;
                t.fn_idx = fn_idx;
            }
            i = close + 1;
            continue;
        }

        let this_stmt_start = stmt_start;
        // Default for the next token; adjusted below.
        stmt_start = false;

        // Stamp context before structural bookkeeping so `{` carries the
        // outer depth and region flags.
        tokens[i].depth = depth;
        tokens[i].in_test = !test_stack.is_empty();
        tokens[i].loop_depth = loop_stack.len();
        tokens[i].fn_idx = fn_stack.last().map(|&(f, _)| f);

        match tokens[i].kind {
            TokenKind::Punct => match tokens[i].text.as_bytes()[0] {
                b'{' => {
                    if pending_test {
                        test_stack.push(depth);
                        pending_test = false;
                    }
                    if pending_loop {
                        loop_stack.push(depth);
                        pending_loop = false;
                    }
                    if let Some(f) = pending_fn.take() {
                        fns.push(f);
                        fn_stack.push(((fns.len() - 1) as u32, depth));
                    }
                    depth += 1;
                    stmt_start = true;
                }
                b'}' => {
                    depth = depth.saturating_sub(1);
                    tokens[i].depth = depth;
                    if test_stack.last() == Some(&depth) {
                        test_stack.pop();
                    }
                    if loop_stack.last() == Some(&depth) {
                        loop_stack.pop();
                    }
                    if fn_stack.last().map(|&(_, d)| d) == Some(depth) {
                        fn_stack.pop();
                    }
                    stmt_start = true;
                }
                b';' => {
                    // A bodyless item cancels pending attributes/headers.
                    pending_test = false;
                    pending_fn = None;
                    stmt_start = true;
                }
                // `'label:` keeps statement-start alive for the loop
                // keyword that follows.
                b':' if i > 0 && tokens[i - 1].kind == TokenKind::Lifetime && this_stmt_start => {
                    stmt_start = true;
                }
                _ => {}
            },
            // A label at statement start stays statement-start-ish.
            TokenKind::Lifetime if this_stmt_start => stmt_start = true,
            TokenKind::Ident => match tokens[i].text.as_str() {
                "for" | "while" if this_stmt_start => pending_loop = true,
                "loop" if this_stmt_start => pending_loop = true,
                "fn" => {
                    if let Some(name) = tokens.get(i + 1).filter(|t| t.kind == TokenKind::Ident) {
                        pending_fn = Some(FnSpan {
                            name: name.text.clone(),
                            line: tokens[i].line,
                        });
                    }
                }
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
}

/// Recursively collect `.rs` files under `dir`, returning paths relative
/// to `root` with forward slashes, sorted for deterministic output.
pub(crate) fn rust_files(root: &Path, dir: &Path) -> Vec<String> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = fs::read_dir(&d) else {
            continue;
        };
        for entry in entries.flatten() {
            let p: PathBuf = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                if let Ok(rel) = p.strip_prefix(root) {
                    out.push(rel.to_string_lossy().replace('\\', "/"));
                }
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(f: &SourceFile) -> Vec<&str> {
        f.tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect()
    }

    #[test]
    fn strings_and_comments_produce_no_code_tokens() {
        let f = SourceFile::parse(
            "t.rs",
            "let s = \"x.unwrap()\"; // .unwrap()\nlet c = 'u'; /* .unwrap() */ s.unwrap();\n",
        );
        // The only `unwrap` identifier is the real call on line 2.
        let unwraps: Vec<&Token> = f.tokens.iter().filter(|t| is_ident(t, "unwrap")).collect();
        assert_eq!(unwraps.len(), 1);
        assert_eq!(unwraps[0].line, 1);
        // The string body is one Str token, its content preserved.
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Str && t.text == "x.unwrap()"));
        // 'u' is a char literal, not a lifetime.
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.text == "u"));
    }

    #[test]
    fn raw_strings_close_on_matching_hashes() {
        let f = SourceFile::parse(
            "t.rs",
            "let p = r#\"a \"quoted\" .lock()\"#;\nlet q = r\"plain\";\nafter();\n",
        );
        assert!(!idents(&f).contains(&"lock"), "{:?}", idents(&f));
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::RawStr && t.text == "a \"quoted\" .lock()"));
        assert!(f.tokens.iter().any(|t| is_ident(t, "after")));
    }

    #[test]
    fn nested_block_comments_and_doc_comments_vanish() {
        let f = SourceFile::parse(
            "t.rs",
            "/* outer /* inner.unwrap() */ still comment */ real();\n/// doc .expect(\n//! inner doc panic!\ncode();\n",
        );
        let ids = idents(&f);
        assert_eq!(ids, vec!["real", "code"]);
        assert_eq!(
            f.tokens.iter().find(|t| is_ident(t, "code")).unwrap().line,
            3
        );
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let f = SourceFile::parse(
            "t.rs",
            "fn f<'a>(x: &'a str) -> &'static str { let c = '}'; let e = '\\n'; x }\n",
        );
        let lifetimes: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
        // '}' must lex as a char literal, not close the fn body early.
        let close = f.tokens.iter().rev().find(|t| is_punct(t, '}')).unwrap();
        assert_eq!(close.depth, 0, "brace depth balanced despite '}}' literal");
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.text == "}"));
        assert!(f
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Char && t.text == "\\n"));
    }

    #[test]
    fn numbers_keep_suffixes_and_ranges_split() {
        let f = SourceFile::parse("t.rs", "let a = 0.0f32; for i in 0..3 { x(1e-3); }\n");
        let nums: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["0.0f32", "0", "3", "1e-3"]);
    }

    #[test]
    fn cfg_test_mod_and_test_fn_regions_are_tracked() {
        let src = "\
pub(crate) fn lib_code() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { helper(); }
}
pub(crate) fn more_lib() {}
#[test]
fn top_level_test() { other(); }
fn lib_again() { tail(); }
";
        let f = SourceFile::parse("t.rs", src);
        let find = |name: &str| f.tokens.iter().find(|t| is_ident(t, name)).unwrap();
        assert!(!find("lib_code").in_test);
        assert!(find("helper").in_test, "inside cfg(test) mod");
        assert!(!find("more_lib").in_test, "after the test mod closes");
        assert!(find("other").in_test, "inside a #[test] fn");
        assert!(!find("tail").in_test, "after the test fn closes");
    }

    #[test]
    fn cfg_not_test_and_bodyless_items_do_not_arm() {
        let src = "\
#[cfg(test)]
use std::collections::HashMap;
#[cfg(not(test))]
fn release_only() { work(); }
fn real() { more(); }
";
        let f = SourceFile::parse("t.rs", src);
        let find = |name: &str| f.tokens.iter().find(|t| is_ident(t, name)).unwrap();
        assert!(!find("work").in_test, "cfg(not(test)) is not a test region");
        assert!(!find("more").in_test, "fn after cfg(test) use is lib code");
    }

    #[test]
    fn loop_depth_counts_enclosing_loops_only() {
        let src = "\
impl Fake for Thing {
    fn run(&self) {
        for i in 0..3 {
            while i > 0 {
                body();
            }
        }
        'outer: loop {
            labeled();
            break 'outer;
        }
        after();
    }
}
";
        let f = SourceFile::parse("t.rs", src);
        let find = |name: &str| f.tokens.iter().find(|t| is_ident(t, name)).unwrap();
        assert_eq!(find("run").loop_depth, 0, "impl-for is not a loop");
        assert_eq!(find("body").loop_depth, 2);
        assert_eq!(find("labeled").loop_depth, 1, "labeled loop counts");
        assert_eq!(find("after").loop_depth, 0);
    }

    #[test]
    fn fn_boundaries_are_tracked() {
        let src = "\
fn alpha() {
    inner();
}
trait T {
    fn sig_only(&self);
}
fn beta() {
    deeper(|| call());
}
";
        let f = SourceFile::parse("t.rs", src);
        let at = |name: &str| {
            let i = f.tokens.iter().position(|t| is_ident(t, name)).unwrap();
            f.fn_name_at(i).map(str::to_string)
        };
        assert_eq!(at("inner").as_deref(), Some("alpha"));
        assert_eq!(at("call").as_deref(), Some("beta"));
        assert_eq!(
            f.fns.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
            vec!["alpha", "beta"],
            "bodyless trait sigs do not open fn spans"
        );
    }

    #[test]
    fn seq_matches_method_calls_paths_and_macros() {
        let f = SourceFile::parse(
            "t.rs",
            "x.unwrap(); std::thread::spawn(f); panic!(\"x\");\n",
        );
        let t = &f.tokens;
        let at = |name: &str| t.iter().position(|tk| is_ident(tk, name)).unwrap();
        assert!(seq(t, at("unwrap") - 1, &[".", "unwrap", "(", ")"]).is_some());
        assert!(seq(t, at("std"), &["std", "::", "thread", "::", "spawn", "("]).is_some());
        assert!(seq(t, at("thread"), &["thread", "::", "spawn", "("]).is_some());
        assert!(seq(t, at("panic"), &["panic", "!"]).is_some());
        assert!(seq(t, at("unwrap"), &["unwrap", "!", "("]).is_none());
    }
}

//! Validator for `BENCH_<bin>.json` snapshots (`xtask check-bench`).
//!
//! The bench bins emit their observability snapshot through
//! `saccs_obs::json::bench_snapshot`; CI runs one fast bin with
//! `SACCS_OBS=json` and feeds the file through this validator to catch
//! emitter regressions (truncated writes, broken escaping, dropped
//! sections) without taking a serde dependency. The parser is a minimal
//! recursive-descent pass over the full JSON grammar — strict enough to
//! reject malformed output, small enough to audit.

/// A parsed JSON value; only the shapes the validator inspects are
/// retained structurally (objects), the rest collapse to leaves.
#[derive(Debug, PartialEq)]
pub(crate) enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub(crate) fn get<'a>(&'a self, key: &str) -> Option<&'a Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Sections every snapshot must carry, whatever the bin.
const REQUIRED_KEYS: [&str; 6] = [
    "schema",
    "bin",
    "headline",
    "counters",
    "gauges",
    "histograms",
];

/// Validate one snapshot document; returns the list of problems (empty =
/// valid). Checks syntax, the required top-level keys, and the shape of
/// each section (`schema`/`bin` scalars, the rest objects).
pub(crate) fn validate(text: &str) -> Vec<String> {
    let root = match Parser::new(text).document() {
        Ok(v) => v,
        Err(e) => return vec![format!("not valid JSON: {e}")],
    };
    let mut problems = Vec::new();
    if !matches!(root, Value::Object(_)) {
        return vec!["top level is not a JSON object".into()];
    }
    for key in REQUIRED_KEYS {
        match (key, root.get(key)) {
            (_, None) => problems.push(format!("missing required key `{key}`")),
            ("schema", Some(Value::Number(_))) | ("bin", Some(Value::String(_))) => {}
            ("schema" | "bin", Some(v)) => {
                problems.push(format!("`{key}` has wrong type: {}", type_name(v)))
            }
            (_, Some(Value::Object(_))) => {}
            (_, Some(v)) => problems.push(format!("`{key}` is not an object: {}", type_name(v))),
        }
    }
    if let Some(Value::Object(fields)) = root.get("histograms") {
        for (name, body) in fields {
            for stat in ["count", "p50_ns", "p95_ns", "p99_ns"] {
                if !matches!(body.get(stat), Some(Value::Number(_))) {
                    problems.push(format!("histogram `{name}` missing numeric `{stat}`"));
                }
            }
        }
    }
    problems
}

fn type_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Number(_) => "number",
        Value::String(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

/// Minimal JSON parser, shared with the audit-report validator
/// (`auditjson`).
pub(crate) struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    pub(crate) fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    /// Parse exactly one value followed by optional whitespace and EOF.
    pub(crate) fn document(&mut self) -> Result<Value, String> {
        let v = self.value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(format!("trailing garbage at byte {}", self.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::String(self.string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!(
                "unexpected byte `{}` at {}",
                char::from(other),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            let key = self.string()?;
            self.eat(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .bytes
                .get(self.pos)
                .copied()
                .ok_or("unterminated string")?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            // Surrogates would need pairing; the emitter
                            // never produces them, so reject outright.
                            out.push(char::from_u32(code).ok_or("\\u escape is a surrogate")?);
                        }
                        _ => return Err(format!("bad escape `\\{}`", char::from(esc))),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the remaining continuation
                    // bytes of this char verbatim (input is valid UTF-8
                    // by construction of `&str`).
                    let start = self.pos - 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{
  "schema": 1,
  "bin": "table3",
  "headline": { "total_sentences": 4130 },
  "counters": { "table3.datasets": 4 },
  "gauges": {},
  "histograms": {
    "algo1.rank": { "count": 30, "sum_ns": 12, "min_ns": 1, "max_ns": 2,
                    "p50_ns": 1, "p95_ns": 2, "p99_ns": 2 }
  }
}"#;

    #[test]
    fn accepts_a_well_formed_snapshot() {
        assert_eq!(validate(GOOD), Vec::<String>::new());
    }

    #[test]
    fn rejects_syntax_errors_and_truncation() {
        assert!(validate("{")[0].contains("not valid JSON"));
        assert!(validate(&GOOD[..GOOD.len() - 2])[0].contains("not valid JSON"));
        assert!(validate("{} trailing")[0].contains("not valid JSON"));
    }

    #[test]
    fn reports_each_missing_required_key() {
        let problems = validate(r#"{ "schema": 1, "bin": "t" }"#);
        assert_eq!(problems.len(), 4, "unexpected: {problems:?}");
        for key in ["headline", "counters", "gauges", "histograms"] {
            assert!(
                problems.iter().any(|p| p.contains(key)),
                "no report for {key}"
            );
        }
    }

    #[test]
    fn rejects_wrong_section_types_and_histogram_shape() {
        let problems = validate(
            r#"{ "schema": "one", "bin": "t", "headline": [], "counters": {},
                "gauges": {}, "histograms": { "h": { "count": 1 } } }"#,
        );
        assert!(problems.iter().any(|p| p.contains("`schema`")));
        assert!(problems.iter().any(|p| p.contains("`headline`")));
        assert!(problems.iter().any(|p| p.contains("p50_ns")));
    }

    #[test]
    fn parser_handles_escapes_nesting_and_numbers() {
        let v = Parser::new(r#"{"a\nA": [-1.5e3, true, null, "x"]}"#)
            .document()
            .unwrap();
        assert_eq!(
            v.get("a\nA"),
            Some(&Value::Array(vec![
                Value::Number(-1500.0),
                Value::Bool(true),
                Value::Null,
                Value::String("x".into()),
            ]))
        );
    }
}

//! Validator for flight-recorder reports (`xtask check-report`).
//!
//! The serve bench dumps the recorder's [`ObsReport`] rendered through
//! `ObsReport::render`; CI byte-diffs two normalized dumps from
//! identical runs and feeds one through this validator to catch emitter
//! regressions (truncated writes, broken escaping, dropped sections)
//! without a serde dependency. Reuses the recursive-descent JSON parser
//! from `benchjson`.

use crate::benchjson::{Parser, Value};

/// Top-level keys every report must carry, normalized or not.
const REQUIRED_KEYS: [&str; 7] = [
    "schema",
    "kind",
    "normalized",
    "requests",
    "shed",
    "stages",
    "events",
];

/// Validate one report document; returns the list of problems (empty =
/// valid). Checks syntax, the envelope (`schema` 1, `kind`
/// "obs-report"), section shapes, and each trace record's shape.
pub(crate) fn validate(text: &str) -> Vec<String> {
    let root = match Parser::new(text).document() {
        Ok(v) => v,
        Err(e) => return vec![format!("not valid JSON: {e}")],
    };
    if !matches!(root, Value::Object(_)) {
        return vec!["top level is not a JSON object".into()];
    }
    let mut problems = Vec::new();
    for key in REQUIRED_KEYS {
        match (key, root.get(key)) {
            (_, None) => problems.push(format!("missing required key `{key}`")),
            ("schema", Some(Value::Number(n))) if *n == 1.0 => {}
            ("schema", Some(v)) => problems.push(format!("`schema` is not 1: {v:?}")),
            ("kind", Some(Value::String(k))) if k == "obs-report" => {}
            ("kind", Some(v)) => problems.push(format!("`kind` is not \"obs-report\": {v:?}")),
            ("normalized", Some(Value::Bool(_))) => {}
            ("requests" | "shed", Some(Value::Number(_))) => {}
            ("stages" | "events", Some(Value::Object(_))) => {}
            (_, Some(v)) => problems.push(format!("`{key}` has wrong type: {v:?}")),
        }
    }
    if let Some(Value::Object(stages)) = root.get("stages") {
        for (name, body) in stages {
            if !matches!(body.get("count"), Some(Value::Number(_))) {
                problems.push(format!("stage `{name}` missing numeric `count`"));
            }
        }
    }
    if let Some(Value::Object(events)) = root.get("events") {
        for (label, count) in events {
            if !matches!(count, Value::Number(_)) {
                problems.push(format!("event `{label}` count is not a number"));
            }
        }
    }
    match root.get("traces") {
        Some(Value::Array(traces)) => {
            for (i, t) in traces.iter().enumerate() {
                check_trace(i, t, &mut problems);
            }
        }
        Some(v) => problems.push(format!("`traces` is not an array: {v:?}")),
        None => problems.push("missing required key `traces`".into()),
    }
    // Normalized reports collapse exemplars to their count; full reports
    // carry the records.
    match root.get("exemplars") {
        Some(Value::Number(_)) => {}
        Some(Value::Array(exemplars)) => {
            for (i, t) in exemplars.iter().enumerate() {
                check_trace(i, t, &mut problems);
            }
        }
        Some(v) => problems.push(format!("`exemplars` is neither count nor array: {v:?}")),
        None => problems.push("missing required key `exemplars`".into()),
    }
    problems
}

/// One trace record: numeric `id`, and `events` as an array of strings.
fn check_trace(i: usize, t: &Value, problems: &mut Vec<String>) {
    if !matches!(t, Value::Object(_)) {
        problems.push(format!("trace #{i} is not an object"));
        return;
    }
    if !matches!(t.get("id"), Some(Value::Number(_))) {
        problems.push(format!("trace #{i} missing numeric `id`"));
    }
    match t.get("events") {
        Some(Value::Array(events)) => {
            if events.iter().any(|e| !matches!(e, Value::String(_))) {
                problems.push(format!("trace #{i} has a non-string event"));
            }
        }
        _ => problems.push(format!("trace #{i} missing `events` array")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"{
  "schema": 1,
  "kind": "obs-report",
  "normalized": true,
  "requests": 2,
  "shed": 1,
  "stages": {
    "algo1.probe": {"count": 2},
    "serve.queue_wait": {"count": 2}
  },
  "events": {
    "admitted": 2,
    "stage_exit:algo1.probe": 2
  },
  "traces": [
    {"id": 0, "degraded": false, "dropped": 0, "events": ["admitted", "queue_wait"]},
    {"id": 1, "degraded": true, "dropped": 0, "events": ["admitted"]}
  ],
  "exemplars": 2
}"#;

    #[test]
    fn accepts_a_well_formed_normalized_report() {
        assert_eq!(validate(GOOD), Vec::<String>::new());
    }

    #[test]
    fn accepts_full_reports_with_exemplar_records() {
        let full = GOOD
            .replace("\"normalized\": true", "\"normalized\": false")
            .replace(
                "\"exemplars\": 2",
                "\"exemplars\": [{\"id\": 0, \"events\": []}]",
            );
        assert_eq!(validate(&full), Vec::<String>::new());
    }

    #[test]
    fn rejects_syntax_errors_and_wrong_envelope() {
        assert!(validate("{")[0].contains("not valid JSON"));
        let wrong = GOOD.replace("\"obs-report\"", "\"bench\"");
        assert!(validate(&wrong).iter().any(|p| p.contains("`kind`")));
        let wrong = GOOD.replace("\"schema\": 1", "\"schema\": 2");
        assert!(validate(&wrong).iter().any(|p| p.contains("`schema`")));
    }

    #[test]
    fn rejects_malformed_sections_and_traces() {
        let bad = GOOD
            .replace("{\"count\": 2},", "{},")
            .replace("\"admitted\": 2", "\"admitted\": \"two\"")
            .replace("{\"id\": 1, \"degraded\": true, \"dropped\": 0, ", "{");
        let problems = validate(&bad);
        assert!(problems
            .iter()
            .any(|p| p.contains("missing numeric `count`")));
        assert!(problems.iter().any(|p| p.contains("count is not a number")));
        assert!(problems.iter().any(|p| p.contains("missing numeric `id`")));
    }

    #[test]
    fn reports_each_missing_required_key() {
        let problems = validate(r#"{ "schema": 1 }"#);
        for key in [
            "kind",
            "requests",
            "stages",
            "events",
            "traces",
            "exemplars",
        ] {
            assert!(
                problems.iter().any(|p| p.contains(key)),
                "no report for {key}: {problems:?}"
            );
        }
    }
}

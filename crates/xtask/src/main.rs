//! Workspace lint & audit driver: `cargo run -p xtask -- check | audit`.
//!
//! `check` runs the repo-specific correctness passes (see `lints/`)
//! over every `.rs` file in `crates/*/src` and the root `src/`,
//! honouring inline `// lint:allow(<id>): reason` waivers and the
//! committed `crates/xtask/allowlist.txt`, and exits non-zero if any
//! un-waived violation remains. `audit` additionally runs the
//! determinism/concurrency analyses and gates their counts on the
//! ratcheted baseline (`crates/xtask/audit_baseline.txt`); see
//! `audit.rs`. Both match on a real token stream (see `scan.rs`), so
//! patterns inside strings and comments can never fire. `cargo clippy`
//! handles general Rust style; this driver enforces the rules specific
//! to a deterministic serving-path search stack.

mod audit;
mod auditjson;
mod benchjson;
mod lints;
mod reportjson;
mod scan;

use lints::{all_lints, audit_passes, entry_matches, parse_allowlist, waivers_for, Violation};
use scan::{rust_files, SourceFile};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(),
        Some("audit") => audit::run(&args[1..]),
        Some("check-bench") => match args.get(1) {
            Some(path) => check_bench(path),
            None => {
                eprintln!("usage: cargo run -p xtask -- check-bench BENCH_<bin>.json");
                ExitCode::from(2)
            }
        },
        Some("check-audit") => match args.get(1) {
            Some(path) => check_audit(path),
            None => {
                eprintln!("usage: cargo run -p xtask -- check-audit AUDIT.json");
                ExitCode::from(2)
            }
        },
        Some("check-report") => match args.get(1) {
            Some(path) => check_report(path),
            None => {
                eprintln!("usage: cargo run -p xtask -- check-report REPORT.json");
                ExitCode::from(2)
            }
        },
        _ => {
            eprintln!("usage: cargo run -p xtask -- check");
            eprintln!("       cargo run -p xtask -- audit [--json PATH] [--update-baseline]");
            eprintln!("       cargo run -p xtask -- check-bench BENCH_<bin>.json");
            eprintln!("       cargo run -p xtask -- check-audit AUDIT.json");
            eprintln!("       cargo run -p xtask -- check-report REPORT.json");
            eprintln!();
            eprintln!("check lints:");
            for lint in all_lints() {
                eprintln!("  {}", lint.id());
            }
            eprintln!("extra audit passes:");
            for pass in audit_passes().iter().skip(all_lints().len()) {
                eprintln!("  {}", pass.id());
            }
            ExitCode::from(2)
        }
    }
}

/// Validate one audit report written by `xtask audit --json` (syntax,
/// required sections, per-violation shape, count consistency).
fn check_audit(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask check-audit: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let problems = auditjson::validate(&text);
    if problems.is_empty() {
        println!("xtask check-audit: {path} ok");
        ExitCode::SUCCESS
    } else {
        for p in &problems {
            eprintln!("xtask check-audit: {path}: {p}");
        }
        ExitCode::FAILURE
    }
}

/// Validate one flight-recorder report dumped by the serve bench
/// (syntax, envelope, section shapes, per-trace shape).
fn check_report(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask check-report: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let problems = reportjson::validate(&text);
    if problems.is_empty() {
        println!("xtask check-report: {path} ok");
        ExitCode::SUCCESS
    } else {
        for p in &problems {
            eprintln!("xtask check-report: {path}: {p}");
        }
        ExitCode::FAILURE
    }
}

/// Validate one `BENCH_<bin>.json` snapshot emitted by a bench bin under
/// `SACCS_OBS=json` (syntax, required sections, histogram shape).
fn check_bench(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask check-bench: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let problems = benchjson::validate(&text);
    if problems.is_empty() {
        println!("xtask check-bench: {path} ok");
        ExitCode::SUCCESS
    } else {
        for p in &problems {
            eprintln!("xtask check-bench: {path}: {p}");
        }
        ExitCode::FAILURE
    }
}

/// Parse the committed allowlist (missing file = empty).
fn load_allowlist(root: &Path) -> Vec<lints::AllowEntry> {
    std::fs::read_to_string(root.join("crates/xtask/allowlist.txt"))
        .map(|t| parse_allowlist(&t))
        .unwrap_or_default()
}

fn check() -> ExitCode {
    let root = workspace_root();
    let allowlist = load_allowlist(&root);

    let lints = all_lints();
    let mut files_scanned = 0usize;
    let mut reported: Vec<String> = Vec::new();
    let mut waived = 0usize;
    let mut allowlisted = 0usize;
    let mut used_entries = vec![false; allowlist.len()];

    for rel in workspace_sources(&root) {
        let file = match SourceFile::read(&root, &rel) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("xtask: cannot read {rel}: {e}");
                return ExitCode::from(2);
            }
        };
        files_scanned += 1;
        for lint in &lints {
            if !lint.applies(&rel) {
                continue;
            }
            for v in lint.run(&file) {
                match classify(&file, &v, &allowlist, &mut used_entries) {
                    Disposition::Waived => waived += 1,
                    Disposition::Allowlisted => allowlisted += 1,
                    Disposition::Report => {
                        reported.push(format!("{}:{}: [{}] {}", v.path, v.line, v.lint, v.message))
                    }
                }
            }
        }
    }

    // Entries for audit-only passes are matched by `audit`, not here.
    let check_ids: Vec<&str> = lints.iter().map(|l| l.id()).collect();
    for (entry, used) in allowlist.iter().zip(&used_entries) {
        if !used && check_ids.iter().any(|id| *id == entry.lint) {
            eprintln!(
                "xtask: warning: stale allowlist entry `{} {} {}`",
                entry.lint, entry.path, entry.needle
            );
        }
    }

    for line in &reported {
        println!("{line}");
    }
    println!(
        "xtask check: {} files, {} violation(s), {} waived inline, {} allowlisted",
        files_scanned,
        reported.len(),
        waived,
        allowlisted
    );
    if reported.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

enum Disposition {
    Report,
    Waived,
    Allowlisted,
}

fn classify(
    file: &SourceFile,
    v: &Violation,
    allowlist: &[lints::AllowEntry],
    used: &mut [bool],
) -> Disposition {
    if waivers_for(file, v.line - 1).iter().any(|id| id == v.lint) {
        return Disposition::Waived;
    }
    let raw = &file.lines[v.line - 1].raw;
    for (i, entry) in allowlist.iter().enumerate() {
        if entry_matches(entry, v, raw) {
            used[i] = true;
            return Disposition::Allowlisted;
        }
    }
    Disposition::Report
}

/// All workspace-relative scan targets: `crates/*/src` (except this
/// driver, whose sources contain the patterns as data) and the root
/// package's `src/`. `vendor/` stand-ins, tests, examples and benches
/// are out of scope.
fn workspace_sources(root: &Path) -> Vec<String> {
    let mut out = Vec::new();
    if let Ok(entries) = std::fs::read_dir(root.join("crates")) {
        let mut dirs: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir() && p.file_name().is_some_and(|n| n != "xtask"))
            .collect();
        dirs.sort();
        for d in dirs {
            out.extend(rust_files(root, &d.join("src")));
        }
    }
    out.extend(rust_files(root, &root.join("src")));
    out
}

fn workspace_root() -> PathBuf {
    // crates/xtask/ -> workspace root is two levels up.
    let manifest = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".into());
    Path::new(&manifest)
        .ancestors()
        .nth(2)
        .unwrap_or(Path::new("."))
        .to_path_buf()
}

//! `no-print-in-lib`: stray stdout/stderr writes in library code.
//!
//! `println!` / `eprintln!` (and their non-newline forms) in library
//! crates bypass the observability layer: they cannot be disabled,
//! captured by an exporter, or attributed to a span, and they corrupt
//! the stdout of any binary that treats its output as data (the bench
//! bins emit parseable tables; `SACCS_OBS=json` emits JSON). Library
//! code should record through `saccs-obs` (spans, counters, gauges) or
//! write through an injected `std::io::Write` handle. The `bench` crate
//! is exempt — printed tables *are* its product.

use super::{Lint, Violation};
use crate::scan::{seq, SourceFile};

const MACROS: [&str; 4] = ["println", "eprintln", "print", "eprint"];

pub(crate) struct NoPrintInLib;

impl Lint for NoPrintInLib {
    fn id(&self) -> &'static str {
        "no-print-in-lib"
    }

    fn applies(&self, path: &str) -> bool {
        if path.starts_with("crates/bench/") {
            return false;
        }
        path.starts_with("src/") || (path.starts_with("crates/") && path.contains("/src/"))
    }

    fn run(&self, file: &SourceFile) -> Vec<Violation> {
        let mut out = Vec::new();
        let t = &file.tokens;
        let mut last_line = usize::MAX;
        for i in 0..t.len() {
            if t[i].in_test || t[i].line == last_line {
                continue;
            }
            let Some(name) = MACROS.iter().find(|m| seq(t, i, &[m, "!"]).is_some()) else {
                continue;
            };
            last_line = t[i].line;
            out.push(Violation::new(
                self.id(),
                file,
                t[i].line,
                format!(
                    "`{name}!` in library code: record through saccs-obs or \
                     write through an injected io::Write handle"
                ),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(src: &str) -> Vec<Violation> {
        NoPrintInLib.run(&SourceFile::parse("crates/obs/src/export.rs", src))
    }

    #[test]
    fn fires_on_every_print_macro_in_lib_code() {
        let v = run_on(
            "pub fn f() {\n\
             \x20   println!(\"a\");\n\
             \x20   eprintln!(\"b\");\n\
             \x20   print!(\"c\");\n\
             \x20   eprint!(\"d\");\n\
             }\n",
        );
        assert_eq!(v.len(), 4, "unexpected: {v:?}");
        assert!(v[0].message.contains("println!"));
        assert!(v[1].message.contains("eprintln!"));
        assert!(v[2].message.contains("print!"));
        assert!(v[3].message.contains("eprint!"));
    }

    #[test]
    fn reports_a_line_once_under_the_specific_macro() {
        let v = run_on("pub fn f() { println!(\"x\"); }\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("`println!`"));
    }

    #[test]
    fn quiet_on_test_code_comments_and_strings() {
        let v = run_on(
            "//! Docs may say println! freely.\n\
             pub fn f() -> &'static str { \"println!\" } // eprintln! in comment\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   #[test]\n\
             \x20   fn t() { println!(\"test output is fine\"); }\n\
             }\n",
        );
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn quiet_on_idents_that_merely_contain_a_macro_name() {
        // `reprint!` / `println_to!` are different identifiers at token
        // level — the old substring scan would have fired on both.
        let v = run_on("pub fn f() { reprint!(\"x\"); println_to!(sink, \"y\"); }\n");
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn bench_crate_is_exempt_and_scope_is_lib_sources() {
        assert!(!NoPrintInLib.applies("crates/bench/src/lib.rs"));
        assert!(!NoPrintInLib.applies("crates/bench/src/bin/table2.rs"));
        assert!(NoPrintInLib.applies("crates/obs/src/export.rs"));
        assert!(NoPrintInLib.applies("crates/core/src/service.rs"));
        assert!(NoPrintInLib.applies("src/lib.rs"));
        assert!(!NoPrintInLib.applies("vendor/rand/src/lib.rs"));
    }
}

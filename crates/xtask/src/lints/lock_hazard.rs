//! `lock-hazard`: a held guard crossing another lock acquisition.
//!
//! Acquiring a second `Mutex`/`RwLock` while a let-bound guard is live is
//! the deadlock shape `index::shared` is built to avoid: two threads
//! taking the same pair of locks in opposite orders stall forever, and
//! even a consistent order deserves an explicit comment. The pass tracks
//! `let g = <expr>.lock()/.read()/.write();` bindings per scope, honours
//! explicit `drop(g)`, and flags any later acquisition (bound or
//! temporary) while a guard is still live.

use super::{Lint, Violation};
use crate::scan::SourceFile;

const ACQUIRE: [&str; 3] = [".lock()", ".read()", ".write()"];

pub(crate) struct LockHazard;

struct Guard {
    name: String,
    depth: usize,
    line: usize,
}

impl Lint for LockHazard {
    fn id(&self) -> &'static str {
        "lock-hazard"
    }

    fn applies(&self, path: &str) -> bool {
        path.starts_with("crates/") && path.contains("/src/")
    }

    fn run(&self, file: &SourceFile) -> Vec<Violation> {
        let mut out = Vec::new();
        let mut guards: Vec<Guard> = Vec::new();
        // Multi-line statements (rustfmt splits long chains) are joined
        // so `.lock()` on a continuation line is still seen.
        let mut stmt = String::new();
        let mut stmt_start = 0usize;

        for (i, line) in file.lines.iter().enumerate() {
            // Scope exit drops guards bound deeper than the current line.
            guards.retain(|g| g.depth <= line.depth);

            if stmt.is_empty() {
                stmt_start = i;
            }
            stmt.push_str(line.code.trim());
            stmt.push(' ');

            let complete = {
                let t = line.code.trim_end();
                t.ends_with(';') || t.ends_with('{') || t.ends_with('}')
            };
            if !complete {
                continue;
            }
            let text = std::mem::take(&mut stmt);

            for name in drop_calls(&text) {
                guards.retain(|g| g.name != name);
            }

            let acquires = ACQUIRE.iter().any(|p| text.contains(p));
            if acquires {
                if let Some(held) = guards.last() {
                    out.push(Violation::new(
                        self.id(),
                        file,
                        stmt_start,
                        format!(
                            "lock acquired while guard `{}` (line {}) is still held: \
                             drop it first or document the lock order with a waiver",
                            held.name,
                            held.line + 1
                        ),
                    ));
                }
                // A statement *ending* in an acquisition binds a guard;
                // mid-statement acquisitions are temporaries that die at
                // the `;` (e.g. `take(&mut *m.lock());`).
                if let Some(name) = bound_guard(&text) {
                    guards.push(Guard {
                        name,
                        depth: file.lines[stmt_start].depth,
                        line: stmt_start,
                    });
                }
            }
        }
        out
    }
}

/// `let [mut] NAME = <expr>.lock();` — the guard name, if this statement
/// let-binds an acquisition as its final call.
fn bound_guard(stmt: &str) -> Option<String> {
    let t = stmt.trim();
    let rest = t.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    if name.is_empty() {
        return None;
    }
    let end = t.trim_end().trim_end_matches(';').trim_end();
    ACQUIRE
        .iter()
        .any(|p| end.ends_with(p) || end.ends_with(&format!("{p}?")))
        .then_some(name)
}

/// Names passed to `drop(...)` in this statement.
fn drop_calls(stmt: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = stmt;
    while let Some(pos) = rest.find("drop(") {
        let after = &rest[pos + 5..];
        let name: String = after
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !name.is_empty() && after[name.len()..].starts_with(')') {
            out.push(name);
        }
        rest = after;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(src: &str) -> Vec<Violation> {
        LockHazard.run(&SourceFile::parse("crates/index/src/shared.rs", src))
    }

    #[test]
    fn fires_on_nested_acquisition_under_a_held_guard() {
        let v = run_on(
            "fn f(&self) {\n\
             \x20   let guard = self.inner.read();\n\
             \x20   self.pending.lock().push(1);\n\
             }\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
        assert!(v[0].message.contains("`guard`"));
    }

    #[test]
    fn quiet_after_explicit_drop_or_scope_exit() {
        let v = run_on(
            "fn f(&self) {\n\
             \x20   let guard = self.inner.read();\n\
             \x20   let n = guard.len();\n\
             \x20   drop(guard);\n\
             \x20   self.pending.lock().push(n);\n\
             }\n\
             fn g(&self) {\n\
             \x20   {\n\
             \x20       let w = self.inner.write();\n\
             \x20       w.touch();\n\
             \x20   }\n\
             \x20   self.pending.lock().clear();\n\
             }\n",
        );
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn temporary_guards_do_not_count_as_held() {
        // The statement-final-call rule: `take(&mut *m.lock());` drops its
        // guard at the `;`, so the later `.write()` is safe.
        let v = run_on(
            "fn f(&self) {\n\
             \x20   let queued = std::mem::take(&mut *self.pending.lock());\n\
             \x20   let mut guard = self.inner.write();\n\
             \x20   guard.extend(queued);\n\
             }\n",
        );
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn multi_line_acquisition_chains_are_joined() {
        let v = run_on(
            "fn f(&self) {\n\
             \x20   let guard = self\n\
             \x20       .inner\n\
             \x20       .read();\n\
             \x20   self.pending.lock().push(1);\n\
             }\n",
        );
        assert_eq!(v.len(), 1, "unexpected: {v:?}");
        assert_eq!(v[0].line, 5);
    }
}

//! `lock-hazard`: a held guard crossing another lock acquisition.
//!
//! Acquiring a second `Mutex`/`RwLock` while a let-bound guard is live is
//! the deadlock shape `index::shared` is built to avoid: two threads
//! taking the same pair of locks in opposite orders stall forever, and
//! even a consistent order deserves an explicit comment. The pass walks
//! statements on the token stream (so rustfmt-split chains need no
//! joining), tracks `let g = <expr>.lock()/.read()/.write();` bindings
//! per scope, honours explicit `drop(g)`, and flags any later
//! acquisition (bound or temporary) while a guard is still live.

use super::{Lint, Violation};
use crate::scan::{is_ident, is_punct, SourceFile, Token, TokenKind};

const ACQUIRE: [&str; 3] = ["lock", "read", "write"];

pub(crate) struct LockHazard;

struct Guard {
    name: String,
    depth: usize,
    line: usize,
}

impl Lint for LockHazard {
    fn id(&self) -> &'static str {
        "lock-hazard"
    }

    fn applies(&self, path: &str) -> bool {
        path.starts_with("crates/") && path.contains("/src/")
    }

    fn run(&self, file: &SourceFile) -> Vec<Violation> {
        let mut out = Vec::new();
        let mut guards: Vec<Guard> = Vec::new();
        let t = &file.tokens;
        // Statements are token runs separated by `;` / `{` / `}`.
        let mut s = 0usize;

        for i in 0..=t.len() {
            let sep = i == t.len()
                || (t[i].kind == TokenKind::Punct && matches!(t[i].text.as_str(), ";" | "{" | "}"));
            if !sep {
                continue;
            }
            if s < i {
                // Scope exit drops guards bound deeper than this statement.
                guards.retain(|g| g.depth <= t[s].depth);

                for j in s..i.saturating_sub(3) {
                    if is_ident(&t[j], "drop")
                        && is_punct(&t[j + 1], '(')
                        && t[j + 2].kind == TokenKind::Ident
                        && is_punct(&t[j + 3], ')')
                    {
                        guards.retain(|g| g.name != t[j + 2].text);
                    }
                }

                if (s..i).any(|j| acquire_at(t, j)) {
                    if let Some(held) = guards.last() {
                        out.push(Violation::new(
                            self.id(),
                            file,
                            t[s].line,
                            format!(
                                "lock acquired while guard `{}` (line {}) is still held: \
                                 drop it first or document the lock order with a waiver",
                                held.name,
                                held.line + 1
                            ),
                        ));
                    }
                    // A statement *ending* in an acquisition binds a guard;
                    // mid-statement acquisitions are temporaries that die
                    // at the `;` (e.g. `take(&mut *m.lock());`).
                    if let Some(name) = bound_guard(t, s, i) {
                        guards.push(Guard {
                            name,
                            depth: t[s].depth,
                            line: t[s].line,
                        });
                    }
                }
            }
            s = i + 1;
        }
        out
    }
}

/// `.lock()` / `.read()` / `.write()` starting at token `j`.
fn acquire_at(t: &[Token], j: usize) -> bool {
    j + 3 < t.len()
        && is_punct(&t[j], '.')
        && ACQUIRE.iter().any(|a| is_ident(&t[j + 1], a))
        && is_punct(&t[j + 2], '(')
        && is_punct(&t[j + 3], ')')
}

/// `let [mut] NAME = ...<acquire>[?]` over tokens `t[s..e]` — the guard
/// name, if this statement let-binds an acquisition as its final call.
fn bound_guard(t: &[Token], s: usize, e: usize) -> Option<String> {
    if !is_ident(&t[s], "let") {
        return None;
    }
    let mut j = s + 1;
    if j < e && is_ident(&t[j], "mut") {
        j += 1;
    }
    if j >= e || t[j].kind != TokenKind::Ident {
        return None;
    }
    let name = t[j].text.clone();
    let mut end = e;
    if end > s && is_punct(&t[end - 1], '?') {
        end -= 1;
    }
    (end >= s + 4 && acquire_at(t, end - 4)).then_some(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(src: &str) -> Vec<Violation> {
        LockHazard.run(&SourceFile::parse("crates/index/src/shared.rs", src))
    }

    #[test]
    fn fires_on_nested_acquisition_under_a_held_guard() {
        let v = run_on(
            "fn f(&self) {\n\
             \x20   let guard = self.inner.read();\n\
             \x20   self.pending.lock().push(1);\n\
             }\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 3);
        assert!(v[0].message.contains("`guard`"));
        assert!(v[0].message.contains("(line 2)"));
    }

    #[test]
    fn quiet_after_explicit_drop_or_scope_exit() {
        let v = run_on(
            "fn f(&self) {\n\
             \x20   let guard = self.inner.read();\n\
             \x20   let n = guard.len();\n\
             \x20   drop(guard);\n\
             \x20   self.pending.lock().push(n);\n\
             }\n\
             fn g(&self) {\n\
             \x20   {\n\
             \x20       let w = self.inner.write();\n\
             \x20       w.touch();\n\
             \x20   }\n\
             \x20   self.pending.lock().clear();\n\
             }\n",
        );
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn temporary_guards_do_not_count_as_held() {
        // The statement-final-call rule: `take(&mut *m.lock());` drops its
        // guard at the `;`, so the later `.write()` is safe.
        let v = run_on(
            "fn f(&self) {\n\
             \x20   let queued = std::mem::take(&mut *self.pending.lock());\n\
             \x20   let mut guard = self.inner.write();\n\
             \x20   guard.extend(queued);\n\
             }\n",
        );
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn multi_line_acquisition_chains_are_joined() {
        let v = run_on(
            "fn f(&self) {\n\
             \x20   let guard = self\n\
             \x20       .inner\n\
             \x20       .read();\n\
             \x20   self.pending.lock().push(1);\n\
             }\n",
        );
        assert_eq!(v.len(), 1, "unexpected: {v:?}");
        assert_eq!(v[0].line, 5);
    }

    #[test]
    fn quiet_on_lock_calls_in_strings_and_comments() {
        let v = run_on(
            "fn f(&self) {\n\
             \x20   let guard = self.inner.read();\n\
             \x20   // then self.pending.lock().push(1);\n\
             \x20   log(\"would .lock() here\");\n\
             }\n",
        );
        assert!(v.is_empty(), "unexpected: {v:?}");
    }
}

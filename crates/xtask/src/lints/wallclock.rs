//! `wallclock-in-core`: direct wall-clock reads outside the time seams.
//!
//! Deadline behaviour must be testable without sleeping: that is why
//! `core::resilient` owns `DeadlineClock` (the injectable time seam) and
//! `saccs-obs` owns span timing. A bare `Instant::now()` /
//! `SystemTime::now()` anywhere else in library code hard-wires real
//! time into logic, making timeout paths untestable and replays
//! nondeterministic. Route time through `DeadlineClock` or an obs span;
//! the bench harness (whose product *is* wall-clock numbers) and the
//! seams themselves are exempt.

use super::{Lint, Violation};
use crate::scan::{seq, SourceFile};

pub(crate) struct WallclockInCore;

/// The sanctioned clock owners.
const EXEMPT: [&str; 3] = [
    "crates/obs/src/",
    "crates/bench/",
    "crates/core/src/resilient.rs",
];

const CLOCKS: [&str; 2] = ["Instant", "SystemTime"];

impl Lint for WallclockInCore {
    fn id(&self) -> &'static str {
        "wallclock-in-core"
    }

    fn applies(&self, path: &str) -> bool {
        if EXEMPT.iter().any(|e| path.starts_with(e)) || path.starts_with("crates/xtask/") {
            return false;
        }
        path.starts_with("src/") || (path.starts_with("crates/") && path.contains("/src/"))
    }

    fn run(&self, file: &SourceFile) -> Vec<Violation> {
        let mut out = Vec::new();
        let t = &file.tokens;
        for i in 0..t.len() {
            if t[i].in_test {
                continue;
            }
            let Some(clock) = CLOCKS
                .iter()
                .find(|c| seq(t, i, &[c, "::", "now", "("]).is_some())
            else {
                continue;
            };
            out.push(Violation::new(
                self.id(),
                file,
                t[i].line,
                format!(
                    "`{clock}::now()` outside the time seams: take time from \
                     DeadlineClock (core::resilient) or an obs span so deadline \
                     logic stays testable"
                ),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(src: &str) -> Vec<Violation> {
        WallclockInCore.run(&SourceFile::parse("crates/core/src/service.rs", src))
    }

    #[test]
    fn fires_on_bare_clock_reads_in_lib_code() {
        let v = run_on(
            "fn f() {\n\
             \x20   let t0 = Instant::now();\n\
             \x20   let wall = std::time::SystemTime::now();\n\
             \x20   use_both(t0, wall);\n\
             }\n",
        );
        assert_eq!(v.len(), 2, "unexpected: {v:?}");
        assert!(v[0].message.contains("Instant::now()"));
        assert!(v[1].message.contains("SystemTime::now()"));
    }

    #[test]
    fn quiet_in_tests_strings_and_on_seam_usage() {
        let v = run_on(
            "/// Uses Instant::now( internally — via the clock seam.\n\
             fn f(clock: &DeadlineClock) -> Deadline {\n\
             \x20   clock.deadline_in(BUDGET) // not Instant::now()\n\
             }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   fn t() { let _ = Instant::now(); }\n\
             }\n",
        );
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn seam_owners_and_bench_are_exempt() {
        assert!(!WallclockInCore.applies("crates/obs/src/span.rs"));
        assert!(!WallclockInCore.applies("crates/core/src/resilient.rs"));
        assert!(!WallclockInCore.applies("crates/bench/src/bin/table2.rs"));
        assert!(WallclockInCore.applies("crates/core/src/service.rs"));
        assert!(WallclockInCore.applies("crates/serve/src/lib.rs"));
        assert!(WallclockInCore.applies("crates/rt/src/lib.rs"));
    }
}

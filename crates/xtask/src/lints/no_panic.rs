//! `no-panic-in-service`: aborting macros in the hardened serving layer.
//!
//! The whole point of the resilience work is that `SaccsService` answers
//! degraded instead of dying: every infrastructure failure maps to a
//! `SaccsError` and a rung on the degradation ladder. A `panic!`,
//! `unreachable!` or `todo!` in the service path (or in `saccs-fault`,
//! which must never kill the process it is injecting faults into)
//! silently reintroduces an abort path behind the typed taxonomy. Return
//! a `SaccsError` (or restructure so the case is impossible); genuinely
//! unreachable arms can carry an inline `lint:allow` with the invariant.

use super::{Lint, Violation};
use crate::scan::{seq, SourceFile};

pub(crate) struct NoPanicInService;

/// Files under the no-abort contract: the hardened service layer, the
/// entire fault-injection crate, and the serving front end (a worker
/// thread that aborts takes every queued request down with it).
const SCOPED: [&str; 6] = [
    "crates/core/src/service.rs",
    "crates/core/src/resilient.rs",
    "crates/core/src/error.rs",
    "crates/fault/src/",
    // The query planner runs inside the resilient filter stage; an
    // abort there would bypass the unfiltered degradation rung.
    "crates/query/src/",
    "crates/serve/src/",
];

const MACROS: [&str; 3] = ["panic", "unreachable", "todo"];

impl Lint for NoPanicInService {
    fn id(&self) -> &'static str {
        "no-panic-in-service"
    }

    fn applies(&self, path: &str) -> bool {
        SCOPED.iter().any(|s| path.starts_with(s))
    }

    fn run(&self, file: &SourceFile) -> Vec<Violation> {
        let mut out = Vec::new();
        let t = &file.tokens;
        let mut last_line = usize::MAX;
        for i in 0..t.len() {
            if t[i].in_test || t[i].line == last_line {
                continue;
            }
            let Some(name) = MACROS.iter().find(|m| seq(t, i, &[m, "!"]).is_some()) else {
                continue;
            };
            last_line = t[i].line;
            out.push(Violation::new(
                self.id(),
                file,
                t[i].line,
                format!(
                    "`{name}!` in the resilient serving layer: map the failure \
                     to a SaccsError / degradation rung instead of aborting"
                ),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(src: &str) -> Vec<Violation> {
        NoPanicInService.run(&SourceFile::parse("crates/core/src/service.rs", src))
    }

    #[test]
    fn fires_on_each_aborting_macro() {
        let v = run_on(
            "pub fn f(x: u8) {\n\
             \x20   panic!(\"boom\");\n\
             \x20   unreachable!();\n\
             \x20   todo!()\n\
             }\n",
        );
        assert_eq!(v.len(), 3, "unexpected: {v:?}");
        assert!(v[0].message.contains("`panic!`"));
        assert!(v[1].message.contains("`unreachable!`"));
        assert!(v[2].message.contains("`todo!`"));
    }

    #[test]
    fn quiet_on_test_code_comments_and_strings() {
        let v = run_on(
            "//! Docs can discuss panic! safely.\n\
             pub fn f() -> &'static str { \"panic!\" } // unreachable! note\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   #[test]\n\
             \x20   fn t() { panic!(\"test assertions may abort\"); }\n\
             }\n",
        );
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn quiet_on_panic_in_a_string_argument() {
        // A format string *mentioning* panic! must not fire even though
        // the line also contains real code.
        let v = run_on("pub fn f(e: u8) -> String { format!(\"would panic! on {e}\") }\n");
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn scope_is_the_service_layer_and_the_fault_crate() {
        assert!(NoPanicInService.applies("crates/core/src/service.rs"));
        assert!(NoPanicInService.applies("crates/core/src/resilient.rs"));
        assert!(NoPanicInService.applies("crates/core/src/error.rs"));
        assert!(NoPanicInService.applies("crates/fault/src/registry.rs"));
        assert!(NoPanicInService.applies("crates/fault/src/breaker.rs"));
        assert!(NoPanicInService.applies("crates/serve/src/lib.rs"));
        assert!(NoPanicInService.applies("crates/query/src/plan.rs"));
        assert!(NoPanicInService.applies("crates/query/src/parse.rs"));
        assert!(!NoPanicInService.applies("crates/core/src/builder.rs"));
        assert!(!NoPanicInService.applies("crates/tagger/src/train.rs"));
        assert!(!NoPanicInService.applies("src/lib.rs"));
    }

    #[test]
    fn a_line_reports_once_under_the_first_matching_macro() {
        let v = run_on("pub fn f() { if true { panic!() } else { todo!() } }\n");
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("`panic!`"));
    }
}

//! `unordered-reduction`: accumulating into captured state from a
//! parallel closure.
//!
//! `saccs-rt`'s `parallel_for_chunks` / `parallel_map` run their
//! closures on work-stealing workers in nondeterministic order. The
//! sanctioned reduction shape (see `tagger::train`) is: accumulate into
//! a *closure-local* partial, then write it into a fixed shard
//! (`shards[j % GRAD_SHARDS]`) and tree-reduce the shards in index
//! order afterwards — bit-stable at every width. Accumulating straight
//! into captured state (`*total += x`, `self.sum += x`) from inside the
//! closure is either a data race or, for floats, an
//! order-of-arrival-dependent result. The pass scans the argument
//! tokens of each parallel call and flags `+=` onto names that are
//! neither declared inside the closure nor written through a fixed
//! shard index (`…] += `).

use super::{Lint, Violation};
use crate::scan::{is_punct, matching_close, seq, SourceFile, TokenKind};

pub(crate) struct UnorderedReduction;

const PARALLEL: [&str; 2] = ["parallel_for_chunks", "parallel_map"];

impl Lint for UnorderedReduction {
    fn id(&self) -> &'static str {
        "unordered-reduction"
    }

    fn applies(&self, path: &str) -> bool {
        if path.starts_with("crates/xtask/") {
            return false;
        }
        path.starts_with("src/") || (path.starts_with("crates/") && path.contains("/src/"))
    }

    fn run(&self, file: &SourceFile) -> Vec<Violation> {
        let mut out = Vec::new();
        let t = &file.tokens;
        for i in 0..t.len() {
            if t[i].in_test || !PARALLEL.iter().any(|p| seq(t, i, &[p, "("]).is_some()) {
                continue;
            }
            let Some(close) = matching_close(t, i + 1) else {
                continue;
            };
            // Names `let`-bound inside the call's argument list are
            // closure-locals — accumulating into those is the sanctioned
            // per-chunk partial.
            let mut locals: Vec<String> = Vec::new();
            for j in i + 2..close {
                if seq(t, j, &["let", "*"]).is_some() {
                    locals.push(t[j + 1].text.clone());
                }
                if seq(t, j, &["let", "mut", "*"]).is_some() {
                    locals.push(t[j + 2].text.clone());
                }
            }
            for j in i + 2..close {
                if t[j].kind != TokenKind::Ident
                    || !is_punct(&t[j + 1], '+')
                    || !t.get(j + 2).is_some_and(|n| is_punct(n, '='))
                {
                    continue;
                }
                if locals.iter().any(|n| n == &t[j].text) {
                    continue;
                }
                // `shards[j % K] += v` — fixed-shard write, sanctioned.
                if j > 0 && is_punct(&t[j - 1], ']') {
                    continue;
                }
                // Name the enclosing fn so the report reads without
                // opening the file.
                let ctx = match (file.fn_name_at(j), t[j].fn_idx) {
                    (Some(name), Some(f)) => {
                        format!(" (in `fn {name}`, line {})", file.fns[f as usize].line + 1)
                    }
                    _ => String::new(),
                };
                out.push(Violation::new(
                    self.id(),
                    file,
                    t[j].line,
                    format!(
                        "`{} +=` inside a {} closure accumulates in worker-arrival \
                         order: keep a closure-local partial and tree-reduce fixed \
                         shards (see tagger::train){ctx}",
                        t[j].text, t[i].text
                    ),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(src: &str) -> Vec<Violation> {
        UnorderedReduction.run(&SourceFile::parse("crates/nn/src/train.rs", src))
    }

    #[test]
    fn fires_on_captured_accumulation_in_a_parallel_closure() {
        let v = run_on(
            "fn f(pool: &Pool, xs: &[f32]) -> f32 {\n\
             \x20   let mut total = 0.0f32;\n\
             \x20   pool.parallel_for_chunks(xs, 64, |chunk| {\n\
             \x20       for x in chunk {\n\
             \x20           total += *x;\n\
             \x20       }\n\
             \x20   });\n\
             \x20   total\n\
             }\n",
        );
        assert_eq!(v.len(), 1, "unexpected: {v:?}");
        assert_eq!(v[0].line, 5);
        assert!(v[0].message.contains("`total +=`"));
    }

    #[test]
    fn quiet_on_local_partials_and_fixed_shard_writes() {
        let v = run_on(
            "fn f(pool: &Pool, xs: &[f32], shards: &ShardVec) {\n\
             \x20   pool.parallel_for_chunks(xs, 64, |(j, chunk)| {\n\
             \x20       let mut local = 0.0f32;\n\
             \x20       for x in chunk {\n\
             \x20           local += *x;\n\
             \x20       }\n\
             \x20       shards[j % GRAD_SHARDS] += local;\n\
             \x20   });\n\
             }\n",
        );
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn quiet_on_sequential_accumulation_outside_parallel_calls() {
        let v = run_on(
            "fn f(xs: &[f32]) -> f32 {\n\
             \x20   let mut total = 0.0f32;\n\
             \x20   for x in xs {\n\
             \x20       total += *x;\n\
             \x20   }\n\
             \x20   total\n\
             }\n",
        );
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn xtask_is_out_of_scope_and_lib_code_is_in() {
        assert!(!UnorderedReduction.applies("crates/xtask/src/main.rs"));
        assert!(UnorderedReduction.applies("crates/tagger/src/train.rs"));
        assert!(UnorderedReduction.applies("crates/rt/src/lib.rs"));
    }
}

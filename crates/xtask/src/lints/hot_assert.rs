//! `assert-in-hot-path`: release-mode asserts inside per-token/per-cell
//! loops.
//!
//! The forward/backward passes (`nn`), the Viterbi/feature loops
//! (`tagger`) and the work-stealing loops (`rt`) execute their innermost
//! bodies millions of times per run. A release-mode `assert!` there pays
//! a branch plus format-machinery codegen on every iteration for an
//! invariant already guaranteed by construction. Such checks belong in
//! `debug_assert!` (kept in the test profile, free in release) or
//! hoisted out of the loop. Asserts outside loops and in test code are
//! fine. `debug_assert*` is a different identifier at token level, so it
//! can never be confused with the release-mode form.

use super::{Lint, Violation};
use crate::scan::{seq, SourceFile};

const MACROS: [&str; 3] = ["assert", "assert_eq", "assert_ne"];

pub(crate) struct AssertInHotPath;

impl Lint for AssertInHotPath {
    fn id(&self) -> &'static str {
        "assert-in-hot-path"
    }

    fn applies(&self, path: &str) -> bool {
        path.starts_with("crates/nn/src/")
            || path.starts_with("crates/tagger/src/")
            || path.starts_with("crates/rt/src/")
            // The ANN candidate search and the quantized encoder forward
            // run per-candidate/per-row inner loops on the probe path.
            || path == "crates/index/src/ann.rs"
            || path == "crates/embed/src/quantized.rs"
            // The live-ingestion fold, the posting-list codec and the
            // segment merge run per-record/per-posting inner loops on
            // the ingest and recovery paths.
            || path == "crates/index/src/live.rs"
            || path == "crates/index/src/codec.rs"
            || path == "crates/index/src/segment.rs"
            // The bitmap word loops and the planner's posting streams
            // run per-word/per-posting on the filter stage.
            || path == "crates/query/src/bitmap.rs"
            || path == "crates/query/src/plan.rs"
    }

    fn run(&self, file: &SourceFile) -> Vec<Violation> {
        let mut out = Vec::new();
        let t = &file.tokens;
        for i in 0..t.len() {
            if t[i].in_test || t[i].loop_depth == 0 {
                continue;
            }
            let Some(name) = MACROS.iter().find(|m| seq(t, i, &[m, "!", "("]).is_some()) else {
                continue;
            };
            out.push(Violation::new(
                self.id(),
                file,
                t[i].line,
                format!(
                    "release-mode `{name}!(` inside a loop body: use debug_assert! \
                     or hoist the check out of the loop"
                ),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(src: &str) -> Vec<Violation> {
        AssertInHotPath.run(&SourceFile::parse("crates/nn/src/matrix.rs", src))
    }

    #[test]
    fn fires_only_inside_loops() {
        let v = run_on(
            "pub fn matmul(a: &M, b: &M) -> M {\n\
             \x20   assert_eq!(a.cols, b.rows);\n\
             \x20   for i in 0..a.rows {\n\
             \x20       for j in 0..b.cols {\n\
             \x20           assert!(i * j < a.len);\n\
             \x20       }\n\
             \x20   }\n\
             \x20   out()\n\
             }\n",
        );
        assert_eq!(v.len(), 1, "unexpected: {v:?}");
        assert_eq!(v[0].line, 5, "only the in-loop assert fires");
    }

    #[test]
    fn quiet_on_debug_asserts_and_test_loops() {
        let v = run_on(
            "pub fn get(&self, i: usize) -> f32 {\n\
             \x20   while i > 0 {\n\
             \x20       debug_assert!(i < self.len);\n\
             \x20   }\n\
             \x20   0.0\n\
             }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   fn t() {\n\
             \x20       for i in 0..3 {\n\
             \x20           assert_eq!(i, i);\n\
             \x20       }\n\
             \x20   }\n\
             }\n",
        );
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn quiet_on_assert_in_a_loop_string_literal() {
        let v = run_on(
            "pub fn f(xs: &[u8]) {\n\
             \x20   for x in xs {\n\
             \x20       log(\"assert!(impossible)\", x);\n\
             \x20   }\n\
             }\n",
        );
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn scope_is_the_hot_kernel_crates_only() {
        assert!(AssertInHotPath.applies("crates/tagger/src/crf.rs"));
        assert!(AssertInHotPath.applies("crates/rt/src/lib.rs"));
        assert!(AssertInHotPath.applies("crates/index/src/ann.rs"));
        assert!(AssertInHotPath.applies("crates/embed/src/quantized.rs"));
        assert!(AssertInHotPath.applies("crates/index/src/live.rs"));
        assert!(AssertInHotPath.applies("crates/index/src/codec.rs"));
        assert!(AssertInHotPath.applies("crates/index/src/segment.rs"));
        assert!(AssertInHotPath.applies("crates/query/src/bitmap.rs"));
        assert!(AssertInHotPath.applies("crates/query/src/plan.rs"));
        assert!(!AssertInHotPath.applies("crates/query/src/ast.rs"));
        assert!(!AssertInHotPath.applies("crates/index/src/index.rs"));
    }
}

//! `float-accum`: naive f32 summation in evaluation/metrics code.
//!
//! Metric paths (`crates/eval`) reduce hundreds-to-millions of terms;
//! summing them in f32 loses up to ~7 significant digits of headroom and
//! makes reported NDCG/correlation values drift with input order. The
//! fix is to accumulate in f64 (cast once at the end) or use compensated
//! (Kahan) summation. The pass flags explicit f32 reductions:
//! `.sum::<f32>()`, `fold(0.0f32, ...)`, and `+=` onto a declared-f32
//! accumulator.

use super::{Lint, Violation};
use crate::scan::SourceFile;

pub(crate) struct FloatAccum;

impl Lint for FloatAccum {
    fn id(&self) -> &'static str {
        "float-accum"
    }

    fn applies(&self, path: &str) -> bool {
        path.starts_with("crates/eval/src/")
    }

    fn run(&self, file: &SourceFile) -> Vec<Violation> {
        let mut out = Vec::new();
        // f32 accumulators declared as `let mut NAME: f32 = ...`.
        let mut accs: Vec<(String, usize)> = Vec::new();

        for (i, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            accs.retain(|(_, d)| *d <= line.depth);
            let code = line.code.as_str();

            if code.contains(".sum::<f32>()") {
                out.push(Violation::new(
                    self.id(),
                    file,
                    i,
                    "f32 summation in a metrics path: accumulate in f64 \
                     (`.map(f64::from).sum::<f64>()`) or use Kahan summation"
                        .into(),
                ));
            }
            if code.contains("fold(0.0f32") || code.contains("fold(0f32") {
                out.push(Violation::new(
                    self.id(),
                    file,
                    i,
                    "f32 fold accumulator in a metrics path: fold into f64 instead".into(),
                ));
            }
            if let Some(name) = f32_accumulator(code) {
                accs.push((name, line.depth));
            }
            for (name, _) in &accs {
                if code.trim_start().starts_with(&format!("{name} +=")) {
                    out.push(Violation::new(
                        self.id(),
                        file,
                        i,
                        format!(
                            "`{name}` accumulates in f32: declare the accumulator \
                             as f64 and cast once at the end"
                        ),
                    ));
                }
            }
        }
        out
    }
}

/// `let mut NAME: f32 = ...` — the accumulator name.
fn f32_accumulator(code: &str) -> Option<String> {
    let t = code.trim_start();
    let rest = t.strip_prefix("let mut ")?;
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    let after = rest[name.len()..].trim_start();
    (after.starts_with(": f32") && !name.is_empty()).then_some(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(src: &str) -> Vec<Violation> {
        FloatAccum.run(&SourceFile::parse("crates/eval/src/ndcg.rs", src))
    }

    #[test]
    fn fires_on_f32_sum_fold_and_accumulator() {
        let v = run_on(
            "pub fn mean(xs: &[f32]) -> f32 {\n\
             \x20   let total = xs.iter().sum::<f32>();\n\
             \x20   let alt = xs.iter().fold(0.0f32, |a, b| a + b);\n\
             \x20   let mut acc: f32 = 0.0;\n\
             \x20   for x in xs {\n\
             \x20       acc += x;\n\
             \x20   }\n\
             \x20   total + alt + acc\n\
             }\n",
        );
        assert_eq!(v.len(), 3, "unexpected: {v:?}");
        assert_eq!(v[0].line, 2);
        assert_eq!(v[1].line, 3);
        assert_eq!(v[2].line, 6);
    }

    #[test]
    fn quiet_on_f64_accumulation_and_tests() {
        let v = run_on(
            "pub fn mean(xs: &[f32]) -> f32 {\n\
             \x20   let t: f64 = xs.iter().map(|&x| f64::from(x)).sum::<f64>();\n\
             \x20   (t / xs.len() as f64) as f32\n\
             }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   fn t() { let _ = [1.0f32].iter().sum::<f32>(); }\n\
             }\n",
        );
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn only_eval_paths_are_in_scope() {
        assert!(FloatAccum.applies("crates/eval/src/correlation.rs"));
        assert!(!FloatAccum.applies("crates/nn/src/matrix.rs"));
    }
}

//! `float-accum`: naive f32 summation in evaluation/metrics code.
//!
//! Metric paths (`crates/eval`) reduce hundreds-to-millions of terms;
//! summing them in f32 loses up to ~7 significant digits of headroom and
//! makes reported NDCG/correlation values drift with input order. The
//! fix is to accumulate in f64 (cast once at the end) or use compensated
//! (Kahan) summation. The pass flags explicit f32 reductions:
//! `.sum::<f32>()`, `fold(0.0f32, ...)`, and `+=` onto a declared-f32
//! accumulator (tracked per scope on the token stream).

use super::{Lint, Violation};
use crate::scan::{is_ident, is_punct, seq, SourceFile, TokenKind};

pub(crate) struct FloatAccum;

impl Lint for FloatAccum {
    fn id(&self) -> &'static str {
        "float-accum"
    }

    fn applies(&self, path: &str) -> bool {
        path.starts_with("crates/eval/src/")
    }

    fn run(&self, file: &SourceFile) -> Vec<Violation> {
        let mut out = Vec::new();
        // f32 accumulators declared `let mut NAME: f32 = ...`, with the
        // brace depth they were bound at (scope exit forgets them).
        let mut accs: Vec<(String, usize)> = Vec::new();
        let t = &file.tokens;

        for i in 0..t.len() {
            if t[i].in_test {
                continue;
            }
            accs.retain(|(_, d)| *d <= t[i].depth);

            if seq(t, i, &[".", "sum", "::", "<", "f32", ">", "(", ")"]).is_some() {
                out.push(Violation::new(
                    self.id(),
                    file,
                    t[i].line,
                    "f32 summation in a metrics path: accumulate in f64 \
                     (`.map(f64::from).sum::<f64>()`) or use Kahan summation"
                        .into(),
                ));
            }
            if seq(t, i, &["fold", "("]).is_some()
                && t.get(i + 2).is_some_and(|n| {
                    n.kind == TokenKind::Num && (n.text == "0.0f32" || n.text == "0f32")
                })
            {
                out.push(Violation::new(
                    self.id(),
                    file,
                    t[i].line,
                    "f32 fold accumulator in a metrics path: fold into f64 instead".into(),
                ));
            }
            if seq(t, i, &["let", "mut", "*", ":", "f32"]).is_some() {
                accs.push((t[i + 2].text.clone(), t[i].depth));
            }
            // `NAME += ...` onto a tracked accumulator (not a field
            // access `x.NAME +=`).
            if t[i].kind == TokenKind::Ident
                && accs.iter().any(|(n, _)| is_ident(&t[i], n))
                && t.get(i + 1).is_some_and(|n| is_punct(n, '+'))
                && t.get(i + 2).is_some_and(|n| is_punct(n, '='))
                && (i == 0 || !is_punct(&t[i - 1], '.'))
            {
                out.push(Violation::new(
                    self.id(),
                    file,
                    t[i].line,
                    format!(
                        "`{}` accumulates in f32: declare the accumulator \
                         as f64 and cast once at the end",
                        t[i].text
                    ),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(src: &str) -> Vec<Violation> {
        FloatAccum.run(&SourceFile::parse("crates/eval/src/ndcg.rs", src))
    }

    #[test]
    fn fires_on_f32_sum_fold_and_accumulator() {
        let v = run_on(
            "pub fn mean(xs: &[f32]) -> f32 {\n\
             \x20   let total = xs.iter().sum::<f32>();\n\
             \x20   let alt = xs.iter().fold(0.0f32, |a, b| a + b);\n\
             \x20   let mut acc: f32 = 0.0;\n\
             \x20   for x in xs {\n\
             \x20       acc += x;\n\
             \x20   }\n\
             \x20   total + alt + acc\n\
             }\n",
        );
        assert_eq!(v.len(), 3, "unexpected: {v:?}");
        assert_eq!(v[0].line, 2);
        assert_eq!(v[1].line, 3);
        assert_eq!(v[2].line, 6);
    }

    #[test]
    fn quiet_on_f64_accumulation_and_tests() {
        let v = run_on(
            "pub fn mean(xs: &[f32]) -> f32 {\n\
             \x20   let t: f64 = xs.iter().map(|&x| f64::from(x)).sum::<f64>();\n\
             \x20   (t / xs.len() as f64) as f32\n\
             }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   fn t() { let _ = [1.0f32].iter().sum::<f32>(); }\n\
             }\n",
        );
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn accumulators_are_forgotten_at_scope_exit() {
        // A fresh `acc` in a later fn is not the f32 accumulator from the
        // earlier one.
        let v = run_on(
            "fn f(xs: &[f32]) {\n\
             \x20   let mut acc: f32 = 0.0;\n\
             \x20   acc += xs[0];\n\
             }\n\
             fn g() {\n\
             \x20   let mut acc: f64 = 0.0;\n\
             \x20   acc += 1.0;\n\
             }\n",
        );
        assert_eq!(v.len(), 1, "unexpected: {v:?}");
        assert_eq!(v[0].line, 3);
    }

    #[test]
    fn quiet_on_sum_f32_inside_a_string() {
        let v = run_on("pub fn f() -> &'static str { \".sum::<f32>()\" }\n");
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn only_eval_paths_are_in_scope() {
        assert!(FloatAccum.applies("crates/eval/src/correlation.rs"));
        assert!(!FloatAccum.applies("crates/nn/src/matrix.rs"));
    }
}

//! `nondet-iteration`: hash-ordered iteration on determinism-critical
//! paths.
//!
//! The workspace's headline contract is bitwise-identical rankings at
//! every thread width. `HashMap`/`HashSet` iteration order depends on
//! the hasher's per-process seed, so any loop over one that feeds an
//! index build, a vocabulary, a score or a pairing can reorder
//! floating-point reductions or id assignment between runs — the bug is
//! invisible until two runs disagree. The pass tracks hash-container
//! `let` bindings per scope and flags iteration over them (`for … in`,
//! `.iter()`/`.keys()`/`.values()`/`.drain()`/`.into_iter()`, and the
//! `HashSet` set-algebra iterators). Keyed lookups (`get`/`insert`/
//! `entry`/`contains_key`) are order-free and never fire. Use
//! `BTreeMap`/`BTreeSet`, or sort before consuming.

use super::{Lint, Violation};
use crate::scan::{is_ident, is_punct, seq, SourceFile, TokenKind};

pub(crate) struct NondetIteration;

/// Crates whose outputs must be bit-stable across runs and widths.
const SCOPED: [&str; 9] = [
    "crates/core/src/",
    "crates/embed/src/",
    "crates/index/src/",
    "crates/ir/src/",
    "crates/nn/src/",
    "crates/pairing/src/",
    "crates/query/src/",
    "crates/tagger/src/",
    "crates/text/src/",
];

const CONTAINERS: [&str; 2] = ["HashMap", "HashSet"];

/// Methods that yield elements in hash order.
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "intersection",
    "union",
    "difference",
];

impl Lint for NondetIteration {
    fn id(&self) -> &'static str {
        "nondet-iteration"
    }

    fn applies(&self, path: &str) -> bool {
        SCOPED.iter().any(|s| path.starts_with(s))
    }

    fn run(&self, file: &SourceFile) -> Vec<Violation> {
        let mut out = Vec::new();
        // Hash-container bindings and the brace depth they live at.
        let mut tracked: Vec<(String, usize)> = Vec::new();
        let t = &file.tokens;

        for i in 0..t.len() {
            if t[i].in_test {
                continue;
            }
            tracked.retain(|(_, d)| *d <= t[i].depth);

            if let Some(name) = hash_binding(t, i) {
                tracked.push((name, t[i].depth));
                continue;
            }

            // `NAME.method(` where the method iterates in hash order.
            if t[i].kind == TokenKind::Ident
                && tracked.iter().any(|(n, _)| is_ident(&t[i], n))
                && (i == 0 || !is_punct(&t[i - 1], '.'))
                && t.get(i + 1).is_some_and(|n| is_punct(n, '.'))
                && t.get(i + 2)
                    .is_some_and(|m| ITER_METHODS.iter().any(|im| is_ident(m, im)))
                && t.get(i + 3).is_some_and(|n| is_punct(n, '('))
            {
                out.push(self.violation(file, i, &t[i].text, &t[i + 2].text));
                continue;
            }

            // `for … in [&]NAME {` — consuming the container directly.
            if is_ident(&t[i], "in") {
                let mut j = i + 1;
                while t
                    .get(j)
                    .is_some_and(|n| is_punct(n, '&') || is_ident(n, "mut"))
                {
                    j += 1;
                }
                if t.get(j).is_some_and(|n| {
                    n.kind == TokenKind::Ident && tracked.iter().any(|(nm, _)| nm == &n.text)
                }) && t.get(j + 1).is_some_and(|n| is_punct(n, '{'))
                {
                    out.push(self.violation(file, j, &t[j].text, "for-in"));
                }
            }
        }
        out
    }
}

impl NondetIteration {
    fn violation(&self, file: &SourceFile, i: usize, name: &str, how: &str) -> Violation {
        Violation::new(
            self.id(),
            file,
            file.tokens[i].line,
            format!(
                "iteration over hash-ordered `{name}` ({how}) on a determinism-critical \
                 path: use BTreeMap/BTreeSet or sort before consuming"
            ),
        )
    }
}

/// `let [mut] NAME: …Hash…<` or `let [mut] NAME = …Hash…::` — the bound
/// name, if this token starts a hash-container binding. The container may
/// sit anywhere along a qualified path (`std::collections::HashMap::from`),
/// so the detector walks `Ident(::Ident)*` after the separator instead of
/// requiring the container to be the first segment.
fn hash_binding(t: &[crate::scan::Token], i: usize) -> Option<String> {
    let name_idx = if seq(t, i, &["let", "mut", "*"]).is_some() {
        i + 2
    } else if seq(t, i, &["let", "*"]).is_some() {
        i + 1
    } else {
        return None;
    };
    if t[name_idx].kind != TokenKind::Ident {
        return None;
    }
    let sep = t.get(name_idx + 1)?;
    if !(is_punct(sep, ':') || is_punct(sep, '=')) {
        return None;
    }
    let mut k = name_idx + 2;
    // `let x ::` is not a binding separator.
    if is_punct(sep, ':') && t.get(k).is_some_and(|n| is_punct(n, ':')) {
        return None;
    }
    loop {
        let seg = t.get(k)?;
        if seg.kind != TokenKind::Ident {
            return None;
        }
        let next_generic = t.get(k + 1).is_some_and(|n| is_punct(n, '<'));
        let next_path = t.get(k + 1).is_some_and(|n| is_punct(n, ':'))
            && t.get(k + 2).is_some_and(|n| is_punct(n, ':'));
        if CONTAINERS.iter().any(|c| is_ident(seg, c)) && (next_generic || next_path) {
            return Some(t[name_idx].text.clone());
        }
        if next_path {
            k += 3;
        } else {
            return None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(src: &str) -> Vec<Violation> {
        NondetIteration.run(&SourceFile::parse("crates/ir/src/bm25.rs", src))
    }

    #[test]
    fn fires_on_for_in_and_iter_over_hash_containers() {
        let v = run_on(
            "fn tf(terms: &[String]) -> Vec<(String, u32)> {\n\
             \x20   let mut tf: HashMap<String, u32> = HashMap::new();\n\
             \x20   for t in terms { *tf.entry(t.clone()).or_insert(0) += 1; }\n\
             \x20   let mut out = Vec::new();\n\
             \x20   for (term, f) in tf {\n\
             \x20       out.push((term, f));\n\
             \x20   }\n\
             \x20   out\n\
             }\n\
             fn freq(seen: HashSet<u32>) -> Vec<u32> {\n\
             \x20   let seen2 = HashSet::from([1u32]);\n\
             \x20   let _ = seen2;\n\
             \x20   let other = HashSet::from([2u32]);\n\
             \x20   let both = other.intersection(&seen2);\n\
             \x20   both.copied().collect()\n\
             }\n",
        );
        assert_eq!(v.len(), 2, "unexpected: {v:?}");
        assert_eq!(v[0].line, 5, "for-in over the map");
        assert!(v[0].message.contains("`tf`"));
        assert_eq!(v[1].line, 14, "set intersection iterates in hash order");
        assert!(v[1].message.contains("`other`"));
    }

    #[test]
    fn quiet_on_keyed_access_btree_containers_and_tests() {
        let v = run_on(
            "fn f(xs: &[u32]) -> u32 {\n\
             \x20   let mut m: HashMap<u32, u32> = HashMap::new();\n\
             \x20   m.insert(1, 2);\n\
             \x20   let hit = m.get(&1).copied().unwrap_or(0);\n\
             \x20   let mut b: BTreeMap<u32, u32> = BTreeMap::new();\n\
             \x20   for (k, v) in b.iter() { black_box(k, v); }\n\
             \x20   hit\n\
             }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   fn t() {\n\
             \x20       let h: HashMap<u8, u8> = HashMap::new();\n\
             \x20       for (k, v) in h.iter() { check(k, v); }\n\
             \x20   }\n\
             }\n",
        );
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn fires_on_fully_qualified_container_paths() {
        let v = run_on(
            "fn f() -> Vec<(u32, u32)> {\n\
             \x20   let m = std::collections::HashMap::from([(1u32, 2u32)]);\n\
             \x20   let mut q: std::collections::HashMap<u32, u32> = Default::default();\n\
             \x20   q.insert(3, 4);\n\
             \x20   let mut out: Vec<(u32, u32)> = m.into_iter().collect();\n\
             \x20   out.extend(q.drain());\n\
             \x20   out\n\
             }\n",
        );
        assert_eq!(v.len(), 2, "unexpected: {v:?}");
        assert!(v[0].message.contains("`m`"));
        assert!(v[1].message.contains("`q`"));
    }

    #[test]
    fn bindings_are_forgotten_at_scope_exit() {
        let v = run_on(
            "fn f() {\n\
             \x20   let m = HashMap::new();\n\
             \x20   m.insert(1, 1);\n\
             }\n\
             fn g(m: &BTreeMap<u32, u32>) {\n\
             \x20   for (k, v) in m.iter() { black_box(k, v); }\n\
             }\n",
        );
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn scope_is_the_determinism_critical_crates() {
        assert!(NondetIteration.applies("crates/ir/src/bm25.rs"));
        assert!(NondetIteration.applies("crates/text/src/vocab.rs"));
        assert!(NondetIteration.applies("crates/index/src/index.rs"));
        assert!(NondetIteration.applies("crates/query/src/plan.rs"));
        assert!(!NondetIteration.applies("crates/obs/src/export.rs"));
        assert!(!NondetIteration.applies("crates/serve/src/lib.rs"));
    }
}

//! `metric-name-literal`: dynamically-built metric and span names.
//!
//! Every counter/gauge/histogram name and span label in this workspace
//! is a static string literal: the registry is append-only, the
//! flight-recorder report folds stages by name, and the determinism
//! suites byte-diff rendered snapshots — a `format!`ed or computed name
//! makes metric cardinality unbounded and report output run-dependent.
//! This pass fires when `counter!`/`gauge!`/`histogram!`/`span!` (or the
//! equivalent `registry().counter(..)`-style calls) receive anything
//! other than a string literal as the name. Name plumbing inside
//! `saccs-obs` itself and the bench harness (which legitimately derives
//! per-configuration series like `serve.latency.w{n}`) is exempt.

use super::{Lint, Violation};
use crate::scan::{is_ident, is_punct, SourceFile, TokenKind};

pub(crate) struct MetricNameLiteral;

/// Paths allowed to handle metric names as data: the obs crate's own
/// plumbing and the bench harness's derived series.
const EXEMPT: [&str; 2] = ["crates/obs/src/", "crates/bench/"];

/// The name-taking constructors, macro and method form alike.
const NAMED: [&str; 4] = ["counter", "gauge", "histogram", "span"];

impl Lint for MetricNameLiteral {
    fn id(&self) -> &'static str {
        "metric-name-literal"
    }

    fn applies(&self, path: &str) -> bool {
        if EXEMPT.iter().any(|e| path.starts_with(e)) || path.starts_with("crates/xtask/") {
            return false;
        }
        path.starts_with("src/") || (path.starts_with("crates/") && path.contains("/src/"))
    }

    fn run(&self, file: &SourceFile) -> Vec<Violation> {
        let mut out = Vec::new();
        let t = &file.tokens;
        for i in 0..t.len() {
            if t[i].in_test || t[i].kind != TokenKind::Ident {
                continue;
            }
            let Some(name) = NAMED.iter().find(|n| t[i].text == **n) else {
                continue;
            };
            // `fn histogram(` / `fn span(` declare, not invoke.
            if i > 0 && is_ident(&t[i - 1], "fn") {
                continue;
            }
            let (form, arg) = if matches!((t.get(i + 1), t.get(i + 2)),
                (Some(bang), Some(open)) if is_punct(bang, '!') && is_punct(open, '('))
            {
                (format!("{name}!("), t.get(i + 3))
            } else if i > 0
                && is_punct(&t[i - 1], '.')
                && t.get(i + 1).is_some_and(|p| is_punct(p, '('))
            {
                (format!(".{name}("), t.get(i + 2))
            } else {
                continue;
            };
            let literal = arg.is_some_and(|a| {
                matches!(a.kind, TokenKind::Str | TokenKind::RawStr) || is_punct(a, ')')
            });
            if !literal {
                out.push(Violation::new(
                    self.id(),
                    file,
                    t[i].line,
                    format!(
                        "`{form}` with a non-literal name: metric and span names must be \
                         static string literals (bounded cardinality, deterministic reports); \
                         derived series belong in the bench harness"
                    ),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(src: &str) -> Vec<Violation> {
        MetricNameLiteral.run(&SourceFile::parse("crates/core/src/service.rs", src))
    }

    #[test]
    fn fires_on_computed_names_in_macro_and_method_form() {
        let v = run_on(
            "fn f(name: &str) {\n\
             \x20   saccs_obs::counter!(name).inc();\n\
             \x20   saccs_obs::gauge!(format!(\"g.{}\", name)).add(1.0);\n\
             \x20   let _h = saccs_obs::registry().histogram(name);\n\
             \x20   let _s = saccs_obs::span!(name);\n\
             }\n",
        );
        assert_eq!(v.len(), 4, "unexpected: {v:?}");
        assert!(v[0].message.contains("counter!("));
        assert!(v[1].message.contains("gauge!("));
        assert!(v[2].message.contains(".histogram("));
        assert!(v[3].message.contains("span!("));
    }

    #[test]
    fn quiet_on_literal_names_tests_and_declarations() {
        let v = run_on(
            "fn serve() {\n\
             \x20   saccs_obs::counter!(\"serve.shed\").inc();\n\
             \x20   saccs_obs::gauge!(\"serve.inflight\").sub(1.0);\n\
             \x20   let _h = saccs_obs::registry().histogram(r\"serve.queue_wait\");\n\
             \x20   let _s = saccs_obs::span!(\"algo1.probe\");\n\
             }\n\
             fn histogram(name: &str) -> u64 { name.len() as u64 }\n\
             fn all() -> Vec<u64> { vec![histogram(\"x\")] }\n\
             impl R { fn snapshot(&self) { self.gauge() } }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   fn t(n: &str) { saccs_obs::counter!(n).inc(); }\n\
             }\n",
        );
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn obs_and_bench_plumbing_are_exempt() {
        assert!(!MetricNameLiteral.applies("crates/obs/src/metrics.rs"));
        assert!(!MetricNameLiteral.applies("crates/bench/src/bin/serve.rs"));
        assert!(!MetricNameLiteral.applies("crates/xtask/src/main.rs"));
        assert!(MetricNameLiteral.applies("crates/core/src/service.rs"));
        assert!(MetricNameLiteral.applies("crates/serve/src/recorder.rs"));
    }
}

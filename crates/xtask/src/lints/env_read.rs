//! `env-read-in-lib`: process-environment reads scattered through
//! library code.
//!
//! Configuration enters this workspace at two blessed points: the
//! `saccs-rt` pool sizes itself from `SACCS_THREADS`, and the bench
//! harness reads its knobs at startup. An `env::var` anywhere else is
//! hidden global input — it changes behaviour between runs without
//! appearing in any API, defeats the determinism suites (which pin the
//! environment they know about) and makes library functions impossible
//! to call with explicit configuration. Thread settings through
//! builders/parameters instead; a genuinely new `SACCS_*` knob belongs
//! next to the existing read sites, waived with a reason.

use super::{Lint, Violation};
use crate::scan::{seq, SourceFile};

pub(crate) struct EnvReadInLib;

/// The blessed read sites.
const EXEMPT: [&str; 2] = ["crates/rt/src/", "crates/bench/"];

const READS: [&str; 2] = ["var", "var_os"];

impl Lint for EnvReadInLib {
    fn id(&self) -> &'static str {
        "env-read-in-lib"
    }

    fn applies(&self, path: &str) -> bool {
        if EXEMPT.iter().any(|e| path.starts_with(e)) || path.starts_with("crates/xtask/") {
            return false;
        }
        path.starts_with("src/") || (path.starts_with("crates/") && path.contains("/src/"))
    }

    fn run(&self, file: &SourceFile) -> Vec<Violation> {
        let mut out = Vec::new();
        let t = &file.tokens;
        for i in 0..t.len() {
            if t[i].in_test {
                continue;
            }
            let Some(read) = READS
                .iter()
                .find(|r| seq(t, i, &["env", "::", r, "("]).is_some())
            else {
                continue;
            };
            out.push(Violation::new(
                self.id(),
                file,
                t[i].line,
                format!(
                    "`env::{read}(` in library code: thread configuration through \
                     builders/parameters; env knobs live in saccs-rt and bench only"
                ),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(src: &str) -> Vec<Violation> {
        EnvReadInLib.run(&SourceFile::parse("crates/core/src/builder.rs", src))
    }

    #[test]
    fn fires_on_env_var_in_lib_code() {
        let v = run_on(
            "fn width() -> usize {\n\
             \x20   std::env::var(\"SACCS_WIDTH\").ok().and_then(|s| s.parse().ok()).unwrap_or(1)\n\
             }\n\
             fn raw() -> Option<std::ffi::OsString> {\n\
             \x20   std::env::var_os(\"SACCS_RAW\")\n\
             }\n",
        );
        assert_eq!(v.len(), 2, "unexpected: {v:?}");
        assert!(v[0].message.contains("env::var("));
        assert!(v[1].message.contains("env::var_os("));
    }

    #[test]
    fn quiet_in_tests_strings_and_other_env_idents() {
        let v = run_on(
            "/// Reads env::var( — no, it does not.\n\
             fn f(env: &Env) -> u32 { env.lookup(\"x\") } // env::var(\n\
             fn doc() -> &'static str { \"set via env::var(SACCS_THREADS)\" }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   fn t() { let _ = std::env::var(\"HOME\"); }\n\
             }\n",
        );
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn blessed_read_sites_are_exempt() {
        assert!(!EnvReadInLib.applies("crates/rt/src/lib.rs"));
        assert!(!EnvReadInLib.applies("crates/bench/src/bin/table2.rs"));
        assert!(!EnvReadInLib.applies("crates/xtask/src/main.rs"));
        assert!(EnvReadInLib.applies("crates/core/src/builder.rs"));
        assert!(EnvReadInLib.applies("crates/obs/src/export.rs"));
    }
}

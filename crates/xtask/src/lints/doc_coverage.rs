//! `doc-coverage`: crate roots must document what they export.
//!
//! Each crate's `lib.rs` is its public contract: every top-level `pub`
//! item there — including `pub use` re-exports, which are how the
//! workspace surfaces its API — needs a doc comment (`///` directly
//! above, allowing attributes in between) so `cargo doc` renders a
//! navigable surface. Inner files are not checked; the roots are the
//! contract.

use super::{Lint, Violation};
use crate::scan::{is_ident, is_punct, SourceFile};

pub(crate) struct DocCoverage;

const ITEM_KINDS: [&str; 9] = [
    "use", "fn", "struct", "enum", "trait", "mod", "const", "static", "type",
];

impl Lint for DocCoverage {
    fn id(&self) -> &'static str {
        "doc-coverage"
    }

    fn applies(&self, path: &str) -> bool {
        path == "src/lib.rs" || (path.starts_with("crates/") && path.ends_with("/src/lib.rs"))
    }

    fn run(&self, file: &SourceFile) -> Vec<Violation> {
        let mut out = Vec::new();
        let t = &file.tokens;
        for i in 0..t.len() {
            if t[i].in_test || t[i].depth != 0 || !is_ident(&t[i], "pub") {
                continue;
            }
            let Some(next) = t.get(i + 1) else {
                continue;
            };
            // `pub(crate)` / `pub(super)` are not the external contract.
            if is_punct(next, '(') {
                continue;
            }
            let Some(item) = ITEM_KINDS.iter().find(|k| is_ident(next, k)) else {
                continue;
            };
            if !has_doc_above(file, t[i].line) {
                out.push(Violation::new(
                    self.id(),
                    file,
                    t[i].line,
                    format!("public `{item}` re-exported from the crate root has no doc comment"),
                ));
            }
        }
        out
    }
}

/// A `///` or `#[doc` line directly above line `idx`, skipping other
/// attributes (which sit between docs and the item).
fn has_doc_above(file: &SourceFile, idx: usize) -> bool {
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = file.lines[i].raw.trim_start();
        if t.starts_with("///") || t.starts_with("#[doc") {
            return true;
        }
        if t.starts_with("#[") || t.starts_with(']') || t.ends_with(']') && t.starts_with('#') {
            continue;
        }
        return false;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(src: &str) -> Vec<Violation> {
        DocCoverage.run(&SourceFile::parse("crates/index/src/lib.rs", src))
    }

    #[test]
    fn fires_on_undocumented_root_exports() {
        let v = run_on(
            "//! Crate docs.\n\
             pub use index::SubjectiveIndex;\n\
             pub mod index;\n",
        );
        assert_eq!(v.len(), 2, "unexpected: {v:?}");
        assert!(v[0].message.contains("`use`"));
        assert!(v[1].message.contains("`mod`"));
    }

    #[test]
    fn quiet_when_documented_or_not_top_level_pub() {
        let v = run_on(
            "//! Crate docs.\n\
             /// The index.\n\
             pub use index::SubjectiveIndex;\n\
             /// Storage.\n\
             #[allow(dead_code)]\n\
             pub mod index;\n\
             pub(crate) fn helper() {}\n\
             mod private {\n\
             \x20   pub fn inner() {}\n\
             }\n",
        );
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn quiet_on_pub_mentioned_in_strings() {
        let v = run_on("//! Docs.\n/// S.\npub const S: &str = \"pub mod fake;\";\n");
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn only_crate_roots_are_checked() {
        assert!(DocCoverage.applies("crates/nn/src/lib.rs"));
        assert!(DocCoverage.applies("src/lib.rs"));
        assert!(!DocCoverage.applies("crates/nn/src/matrix.rs"));
    }
}

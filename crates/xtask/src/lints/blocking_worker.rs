//! `blocking-in-worker`: sleeps and file IO on worker/runtime threads.
//!
//! The `saccs-serve` front end and the `saccs-rt` pool share a fixed
//! set of worker threads; one worker that sleeps or does synchronous
//! file IO stalls every request queued behind it, which is exactly the
//! tail-latency failure mode Table 4 measures. Latency injection
//! belongs in `saccs-fault` (budget-aware, deadline-visible), and any
//! data a worker needs from disk must be loaded before the pool starts.
//! The pass flags `thread::sleep(`, `std::fs::…(` and `File::open/
//! create(` in non-test code of the two worker crates.

use super::{Lint, Violation};
use crate::scan::{seq, SourceFile};

pub(crate) struct BlockingInWorker;

const PATTERNS: [(&[&str], &str); 4] = [
    (&["thread", "::", "sleep", "("], "thread::sleep("),
    (&["fs", "::", "*", "("], "std::fs IO"),
    (&["File", "::", "open", "("], "File::open("),
    (&["File", "::", "create", "("], "File::create("),
];

impl Lint for BlockingInWorker {
    fn id(&self) -> &'static str {
        "blocking-in-worker"
    }

    fn applies(&self, path: &str) -> bool {
        path.starts_with("crates/serve/src/")
            || path.starts_with("crates/rt/src/")
            // The live index runs on serve workers and owns a background
            // compactor thread: all of its IO must flow through the
            // SegmentStore seams (failpoint-guarded, manifest-committed),
            // never inline fs calls or sleeps.
            || path == "crates/index/src/live.rs"
    }

    fn run(&self, file: &SourceFile) -> Vec<Violation> {
        let mut out = Vec::new();
        let t = &file.tokens;
        let mut last_line = usize::MAX;
        for i in 0..t.len() {
            if t[i].in_test || t[i].line == last_line {
                continue;
            }
            let Some((_, what)) = PATTERNS.iter().find(|(p, _)| seq(t, i, p).is_some()) else {
                continue;
            };
            last_line = t[i].line;
            out.push(Violation::new(
                self.id(),
                file,
                t[i].line,
                format!(
                    "{what} on a worker/runtime path: workers must not block — \
                     inject latency via saccs-fault and load data before the \
                     pool starts"
                ),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(src: &str) -> Vec<Violation> {
        BlockingInWorker.run(&SourceFile::parse("crates/serve/src/lib.rs", src))
    }

    #[test]
    fn fires_on_sleep_and_file_io_in_worker_code() {
        let v = run_on(
            "fn worker_loop(&self) {\n\
             \x20   std::thread::sleep(Duration::from_millis(5));\n\
             \x20   let cfg = std::fs::read_to_string(\"cfg.json\");\n\
             \x20   let f = File::open(\"index.bin\");\n\
             \x20   use_all(cfg, f);\n\
             }\n",
        );
        assert_eq!(v.len(), 3, "unexpected: {v:?}");
        assert!(v[0].message.contains("thread::sleep("));
        assert!(v[1].message.contains("std::fs IO"));
        assert!(v[2].message.contains("File::open("));
    }

    #[test]
    fn quiet_in_tests_strings_and_on_parking() {
        let v = run_on(
            "/// Never thread::sleep( in a worker.\n\
             fn worker_loop(&self) {\n\
             \x20   std::thread::park(); // waiting is fine; sleeping is not\n\
             \x20   log(\"fs::read( is banned here\");\n\
             }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   fn t() {\n\
             \x20       std::thread::sleep(Duration::from_millis(1));\n\
             \x20       let _ = std::fs::read_to_string(\"fixture.json\");\n\
             \x20   }\n\
             }\n",
        );
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn scope_is_serve_rt_and_the_live_index() {
        assert!(BlockingInWorker.applies("crates/serve/src/lib.rs"));
        assert!(BlockingInWorker.applies("crates/rt/src/lib.rs"));
        assert!(BlockingInWorker.applies("crates/index/src/live.rs"));
        assert!(!BlockingInWorker.applies("crates/index/src/segment.rs"));
        assert!(!BlockingInWorker.applies("crates/core/src/persist.rs"));
        assert!(!BlockingInWorker.applies("crates/bench/src/bin/table2.rs"));
    }
}

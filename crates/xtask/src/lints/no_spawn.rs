//! `no-spawn-outside-rt`: ad-hoc threading in library code.
//!
//! All fan-out in the workspace goes through the `saccs-rt` pool: it
//! owns the worker threads (bounded, reused, named), propagates panics
//! to the spawning scope, honors `SACCS_THREADS`, and reports its size
//! through `saccs-obs`. A stray `std::thread::spawn` or crossbeam scope
//! in a library crate escapes all of that — unbounded thread creation,
//! orphaned panics, and work invisible to the runtime gauge. `saccs-rt`
//! itself is exempt (it is the one place allowed to create threads), as
//! are tests and the `xtask` driver.

use super::{Lint, Violation};
use crate::scan::{seq, SourceFile};

const PATTERNS: [(&[&str], &str); 3] = [
    (&["thread", "::", "spawn", "("], "thread::spawn("),
    (
        &["thread", "::", "Builder", "::", "new", "("],
        "thread::Builder::new(",
    ),
    (
        &["crossbeam", "::", "thread", "::", "scope", "("],
        "crossbeam::thread::scope(",
    ),
];

pub(crate) struct NoSpawnOutsideRt;

impl Lint for NoSpawnOutsideRt {
    fn id(&self) -> &'static str {
        "no-spawn-outside-rt"
    }

    fn applies(&self, path: &str) -> bool {
        if path.starts_with("crates/rt/") || path.starts_with("crates/xtask/") {
            return false;
        }
        path.starts_with("src/") || (path.starts_with("crates/") && path.contains("/src/"))
    }

    fn run(&self, file: &SourceFile) -> Vec<Violation> {
        let mut out = Vec::new();
        let t = &file.tokens;
        let mut last_line = usize::MAX;
        for i in 0..t.len() {
            if t[i].in_test || t[i].line == last_line {
                continue;
            }
            let Some((_, name)) = PATTERNS.iter().find(|(p, _)| seq(t, i, p).is_some()) else {
                continue;
            };
            last_line = t[i].line;
            out.push(Violation::new(
                self.id(),
                file,
                t[i].line,
                format!(
                    "`{}` in library code: fan out through the saccs-rt \
                     pool (scope/join/parallel_for_chunks/parallel_map)",
                    &name[..name.len() - 1]
                ),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(path: &str, src: &str) -> Vec<Violation> {
        NoSpawnOutsideRt.run(&SourceFile::parse(path, src))
    }

    #[test]
    fn fires_on_spawn_and_crossbeam_in_lib_code() {
        let v = run_on(
            "crates/index/src/index.rs",
            "fn build(&self) {\n\
             \x20   std::thread::spawn(|| work());\n\
             \x20   crossbeam::thread::scope(|s| {}).unwrap();\n\
             }\n",
        );
        assert_eq!(v.len(), 2, "unexpected: {v:?}");
    }

    #[test]
    fn quiet_in_tests_and_on_pool_usage() {
        let v = run_on(
            "crates/index/src/shared.rs",
            "fn build(&self) {\n\
             \x20   saccs_rt::scope(|s| s.spawn(|| work()));\n\
             }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   fn t() {\n\
             \x20       std::thread::spawn(|| {});\n\
             \x20   }\n\
             }\n",
        );
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn quiet_on_spawn_mentioned_in_docs_or_strings() {
        let v = run_on(
            "crates/index/src/index.rs",
            "/// Never call thread::spawn( here.\n\
             fn build(&self) { log(\"thread::spawn(bad)\"); }\n",
        );
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn rt_and_xtask_are_exempt() {
        assert!(!NoSpawnOutsideRt.applies("crates/rt/src/lib.rs"));
        assert!(!NoSpawnOutsideRt.applies("crates/xtask/src/main.rs"));
        assert!(NoSpawnOutsideRt.applies("crates/embed/src/model.rs"));
        assert!(!NoSpawnOutsideRt.applies("crates/index/tests/parallel_build.rs"));
    }
}

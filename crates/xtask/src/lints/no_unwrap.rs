//! `no-unwrap-in-lib`: panicking extractors in library code.
//!
//! `.unwrap()` / `.expect(` in non-test library code of the service-path
//! crates (`core`, `index`, `nn`, `tagger`, `pairing`) turn recoverable
//! conditions into aborts of a serving process. Library code should
//! return `Result` (or prove the invariant and waive the site with a
//! reason). Test code may unwrap freely.

use super::{Lint, Violation};
use crate::scan::SourceFile;

const CRATES: [&str; 7] = [
    "crates/core/src/",
    "crates/fault/src/",
    "crates/index/src/",
    "crates/nn/src/",
    "crates/obs/src/",
    "crates/tagger/src/",
    "crates/pairing/src/",
];

pub(crate) struct NoUnwrapInLib;

impl Lint for NoUnwrapInLib {
    fn id(&self) -> &'static str {
        "no-unwrap-in-lib"
    }

    fn applies(&self, path: &str) -> bool {
        CRATES.iter().any(|c| path.starts_with(c))
    }

    fn run(&self, file: &SourceFile) -> Vec<Violation> {
        let mut out = Vec::new();
        for (i, line) in file.lines.iter().enumerate() {
            if line.in_test {
                continue;
            }
            for pat in [".unwrap()", ".expect("] {
                if line.code.contains(pat) {
                    out.push(Violation::new(
                        self.id(),
                        file,
                        i,
                        format!(
                            "`{pat}` in library code: return Result, or waive with a \
                             reason if the invariant is proven"
                        ),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(src: &str) -> Vec<Violation> {
        NoUnwrapInLib.run(&SourceFile::parse("crates/index/src/index.rs", src))
    }

    #[test]
    fn fires_on_unwrap_and_expect_in_lib_code() {
        let v = run_on(
            "pub fn f(x: Option<u8>) -> u8 {\n\
             \x20   let a = x.unwrap();\n\
             \x20   let b = x.expect(\"present\");\n\
             \x20   a + b\n\
             }\n",
        );
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].line, 2);
        assert_eq!(v[1].line, 3);
    }

    #[test]
    fn quiet_on_test_code_comments_and_strings() {
        let v = run_on(
            "pub fn f() -> &'static str { \"call .unwrap() later\" } // .unwrap()\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   #[test]\n\
             \x20   fn t() { Some(1).unwrap(); }\n\
             }\n",
        );
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn out_of_scope_crates_are_skipped() {
        assert!(!NoUnwrapInLib.applies("crates/eval/src/ndcg.rs"));
        assert!(!NoUnwrapInLib.applies("vendor/rand/src/lib.rs"));
        assert!(NoUnwrapInLib.applies("crates/nn/src/var.rs"));
    }
}

//! `no-unwrap-in-lib`: panicking extractors in library code.
//!
//! `.unwrap()` / `.expect(` in non-test library code of the service-path
//! crates (`core`, `index`, `nn`, `tagger`, `pairing`) turn recoverable
//! conditions into aborts of a serving process. Library code should
//! return `Result` (or prove the invariant and waive the site with a
//! reason). Test code may unwrap freely. Matching is token-level: the
//! words inside string literals or comments can never fire.

use super::{Lint, Violation};
use crate::scan::{seq, SourceFile};

const CRATES: [&str; 8] = [
    "crates/core/src/",
    "crates/fault/src/",
    "crates/index/src/",
    "crates/nn/src/",
    "crates/obs/src/",
    "crates/query/src/",
    "crates/tagger/src/",
    "crates/pairing/src/",
];

pub(crate) struct NoUnwrapInLib;

impl Lint for NoUnwrapInLib {
    fn id(&self) -> &'static str {
        "no-unwrap-in-lib"
    }

    fn applies(&self, path: &str) -> bool {
        CRATES.iter().any(|c| path.starts_with(c))
    }

    fn run(&self, file: &SourceFile) -> Vec<Violation> {
        let mut out = Vec::new();
        let t = &file.tokens;
        for i in 0..t.len() {
            if t[i].in_test {
                continue;
            }
            let pat = if seq(t, i, &[".", "unwrap", "(", ")"]).is_some() {
                ".unwrap()"
            } else if seq(t, i, &[".", "expect", "("]).is_some() {
                ".expect("
            } else {
                continue;
            };
            out.push(Violation::new(
                self.id(),
                file,
                t[i].line,
                format!(
                    "`{pat}` in library code: return Result, or waive with a \
                     reason if the invariant is proven"
                ),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_on(src: &str) -> Vec<Violation> {
        NoUnwrapInLib.run(&SourceFile::parse("crates/index/src/index.rs", src))
    }

    #[test]
    fn fires_on_unwrap_and_expect_in_lib_code() {
        let v = run_on(
            "pub fn f(x: Option<u8>) -> u8 {\n\
             \x20   let a = x.unwrap();\n\
             \x20   let b = x.expect(\"present\");\n\
             \x20   a + b\n\
             }\n",
        );
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].line, 2);
        assert_eq!(v[1].line, 3);
    }

    #[test]
    fn quiet_on_test_code_comments_and_strings() {
        let v = run_on(
            "pub fn f() -> &'static str { \"call .unwrap() later\" } // .unwrap()\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   #[test]\n\
             \x20   fn t() { Some(1).unwrap(); }\n\
             }\n",
        );
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn quiet_on_unwrap_inside_doc_and_raw_strings() {
        let v = run_on(
            "/// Call `.unwrap()` only in tests.\n\
             pub fn f() -> &'static str { r#\"json \".unwrap()\" body\"# }\n\
             /* block comment: x.expect(\"nope\") */\n\
             pub fn g() {}\n",
        );
        assert!(v.is_empty(), "unexpected: {v:?}");
    }

    #[test]
    fn fires_on_unwrap_split_across_lines() {
        // rustfmt can break a long chain before `.unwrap()`; the token
        // stream sees it regardless of line layout.
        let v = run_on(
            "pub fn f(x: Option<u8>) -> u8 {\n\
             \x20   x\n\
             \x20       .unwrap\n\
             \x20       ()\n\
             }\n",
        );
        assert_eq!(v.len(), 1, "unexpected: {v:?}");
        assert_eq!(v[0].line, 3, "reported at the `.unwrap` line");
    }

    #[test]
    fn out_of_scope_crates_are_skipped() {
        assert!(!NoUnwrapInLib.applies("crates/eval/src/ndcg.rs"));
        assert!(!NoUnwrapInLib.applies("vendor/rand/src/lib.rs"));
        assert!(NoUnwrapInLib.applies("crates/nn/src/var.rs"));
        assert!(NoUnwrapInLib.applies("crates/query/src/plan.rs"));
        assert!(!NoUnwrapInLib.applies("crates/query/tests/plan_equals_naive.rs"));
    }
}

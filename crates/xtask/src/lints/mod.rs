//! Lint registry, violations, inline waivers and the committed allowlist.
//!
//! A violation survives to the report only if it is neither waived inline
//! (`// lint:allow(<id>): reason` on the offending line or on the comment
//! line directly above) nor matched by an entry in
//! `crates/xtask/allowlist.txt`.

pub(crate) mod doc_coverage;
pub(crate) mod float_accum;
pub(crate) mod hot_assert;
pub(crate) mod lock_hazard;
pub(crate) mod no_panic;
pub(crate) mod no_print;
pub(crate) mod no_spawn;
pub(crate) mod no_unwrap;

use crate::scan::SourceFile;

/// One finding from one lint pass.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Violation {
    pub(crate) lint: &'static str,
    pub(crate) path: String,
    /// 1-based line number.
    pub(crate) line: usize,
    pub(crate) message: String,
}

impl Violation {
    pub(crate) fn new(
        lint: &'static str,
        file: &SourceFile,
        idx: usize,
        message: String,
    ) -> Violation {
        Violation {
            lint,
            path: file.path.clone(),
            line: idx + 1,
            message,
        }
    }
}

/// A lint pass over one file.
pub(crate) trait Lint {
    fn id(&self) -> &'static str;
    /// Whether this pass cares about `path` (workspace-relative).
    fn applies(&self, path: &str) -> bool;
    fn run(&self, file: &SourceFile) -> Vec<Violation>;
}

/// Every lint the driver knows, in report order.
pub(crate) fn all_lints() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(no_unwrap::NoUnwrapInLib),
        Box::new(no_print::NoPrintInLib),
        Box::new(no_panic::NoPanicInService),
        Box::new(lock_hazard::LockHazard),
        Box::new(float_accum::FloatAccum),
        Box::new(hot_assert::AssertInHotPath),
        Box::new(no_spawn::NoSpawnOutsideRt),
        Box::new(doc_coverage::DocCoverage),
    ]
}

/// Lint ids waived for line `idx` (0-based) by `lint:allow` comments on
/// the line itself or on a comment line directly above it.
pub(crate) fn waivers_for(file: &SourceFile, idx: usize) -> Vec<String> {
    let mut ids = parse_waiver(&file.lines[idx].raw);
    if idx > 0 {
        let above = &file.lines[idx - 1].raw;
        if above.trim_start().starts_with("//") {
            ids.extend(parse_waiver(above));
        }
    }
    ids
}

/// Extract ids from `// lint:allow(id[, id...])[: reason]`.
fn parse_waiver(raw: &str) -> Vec<String> {
    let Some(pos) = raw.find("lint:allow(") else {
        return Vec::new();
    };
    let rest = &raw[pos + "lint:allow(".len()..];
    let Some(close) = rest.find(')') else {
        return Vec::new();
    };
    rest[..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

/// One committed allowlist entry: `lint-id path substring...`.
#[derive(Debug)]
pub(crate) struct AllowEntry {
    pub(crate) lint: String,
    pub(crate) path: String,
    pub(crate) needle: String,
}

/// Parse `allowlist.txt` (blank lines and `#` comments ignored).
pub(crate) fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let mut it = l.splitn(3, char::is_whitespace);
            let lint = it.next()?.to_string();
            let path = it.next()?.to_string();
            let needle = it.next().unwrap_or("").trim().to_string();
            Some(AllowEntry { lint, path, needle })
        })
        .collect()
}

/// Whether `entry` excuses `v` (given the offending line's raw text).
/// Substring matching instead of line numbers keeps entries stable under
/// unrelated edits.
pub(crate) fn entry_matches(entry: &AllowEntry, v: &Violation, raw_line: &str) -> bool {
    entry.lint == v.lint
        && v.path.ends_with(&entry.path)
        && (entry.needle.is_empty() || raw_line.contains(&entry.needle))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::SourceFile;

    #[test]
    fn inline_and_preceding_waivers_parse() {
        let f = SourceFile::parse(
            "t.rs",
            "a.unwrap(); // lint:allow(no-unwrap-in-lib): startup invariant\n\
             // lint:allow(lock-hazard, float-accum): ordered\n\
             b.lock();\n\
             c.unwrap();\n",
        );
        assert_eq!(waivers_for(&f, 0), vec!["no-unwrap-in-lib"]);
        assert_eq!(waivers_for(&f, 2), vec!["lock-hazard", "float-accum"]);
        assert!(waivers_for(&f, 3).is_empty());
    }

    #[test]
    fn allowlist_matches_on_lint_path_suffix_and_substring() {
        let entries = parse_allowlist(
            "# comment\n\
             \n\
             no-unwrap-in-lib crates/core/src/persist.rs header.len()\n\
             lock-hazard shared.rs\n",
        );
        assert_eq!(entries.len(), 2);
        let v = Violation {
            lint: "no-unwrap-in-lib",
            path: "crates/core/src/persist.rs".into(),
            line: 10,
            message: String::new(),
        };
        assert!(entry_matches(
            &entries[0],
            &v,
            "let n = header.len().unwrap();"
        ));
        assert!(!entry_matches(&entries[0], &v, "other.unwrap();"));
        assert!(!entry_matches(&entries[1], &v, "anything"));
    }
}

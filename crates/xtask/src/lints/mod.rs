//! Pass registry, violations, inline waivers and the committed allowlist.
//!
//! A violation survives to the report only if it is neither waived inline
//! (`// lint:allow(<id>): reason` on the offending line or on the comment
//! line directly above) nor matched by an entry in
//! `crates/xtask/allowlist.txt`.

pub(crate) mod blocking_worker;
pub(crate) mod doc_coverage;
pub(crate) mod env_read;
pub(crate) mod float_accum;
pub(crate) mod hot_assert;
pub(crate) mod lock_hazard;
pub(crate) mod metric_name;
pub(crate) mod no_panic;
pub(crate) mod no_print;
pub(crate) mod no_spawn;
pub(crate) mod no_unwrap;
pub(crate) mod nondet_iter;
pub(crate) mod unordered_reduction;
pub(crate) mod wallclock;

use crate::scan::SourceFile;

/// One finding from one pass.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Violation {
    pub(crate) lint: &'static str,
    pub(crate) path: String,
    /// 1-based line number.
    pub(crate) line: usize,
    pub(crate) message: String,
}

impl Violation {
    pub(crate) fn new(
        lint: &'static str,
        file: &SourceFile,
        idx: usize,
        message: String,
    ) -> Violation {
        Violation {
            lint,
            path: file.path.clone(),
            line: idx + 1,
            message,
        }
    }
}

/// A lint/audit pass over one file.
pub(crate) trait Lint {
    fn id(&self) -> &'static str;
    /// Whether this pass cares about `path` (workspace-relative).
    fn applies(&self, path: &str) -> bool;
    fn run(&self, file: &SourceFile) -> Vec<Violation>;
}

/// The eight `xtask check` lints, in report order. `check` enforces zero
/// unwaived violations for these.
pub(crate) fn all_lints() -> Vec<Box<dyn Lint>> {
    vec![
        Box::new(no_unwrap::NoUnwrapInLib),
        Box::new(no_print::NoPrintInLib),
        Box::new(no_panic::NoPanicInService),
        Box::new(lock_hazard::LockHazard),
        Box::new(float_accum::FloatAccum),
        Box::new(hot_assert::AssertInHotPath),
        Box::new(no_spawn::NoSpawnOutsideRt),
        Box::new(doc_coverage::DocCoverage),
    ]
}

/// Every `xtask audit` pass: the eight lints plus the six determinism/
/// concurrency analyses, in report order. `audit` gates their counts on
/// the committed ratchet baseline.
pub(crate) fn audit_passes() -> Vec<Box<dyn Lint>> {
    let mut passes = all_lints();
    passes.push(Box::new(nondet_iter::NondetIteration));
    passes.push(Box::new(unordered_reduction::UnorderedReduction));
    passes.push(Box::new(wallclock::WallclockInCore));
    passes.push(Box::new(env_read::EnvReadInLib));
    passes.push(Box::new(blocking_worker::BlockingInWorker));
    passes.push(Box::new(metric_name::MetricNameLiteral));
    passes
}

/// Lint ids waived for line `idx` (0-based) by `lint:allow` comments on
/// the line itself or on a comment line directly above it.
pub(crate) fn waivers_for(file: &SourceFile, idx: usize) -> Vec<String> {
    let mut ids = parse_waiver(&file.lines[idx].raw);
    if idx > 0 {
        let above = &file.lines[idx - 1].raw;
        if above.trim_start().starts_with("//") {
            ids.extend(parse_waiver(above));
        }
    }
    ids
}

/// Extract ids from `// lint:allow(id[, id...])[: reason]`.
fn parse_waiver(raw: &str) -> Vec<String> {
    let Some(pos) = raw.find("lint:allow(") else {
        return Vec::new();
    };
    let rest = &raw[pos + "lint:allow(".len()..];
    let Some(close) = rest.find(')') else {
        return Vec::new();
    };
    rest[..close]
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

/// FNV-1a 64-bit hash of the *trimmed* line, as 16 hex digits. Trimming
/// makes the hash survive re-indentation; any other edit to the waived
/// line invalidates the entry on purpose (the waiver was reviewed against
/// that exact code).
pub(crate) fn snippet_hash(raw_line: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in raw_line.trim().bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// One committed allowlist entry: `lint-id path-suffix needle`, where the
/// needle is either a substring of the offending line or
/// `hash:<16-hex>` — the [`snippet_hash`] of the offending line. Both
/// forms are line-number-insensitive: edits elsewhere in the file never
/// invalidate the waiver.
#[derive(Debug)]
pub(crate) struct AllowEntry {
    pub(crate) lint: String,
    pub(crate) path: String,
    pub(crate) needle: String,
}

/// Parse `allowlist.txt` (blank lines and `#` comments ignored).
pub(crate) fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let mut it = l.splitn(3, char::is_whitespace);
            let lint = it.next()?.to_string();
            let path = it.next()?.to_string();
            let needle = it.next().unwrap_or("").trim().to_string();
            Some(AllowEntry { lint, path, needle })
        })
        .collect()
}

/// Whether `entry` excuses `v` (given the offending line's raw text).
pub(crate) fn entry_matches(entry: &AllowEntry, v: &Violation, raw_line: &str) -> bool {
    if entry.lint != v.lint || !v.path.ends_with(&entry.path) {
        return false;
    }
    if let Some(want) = entry.needle.strip_prefix("hash:") {
        return snippet_hash(raw_line) == want;
    }
    entry.needle.is_empty() || raw_line.contains(&entry.needle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::SourceFile;

    #[test]
    fn inline_and_preceding_waivers_parse() {
        let f = SourceFile::parse(
            "t.rs",
            "a.unwrap(); // lint:allow(no-unwrap-in-lib): startup invariant\n\
             // lint:allow(lock-hazard, float-accum): ordered\n\
             b.lock();\n\
             c.unwrap();\n",
        );
        assert_eq!(waivers_for(&f, 0), vec!["no-unwrap-in-lib"]);
        assert_eq!(waivers_for(&f, 2), vec!["lock-hazard", "float-accum"]);
        assert!(waivers_for(&f, 3).is_empty());
    }

    #[test]
    fn allowlist_matches_on_lint_path_suffix_and_substring() {
        let entries = parse_allowlist(
            "# comment\n\
             \n\
             no-unwrap-in-lib crates/core/src/persist.rs header.len()\n\
             lock-hazard shared.rs\n",
        );
        assert_eq!(entries.len(), 2);
        let v = Violation {
            lint: "no-unwrap-in-lib",
            path: "crates/core/src/persist.rs".into(),
            line: 10,
            message: String::new(),
        };
        assert!(entry_matches(
            &entries[0],
            &v,
            "let n = header.len().unwrap();"
        ));
        assert!(!entry_matches(&entries[0], &v, "other.unwrap();"));
        assert!(!entry_matches(&entries[1], &v, "anything"));
    }

    #[test]
    fn hash_entries_match_the_exact_snippet_reindented() {
        let line = "    let n = header.len().unwrap();";
        let h = snippet_hash(line);
        let entries = parse_allowlist(&format!(
            "no-unwrap-in-lib crates/core/src/persist.rs hash:{h}\n"
        ));
        let v = Violation {
            lint: "no-unwrap-in-lib",
            path: "crates/core/src/persist.rs".into(),
            line: 10,
            message: String::new(),
        };
        // Same snippet, different indentation: still matches.
        assert!(entry_matches(&entries[0], &v, line));
        assert!(entry_matches(
            &entries[0],
            &v,
            "\t\tlet n = header.len().unwrap();"
        ));
        // Any code change invalidates the waiver.
        assert!(!entry_matches(
            &entries[0],
            &v,
            "let n = header.len().unwrap(); // changed"
        ));
    }

    #[test]
    fn snippet_hash_is_stable_and_hex() {
        let h = snippet_hash("  x.unwrap();  ");
        assert_eq!(h, snippet_hash("x.unwrap();"), "trim-insensitive");
        assert_eq!(h.len(), 16);
        assert!(h.bytes().all(|b| b.is_ascii_hexdigit()));
    }
}

//! The 18 canonical subjective tags and the Table-2 query sets.
//!
//! §6.2: "\[39\] identified the most important features restaurant seekers
//! consider when choosing a restaurant … We chose 18 of them to serve as
//! our subjective tags"; queries are uniform random combinations of those
//! tags, 100 per difficulty level — Short (1–2 tags), Medium (3–4), Long
//! (5–6).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use saccs_text::SubjectiveTag;

/// One of the 18 test tags: its surface form plus the latent dimension
/// (canonical opinion group × aspect concept) it evaluates against.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CanonicalTag {
    /// Surface opinion word, as a user would type it.
    pub surface_opinion: &'static str,
    /// Surface aspect word.
    pub surface_aspect: &'static str,
    /// Canonical opinion group in the lexicon.
    pub group: &'static str,
    /// Canonical aspect concept in the lexicon.
    pub concept: &'static str,
}

impl CanonicalTag {
    /// The tag as a [`SubjectiveTag`].
    pub fn tag(&self) -> SubjectiveTag {
        SubjectiveTag::new(self.surface_opinion, self.surface_aspect)
    }

    /// Surface phrase ("delicious food").
    pub fn phrase(&self) -> String {
        format!("{} {}", self.surface_opinion, self.surface_aspect)
    }
}

macro_rules! ctag {
    ($op:literal, $asp:literal, $group:literal, $concept:literal) => {
        CanonicalTag {
            surface_opinion: $op,
            surface_aspect: $asp,
            group: $group,
            concept: $concept,
        }
    };
}

/// The 18 canonical tags (Moura et al. \[39\] restaurant-choice features; the
/// first four are quoted verbatim in §6.2).
pub fn canonical_tags() -> Vec<CanonicalTag> {
    vec![
        ctag!("delicious", "food", "delicious", "food"),
        ctag!("creative", "cooking", "creative", "cooking"),
        ctag!("varied", "menu", "varied", "menu"),
        ctag!("romantic", "ambiance", "romantic", "ambiance"),
        ctag!("quick", "service", "quick", "service"),
        ctag!("nice", "staff", "nice", "staff"),
        ctag!("clean", "plates", "clean", "plates"),
        ctag!("fair", "prices", "fair", "price"),
        ctag!("cozy", "atmosphere", "cozy", "ambiance"),
        ctag!("fresh", "ingredients", "fresh", "ingredients"),
        ctag!("generous", "portions", "generous", "portions"),
        ctag!("fast", "delivery", "quick", "delivery"),
        ctag!("good", "wine", "good", "wine"),
        ctag!("friendly", "waiters", "nice", "staff"),
        ctag!("quiet", "place", "quiet", "place"),
        ctag!("beautiful", "decor", "beautiful", "decor"),
        ctag!("good", "music", "good", "music"),
        ctag!("comfortable", "seating", "comfortable", "seating"),
    ]
}

/// Query difficulty levels of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Difficulty {
    /// 1–2 subjective tags.
    Short,
    /// 3–4 subjective tags.
    Medium,
    /// 5–6 subjective tags.
    Long,
}

impl Difficulty {
    pub const ALL: [Difficulty; 3] = [Difficulty::Short, Difficulty::Medium, Difficulty::Long];

    /// Inclusive tag-count range for this difficulty.
    pub fn tag_range(self) -> (usize, usize) {
        match self {
            Difficulty::Short => (1, 2),
            Difficulty::Medium => (3, 4),
            Difficulty::Long => (5, 6),
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Difficulty::Short => "Short",
            Difficulty::Medium => "Medium",
            Difficulty::Long => "Long",
        }
    }
}

/// A subjective test query: a combination of canonical tags plus the
/// natural-language utterance it corresponds to.
#[derive(Debug, Clone)]
pub struct Query {
    pub tags: Vec<CanonicalTag>,
    pub difficulty: Difficulty,
}

impl Query {
    /// Render as a user utterance, e.g. "I am looking for a restaurant that
    /// delivers a quick service with clean plates." (§6.2's example form).
    pub fn utterance(&self) -> String {
        let phrases: Vec<String> = self.tags.iter().map(|t| t.phrase()).collect();
        match phrases.len() {
            1 => format!("I am looking for a restaurant with {}.", phrases[0]),
            _ => {
                let (last, init) = phrases.split_last().unwrap();
                format!(
                    "I am looking for a restaurant with {} and {}.",
                    init.join(", "),
                    last
                )
            }
        }
    }
}

/// Generate `per_level` queries for each difficulty by uniform random
/// sampling of distinct tags (§6.2: "Each set contains 100 queries").
pub fn query_sets(per_level: usize, seed: u64) -> Vec<(Difficulty, Vec<Query>)> {
    let tags = canonical_tags();
    let mut rng = StdRng::seed_from_u64(seed);
    Difficulty::ALL
        .iter()
        .map(|&d| {
            let (lo, hi) = d.tag_range();
            let queries = (0..per_level)
                .map(|_| {
                    let n = rng.gen_range(lo..=hi);
                    let mut chosen = tags.clone();
                    chosen.shuffle(&mut rng);
                    chosen.truncate(n);
                    Query {
                        tags: chosen,
                        difficulty: d,
                    }
                })
                .collect();
            (d, queries)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use saccs_text::{Domain, Lexicon};

    #[test]
    fn eighteen_tags() {
        assert_eq!(canonical_tags().len(), 18);
    }

    #[test]
    fn tags_resolve_against_lexicon() {
        let lex = Lexicon::new(Domain::Restaurants);
        for t in canonical_tags() {
            let g = lex
                .opinion_group(t.surface_opinion)
                .expect(t.surface_opinion);
            assert_eq!(g.canonical, t.group, "{}", t.phrase());
            let c = lex
                .aspect_concept(t.surface_aspect)
                .expect(t.surface_aspect);
            assert_eq!(c.canonical, t.concept, "{}", t.phrase());
        }
    }

    #[test]
    fn query_sets_have_correct_sizes_and_ranges() {
        let sets = query_sets(100, 1);
        assert_eq!(sets.len(), 3);
        for (d, queries) in &sets {
            assert_eq!(queries.len(), 100);
            let (lo, hi) = d.tag_range();
            for q in queries {
                assert!(q.tags.len() >= lo && q.tags.len() <= hi);
                // Distinct tags within a query.
                let set: std::collections::HashSet<_> = q.tags.iter().collect();
                assert_eq!(set.len(), q.tags.len());
            }
        }
    }

    #[test]
    fn utterance_renders_naturally() {
        let tags = canonical_tags();
        let q = Query {
            tags: vec![tags[4].clone(), tags[6].clone()],
            difficulty: Difficulty::Short,
        };
        assert_eq!(
            q.utterance(),
            "I am looking for a restaurant with quick service and clean plates."
        );
        let q1 = Query {
            tags: vec![tags[0].clone()],
            difficulty: Difficulty::Short,
        };
        assert_eq!(
            q1.utterance(),
            "I am looking for a restaurant with delicious food."
        );
    }

    #[test]
    fn query_sets_deterministic() {
        let a = query_sets(10, 5);
        let b = query_sets(10, 5);
        for ((_, qa), (_, qb)) in a.iter().zip(&b) {
            for (x, y) in qa.iter().zip(qb) {
                assert_eq!(x.tags, y.tags);
            }
        }
    }

    #[test]
    fn subjective_tag_conversion() {
        let t = &canonical_tags()[0];
        let st = t.tag();
        assert_eq!(st.opinion, "delicious");
        assert_eq!(st.aspect, "food");
    }
}

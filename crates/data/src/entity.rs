//! Entities (restaurants) with latent subjective qualities and Yelp-style
//! queryable attributes.
//!
//! Each entity carries a latent quality `q ∈ [0,1]` for every
//! (aspect concept, positive opinion group) pair its domain admits —
//! `q[(ambiance, romantic)]` is *how romantic the place truly is*. Reviews
//! are noisy observations of these latents (see [`crate::yelp`]), and the
//! crowdsourced `sat(tag, entity)` ground truth of §6.2 is recovered from
//! them (see [`crate::crowd`]). The coarse categorical attributes Yelp
//! exposes (NoiseLevel, Ambience, GoodForGroups, …) are *derived* from the
//! latents with thresholds, exactly the information loss that makes the
//! paper's SIM baseline beatable.

use rand::rngs::StdRng;
use rand::Rng;
use saccs_text::lexicon::{Lexicon, Polarity};
use std::collections::BTreeMap;

/// A restaurant (or hotel/product) with latent qualities.
#[derive(Debug, Clone)]
pub struct Entity {
    pub id: usize,
    pub name: String,
    /// Base quality per aspect concept.
    base: BTreeMap<&'static str, f32>,
    /// Refined quality per (aspect concept, positive opinion group).
    quality: BTreeMap<(&'static str, &'static str), f32>,
    /// Yelp-style categorical attributes.
    pub attributes: BTreeMap<&'static str, &'static str>,
    /// Star rating in [1, 5], a noisy aggregate of all latents (§2's
    /// "coarse granularity" critique of ratings is reproduced faithfully:
    /// stars blur per-aspect detail).
    pub stars: f32,
}

/// Attribute schema available to the SIM baseline: `(name, values)`.
pub const ATTRIBUTE_SCHEMA: &[(&str, &[&str])] = &[
    ("NoiseLevel", &["quiet", "average", "loud"]),
    ("Ambience", &["romantic", "casual", "classy"]),
    ("GoodForGroups", &["true", "false"]),
    ("PriceRange", &["1", "2", "3", "4"]),
    ("OutdoorSeating", &["true", "false"]),
    ("GoodForKids", &["true", "false"]),
];

impl Entity {
    /// Sample a fresh entity. Latents are drawn per aspect around a base
    /// quality so related tags correlate (a place with great food *tends*
    /// to have creative cooking) without being identical.
    pub fn sample(id: usize, lexicon: &Lexicon, rng: &mut StdRng) -> Self {
        let mut base = BTreeMap::new();
        let mut quality = BTreeMap::new();
        for aspect in lexicon.aspects() {
            let b: f32 = rng.gen_range(0.05..0.95);
            base.insert(aspect.canonical, b);
            for group in lexicon.opinions_for_aspect(aspect.canonical) {
                // Generic evaluatives (good/bad) read the base quality
                // directly (see `quality_of`); only specific dimensions get
                // their own latent.
                if group.polarity == Polarity::Positive && !group.generic {
                    let jitter: f32 = rng.gen_range(-0.25..0.25);
                    quality.insert(
                        (aspect.canonical, group.canonical),
                        (b + jitter).clamp(0.02, 0.98),
                    );
                }
            }
        }

        let stars_true: f32 = base.values().sum::<f32>() / base.len() as f32 * 4.0 + 1.0;
        let stars = (stars_true + rng.gen_range(-0.4..0.4)).clamp(1.0, 5.0);

        let q = |concept: &str, group: &str| -> f32 {
            quality.get(&(concept, group)).copied().unwrap_or(0.5)
        };
        let mut attributes = BTreeMap::new();
        // Thresholded derivations: coarse, lossy, occasionally wrong — the
        // fidelity ceiling of attribute-based search.
        let noise_q = q("place", "quiet");
        attributes.insert(
            "NoiseLevel",
            if noise_q > 0.66 {
                "quiet"
            } else if noise_q > 0.33 {
                "average"
            } else {
                "loud"
            },
        );
        let romantic = q("ambiance", "romantic");
        let cozy = q("ambiance", "cozy");
        attributes.insert(
            "Ambience",
            if romantic > 0.6 {
                "romantic"
            } else if cozy > 0.6 {
                "casual"
            } else {
                "classy"
            },
        );
        attributes.insert(
            "GoodForGroups",
            if q("seating", "comfortable") > 0.5 {
                "true"
            } else {
                "false"
            },
        );
        let price = q("price", "fair");
        attributes.insert(
            "PriceRange",
            if price > 0.75 {
                "1"
            } else if price > 0.5 {
                "2"
            } else if price > 0.25 {
                "3"
            } else {
                "4"
            },
        );
        attributes.insert(
            "OutdoorSeating",
            if rng.gen_bool(0.4) { "true" } else { "false" },
        );
        attributes.insert(
            "GoodForKids",
            if q("place", "quiet") < 0.5 {
                "true"
            } else {
                "false"
            },
        );

        Entity {
            id,
            name: format!("Trattoria {:03}", id),
            base,
            quality,
            attributes,
            stars,
        }
    }

    /// Latent quality of a (concept, positive group) pair. Generic groups
    /// (`good`) read the aspect's base quality; unknown pairs read 0.5.
    pub fn quality_of(&self, concept: &str, group: &str) -> f32 {
        if let Some(&q) = self.quality.get(&(concept, group)) {
            return q;
        }
        if group == "good" {
            return self.base_quality(concept);
        }
        0.5
    }

    /// Base quality of an aspect concept.
    pub fn base_quality(&self, concept: &str) -> f32 {
        self.base.get(concept).copied().unwrap_or(0.5)
    }

    /// All (concept, group) latent dimensions.
    pub fn quality_dims(&self) -> impl Iterator<Item = (&'static str, &'static str, f32)> + '_ {
        self.quality.iter().map(|(&(c, g), &q)| (c, g, q))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use saccs_text::Domain;

    fn entity(seed: u64) -> Entity {
        let lex = Lexicon::new(Domain::Restaurants);
        let mut rng = StdRng::seed_from_u64(seed);
        Entity::sample(7, &lex, &mut rng)
    }

    #[test]
    fn latents_are_bounded() {
        let e = entity(1);
        for (_, _, q) in e.quality_dims() {
            assert!((0.0..=1.0).contains(&q));
        }
        assert!((1.0..=5.0).contains(&e.stars));
    }

    #[test]
    fn qualities_correlate_with_base() {
        let e = entity(2);
        for (c, _, q) in e.quality_dims() {
            assert!((q - e.base_quality(c)).abs() <= 0.25 + 1e-6);
        }
    }

    #[test]
    fn attributes_follow_schema() {
        let e = entity(3);
        for (name, value) in &e.attributes {
            let (_, values) = ATTRIBUTE_SCHEMA
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("attribute {name} not in schema"));
            assert!(values.contains(value), "{name}={value} not allowed");
        }
        assert_eq!(e.attributes.len(), ATTRIBUTE_SCHEMA.len());
    }

    #[test]
    fn generic_good_reads_base() {
        let e = entity(4);
        assert_eq!(e.quality_of("wine", "good"), e.base_quality("wine"));
        assert_eq!(e.quality_of("unknown-aspect", "unknown-group"), 0.5);
    }

    #[test]
    fn sampling_is_deterministic() {
        let a = entity(5);
        let b = entity(5);
        assert_eq!(a.stars, b.stars);
        assert_eq!(a.attributes, b.attributes);
        let qa: Vec<_> = a.quality_dims().collect();
        let qb: Vec<_> = b.quality_dims().collect();
        assert_eq!(qa, qb);
    }

    #[test]
    fn entities_differ_across_seeds() {
        let a = entity(6);
        let b = entity(7);
        assert_ne!(a.stars, b.stars);
    }
}

//! The synthetic stand-in for the Yelp Open Dataset slice used in §6.1:
//! "280 entities (restaurants) with 7061 reviews" (Italian restaurants in
//! Montreal).
//!
//! Reviews are noisy observations of each entity's latent qualities: a
//! review sentence about dimension `(food, delicious)` praises the food
//! with probability `q[(food, delicious)]` and pans it otherwise, so
//! aggregate review content converges on the latent truth exactly the way
//! real review corpora encode collective experience. Review volume follows
//! a heavy-tailed per-entity distribution (every entity keeps at least one
//! review), and text passes through the same template grammar as the
//! labeled datasets — with typos and filler noise — so the extractor faces
//! realistic surface variety.

use crate::entity::Entity;
use crate::generator::{FacetSpec, GeneratorConfig, LabeledSentence, SentenceGenerator};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use saccs_text::lexicon::{Lexicon, Polarity};

/// One review: a few sentences about one entity, with the generating
/// facets retained as diagnostic ground truth (the *system* never reads
/// them — it sees only `text()`).
#[derive(Debug, Clone)]
pub struct Review {
    pub entity_id: usize,
    pub sentences: Vec<LabeledSentence>,
    /// The latent dimensions this review observed: (concept, group,
    /// realized polarity).
    pub observations: Vec<(&'static str, &'static str, Polarity)>,
    /// True for injected astroturf reviews (see [`crate::fraud`]). Ground
    /// truth for the robustness experiments only — the indexing pipeline
    /// never reads it.
    pub is_fake: bool,
}

impl Review {
    /// The review's surface text (sentences joined with spaces; each
    /// sentence already ends in a terminator token).
    pub fn text(&self) -> String {
        self.sentences
            .iter()
            .map(|s| s.text())
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Corpus generation knobs.
#[derive(Debug, Clone)]
pub struct YelpConfig {
    pub n_entities: usize,
    pub n_reviews: usize,
    pub max_sentences_per_review: usize,
    /// Probability that a review sentence's polarity contradicts the
    /// latent draw (reviewer idiosyncrasy).
    pub flip_noise: f64,
    pub typo_rate: f64,
    pub seed: u64,
}

impl Default for YelpConfig {
    fn default() -> Self {
        // The paper's corpus dimensions.
        YelpConfig {
            n_entities: 280,
            n_reviews: 7061,
            max_sentences_per_review: 4,
            flip_noise: 0.10,
            typo_rate: 0.02,
            seed: 0xE1DB,
        }
    }
}

/// The generated corpus: entities, reviews, and a per-entity review index.
#[derive(Debug, Clone)]
pub struct YelpCorpus {
    pub entities: Vec<Entity>,
    pub reviews: Vec<Review>,
    by_entity: Vec<Vec<usize>>,
    lexicon: Lexicon,
}

/// How often each aspect concept gets mentioned, relative to weight 1.
fn mention_weight(concept: &str) -> u32 {
    match concept {
        "food" => 5,
        "service" | "staff" => 3,
        "ambiance" | "price" => 2,
        _ => 1,
    }
}

impl YelpCorpus {
    /// Generate the corpus. Deterministic in `config.seed`.
    pub fn generate(lexicon: Lexicon, config: &YelpConfig) -> Self {
        assert!(
            config.n_reviews >= config.n_entities,
            "every entity needs a review"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let entities: Vec<Entity> = (0..config.n_entities)
            .map(|i| Entity::sample(i, &lexicon, &mut rng))
            .collect();

        // Heavy-tailed review volume: log-normal-ish weights, floor of one.
        let weights: Vec<f64> = (0..config.n_entities)
            .map(|_| (rng.gen_range(-1.0f64..1.0) * 1.2).exp())
            .collect();
        let total_w: f64 = weights.iter().sum();
        let mut assignment: Vec<usize> = (0..config.n_entities).collect();
        {
            let mut remaining = config.n_reviews - config.n_entities;
            let mut cum = Vec::with_capacity(config.n_entities);
            let mut acc = 0.0;
            for w in &weights {
                acc += w / total_w;
                cum.push(acc);
            }
            while remaining > 0 {
                let u: f64 = rng.gen();
                let idx = cum.partition_point(|&c| c < u).min(config.n_entities - 1);
                assignment.push(idx);
                remaining -= 1;
            }
        }
        assignment.shuffle(&mut rng);

        let generator = SentenceGenerator::new(
            lexicon.clone(),
            GeneratorConfig {
                typo_rate: config.typo_rate,
                noise_rate: 0.4,
                train_vocabulary_only: false,
                // Trap templates leave the second facet unexpressed, which
                // would corrupt the recorded observations; keep them out of
                // the latent-tracking corpus.
                trap_rate: 0.0,
                correlated_facets: 0.35,
            },
        );

        // Pre-compute the weighted aspect pool once.
        let mut aspect_pool: Vec<&'static str> = Vec::new();
        for a in lexicon.aspects() {
            for _ in 0..mention_weight(a.canonical) {
                aspect_pool.push(a.canonical);
            }
        }

        let mut reviews = Vec::with_capacity(config.n_reviews);
        let mut by_entity = vec![Vec::new(); config.n_entities];
        for entity_id in assignment {
            let entity = &entities[entity_id];
            let n_sent = rng.gen_range(1..=config.max_sentences_per_review);
            let mut sentences = Vec::with_capacity(n_sent);
            let mut observations = Vec::new();
            for _ in 0..n_sent {
                let n_facets = *[1usize, 1, 1, 2, 2, 3].choose(&mut rng).unwrap();
                let mut facets = Vec::with_capacity(n_facets);
                for _ in 0..n_facets {
                    let concept = *aspect_pool.choose(&mut rng).unwrap();
                    let positives: Vec<&'static str> = lexicon
                        .opinions_for_aspect(concept)
                        .into_iter()
                        .filter(|g| g.polarity == Polarity::Positive)
                        .map(|g| g.canonical)
                        .collect();
                    let group = *positives.choose(&mut rng).unwrap();
                    let q = entity.quality_of(concept, group) as f64;
                    let mut positive = rng.gen_bool(q);
                    if rng.gen_bool(config.flip_noise) {
                        positive = !positive;
                    }
                    let polarity = if positive {
                        Polarity::Positive
                    } else {
                        Polarity::Negative
                    };
                    observations.push((concept, group, polarity));
                    facets.push(FacetSpec {
                        concept,
                        group,
                        polarity,
                    });
                }
                sentences.push(generator.sentence(&facets, &mut rng));
            }
            by_entity[entity_id].push(reviews.len());
            reviews.push(Review {
                entity_id,
                sentences,
                observations,
                is_fake: false,
            });
        }

        YelpCorpus {
            entities,
            reviews,
            by_entity,
            lexicon,
        }
    }

    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }

    /// Indices into [`YelpCorpus::reviews`] for one entity.
    pub fn reviews_of(&self, entity_id: usize) -> &[usize] {
        &self.by_entity[entity_id]
    }

    /// Append a review (used by the fraud injector), keeping the
    /// per-entity index consistent.
    pub fn push_review(&mut self, review: Review) {
        let entity_id = review.entity_id;
        assert!(entity_id < self.entities.len(), "unknown entity");
        self.by_entity[entity_id].push(self.reviews.len());
        self.reviews.push(review);
    }

    /// Every sentence in the corpus — the unlabeled in-domain text used for
    /// MiniBert domain post-training (§4.2 / \[58\]).
    pub fn all_sentences(&self) -> impl Iterator<Item = &LabeledSentence> {
        self.reviews.iter().flat_map(|r| r.sentences.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saccs_text::Domain;

    fn small_corpus() -> YelpCorpus {
        let config = YelpConfig {
            n_entities: 12,
            n_reviews: 150,
            seed: 42,
            ..Default::default()
        };
        YelpCorpus::generate(Lexicon::new(Domain::Restaurants), &config)
    }

    #[test]
    fn corpus_has_requested_dimensions() {
        let c = small_corpus();
        assert_eq!(c.entities.len(), 12);
        assert_eq!(c.reviews.len(), 150);
    }

    #[test]
    fn every_entity_has_at_least_one_review() {
        let c = small_corpus();
        for e in 0..c.entities.len() {
            assert!(!c.reviews_of(e).is_empty(), "entity {e} has no reviews");
        }
    }

    #[test]
    fn review_index_is_consistent() {
        let c = small_corpus();
        for (e, idxs) in (0..c.entities.len()).map(|e| (e, c.reviews_of(e))) {
            for &i in idxs {
                assert_eq!(c.reviews[i].entity_id, e);
            }
        }
        let total: usize = (0..c.entities.len()).map(|e| c.reviews_of(e).len()).sum();
        assert_eq!(total, c.reviews.len());
    }

    #[test]
    fn review_volume_is_heavy_tailed() {
        let c = small_corpus();
        let counts: Vec<usize> = (0..c.entities.len())
            .map(|e| c.reviews_of(e).len())
            .collect();
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max >= 2 * min.max(1), "volumes too uniform: {counts:?}");
    }

    #[test]
    fn observations_track_latents() {
        // Aggregated over many mentions, the positive-mention rate of a
        // dimension should correlate with the latent quality.
        let config = YelpConfig {
            n_entities: 4,
            n_reviews: 600,
            seed: 7,
            flip_noise: 0.05,
            ..Default::default()
        };
        let c = YelpCorpus::generate(Lexicon::new(Domain::Restaurants), &config);
        let mut errs = Vec::new();
        for e in 0..c.entities.len() {
            let mut counts: std::collections::HashMap<(&str, &str), (u32, u32)> =
                std::collections::HashMap::new();
            for &ri in c.reviews_of(e) {
                for &(concept, group, pol) in &c.reviews[ri].observations {
                    let ent = counts.entry((concept, group)).or_insert((0, 0));
                    ent.1 += 1;
                    if pol == Polarity::Positive {
                        ent.0 += 1;
                    }
                }
            }
            for ((concept, group), (pos, tot)) in counts {
                if tot >= 20 {
                    let rate = pos as f32 / tot as f32;
                    let q = c.entities[e].quality_of(concept, group);
                    errs.push((rate - q).abs());
                }
            }
        }
        assert!(!errs.is_empty());
        let mean_err = errs.iter().sum::<f32>() / errs.len() as f32;
        assert!(mean_err < 0.2, "reviews diverge from latents: {mean_err}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small_corpus();
        let b = small_corpus();
        assert_eq!(a.reviews.len(), b.reviews.len());
        for (ra, rb) in a.reviews.iter().zip(&b.reviews) {
            assert_eq!(ra.text(), rb.text());
        }
    }

    #[test]
    fn paper_scale_corpus_generates_quickly() {
        let c = YelpCorpus::generate(Lexicon::new(Domain::Restaurants), &YelpConfig::default());
        assert_eq!(c.entities.len(), 280);
        assert_eq!(c.reviews.len(), 7061);
    }
}

//! Fake-review campaign injection (§7 future work).
//!
//! "A reviewer might have been paid by a business owner to write positive
//! reviews about it, or negative reviews about its competitors. We have
//! to differentiate between truthful and fake reviews." This module
//! simulates such campaigns so the robust-indexing extension
//! (`saccs-index::robust`) has something real to defend against: a
//! campaign floods one entity with a burst of near-identical reviews
//! praising (or, for a smear, panning) one subjective dimension,
//! regardless of the entity's latent quality.

use crate::generator::{FacetSpec, GeneratorConfig, SentenceGenerator};
use crate::yelp::{Review, YelpCorpus};
use rand::rngs::StdRng;
use rand::SeedableRng;
use saccs_text::lexicon::Polarity;

/// One astroturfing campaign.
#[derive(Debug, Clone)]
pub struct FraudCampaign {
    /// The paid-for entity.
    pub entity_id: usize,
    /// Number of fake reviews to inject.
    pub n_reviews: usize,
    /// The dimension the campaign pushes (canonical concept + group).
    pub concept: &'static str,
    pub group: &'static str,
    /// `Positive` boosts the target; `Negative` smears it (the
    /// competitor-attack case).
    pub polarity: Polarity,
}

/// Inject campaigns into a corpus. Fake reviews are appended and flagged
/// with [`Review::is_fake`] (diagnostic ground truth — the indexer never
/// reads the flag) and *not* recorded in the latent observations, so the
/// crowd sat ground truth stays the honest one.
pub fn inject_fraud(corpus: &mut YelpCorpus, campaigns: &[FraudCampaign], seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    // Campaign text is deliberately repetitive: one facet, no noise, low
    // variation — the fingerprint real astroturfing tends to leave.
    let generator = SentenceGenerator::new(
        corpus.lexicon().clone(),
        GeneratorConfig {
            typo_rate: 0.0,
            noise_rate: 0.0,
            train_vocabulary_only: true, // a paid writer reuses stock phrasing
            trap_rate: 0.0,
            correlated_facets: 0.0,
        },
    );
    for campaign in campaigns {
        assert!(campaign.entity_id < corpus.entities.len(), "unknown entity");
        for _ in 0..campaign.n_reviews {
            let facet = FacetSpec {
                concept: campaign.concept,
                group: campaign.group,
                polarity: campaign.polarity,
            };
            let sentence = generator.sentence(&[facet], &mut rng);
            corpus.push_review(Review {
                entity_id: campaign.entity_id,
                sentences: vec![sentence],
                observations: Vec::new(), // fake reviews observe nothing real
                is_fake: true,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::yelp::YelpConfig;
    use saccs_text::{Domain, Lexicon};

    fn corpus() -> YelpCorpus {
        YelpCorpus::generate(
            Lexicon::new(Domain::Restaurants),
            &YelpConfig {
                n_entities: 6,
                n_reviews: 60,
                seed: 4,
                ..Default::default()
            },
        )
    }

    #[test]
    fn injection_appends_flagged_reviews() {
        let mut c = corpus();
        let before = c.reviews.len();
        let before_target = c.reviews_of(2).len();
        inject_fraud(
            &mut c,
            &[FraudCampaign {
                entity_id: 2,
                n_reviews: 15,
                concept: "food",
                group: "delicious",
                polarity: Polarity::Positive,
            }],
            1,
        );
        assert_eq!(c.reviews.len(), before + 15);
        assert_eq!(c.reviews_of(2).len(), before_target + 15);
        let fakes = c
            .reviews_of(2)
            .iter()
            .filter(|&&ri| c.reviews[ri].is_fake)
            .count();
        assert_eq!(fakes, 15);
        // Other entities untouched.
        assert!(c.reviews_of(0).iter().all(|&ri| !c.reviews[ri].is_fake));
    }

    #[test]
    fn fake_reviews_push_the_campaign_dimension() {
        let mut c = corpus();
        inject_fraud(
            &mut c,
            &[FraudCampaign {
                entity_id: 0,
                n_reviews: 10,
                concept: "staff",
                group: "nice",
                polarity: Polarity::Positive,
            }],
            2,
        );
        let lex = Lexicon::new(Domain::Restaurants);
        for &ri in c.reviews_of(0) {
            let r = &c.reviews[ri];
            if r.is_fake {
                // Every fake review mentions the staff positively.
                let s = &r.sentences[0];
                let found = s.pairs.iter().any(|(a, o)| {
                    lex.aspect_concept(&a.text(&s.tokens))
                        .is_some_and(|con| con.canonical == "staff")
                        && lex
                            .opinion_group(&o.text(&s.tokens))
                            .is_some_and(|g| g.polarity == Polarity::Positive)
                });
                assert!(found, "fake review off-message: {}", s.text());
            }
        }
    }

    #[test]
    fn observations_stay_honest() {
        let mut c = corpus();
        inject_fraud(
            &mut c,
            &[FraudCampaign {
                entity_id: 1,
                n_reviews: 8,
                concept: "food",
                group: "delicious",
                polarity: Polarity::Positive,
            }],
            3,
        );
        for &ri in c.reviews_of(1) {
            if c.reviews[ri].is_fake {
                assert!(c.reviews[ri].observations.is_empty());
            }
        }
    }

    #[test]
    #[should_panic(expected = "unknown entity")]
    fn rejects_out_of_range_entities() {
        let mut c = corpus();
        inject_fraud(
            &mut c,
            &[FraudCampaign {
                entity_id: 999,
                n_reviews: 1,
                concept: "food",
                group: "delicious",
                polarity: Polarity::Positive,
            }],
            4,
        );
    }
}

//! # saccs-data
//!
//! Synthetic data generation for the SACCS reproduction. The paper
//! evaluates on (a) the Yelp Open Dataset filtered to 280 Italian
//! restaurants in Montreal with 7 061 reviews, (b) four labeled
//! aspect/opinion datasets S1–S4 (SemEval-14/15 + Booking.com, Table 3),
//! (c) crowdsourced `sat(tag, entity)` relevance judgments from Yandex
//! Toloka, and (d) 100 queries per difficulty level built from 18 canonical
//! subjective tags \[39\]. None of those artifacts are available offline, so
//! this crate generates statistically equivalent substitutes whose ground
//! truth is *known by construction* (see `DESIGN.md` §1):
//!
//! * [`generator`] — a template/paraphrase sentence grammar over the
//!   [`saccs_text::Lexicon`], emitting gold IOB tags and gold
//!   aspect↔opinion pairs;
//! * [`labeled`] — S1–S4 with the paper's exact sizes and domains;
//! * [`entity`] + [`yelp`] — restaurants with latent per-(aspect, opinion)
//!   qualities, Yelp-style queryable attributes derived from them, and
//!   reviews sampled from the latents;
//! * [`crowd`] — the three-worker quantized majority-vote simulation;
//! * [`queries`] — the 18 canonical tags and Short/Medium/Long query sets.
//!
//! Every generator takes an explicit seed; identical seeds reproduce
//! identical datasets bit for bit.

/// CoNLL-style import/export of labeled sentences.
pub mod conll;
/// Three-worker quantized majority-vote crowd simulation.
pub mod crowd;
/// Entities with latent per-(aspect, opinion) qualities.
pub mod entity;
/// Injected review-fraud campaigns for robustness tests.
pub mod fraud;
/// Template/paraphrase sentence grammar with gold labels.
pub mod generator;
/// The S1-S4 labeled datasets at the paper's sizes.
pub mod labeled;
/// Canonical tags and the Short/Medium/Long query sets.
pub mod queries;
/// Yelp-style corpora: entities, attributes and reviews.
pub mod yelp;

/// Round-trip labeled sentences through CoNLL text.
pub use conll::{from_conll, to_conll};
/// Simulated crowd satisfaction judgments.
pub use crowd::CrowdSimulator;
/// One synthetic entity and its latent qualities.
pub use entity::Entity;
/// Adversarial review injection.
pub use fraud::{inject_fraud, FraudCampaign};
/// The sentence generator and its configuration.
pub use generator::{
    synthetic_tags, FacetSpec, GeneratorConfig, LabeledSentence, SentenceGenerator,
};
/// The named labeled datasets.
pub use labeled::{Dataset, DatasetId};
/// Query workloads over the canonical tags.
pub use queries::{canonical_tags, CanonicalTag, Difficulty, Query};
/// Generated corpora and their reviews.
pub use yelp::{Review, YelpCorpus};

//! # saccs-data
//!
//! Synthetic data generation for the SACCS reproduction. The paper
//! evaluates on (a) the Yelp Open Dataset filtered to 280 Italian
//! restaurants in Montreal with 7 061 reviews, (b) four labeled
//! aspect/opinion datasets S1–S4 (SemEval-14/15 + Booking.com, Table 3),
//! (c) crowdsourced `sat(tag, entity)` relevance judgments from Yandex
//! Toloka, and (d) 100 queries per difficulty level built from 18 canonical
//! subjective tags \[39\]. None of those artifacts are available offline, so
//! this crate generates statistically equivalent substitutes whose ground
//! truth is *known by construction* (see `DESIGN.md` §1):
//!
//! * [`generator`] — a template/paraphrase sentence grammar over the
//!   [`saccs_text::Lexicon`], emitting gold IOB tags and gold
//!   aspect↔opinion pairs;
//! * [`labeled`] — S1–S4 with the paper's exact sizes and domains;
//! * [`entity`] + [`yelp`] — restaurants with latent per-(aspect, opinion)
//!   qualities, Yelp-style queryable attributes derived from them, and
//!   reviews sampled from the latents;
//! * [`crowd`] — the three-worker quantized majority-vote simulation;
//! * [`queries`] — the 18 canonical tags and Short/Medium/Long query sets.
//!
//! Every generator takes an explicit seed; identical seeds reproduce
//! identical datasets bit for bit.

pub mod conll;
pub mod crowd;
pub mod entity;
pub mod fraud;
pub mod generator;
pub mod labeled;
pub mod queries;
pub mod yelp;

pub use conll::{from_conll, to_conll};
pub use crowd::CrowdSimulator;
pub use entity::Entity;
pub use fraud::{inject_fraud, FraudCampaign};
pub use generator::{FacetSpec, GeneratorConfig, LabeledSentence, SentenceGenerator};
pub use labeled::{Dataset, DatasetId};
pub use queries::{canonical_tags, CanonicalTag, Difficulty, Query};
pub use yelp::{Review, YelpCorpus};

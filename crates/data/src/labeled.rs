//! The four labeled aspect/opinion datasets of Table 3.
//!
//! | Id | Description             | Train | Test | Total |
//! |----|-------------------------|-------|------|-------|
//! | S1 | SemEval-14 Restaurants  | 3041  | 800  | 3841  |
//! | S2 | SemEval-14 Electronics  | 3045  | 800  | 3845  |
//! | S3 | SemEval-15 Restaurants  | 1315  | 685  | 2000  |
//! | S4 | Booking.com Hotels      | 800   | 112  | 912   |
//!
//! The originals carry token-level aspect labels (with opinion labels
//! added by [31, 55, 56]); the synthetic substitutes match the sizes and
//! domains exactly and reproduce the train/test distribution shift that
//! drives Table 4: training sentences draw only the *even-indexed* surface
//! variants of each paraphrase group, test sentences draw from the full
//! vocabulary, and test typo rates are higher — so generalization (domain
//! knowledge, adversarial robustness) is genuinely exercised.

use crate::generator::{GeneratorConfig, LabeledSentence, SentenceGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;
use saccs_text::{Domain, Lexicon};

/// Identifier of one of the paper's labeled datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    S1,
    S2,
    S3,
    S4,
}

impl DatasetId {
    pub const ALL: [DatasetId; 4] = [DatasetId::S1, DatasetId::S2, DatasetId::S3, DatasetId::S4];

    /// Table-3 description string.
    pub fn description(self) -> &'static str {
        match self {
            DatasetId::S1 => "SemEval-14 Restaurants",
            DatasetId::S2 => "SemEval-14 Electronics",
            DatasetId::S3 => "SemEval-15 Restaurants",
            DatasetId::S4 => "Booking.com Hotels",
        }
    }

    /// `(train, test)` sentence counts from Table 3.
    pub fn sizes(self) -> (usize, usize) {
        match self {
            DatasetId::S1 => (3041, 800),
            DatasetId::S2 => (3045, 800),
            DatasetId::S3 => (1315, 685),
            DatasetId::S4 => (800, 112),
        }
    }

    pub fn domain(self) -> Domain {
        match self {
            DatasetId::S1 | DatasetId::S3 => Domain::Restaurants,
            DatasetId::S2 => Domain::Electronics,
            DatasetId::S4 => Domain::Hotels,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            DatasetId::S1 => "S1",
            DatasetId::S2 => "S2",
            DatasetId::S3 => "S3",
            DatasetId::S4 => "S4",
        }
    }

    fn seed(self) -> u64 {
        match self {
            DatasetId::S1 => 0x5101,
            DatasetId::S2 => 0x5102,
            DatasetId::S3 => 0x5103,
            DatasetId::S4 => 0x5104,
        }
    }
}

/// A labeled train/test split.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub id: DatasetId,
    pub train: Vec<LabeledSentence>,
    pub test: Vec<LabeledSentence>,
}

impl Dataset {
    /// Generate the dataset with Table-3 sizes. Deterministic per id.
    pub fn generate(id: DatasetId) -> Self {
        Self::generate_scaled(id, 1.0)
    }

    /// Generate a size-scaled version (for fast tests; `scale = 1.0` is the
    /// paper-size dataset). At least 8 train / 4 test sentences are kept.
    pub fn generate_scaled(id: DatasetId, scale: f64) -> Self {
        let (n_train, n_test) = id.sizes();
        let n_train = ((n_train as f64 * scale) as usize).max(8);
        let n_test = ((n_test as f64 * scale) as usize).max(4);
        let lexicon = Lexicon::new(id.domain());
        // Electronics reviews are denser in opaque technical tokens (§6.3).
        let noise_rate = if id.domain() == Domain::Electronics {
            0.6
        } else {
            0.3
        };
        let train_gen = SentenceGenerator::new(
            lexicon.clone(),
            GeneratorConfig {
                typo_rate: 0.01,
                noise_rate,
                train_vocabulary_only: true,
                ..Default::default()
            },
        );
        let test_gen = SentenceGenerator::new(
            lexicon,
            GeneratorConfig {
                typo_rate: 0.05,
                noise_rate,
                train_vocabulary_only: false,
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(id.seed());
        let train = (0..n_train)
            .map(|_| train_gen.random_sentence(&mut rng))
            .collect();
        let test = (0..n_test)
            .map(|_| test_gen.random_sentence(&mut rng))
            .collect();
        Dataset { id, train, test }
    }

    pub fn total(&self) -> usize {
        self.train.len() + self.test.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saccs_text::iob::is_valid_sequence;

    #[test]
    fn table3_sizes_match_paper() {
        assert_eq!(DatasetId::S1.sizes(), (3041, 800));
        assert_eq!(DatasetId::S2.sizes(), (3045, 800));
        assert_eq!(DatasetId::S3.sizes(), (1315, 685));
        assert_eq!(DatasetId::S4.sizes(), (800, 112));
        // Totals as printed in Table 3.
        let totals: Vec<usize> = DatasetId::ALL
            .iter()
            .map(|d| d.sizes().0 + d.sizes().1)
            .collect();
        assert_eq!(totals, vec![3841, 3845, 2000, 912]);
    }

    #[test]
    fn scaled_generation_respects_sizes() {
        let d = Dataset::generate_scaled(DatasetId::S4, 0.1);
        assert_eq!(d.train.len(), 80);
        assert_eq!(d.test.len(), 11);
        assert_eq!(d.total(), 91);
    }

    #[test]
    fn all_sentences_are_valid() {
        let d = Dataset::generate_scaled(DatasetId::S2, 0.05);
        for s in d.train.iter().chain(&d.test) {
            assert!(is_valid_sequence(&s.tags));
            assert!(!s.pairs.is_empty());
        }
    }

    #[test]
    fn train_and_test_share_domain_but_differ_in_vocabulary() {
        let d = Dataset::generate_scaled(DatasetId::S1, 0.2);
        let train_vocab: std::collections::HashSet<&str> = d
            .train
            .iter()
            .flat_map(|s| s.tokens.iter().map(|t| t.as_str()))
            .collect();
        let test_opinions: std::collections::HashSet<String> = d
            .test
            .iter()
            .flat_map(|s| {
                s.opinion_spans()
                    .into_iter()
                    .map(move |sp| sp.text(&s.tokens))
            })
            .collect();
        // Some test opinion surfaces must be absent from training (the
        // held-out paraphrase variants).
        let unseen = test_opinions
            .iter()
            .filter(|o| o.split(' ').any(|w| !train_vocab.contains(w)))
            .count();
        assert!(unseen > 0, "test has no unseen opinion vocabulary");
    }

    #[test]
    fn generation_is_deterministic_per_id() {
        let a = Dataset::generate_scaled(DatasetId::S3, 0.05);
        let b = Dataset::generate_scaled(DatasetId::S3, 0.05);
        for (x, y) in a.train.iter().zip(&b.train) {
            assert_eq!(x.tokens, y.tokens);
        }
    }

    #[test]
    fn datasets_differ_across_ids() {
        let a = Dataset::generate_scaled(DatasetId::S1, 0.05);
        let b = Dataset::generate_scaled(DatasetId::S3, 0.05);
        let ta: Vec<String> = a.train.iter().take(5).map(|s| s.text()).collect();
        let tb: Vec<String> = b.train.iter().take(5).map(|s| s.text()).collect();
        assert_ne!(ta, tb);
    }
}

//! CoNLL-style serialization of labeled sentences.
//!
//! The paper's labeled datasets (SemEval-14/15 with the opinion labels of
//! [31, 55, 56], the Booking.com set) circulate as token-per-line files.
//! This module reads and writes that format so the *real* datasets can be
//! dropped into the harness in place of the synthetic substitutes:
//!
//! ```text
//! the        O
//! food       B-AS
//! is         O
//! really     B-OP
//! good       I-OP
//! .          O
//!            <- blank line separates sentences
//! ```
//!
//! Gold aspect↔opinion pairs (which plain CoNLL cannot carry) are encoded
//! in an optional trailing comment line `# pairs: a0-o0 a1-o1 …`, indexing
//! the sentence's aspect and opinion spans in order of appearance. Files
//! without pair comments load with pairing ground truth absent (fine for
//! tagging experiments).

use crate::generator::LabeledSentence;
use saccs_text::iob::{spans_from_tags, IobTag, Span, SpanKind};
use std::fmt::Write as _;

/// Parse errors with line positions.
#[derive(Debug, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Serialize sentences to CoNLL text (with pair comments).
pub fn to_conll(sentences: &[LabeledSentence]) -> String {
    let mut out = String::new();
    for s in sentences {
        for (tok, tag) in s.tokens.iter().zip(&s.tags) {
            writeln!(out, "{tok}\t{tag}").unwrap();
        }
        if !s.pairs.is_empty() {
            let aspects: Vec<Span> = s.aspect_spans();
            let opinions: Vec<Span> = s.opinion_spans();
            let mut ids = Vec::new();
            for (a, o) in &s.pairs {
                let ai = aspects.iter().position(|x| x == a);
                let oi = opinions.iter().position(|x| x == o);
                if let (Some(ai), Some(oi)) = (ai, oi) {
                    ids.push(format!("a{ai}-o{oi}"));
                }
            }
            if !ids.is_empty() {
                writeln!(out, "# pairs: {}", ids.join(" ")).unwrap();
            }
        }
        out.push('\n');
    }
    out
}

/// Parse CoNLL text into labeled sentences.
pub fn from_conll(text: &str) -> Result<Vec<LabeledSentence>, ParseError> {
    let mut sentences = Vec::new();
    let mut tokens: Vec<String> = Vec::new();
    let mut tags: Vec<IobTag> = Vec::new();
    let mut pair_ids: Vec<(usize, usize)> = Vec::new();

    let mut flush = |tokens: &mut Vec<String>,
                     tags: &mut Vec<IobTag>,
                     pair_ids: &mut Vec<(usize, usize)>,
                     line: usize|
     -> Result<(), ParseError> {
        if tokens.is_empty() {
            return Ok(());
        }
        let spans = spans_from_tags(tags);
        let aspects: Vec<Span> = spans
            .iter()
            .filter(|s| s.kind == SpanKind::Aspect)
            .copied()
            .collect();
        let opinions: Vec<Span> = spans
            .iter()
            .filter(|s| s.kind == SpanKind::Opinion)
            .copied()
            .collect();
        let mut pairs = Vec::new();
        for &(ai, oi) in pair_ids.iter() {
            let a = aspects.get(ai).ok_or_else(|| ParseError {
                line,
                message: format!(
                    "pair references aspect {ai} but sentence has {}",
                    aspects.len()
                ),
            })?;
            let o = opinions.get(oi).ok_or_else(|| ParseError {
                line,
                message: format!(
                    "pair references opinion {oi} but sentence has {}",
                    opinions.len()
                ),
            })?;
            pairs.push((*a, *o));
        }
        sentences.push(LabeledSentence {
            tokens: std::mem::take(tokens),
            tags: std::mem::take(tags),
            pairs,
        });
        pair_ids.clear();
        Ok(())
    };

    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            flush(&mut tokens, &mut tags, &mut pair_ids, line_no)?;
            continue;
        }
        if let Some(rest) = line.strip_prefix("# pairs:") {
            for item in rest.split_whitespace() {
                let parts: Vec<&str> = item.split('-').collect();
                let parse_id = |p: &str, prefix: char| -> Result<usize, ParseError> {
                    p.strip_prefix(prefix)
                        .and_then(|n| n.parse().ok())
                        .ok_or_else(|| ParseError {
                            line: line_no,
                            message: format!("bad pair id {item:?}"),
                        })
                };
                if parts.len() != 2 {
                    return Err(ParseError {
                        line: line_no,
                        message: format!("bad pair id {item:?}"),
                    });
                }
                pair_ids.push((parse_id(parts[0], 'a')?, parse_id(parts[1], 'o')?));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments
        }
        let mut cols = line.split_whitespace();
        let (tok, tag) = match (cols.next(), cols.next()) {
            (Some(t), Some(g)) => (t, g),
            _ => {
                return Err(ParseError {
                    line: line_no,
                    message: format!("expected `token<TAB>tag`, got {line:?}"),
                })
            }
        };
        let tag = IobTag::parse(tag).ok_or_else(|| ParseError {
            line: line_no,
            message: format!("unknown tag {tag:?}"),
        })?;
        tokens.push(tok.to_string());
        tags.push(tag);
    }
    flush(&mut tokens, &mut tags, &mut pair_ids, text.lines().count())?;
    Ok(sentences)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{GeneratorConfig, SentenceGenerator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use saccs_text::{Domain, Lexicon};

    #[test]
    fn parses_handwritten_file() {
        let text = "\
the\tO
food\tB-AS
is\tO
really\tB-OP
good\tI-OP
.\tO
# pairs: a0-o0

staff\tB-AS
friendly\tB-OP
";
        let sents = from_conll(text).unwrap();
        assert_eq!(sents.len(), 2);
        assert_eq!(sents[0].tokens[1], "food");
        assert_eq!(sents[0].tags[3], IobTag::BOp);
        assert_eq!(sents[0].pairs.len(), 1);
        assert_eq!(sents[0].pairs[0].0, Span::aspect(1, 2));
        assert_eq!(sents[0].pairs[0].1, Span::opinion(3, 5));
        assert!(sents[1].pairs.is_empty());
    }

    #[test]
    fn roundtrips_generated_sentences() {
        let gen = SentenceGenerator::new(
            Lexicon::new(Domain::Restaurants),
            GeneratorConfig::default(),
        );
        let mut rng = StdRng::seed_from_u64(3);
        let sentences: Vec<_> = (0..60).map(|_| gen.random_sentence(&mut rng)).collect();
        let text = to_conll(&sentences);
        let back = from_conll(&text).unwrap();
        assert_eq!(back.len(), sentences.len());
        for (a, b) in sentences.iter().zip(&back) {
            assert_eq!(a.tokens, b.tokens);
            assert_eq!(a.tags, b.tags);
            let pa: std::collections::BTreeSet<_> = a.pairs.iter().collect();
            let pb: std::collections::BTreeSet<_> = b.pairs.iter().collect();
            assert_eq!(pa, pb, "pairs diverged for {:?}", a.tokens);
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_conll("token_without_tag\n").is_err());
        assert!(from_conll("word\tB-XX\n").is_err());
        let err = from_conll("food\tB-AS\n# pairs: a0-o0\n\n").unwrap_err();
        assert!(err.message.contains("opinion"), "{err}");
        assert!(from_conll("food\tB-AS\n# pairs: zz\n\n").is_err());
    }

    #[test]
    fn empty_and_comment_only_inputs() {
        assert!(from_conll("").unwrap().is_empty());
        assert!(from_conll("# just a comment\n\n").unwrap().is_empty());
    }

    #[test]
    fn missing_trailing_blank_line_still_flushes() {
        let sents = from_conll("food\tB-AS").unwrap();
        assert_eq!(sents.len(), 1);
    }
}

//! Simulated crowdsourcing of `sat(tag, entity)` ground truth.
//!
//! §6.2: workers inspect a (review, tag) pair and assign a relevance score
//! in {0, ⅓, ⅔, 1}; three workers label each pair, the majority vote wins,
//! and `sat(tag, entity)` is the mean over the entity's reviews. The Yandex
//! Toloka workforce is replaced by simulated annotators: each worker
//! observes the true relevance (known from the generating latents), adds
//! personal noise, and quantizes to the four-point scale. A stuck majority
//! (three distinct votes) resolves to the median, the standard tie rule
//! for ordinal crowd labels.

use crate::queries::CanonicalTag;
use crate::yelp::YelpCorpus;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saccs_text::lexicon::Polarity;

/// The four-point relevance scale of §6.2.
pub const SCALE: [f32; 4] = [0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0];

fn quantize(v: f32) -> f32 {
    let mut best = SCALE[0];
    let mut dist = f32::INFINITY;
    for &s in &SCALE {
        let d = (v - s).abs();
        if d < dist {
            dist = d;
            best = s;
        }
    }
    best
}

/// Simulated three-worker annotation with per-observation Gaussian-ish
/// noise (sum of two uniforms, cheap and bounded).
#[derive(Debug, Clone)]
pub struct CrowdSimulator {
    /// Noise half-width per worker observation.
    pub worker_noise: f32,
    pub workers: usize,
    pub seed: u64,
}

impl Default for CrowdSimulator {
    fn default() -> Self {
        CrowdSimulator {
            worker_noise: 0.18,
            workers: 3,
            seed: 0xC0FFEE,
        }
    }
}

impl CrowdSimulator {
    /// One worker's label for a true relevance value.
    fn worker_label(&self, truth: f32, rng: &mut StdRng) -> f32 {
        let noise = (rng.gen_range(-self.worker_noise..self.worker_noise)
            + rng.gen_range(-self.worker_noise..self.worker_noise))
            / 2.0;
        quantize((truth + noise).clamp(0.0, 1.0))
    }

    /// Majority vote of `self.workers` labels; median on full disagreement.
    pub fn annotate(&self, truth: f32, rng: &mut StdRng) -> f32 {
        let mut votes: Vec<f32> = (0..self.workers)
            .map(|_| self.worker_label(truth, rng))
            .collect();
        votes.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Majority: any value occurring more than half? With 3 workers the
        // median *is* the majority when one exists, and the tie-break
        // otherwise.
        votes[votes.len() / 2]
    }

    /// True (pre-crowd) relevance of a canonical tag for one review: the
    /// review either observed the tag's latent dimension (relevance from
    /// the observed polarity) or mentioned a related dimension (weak
    /// relevance, the paper's "slow service is somewhat related to the
    /// service being terrible" example) or neither (zero).
    pub fn review_truth(tag: &CanonicalTag, corpus: &YelpCorpus, review_idx: usize) -> f32 {
        let review = &corpus.reviews[review_idx];
        let mut best: f32 = 0.0;
        for &(concept, group, pol) in &review.observations {
            let score = if concept == tag.concept && group == tag.group {
                // Direct observation of the tag's dimension.
                if pol == Polarity::Positive {
                    1.0
                } else {
                    0.0
                }
            } else if concept == tag.concept {
                // Same aspect, different opinion dimension: weak signal.
                if pol == Polarity::Positive {
                    1.0 / 3.0
                } else {
                    0.0
                }
            } else {
                continue;
            };
            best = best.max(score);
        }
        best
    }

    /// `sat(tag, entity)`: mean of per-review crowd labels over the
    /// entity's reviews (§6.2). Deterministic in the simulator seed.
    pub fn sat(&self, tag: &CanonicalTag, corpus: &YelpCorpus, entity_id: usize) -> f32 {
        let reviews = corpus.reviews_of(entity_id);
        if reviews.is_empty() {
            return 0.0;
        }
        let mut rng = StdRng::seed_from_u64(
            self.seed
                ^ (entity_id as u64).wrapping_mul(0x9E3779B97F4A7C15)
                ^ (hash_tag(tag)).wrapping_mul(0xBF58476D1CE4E5B9),
        );
        let sum: f32 = reviews
            .iter()
            .map(|&ri| self.annotate(Self::review_truth(tag, corpus, ri), &mut rng))
            .sum();
        sum / reviews.len() as f32
    }

    /// Full sat table: `table[tag_idx][entity_id]`.
    pub fn sat_table(&self, tags: &[CanonicalTag], corpus: &YelpCorpus) -> Vec<Vec<f32>> {
        tags.iter()
            .map(|t| {
                (0..corpus.entities.len())
                    .map(|e| self.sat(t, corpus, e))
                    .collect()
            })
            .collect()
    }
}

fn hash_tag(tag: &CanonicalTag) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    tag.group.hash(&mut h);
    tag.concept.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queries::canonical_tags;
    use crate::yelp::YelpConfig;
    use saccs_text::{Domain, Lexicon};

    fn corpus() -> YelpCorpus {
        YelpCorpus::generate(
            Lexicon::new(Domain::Restaurants),
            &YelpConfig {
                n_entities: 8,
                n_reviews: 200,
                seed: 3,
                ..Default::default()
            },
        )
    }

    #[test]
    fn quantize_snaps_to_scale() {
        assert_eq!(quantize(0.1), 0.0);
        assert_eq!(quantize(0.3), 1.0 / 3.0);
        assert_eq!(quantize(0.9), 1.0);
        for &s in &SCALE {
            assert_eq!(quantize(s), s);
        }
    }

    #[test]
    fn annotate_tracks_truth_in_aggregate() {
        let sim = CrowdSimulator::default();
        let mut rng = StdRng::seed_from_u64(1);
        for truth in [0.0f32, 0.33, 0.66, 1.0] {
            let mean: f32 = (0..300).map(|_| sim.annotate(truth, &mut rng)).sum::<f32>() / 300.0;
            assert!((mean - truth).abs() < 0.12, "truth={truth} mean={mean}");
        }
    }

    #[test]
    fn sat_is_deterministic() {
        let c = corpus();
        let sim = CrowdSimulator::default();
        let tags = canonical_tags();
        assert_eq!(sim.sat(&tags[0], &c, 3), sim.sat(&tags[0], &c, 3));
    }

    #[test]
    fn sat_correlates_with_latent_quality() {
        let c = corpus();
        let sim = CrowdSimulator::default();
        let tags = canonical_tags();
        // Spearman-ish check: across entities, sat should order roughly by
        // latent quality for a frequently-mentioned dimension.
        let tag = tags.iter().find(|t| t.concept == "food").unwrap();
        let mut pairs: Vec<(f32, f32)> = (0..c.entities.len())
            .map(|e| {
                (
                    c.entities[e].quality_of(tag.concept, tag.group),
                    sim.sat(tag, &c, e),
                )
            })
            .collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        // Count concordant adjacent pairs.
        let concordant = pairs.windows(2).filter(|w| w[1].1 >= w[0].1 - 0.15).count();
        assert!(
            concordant >= pairs.len() - 3,
            "sat does not track quality: {pairs:?}"
        );
    }

    #[test]
    fn sat_table_shape() {
        let c = corpus();
        let sim = CrowdSimulator::default();
        let tags = canonical_tags();
        let table = sim.sat_table(&tags, &c);
        assert_eq!(table.len(), tags.len());
        assert!(table.iter().all(|row| row.len() == c.entities.len()));
        for row in &table {
            for &v in row {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn review_truth_weak_relevance() {
        // A review observing (service, quick, Negative) is weakly relevant
        // to "quick service"? No — direct dimension, negative ⇒ 0. But a
        // review observing (service, good, Positive) is weakly relevant
        // (1/3) to "quick service".
        let c = corpus();
        let tags = canonical_tags();
        let quick_service = tags.iter().find(|t| t.group == "quick").unwrap();
        let mut saw_weak = false;
        for ri in 0..c.reviews.len() {
            let truth = CrowdSimulator::review_truth(quick_service, &c, ri);
            if (truth - 1.0 / 3.0).abs() < 1e-6 {
                let direct = c.reviews[ri]
                    .observations
                    .iter()
                    .any(|&(co, g, p)| co == "service" && g == "quick" && p == Polarity::Positive);
                assert!(!direct);
                saw_weak = true;
            }
        }
        assert!(saw_weak, "no weak-relevance review found");
    }
}

//! Template/paraphrase sentence grammar with gold labels.
//!
//! Produces review sentences whose aspect/opinion structure is known by
//! construction: every sentence carries gold IOB tags (§4's tagging target)
//! and gold aspect↔opinion pairs (§5's pairing target). Templates cover the
//! phenomena the paper discusses:
//!
//! * paraphrase variation — the same subjective fact surfaces as
//!   "The food is phenomenal" / "Very tasty plates of food" / "really good
//!   food" (§1);
//! * multiword aspect and opinion terms ("la carte", "a bit slow", §4.2,
//!   Figure 2);
//! * multi-facet sentences where word distance mispairs but tree distance
//!   doesn't ("The staff is friendly, helpful and professional. The decor
//!   is beautiful", §5);
//! * opinions shared across aspects ("the staff and decor are amazing",
//!   Figure 5);
//! * domain noise tokens (brand names and model numbers for electronics,
//!   §6.3) and optional character-level typos (§5.1's parse-tree failure
//!   mode).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use saccs_text::iob::{tags_from_spans, IobTag, Span};
use saccs_text::lexicon::{Lexicon, OpinionGroup, Polarity};

/// A generated sentence with full gold structure.
#[derive(Debug, Clone)]
pub struct LabeledSentence {
    pub tokens: Vec<String>,
    pub tags: Vec<IobTag>,
    /// Gold (aspect span, opinion span) pairs. An aspect may appear in
    /// several pairs (multiple opinions) and vice versa.
    pub pairs: Vec<(Span, Span)>,
}

impl LabeledSentence {
    /// Surface text (tokens joined with spaces; punctuation unspaced-left
    /// is not attempted — the tokenizer round-trips this form exactly).
    pub fn text(&self) -> String {
        self.tokens.join(" ")
    }

    /// Gold aspect spans.
    pub fn aspect_spans(&self) -> Vec<Span> {
        saccs_text::iob::spans_from_tags(&self.tags)
            .into_iter()
            .filter(|s| s.kind == saccs_text::SpanKind::Aspect)
            .collect()
    }

    /// Gold opinion spans.
    pub fn opinion_spans(&self) -> Vec<Span> {
        saccs_text::iob::spans_from_tags(&self.tags)
            .into_iter()
            .filter(|s| s.kind == saccs_text::SpanKind::Opinion)
            .collect()
    }
}

/// One aspect/opinion mention to be realized in a sentence.
#[derive(Debug, Clone)]
pub struct FacetSpec {
    /// Canonical aspect concept (e.g. `food`).
    pub concept: &'static str,
    /// Canonical opinion group (e.g. `delicious`).
    pub group: &'static str,
    /// Polarity of the realized opinion.
    pub polarity: Polarity,
}

/// Generation knobs.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Probability that a word token receives a character-level typo.
    pub typo_rate: f64,
    /// Probability of inserting a domain noise token before the sentence
    /// core (and of appending one after it).
    pub noise_rate: f64,
    /// Restrict surface realization to the train split of each paraphrase
    /// group (even-indexed variants) or the test split (all variants).
    /// Holding variants out of training is what gives domain post-training
    /// (§4.2) something real to contribute.
    pub train_vocabulary_only: bool,
    /// Probability that a two-facet sentence uses a *trap* construction —
    /// a contrastive postmodifier ("the service , unlike the food , was
    /// slow") or a negated attachment ("the pasta was amazing , not the
    /// pizza") — where the second aspect carries no opinion and both word
    /// distance and naive tree distance mispair. These are the §5.1
    /// failure cases the pairing evaluation needs.
    pub trap_rate: f64,
    /// Probability that the facets of a multi-facet sentence are forced to
    /// share a concept (producing multi-opinion aspects: "the staff is
    /// friendly , helpful and professional") or a group (producing shared
    /// opinions: "the staff and decor are amazing").
    pub correlated_facets: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            typo_rate: 0.0,
            noise_rate: 0.3,
            train_vocabulary_only: false,
            trap_rate: 0.12,
            correlated_facets: 0.35,
        }
    }
}

/// Builder that appends tokens while tracking gold spans.
struct SentenceBuilder {
    tokens: Vec<String>,
    spans: Vec<Span>,
    pairs: Vec<(usize, usize)>, // indices into spans
}

impl SentenceBuilder {
    fn new() -> Self {
        SentenceBuilder {
            tokens: Vec::new(),
            spans: Vec::new(),
            pairs: Vec::new(),
        }
    }

    fn word(&mut self, w: &str) {
        for part in w.split_whitespace() {
            self.tokens.push(part.to_string());
        }
    }

    fn words(&mut self, ws: &[&str]) {
        for w in ws {
            self.word(w);
        }
    }

    /// Append a term as a labeled span; returns its span index.
    fn term(&mut self, surface: &str, kind: saccs_text::SpanKind) -> usize {
        let start = self.tokens.len();
        self.word(surface);
        let span = Span {
            kind,
            start,
            end: self.tokens.len(),
        };
        self.spans.push(span);
        self.spans.len() - 1
    }

    fn aspect(&mut self, surface: &str) -> usize {
        self.term(surface, saccs_text::SpanKind::Aspect)
    }

    fn opinion(&mut self, surface: &str) -> usize {
        self.term(surface, saccs_text::SpanKind::Opinion)
    }

    fn pair(&mut self, aspect: usize, opinion: usize) {
        self.pairs.push((aspect, opinion));
    }

    fn finish(self) -> LabeledSentence {
        let tags = tags_from_spans(self.tokens.len(), &self.spans);
        let pairs = self
            .pairs
            .into_iter()
            .map(|(a, o)| (self.spans[a], self.spans[o]))
            .collect();
        LabeledSentence {
            tokens: self.tokens,
            tags,
            pairs,
        }
    }
}

/// The sentence generator for one domain.
pub struct SentenceGenerator {
    lexicon: Lexicon,
    config: GeneratorConfig,
}

impl SentenceGenerator {
    pub fn new(lexicon: Lexicon, config: GeneratorConfig) -> Self {
        SentenceGenerator { lexicon, config }
    }

    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }

    /// Pick a surface variant of an opinion group, respecting the
    /// train-vocabulary restriction.
    fn opinion_surface(&self, group: &OpinionGroup, rng: &mut StdRng) -> &'static str {
        let pool: Vec<&'static str> = if self.config.train_vocabulary_only {
            group.variants.iter().copied().step_by(2).collect()
        } else {
            group.variants.to_vec()
        };
        pool.choose(rng).copied().unwrap_or(group.variants[0])
    }

    /// Pick a surface member of an aspect concept.
    fn aspect_surface(&self, concept: &'static str, rng: &mut StdRng) -> &'static str {
        let members = self
            .lexicon
            .aspect_by_name(concept)
            .expect("unknown concept")
            .members;
        let pool: Vec<&'static str> = if self.config.train_vocabulary_only {
            members.iter().copied().step_by(2).collect()
        } else {
            members.to_vec()
        };
        pool.choose(rng).copied().unwrap_or(members[0])
    }

    /// Pick the realized opinion group for a facet: the facet's group when
    /// positive, otherwise a negative group applicable to the concept.
    fn realized_group(&self, facet: &FacetSpec, rng: &mut StdRng) -> &OpinionGroup {
        if facet.polarity == Polarity::Positive {
            return self
                .lexicon
                .opinion_by_name(facet.group)
                .expect("unknown group");
        }
        let negatives: Vec<&OpinionGroup> = self
            .lexicon
            .opinions_for_aspect(facet.concept)
            .into_iter()
            .filter(|g| g.polarity == Polarity::Negative)
            .collect();
        negatives.choose(rng).copied().unwrap_or_else(|| {
            self.lexicon
                .opinion_by_name("bad")
                .expect("generic negative")
        })
    }

    fn copula(surface_aspect: &str, rng: &mut StdRng) -> &'static str {
        let plural = surface_aspect.ends_with('s') && !surface_aspect.ends_with("ss");
        if plural {
            ["are", "were"].choose(rng).unwrap()
        } else {
            ["is", "was"].choose(rng).unwrap()
        }
    }

    fn maybe_noise(&self, b: &mut SentenceBuilder, rng: &mut StdRng) {
        if rng.gen_bool(self.config.noise_rate) {
            if let Some(w) = self.lexicon.noise_tokens().choose(rng) {
                b.word(w);
            }
        }
    }

    /// Generate one sentence realizing the given facets (1–3 supported).
    pub fn sentence(&self, facets: &[FacetSpec], rng: &mut StdRng) -> LabeledSentence {
        assert!(
            !facets.is_empty() && facets.len() <= 3,
            "1..=3 facets supported"
        );
        let mut b = SentenceBuilder::new();
        self.maybe_noise(&mut b, rng);
        match facets.len() {
            1 => self.one_facet(&mut b, &facets[0], rng),
            2 => self.two_facets(&mut b, &facets[0], &facets[1], rng),
            _ => self.three_facets(&mut b, facets, rng),
        }
        self.maybe_noise(&mut b, rng);
        b.word(".");
        let mut sent = b.finish();
        if self.config.typo_rate > 0.0 {
            apply_typos(&mut sent, self.config.typo_rate, rng);
        }
        sent
    }

    fn one_facet(&self, b: &mut SentenceBuilder, f: &FacetSpec, rng: &mut StdRng) {
        let group = self.realized_group(f, rng);
        let op = self.opinion_surface(group, rng);
        let asp = self.aspect_surface(f.concept, rng);
        match rng.gen_range(0..4) {
            0 => {
                // "the food is delicious"
                b.word("the");
                let a = b.aspect(asp);
                b.word(Self::copula(asp, rng));
                let o = b.opinion(op);
                b.pair(a, o);
            }
            1 => {
                // "delicious food" (noun-phrase mention)
                let o = b.opinion(op);
                let a = b.aspect(asp);
                b.pair(a, o);
            }
            2 => {
                // "we loved the delicious food" / "we got a really slow service"
                b.words(&[
                    "we",
                    if group.polarity == Polarity::Positive {
                        "loved"
                    } else {
                        "got"
                    },
                    "the",
                ]);
                let o = b.opinion(op);
                let a = b.aspect(asp);
                b.pair(a, o);
            }
            _ => {
                // "the food here was delicious indeed"
                b.word("the");
                let a = b.aspect(asp);
                b.word("here");
                b.word(Self::copula(asp, rng));
                let o = b.opinion(op);
                b.pair(a, o);
            }
        }
    }

    fn two_facets(
        &self,
        b: &mut SentenceBuilder,
        f1: &FacetSpec,
        f2: &FacetSpec,
        rng: &mut StdRng,
    ) {
        if rng.gen_bool(self.config.trap_rate) {
            self.trap_two_facets(b, f1, f2, rng);
            return;
        }
        let g1 = self.realized_group(f1, rng);
        let g2 = self.realized_group(f2, rng);
        let op1 = self.opinion_surface(g1, rng);
        let op2 = self.opinion_surface(g2, rng);
        let asp1 = self.aspect_surface(f1.concept, rng);
        let asp2 = self.aspect_surface(f2.concept, rng);
        match rng.gen_range(0..4) {
            0 => {
                // "the food is delicious but the staff is rude" — the
                // adversative when polarities differ, "and" otherwise.
                b.word("the");
                let a1 = b.aspect(asp1);
                b.word(Self::copula(asp1, rng));
                let o1 = b.opinion(op1);
                b.pair(a1, o1);
                b.word(if g1.polarity != g2.polarity {
                    "but"
                } else {
                    "and"
                });
                b.word("the");
                let a2 = b.aspect(asp2);
                b.word(Self::copula(asp2, rng));
                let o2 = b.opinion(op2);
                b.pair(a2, o2);
            }
            1 => {
                // Two sentences: the §5 word-distance trap — op1 sits right
                // next to asp2.
                b.word("the");
                let a1 = b.aspect(asp1);
                b.word(Self::copula(asp1, rng));
                let o1 = b.opinion(op1);
                b.pair(a1, o1);
                b.word(".");
                b.word("the");
                let a2 = b.aspect(asp2);
                b.word(Self::copula(asp2, rng));
                let o2 = b.opinion(op2);
                b.pair(a2, o2);
            }
            2 if g1.canonical == g2.canonical => {
                // Shared opinion: "the staff and decor are amazing".
                b.word("the");
                let a1 = b.aspect(asp1);
                b.word("and");
                let a2 = b.aspect(asp2);
                b.word("are");
                let o = b.opinion(op1);
                b.pair(a1, o);
                b.pair(a2, o);
            }
            _ => {
                // "delicious food but a rude staff"
                let o1 = b.opinion(op1);
                let a1 = b.aspect(asp1);
                b.pair(a1, o1);
                b.word(if g1.polarity != g2.polarity {
                    "but"
                } else {
                    "and"
                });
                let o2 = b.opinion(op2);
                let a2 = b.aspect(asp2);
                b.pair(a2, o2);
            }
        }
    }

    /// Trap constructions (§5.1 failure modes): one opinion, two aspects,
    /// and surface/tree proximity pointing at the *wrong* aspect.
    fn trap_two_facets(
        &self,
        b: &mut SentenceBuilder,
        f1: &FacetSpec,
        f2: &FacetSpec,
        rng: &mut StdRng,
    ) {
        let g1 = self.realized_group(f1, rng);
        let op = self.opinion_surface(g1, rng);
        let asp1 = self.aspect_surface(f1.concept, rng);
        let mut asp2 = self.aspect_surface(f2.concept, rng);
        // Same-concept facets can draw the same surface, which would make
        // the paired and unpaired aspect textually indistinguishable; pick
        // a different member when one exists.
        if asp2 == asp1 {
            let members = self
                .lexicon
                .aspect_by_name(f2.concept)
                .expect("unknown concept")
                .members;
            if let Some(alt) = members.iter().find(|&&m| m != asp1) {
                asp2 = alt;
            }
        }
        if rng.gen_bool(0.5) {
            // "the service , unlike the food , was slow"
            b.word("the");
            let a1 = b.aspect(asp1);
            b.words(&[",", "unlike", "the"]);
            let _a2 = b.aspect(asp2);
            b.word(",");
            b.word(Self::copula(asp1, rng));
            let o = b.opinion(op);
            b.pair(a1, o);
        } else {
            // "the pasta was amazing , not the pizza"
            b.word("the");
            let a1 = b.aspect(asp1);
            b.word(Self::copula(asp1, rng));
            let o = b.opinion(op);
            b.pair(a1, o);
            b.words(&[",", "not", "the"]);
            let _a2 = b.aspect(asp2);
        }
    }

    fn three_facets(&self, b: &mut SentenceBuilder, facets: &[FacetSpec], rng: &mut StdRng) {
        // "the staff is friendly, helpful and professional" when all three
        // facets share a concept; otherwise a chained clause form.
        if facets.iter().all(|f| f.concept == facets[0].concept) {
            let asp = self.aspect_surface(facets[0].concept, rng);
            b.word("the");
            let a = b.aspect(asp);
            b.word(Self::copula(asp, rng));
            for (i, f) in facets.iter().enumerate() {
                if i == 1 {
                    b.word(",");
                }
                if i == 2 {
                    b.word("and");
                }
                let g = self.realized_group(f, rng);
                let o = b.opinion(self.opinion_surface(g, rng));
                b.pair(a, o);
            }
        } else {
            for (i, f) in facets.iter().enumerate() {
                if i > 0 {
                    b.word(if i == 1 { "," } else { "and" });
                }
                b.word("the");
                let g = self.realized_group(f, rng);
                let asp = self.aspect_surface(f.concept, rng);
                let a = b.aspect(asp);
                b.word(Self::copula(asp, rng));
                let o = b.opinion(self.opinion_surface(g, rng));
                b.pair(a, o);
            }
        }
    }

    /// Generate an *utterance-style* sentence ("i want a restaurant with
    /// delicious food and a nice staff") realizing 1–3 facets. Utterances
    /// are what SACCS extracts from at query time (§3.2); the builder
    /// mixes these into tagger training so the extractor sees the request
    /// register, not just review prose. Entity-class nouns ("restaurant",
    /// "place") and objective slots are deliberately unlabeled here — in a
    /// request they are not subjective aspect mentions.
    pub fn utterance(&self, facets: &[FacetSpec], rng: &mut StdRng) -> LabeledSentence {
        assert!(!facets.is_empty() && facets.len() <= 3);
        let mut b = SentenceBuilder::new();
        // Objective slot fillers — always label O: a cuisine or a city in a
        // request is an objective filter for the search API, not a
        // subjective aspect/opinion.
        let cuisine = *UTTERANCE_CUISINES.choose(rng).unwrap();
        let city = *UTTERANCE_CITIES.choose(rng).unwrap();
        match rng.gen_range(0..8) {
            0 => b.words(&["i", "want", "a", "restaurant", "with"]),
            1 => b.words(&["i", "am", "looking", "for", "a", "place", "with"]),
            2 => b.words(&["find", "me", "a", "restaurant", "that", "has"]),
            3 => {
                b.words(&["i", "want", "an", cuisine, "restaurant", "in", city, "with"]);
            }
            4 => {
                b.words(&[
                    "i", "am", "looking", "for", cuisine, "food", "in", city, "with",
                ]);
            }
            5 => b.words(&["somewhere", "with"]),
            // Retraction register ("actually forget the romantic ambiance"):
            // the spans still label as aspect/opinion; the dialog layer
            // handles the negation semantics.
            6 => b.words(&["actually", "forget", "the"]),
            _ => b.words(&["any", "place", "with"]),
        }
        for (i, f) in facets.iter().enumerate() {
            if i > 0 {
                b.word("and");
                // "…and has a nice staff"
                if rng.gen_bool(0.3) {
                    b.word(if rng.gen_bool(0.5) { "has" } else { "serves" });
                }
            }
            if rng.gen_bool(0.35) {
                b.word("a");
            }
            let g = self.realized_group(f, rng);
            let o = b.opinion(self.opinion_surface(g, rng));
            let a = b.aspect(self.aspect_surface(f.concept, rng));
            b.pair(a, o);
        }
        if rng.gen_bool(0.3) {
            b.word("please");
        }
        b.word(".");
        let mut sent = b.finish();
        if self.config.typo_rate > 0.0 {
            apply_typos(&mut sent, self.config.typo_rate, rng);
        }
        sent
    }

    /// Random utterance with 1–3 random positive-leaning facets.
    pub fn random_utterance(&self, rng: &mut StdRng) -> LabeledSentence {
        let n = *[1, 1, 2, 2, 3].choose(rng).unwrap();
        let facets: Vec<FacetSpec> = (0..n)
            .map(|_| {
                let mut f = self.random_facet(rng);
                // Users overwhelmingly ask for positive qualities.
                if rng.gen_bool(0.9) {
                    f.polarity = Polarity::Positive;
                }
                f
            })
            .collect();
        self.utterance(&facets, rng)
    }

    /// Sample a random facet (uniform concept, uniform applicable positive
    /// group, coin-flip polarity).
    pub fn random_facet(&self, rng: &mut StdRng) -> FacetSpec {
        let aspects = self.lexicon.aspects();
        let concept = aspects[rng.gen_range(0..aspects.len())].canonical;
        let positives: Vec<&OpinionGroup> = self
            .lexicon
            .opinions_for_aspect(concept)
            .into_iter()
            .filter(|g| g.polarity == Polarity::Positive)
            .collect();
        let group = positives[rng.gen_range(0..positives.len())].canonical;
        let polarity = if rng.gen_bool(0.5) {
            Polarity::Positive
        } else {
            Polarity::Negative
        };
        FacetSpec {
            concept,
            group,
            polarity,
        }
    }

    /// Generate a sentence with a random number of random facets. With
    /// probability `correlated_facets`, multi-facet sentences share a
    /// concept (multi-opinion aspect) or an opinion group (shared opinion).
    pub fn random_sentence(&self, rng: &mut StdRng) -> LabeledSentence {
        let n = *[1, 1, 1, 2, 2, 3].choose(rng).unwrap();
        let mut facets: Vec<FacetSpec> = (0..n).map(|_| self.random_facet(rng)).collect();
        if n > 1 && rng.gen_bool(self.config.correlated_facets) {
            if rng.gen_bool(0.5) {
                // Share the first facet's concept; re-draw groups that
                // don't apply to it.
                let concept = facets[0].concept;
                let applicable: Vec<&'static str> = self
                    .lexicon
                    .opinions_for_aspect(concept)
                    .into_iter()
                    .filter(|g| g.polarity == saccs_text::lexicon::Polarity::Positive)
                    .map(|g| g.canonical)
                    .collect();
                for f in facets.iter_mut().skip(1) {
                    f.concept = concept;
                    if !applicable.contains(&f.group) {
                        f.group = *applicable.choose(rng).unwrap();
                    }
                }
            } else {
                // Share the first facet's group; re-draw concepts it
                // applies to, and align polarity so one surface fits all.
                let group = facets[0].group;
                let polarity = facets[0].polarity;
                let concepts = self
                    .lexicon
                    .opinion_by_name(group)
                    .map(|g| g.aspects.to_vec())
                    .unwrap_or_default();
                for f in facets.iter_mut().skip(1) {
                    f.group = group;
                    f.polarity = polarity;
                    if !concepts.is_empty() && !concepts.contains(&f.concept) {
                        f.concept = *concepts.choose(rng).unwrap();
                    }
                }
            }
        }
        self.sentence(&facets, rng)
    }
}

/// Cuisines that may appear as objective slot fillers in utterances.
pub const UTTERANCE_CUISINES: &[&str] = &[
    "italian", "french", "chinese", "japanese", "indian", "mexican", "thai", "greek",
];

/// Cities that may appear as objective slot fillers in utterances.
pub const UTTERANCE_CITIES: &[&str] = &[
    "montreal",
    "lyon",
    "melbourne",
    "toronto",
    "paris",
    "sydney",
];

/// Inject character-level typos into word tokens, leaving gold labels
/// untouched (a typo'd aspect is still the aspect; this is precisely the
/// parse-corruption scenario of §5.1).
pub fn apply_typos(sentence: &mut LabeledSentence, rate: f64, rng: &mut StdRng) {
    for tok in &mut sentence.tokens {
        if tok.len() >= 4 && tok.chars().all(|c| c.is_ascii_alphabetic()) && rng.gen_bool(rate) {
            let mut chars: Vec<char> = tok.chars().collect();
            match rng.gen_range(0..3) {
                0 => {
                    // swap two adjacent interior characters
                    let i = rng.gen_range(1..chars.len() - 1);
                    chars.swap(i - 1, i);
                }
                1 => {
                    // drop one interior character
                    let i = rng.gen_range(1..chars.len() - 1);
                    chars.remove(i);
                }
                _ => {
                    // duplicate one character
                    let i = rng.gen_range(0..chars.len());
                    let c = chars[i];
                    chars.insert(i, c);
                }
            }
            *tok = chars.into_iter().collect();
        }
    }
}

/// Deterministic large-scale subjective-tag corpus for the probe-scaling
/// benches: every lexicon opinion variant crossed with every member of
/// its natural aspect concepts, expanded with seeded single-edit typo
/// variants that still fuzzy-resolve (edit similarity ≥ the 0.75 typo
/// threshold, so each variant lands in the same semantic cell as its
/// clean form). Output order and contents depend only on `(lexicon, n,
/// seed)`. Returns fewer than `n` tags only if the variant space of the
/// lexicon is exhausted.
pub fn synthetic_tags(lexicon: &Lexicon, n: usize, seed: u64) -> Vec<saccs_text::SubjectiveTag> {
    fn mix(mut h: u64) -> u64 {
        h ^= h >> 30;
        h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h ^= h >> 27;
        h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^ (h >> 31)
    }
    /// One seeded typo that keeps `edit_similarity ≥ 0.75`: duplicate or
    /// drop an interior char (one Levenshtein edit), or swap adjacent
    /// chars (two edits — only on words of 8+ chars, where `1 − 2/8`
    /// still clears the threshold). Words under 4 chars are returned
    /// verbatim; a single edit there would fall below it.
    fn typo(word: &str, salt: u64) -> String {
        let mut chars: Vec<char> = word.chars().collect();
        if chars.len() < 4 {
            return word.to_string();
        }
        let pos = 1 + (salt as usize >> 2) % (chars.len() - 1);
        match salt & 3 {
            0 | 1 => {
                let c = chars[pos];
                chars.insert(pos, c);
            }
            2 => {
                chars.remove(pos);
            }
            _ if chars.len() >= 8 => chars.swap(pos - 1, pos),
            _ => {
                let c = chars[pos];
                chars.insert(pos, c);
            }
        }
        chars.into_iter().collect()
    }

    let mut base: Vec<(&'static str, &'static str)> = Vec::new();
    for group in lexicon.opinion_groups() {
        for &variant in group.variants {
            for &concept in group.aspects {
                if let Some(ac) = lexicon.aspect_by_name(concept) {
                    for &member in ac.members {
                        base.push((variant, member));
                    }
                }
            }
        }
    }
    if base.is_empty() {
        return Vec::new();
    }
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::with_capacity(n);
    let mut i = 0u64;
    let budget = (n as u64).saturating_mul(16);
    while out.len() < n && i < budget {
        let (ov, am) = base[(i as usize) % base.len()];
        let round = i / base.len() as u64;
        let salt = mix(seed ^ mix(i));
        let tag = match (round, round % 3) {
            (0, _) => saccs_text::SubjectiveTag::new(ov, am),
            (_, 1) => saccs_text::SubjectiveTag::new(&typo(ov, salt), am),
            (_, 2) => saccs_text::SubjectiveTag::new(ov, &typo(am, salt)),
            _ => saccs_text::SubjectiveTag::new(&typo(ov, salt), &typo(am, mix(salt))),
        };
        if seen.insert(tag.phrase()) {
            out.push(tag);
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn synthetic_tags_are_deterministic_distinct_and_resolvable() {
        let lexicon = Lexicon::new(saccs_text::Domain::Restaurants);
        let tags = synthetic_tags(&lexicon, 10_000, 0x5EED);
        assert_eq!(tags.len(), 10_000, "variant space exhausted early");
        assert_eq!(tags, synthetic_tags(&lexicon, 10_000, 0x5EED));
        let phrases: std::collections::BTreeSet<String> = tags.iter().map(|t| t.phrase()).collect();
        assert_eq!(phrases.len(), tags.len());
        // Typo'd variants must still fuzzy-resolve into the lexicon so
        // the probe-scaling bench exercises the semantic cells, not the
        // edit-distance fallback.
        let sim =
            saccs_text::ConceptualSimilarity::new(Lexicon::new(saccs_text::Domain::Restaurants));
        for tag in tags.iter().step_by(251) {
            assert!(
                sim.resolve_opinion(&tag.opinion).is_some(),
                "opinion {:?} fell out of the lexicon",
                tag.opinion
            );
            assert!(
                sim.resolve_aspect(&tag.aspect).is_some(),
                "aspect {:?} fell out of the lexicon",
                tag.aspect
            );
        }
    }
    use saccs_text::iob::is_valid_sequence;
    use saccs_text::{Domain, SpanKind};

    fn generator(cfg: GeneratorConfig) -> SentenceGenerator {
        SentenceGenerator::new(Lexicon::new(Domain::Restaurants), cfg)
    }

    #[test]
    fn gold_tags_are_structurally_valid() {
        let g = generator(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let s = g.random_sentence(&mut rng);
            assert!(is_valid_sequence(&s.tags), "invalid IOB in {:?}", s.tokens);
            assert_eq!(s.tags.len(), s.tokens.len());
        }
    }

    #[test]
    fn every_pair_links_an_aspect_to_an_opinion() {
        let g = generator(GeneratorConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let s = g.random_sentence(&mut rng);
            assert!(!s.pairs.is_empty());
            for (a, o) in &s.pairs {
                assert_eq!(a.kind, SpanKind::Aspect);
                assert_eq!(o.kind, SpanKind::Opinion);
                assert!(a.end <= s.tokens.len() && o.end <= s.tokens.len());
            }
        }
    }

    #[test]
    fn facet_terms_resolve_in_lexicon() {
        let g = generator(GeneratorConfig {
            noise_rate: 0.0,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let s = g.random_sentence(&mut rng);
            for (a, o) in &s.pairs {
                let asp = a.text(&s.tokens);
                let op = o.text(&s.tokens);
                assert!(g.lexicon().aspect_concept(&asp).is_some(), "aspect {asp}");
                assert!(g.lexicon().opinion_group(&op).is_some(), "opinion {op}");
            }
        }
    }

    #[test]
    fn polarity_is_respected() {
        let g = generator(GeneratorConfig {
            noise_rate: 0.0,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..100 {
            let f = FacetSpec {
                concept: "food",
                group: "delicious",
                polarity: Polarity::Negative,
            };
            let s = g.sentence(&[f], &mut rng);
            let (_, o) = s.pairs[0];
            let group = g.lexicon().opinion_group(&o.text(&s.tokens)).unwrap();
            assert_eq!(group.polarity, Polarity::Negative);
        }
    }

    #[test]
    fn shared_opinion_template_pairs_both_aspects() {
        let g = generator(GeneratorConfig {
            noise_rate: 0.0,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(5);
        let f1 = FacetSpec {
            concept: "staff",
            group: "good",
            polarity: Polarity::Positive,
        };
        let f2 = FacetSpec {
            concept: "decor",
            group: "good",
            polarity: Polarity::Positive,
        };
        let mut saw_shared = false;
        for _ in 0..200 {
            let s = g.sentence(&[f1.clone(), f2.clone()], &mut rng);
            let opinion_spans: std::collections::HashSet<_> =
                s.pairs.iter().map(|(_, o)| *o).collect();
            if s.pairs.len() == 2 && opinion_spans.len() == 1 {
                saw_shared = true;
                break;
            }
        }
        assert!(saw_shared, "shared-opinion template never fired");
    }

    #[test]
    fn train_vocabulary_restriction_holds_out_variants() {
        let train = generator(GeneratorConfig {
            noise_rate: 0.0,
            train_vocabulary_only: true,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(6);
        let group = train.lexicon().opinion_by_name("delicious").unwrap();
        let held_out: Vec<&str> = group.variants.iter().copied().skip(1).step_by(2).collect();
        for _ in 0..300 {
            let f = FacetSpec {
                concept: "food",
                group: "delicious",
                polarity: Polarity::Positive,
            };
            let s = train.sentence(&[f], &mut rng);
            let (_, o) = s.pairs[0];
            let surf = o.text(&s.tokens);
            assert!(
                !held_out.contains(&surf.as_str()),
                "held-out variant {surf} leaked"
            );
        }
    }

    #[test]
    fn typos_change_tokens_but_not_labels() {
        let g = generator(GeneratorConfig {
            noise_rate: 0.0,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(7);
        let f = FacetSpec {
            concept: "food",
            group: "delicious",
            polarity: Polarity::Positive,
        };
        let mut clean = g.sentence(&[f], &mut rng);
        let tags_before = clean.tags.clone();
        let len_before = clean.tokens.len();
        apply_typos(&mut clean, 1.0, &mut rng);
        assert_eq!(clean.tags, tags_before);
        assert_eq!(clean.tokens.len(), len_before);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = generator(GeneratorConfig::default());
        let mut r1 = StdRng::seed_from_u64(99);
        let mut r2 = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            let a = g.random_sentence(&mut r1);
            let b = g.random_sentence(&mut r2);
            assert_eq!(a.tokens, b.tokens);
            assert_eq!(a.tags, b.tags);
        }
    }

    #[test]
    fn electronics_domain_generates_noise_tokens() {
        let g = SentenceGenerator::new(
            Lexicon::new(Domain::Electronics),
            GeneratorConfig {
                noise_rate: 1.0,
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(8);
        let mut saw_brand = false;
        for _ in 0..50 {
            let s = g.random_sentence(&mut rng);
            if s.tokens
                .iter()
                .any(|t| t == "xr-500" || t == "probook" || t == "1080p")
            {
                saw_brand = true;
                break;
            }
        }
        assert!(saw_brand, "electronics noise tokens never appeared");
    }
}

//! # saccs-parse
//!
//! A deterministic constituency-lite parser for the parse-tree pairing
//! heuristic of Section 5.1.
//!
//! The paper's first pairing heuristic relies on "the distance between
//! aspects and opinions in the review parse trees": in *"The staff is
//! friendly, helpful and professional. The decor is beautiful"*, the
//! opinion *professional* is word-adjacent to the aspect *decor*, but the
//! two live in different sub-trees, so tree distance pairs *professional*
//! with *staff* instead. The heuristic only ever consumes *distances*
//! between leaves, so a full PCFG is unnecessary; this module builds a
//! three-level tree
//!
//! ```text
//! Sentence → Clause* → Chunk* → token leaves
//! ```
//!
//! where clause boundaries are sentence terminators, semicolons and
//! conjunctions/commas followed by a new predicate, and chunks split each
//! clause at its copula/verb (subject chunk vs. predicate chunk).
//!
//! The paper also notes this heuristic's two failure modes — long
//! mono-clause sentences degenerate to word distance, and typos/punctuation
//! errors corrupt the tree — both of which this implementation faithfully
//! shares (and the synthetic data generator can trigger).

use saccs_text::tokenize_lower;

/// Copulas and common review verbs that mark the start of a predicate.
const PREDICATE_VERBS: &[&str] = &[
    "is",
    "are",
    "was",
    "were",
    "be",
    "been",
    "seems",
    "seemed",
    "looks",
    "looked",
    "feels",
    "felt",
    "tastes",
    "tasted",
    "has",
    "have",
    "had",
    "serves",
    "served",
    "came",
    "come",
    "comes",
    "went",
    "offers",
    "offered",
    "makes",
    "made",
    "gets",
    "got",
    "delivers",
    "delivered",
    "employs",
    "employed",
    "cooks",
    "cooked",
    "arrived",
    "lasted",
    "lasts",
    "runs",
    "ran",
    "works",
    "worked",
    "charges",
    "charged",
];

/// Tokens that always end a clause.
const HARD_BOUNDARIES: &[&str] = &[".", "!", "?", ";"];

/// Tokens that end a clause only when a new predicate follows.
const SOFT_BOUNDARIES: &[&str] = &["but", "while", "though", "although", "however", ",", "and"];

fn is_predicate_verb(tok: &str) -> bool {
    PREDICATE_VERBS.contains(&tok)
}

/// A parsed sentence (or short multi-sentence review fragment).
#[derive(Debug, Clone)]
pub struct ParseTree {
    tokens: Vec<String>,
    /// clause index → chunk index, per token; boundary tokens belong to the
    /// clause they terminate.
    position: Vec<(usize, usize)>,
    clause_count: usize,
}

impl ParseTree {
    /// Parse pre-tokenized (lowercased) tokens.
    pub fn from_tokens(tokens: &[String]) -> Self {
        let n = tokens.len();
        // Pass 1: clause boundaries.
        let mut clause_of = vec![0usize; n];
        let mut clause = 0usize;
        for i in 0..n {
            clause_of[i] = clause;
            let t = tokens[i].as_str();
            let boundary = if HARD_BOUNDARIES.contains(&t) {
                i + 1 < n
            } else if SOFT_BOUNDARIES.contains(&t) {
                // Split only when the remainder of this sentence introduces
                // its own predicate before the next hard boundary.
                let mut has_verb = false;
                for tok in tokens.iter().skip(i + 1) {
                    if HARD_BOUNDARIES.contains(&tok.as_str()) {
                        break;
                    }
                    if is_predicate_verb(tok) {
                        has_verb = true;
                        break;
                    }
                }
                has_verb
            } else {
                false
            };
            if boundary {
                clause += 1;
            }
        }
        let clause_count = if n == 0 { 0 } else { clause + 1 };

        // Pass 2: within each clause, split into chunks at predicate verbs
        // (subject chunk | verb + predicate chunk).
        let mut position = vec![(0usize, 0usize); n];
        let mut i = 0usize;
        while i < n {
            let c = clause_of[i];
            let mut chunk = 0usize;
            let mut j = i;
            while j < n && clause_of[j] == c {
                if is_predicate_verb(&tokens[j]) && j > i {
                    chunk += 1;
                }
                position[j] = (c, chunk);
                j += 1;
            }
            i = j;
        }

        ParseTree {
            tokens: tokens.to_vec(),
            position,
            clause_count,
        }
    }

    /// Tokenize and parse raw text.
    pub fn parse(text: &str) -> Self {
        let tokens: Vec<String> = tokenize_lower(text).into_iter().map(|t| t.text).collect();
        Self::from_tokens(&tokens)
    }

    pub fn tokens(&self) -> &[String] {
        &self.tokens
    }

    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Number of clauses found.
    pub fn clause_count(&self) -> usize {
        self.clause_count
    }

    /// `(clause, chunk)` coordinates of token `i`.
    pub fn coordinates(&self, i: usize) -> (usize, usize) {
        self.position[i]
    }

    /// Path length between two leaves in the three-level tree:
    /// 2 within a chunk, 4 across chunks of one clause, 6 across clauses.
    pub fn tree_distance(&self, i: usize, j: usize) -> usize {
        if i == j {
            return 0;
        }
        let (ci, ki) = self.position[i];
        let (cj, kj) = self.position[j];
        if ci != cj {
            6
        } else if ki != kj {
            4
        } else {
            2
        }
    }

    /// Composite distance used by the pairing heuristic: tree distance
    /// first, word distance as tie-break. Lower is closer.
    pub fn pairing_distance(&self, i: usize, j: usize) -> (usize, usize) {
        (self.tree_distance(i, j), i.abs_diff(j))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn idx(tree: &ParseTree, word: &str) -> usize {
        tree.tokens()
            .iter()
            .position(|t| t == word)
            .unwrap_or_else(|| panic!("{word} missing"))
    }

    #[test]
    fn paper_motivating_example() {
        // §5: "professional" must be tree-closer to "staff" than to "decor".
        let t = ParseTree::parse(
            "The staff is friendly, helpful and professional. The decor is beautiful",
        );
        assert!(
            t.clause_count() >= 2,
            "expected a clause split at the period"
        );
        let professional = idx(&t, "professional");
        let staff = idx(&t, "staff");
        let decor = idx(&t, "decor");
        let d_staff = t.pairing_distance(professional, staff);
        let d_decor = t.pairing_distance(professional, decor);
        assert!(d_staff < d_decor, "staff={d_staff:?} decor={d_decor:?}");
    }

    #[test]
    fn comma_with_new_predicate_splits_clause() {
        let t = ParseTree::parse("The food is great, the service is slow");
        let food = idx(&t, "food");
        let slow = idx(&t, "slow");
        assert_eq!(
            t.tree_distance(food, slow),
            6,
            "clauses should separate food from slow"
        );
        let great = idx(&t, "great");
        assert!(t.tree_distance(food, great) < 6);
    }

    #[test]
    fn coordinated_adjectives_do_not_split() {
        // "friendly and professional" — no predicate after "and", one clause.
        let t = ParseTree::parse("The staff is friendly and professional");
        assert_eq!(t.clause_count(), 1);
        let staff = idx(&t, "staff");
        let prof = idx(&t, "professional");
        assert!(t.tree_distance(staff, prof) <= 4);
    }

    #[test]
    fn but_with_predicate_splits() {
        let t = ParseTree::parse("The food is delicious but the staff is rude");
        let food = idx(&t, "food");
        let rude = idx(&t, "rude");
        assert_eq!(t.tree_distance(food, rude), 6);
        let delicious = idx(&t, "delicious");
        let staff = idx(&t, "staff");
        assert!(t.tree_distance(food, delicious) < t.tree_distance(food, rude));
        assert!(t.tree_distance(staff, rude) < t.tree_distance(staff, delicious));
    }

    #[test]
    fn chunking_separates_subject_from_predicate() {
        let t = ParseTree::parse("The food is delicious");
        let food = idx(&t, "food");
        let delicious = idx(&t, "delicious");
        let the = 0usize;
        assert_eq!(t.tree_distance(the, food), 2); // same subject chunk
        assert_eq!(t.tree_distance(food, delicious), 4); // across the copula
    }

    #[test]
    fn missing_punctuation_degrades_gracefully() {
        // The paper's noted failure mode: with the period typo'd away, the
        // two clauses still split at the second predicate "is"… but the
        // chunk structure coarsens. We just require no panic and sane
        // distances.
        let t = ParseTree::parse("The staff is friendly the decor is beautiful");
        for i in 0..t.len() {
            for j in 0..t.len() {
                let d = t.tree_distance(i, j);
                assert!(d <= 6);
                assert_eq!(d, t.tree_distance(j, i));
            }
        }
    }

    #[test]
    fn empty_and_single_token() {
        let t = ParseTree::parse("");
        assert!(t.is_empty());
        assert_eq!(t.clause_count(), 0);
        let t = ParseTree::parse("delicious");
        assert_eq!(t.clause_count(), 1);
        assert_eq!(t.tree_distance(0, 0), 0);
    }

    #[test]
    fn trailing_period_does_not_create_empty_clause() {
        let t = ParseTree::parse("The food is great.");
        assert_eq!(t.clause_count(), 1);
    }

    proptest! {
        /// Tree distance is a symmetric pseudo-metric bounded by 6 with
        /// identity of indiscernibles at the leaf level.
        #[test]
        fn prop_distance_axioms(s in "[a-z]{1,6}( [a-z]{1,6}){0,14}( \\.| but| ,)?") {
            let t = ParseTree::parse(&s);
            for i in 0..t.len() {
                prop_assert_eq!(t.tree_distance(i, i), 0);
                for j in 0..t.len() {
                    let d = t.tree_distance(i, j);
                    prop_assert_eq!(d, t.tree_distance(j, i));
                    prop_assert!(d <= 6);
                    if i != j { prop_assert!(d >= 2); }
                }
            }
        }

        /// Coordinates are consistent with distances.
        #[test]
        fn prop_coordinates_consistent(s in "[a-z]{1,5}( [a-z]{1,5}| is| \\.| ,){0,12}") {
            let t = ParseTree::parse(&s);
            for i in 0..t.len() {
                for j in 0..t.len() {
                    let (ci, ki) = t.coordinates(i);
                    let (cj, kj) = t.coordinates(j);
                    let d = t.tree_distance(i, j);
                    if i != j {
                        match d {
                            2 => prop_assert!(ci == cj && ki == kj),
                            4 => prop_assert!(ci == cj && ki != kj),
                            6 => prop_assert!(ci != cj),
                            _ => prop_assert!(false, "unexpected distance {}", d),
                        }
                    }
                }
            }
        }
    }
}

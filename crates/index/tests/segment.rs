//! Property suite for the segmented-ingestion layer.
//!
//! Three families of invariants, fuzzed over arbitrary inputs:
//!
//! * **Codec round trips** — zigzag/varint and the posting-list codec
//!   are exact inverses, bit-for-bit, for every value including
//!   arbitrary f32 bit patterns (NaNs, signed zeros, subnormals).
//! * **Merge-operator algebra** — merging sealed segments is
//!   associative, permutation-invariant and idempotent: however the
//!   compactor groups or orders segments, the merged record stream is
//!   the seq-sorted set, nothing more and nothing less.
//! * **Incremental = from-scratch** — a [`LiveIndex`] fed an arbitrary
//!   review stream answers every probe with exactly the bits a frozen
//!   [`SubjectiveIndex`] built from the same evidence answers, at every
//!   prefix of the stream.

use proptest::prelude::*;
use saccs_index::codec::{
    get_postings, get_varint, put_postings, put_varint, zigzag_decode, zigzag_encode,
};
use saccs_index::index::{EntityEvidence, IndexConfig, IndexEntry, SubjectiveIndex};
use saccs_index::{merge_segments, LiveConfig, LiveIndex, ReviewRecord, SealedSegment};
use saccs_text::{ConceptualSimilarity, Domain, Lexicon, SubjectiveTag};

const OPINIONS: &[&str] = &[
    "delicious",
    "tasty",
    "great",
    "friendly",
    "cozy",
    "cheap",
    "deliciouz",
    "zorgle",
];

const ASPECTS: &[&str] = &["food", "meal", "staff", "service", "ambiance", "zzplace"];

fn sim() -> ConceptualSimilarity {
    ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants))
}

fn mk_tag(&(o, a): &(usize, usize)) -> SubjectiveTag {
    SubjectiveTag::new(OPINIONS[o % OPINIONS.len()], ASPECTS[a % ASPECTS.len()])
}

fn bits(ranked: &[(usize, f32)]) -> Vec<(usize, u32)> {
    ranked.iter().map(|&(e, s)| (e, s.to_bits())).collect()
}

/// The from-scratch comparator: replay `log` the way a batch pipeline
/// would (entities registered in first-seen order, review tags
/// concatenated in arrival order) and index the same tag set.
fn rebuild(log: &[ReviewRecord], tags: &[SubjectiveTag], config: &IndexConfig) -> SubjectiveIndex {
    let mut idx = SubjectiveIndex::new(sim(), config.clone());
    let mut evidence: Vec<EntityEvidence> = Vec::new();
    for record in log {
        match evidence
            .iter_mut()
            .find(|e| e.entity_id == record.entity_id)
        {
            Some(ev) => {
                ev.review_count += 1;
                ev.review_tags.extend(record.tags.iter().cloned());
            }
            None => evidence.push(EntityEvidence {
                entity_id: record.entity_id,
                review_count: 1,
                review_tags: record.tags.clone(),
            }),
        }
    }
    for ev in evidence {
        idx.register_entity(ev);
    }
    idx.index_tags(tags);
    idx
}

/// Chunk `records` (already seq-sorted) into non-empty sealed segments
/// at arbitrary cut points derived from `cuts`.
fn chunk_into_segments(records: &[ReviewRecord], cuts: &[usize]) -> Vec<SealedSegment> {
    let mut segments = Vec::new();
    let mut start = 0usize;
    for &c in cuts {
        let cut = start + 1 + c % records.len().max(1);
        if cut < records.len() {
            segments.push(SealedSegment::new(records[start..cut].to_vec()));
            start = cut;
        }
    }
    if start < records.len() {
        segments.push(SealedSegment::new(records[start..].to_vec()));
    }
    segments
}

proptest! {
    #![proptest_config(prop::test_runner::Config::with_cases(64))]

    #[test]
    fn zigzag_and_varint_round_trip_arbitrary_values(
        signed in prop::collection::vec(i64::MIN..i64::MAX, 0..32),
        unsigned in prop::collection::vec(0u64..u64::MAX, 0..32),
    ) {
        for &v in &signed {
            prop_assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
        let mut out = Vec::new();
        for &v in &unsigned {
            put_varint(&mut out, v);
        }
        let mut pos = 0;
        for &v in &unsigned {
            prop_assert_eq!(get_varint(&out, &mut pos).expect("varint decodes"), v);
        }
        prop_assert_eq!(pos, out.len());
    }

    /// Posting lists survive the codec bit-for-bit for arbitrary entity
    /// ids and arbitrary f32 *bit patterns* — NaN payloads, signed
    /// zeros and subnormals included.
    #[test]
    fn postings_codec_round_trips_bitwise_on_arbitrary_postings(
        raw in prop::collection::vec(
            (0usize..1_000_000, 0u32..=u32::MAX, 0u32..=u32::MAX),
            0..40,
        ),
    ) {
        let postings: Vec<IndexEntry> = raw
            .iter()
            .map(|&(entity_id, d, n)| IndexEntry {
                entity_id,
                degree_of_truth: f32::from_bits(d),
                normalized: f32::from_bits(n),
            })
            .collect();
        let mut out = Vec::new();
        put_postings(&mut out, &postings);
        let mut pos = 0;
        let back = get_postings(&out, &mut pos).expect("postings decode");
        prop_assert_eq!(pos, out.len());
        prop_assert_eq!(back.len(), postings.len());
        for (a, b) in postings.iter().zip(&back) {
            prop_assert_eq!(a.entity_id, b.entity_id);
            prop_assert_eq!(a.degree_of_truth.to_bits(), b.degree_of_truth.to_bits());
            prop_assert_eq!(a.normalized.to_bits(), b.normalized.to_bits());
        }
    }

    /// However the compactor groups segments (any cut points) and in
    /// whatever order it feeds them (any rotation + optional reversal),
    /// the merged stream is the same seq-sorted record set. Merging the
    /// merge with the original segments changes nothing (idempotence
    /// under the seq dedup).
    #[test]
    fn merge_is_permutation_invariant_associative_and_idempotent(
        raw in prop::collection::vec((0usize..6, prop::collection::vec((0usize..8, 0usize..6), 0..3)), 1..24),
        cuts_a in prop::collection::vec(0usize..8, 0..6),
        cuts_b in prop::collection::vec(0usize..8, 0..6),
        rotate in 0usize..8,
        reverse in prop::bool::ANY,
    ) {
        let records: Vec<ReviewRecord> = raw
            .iter()
            .enumerate()
            .map(|(seq, (entity_id, tags))| ReviewRecord {
                seq: seq as u64,
                entity_id: *entity_id,
                tags: tags.iter().map(mk_tag).collect(),
            })
            .collect();
        let canonical = SealedSegment::new(records.clone());

        // Two arbitrary groupings of the same records.
        let seg_a = chunk_into_segments(&records, &cuts_a);
        let mut seg_b = chunk_into_segments(&records, &cuts_b);
        // Arbitrary presentation order of the second grouping.
        if !seg_b.is_empty() {
            let r = rotate % seg_b.len();
            seg_b.rotate_left(r);
        }
        if reverse {
            seg_b.reverse();
        }
        let merged_a = merge_segments(&seg_a).expect("non-empty input");
        let merged_b = merge_segments(&seg_b).expect("non-empty input");
        prop_assert_eq!(merged_a.records(), canonical.records());
        prop_assert_eq!(merged_b.records(), canonical.records());

        // Associativity: merging a prefix first, then the rest, equals
        // the flat merge.
        if seg_a.len() >= 2 {
            let first = merge_segments(&seg_a[..2]).expect("two segments");
            let mut staged = vec![first];
            staged.extend(seg_a[2..].iter().cloned());
            let nested = merge_segments(&staged).expect("non-empty input");
            prop_assert_eq!(nested.records(), canonical.records());
        }

        // Idempotence: re-merging the merge with every original segment
        // dedups on seq and changes nothing.
        let mut with_dupes = vec![merged_a];
        with_dupes.extend(seg_a.iter().cloned());
        let redone = merge_segments(&with_dupes).expect("non-empty input");
        prop_assert_eq!(redone.records(), canonical.records());
    }

    /// The tentpole equivalence, fuzzed: a live index fed an arbitrary
    /// review stream — under an arbitrary seal cadence, with and
    /// without compaction — answers every probe bitwise identically to
    /// a from-scratch build at *every prefix* of the stream.
    #[test]
    fn incremental_ingest_equals_from_scratch_rebuild_bitwise(
        stream in prop::collection::vec(
            (0usize..5, prop::collection::vec((0usize..8, 0usize..6), 0..4)),
            1..16,
        ),
        raw_tags in prop::collection::vec((0usize..8, 0usize..6), 1..6),
        raw_probes in prop::collection::vec((0usize..8, 0usize..6), 1..4),
        seal_every in 0usize..5,
        ann in prop::bool::ANY,
    ) {
        let tags: Vec<SubjectiveTag> = raw_tags.iter().map(mk_tag).collect();
        let probes: Vec<SubjectiveTag> = raw_probes.iter().map(mk_tag).collect();
        let config = IndexConfig { ann_enabled: ann, ..IndexConfig::default() };
        let live = LiveIndex::new(
            sim(),
            config.clone(),
            LiveConfig {
                seal_every,
                max_segments: 3,
                background_compaction: false,
            },
        );
        live.add_tags(&tags);
        let mut log: Vec<ReviewRecord> = Vec::new();
        for (i, (entity_id, review)) in stream.iter().enumerate() {
            let review_tags: Vec<SubjectiveTag> = review.iter().map(mk_tag).collect();
            let receipt = live.add_review(*entity_id, &review_tags);
            log.push(ReviewRecord { seq: receipt.seq, entity_id: *entity_id, tags: review_tags });
            let frozen = rebuild(&log, &tags, &config);
            let snapshot = live.pin();
            for probe in &probes {
                prop_assert_eq!(
                    bits(&live.probe_pinned(&snapshot, probe)),
                    bits(&frozen.probe_readonly(probe)),
                    "prefix {} probe {:?} (seal_every {}, ann {})",
                    i, probe, seal_every, ann
                );
            }
        }
        // The live record log is exactly the stream, in seq order.
        prop_assert_eq!(live.review_log(), log);
    }
}

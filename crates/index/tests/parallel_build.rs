//! Bitwise thread-count invariance of parallel index construction and
//! batched probes. Posting lists are pure functions of `(tag, evidence)`
//! and come back positionally from the `saccs-rt` fan-out, so the index
//! an 8-wide pool builds must equal the serial one bit for bit.
//!
//! One test function on purpose: `saccs_rt::set_threads` is grow-only
//! and process-global, so the width-1 build must run before widening.

use saccs_index::index::{EntityEvidence, IndexConfig, SubjectiveIndex};
use saccs_index::SharedIndex;
use saccs_text::{ConceptualSimilarity, Domain, Lexicon, SubjectiveTag};

fn tag(op: &str, asp: &str) -> SubjectiveTag {
    SubjectiveTag::new(op, asp)
}

fn evidence_index() -> SubjectiveIndex {
    let mut idx = SubjectiveIndex::new(
        ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants)),
        IndexConfig::default(),
    );
    let pool = [
        tag("delicious", "food"),
        tag("tasty", "meal"),
        tag("nice", "staff"),
        tag("friendly", "service"),
        tag("cozy", "ambiance"),
        tag("cheap", "price"),
    ];
    for e in 0..24usize {
        let review_tags: Vec<SubjectiveTag> = (0..3)
            .map(|k| pool[(e * 5 + k * 7) % pool.len()].clone())
            .collect();
        idx.register_entity(EntityEvidence {
            entity_id: e,
            review_count: 2 + e % 4,
            review_tags,
        });
    }
    idx
}

fn index_tags() -> Vec<SubjectiveTag> {
    [
        ("delicious", "food"),
        ("tasty", "meal"),
        ("nice", "staff"),
        ("friendly", "service"),
        ("cozy", "ambiance"),
        ("cheap", "price"),
        ("great", "food"),
        ("good", "service"),
        ("quiet", "ambiance"),
    ]
    .iter()
    .map(|(o, a)| tag(o, a))
    .collect()
}

#[test]
fn parallel_build_and_probes_bitwise_identical_across_widths() {
    let tags = index_tags();
    let probes = [
        tag("delicious", "food"),
        tag("scrumptious", "pasta"),
        tag("great", "meal"),
        tag("romantic", "ambiance"),
    ];

    // Width-1 baseline: the pool has never been widened.
    let mut base = evidence_index();
    base.index_tags(&tags);
    let base_posts: Vec<_> = tags
        .iter()
        .map(|t| base.lookup(t).map(<[_]>::to_vec))
        .collect();
    let base_probes: Vec<_> = probes.iter().map(|t| base.probe_readonly(t)).collect();

    for width in [2, 8] {
        saccs_rt::set_threads(width);
        let mut idx = evidence_index();
        idx.index_tags(&tags);
        for (t, expect) in tags.iter().zip(&base_posts) {
            assert_eq!(
                idx.lookup(t).map(<[_]>::to_vec).as_ref(),
                expect.as_ref(),
                "postings for {t:?} diverged at width {width}"
            );
        }

        // Batched probes through the shared handle match the serial ones
        // and queue exactly the unknown tags, in input order.
        let shared = SharedIndex::new(idx);
        let many = shared.probe_many(&probes);
        assert_eq!(many, base_probes, "probe_many diverged at width {width}");
        let unknown = probes.iter().filter(|t| base.lookup(t).is_none()).count();
        assert_eq!(shared.pending_count(), unknown);
    }
}

//! ANN-enabled fallback probes must be *exactly* the exhaustive scan:
//! same entity ids, same score bits, same order. With the default
//! conceptual similarity the semantic candidate cells prune only tags
//! whose upper bound is below θ_filter, and the rescore replays the
//! scan's addition sequence, so the equality is bitwise — across random
//! corpora, θ values, dynamic thresholds, and `saccs-rt` widths.

use proptest::prelude::*;
use saccs_index::index::{EntityEvidence, IndexConfig, SubjectiveIndex};
use saccs_text::{ConceptualSimilarity, Domain, Lexicon, SubjectiveTag};

/// Mix of in-lexicon opinions, fuzzy-resolvable typos, and garbage.
const OPINIONS: &[&str] = &[
    "delicious",
    "tasty",
    "great",
    "good",
    "bad",
    "friendly",
    "rude",
    "cozy",
    "noisy",
    "cheap",
    "deliciouz",
    "frendly",
    "zorgle",
];

/// Same mix on the aspect side.
const ASPECTS: &[&str] = &[
    "food", "meal", "pasta", "staff", "service", "waiters", "ambiance", "price", "zzplace",
];

/// θ_filter values swept by the fuzz test.
const THETAS: &[f32] = &[0.15, 0.45, 0.55, 0.7, 0.9];

fn sim() -> ConceptualSimilarity {
    ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants))
}

fn mk_tag(&(o, a): &(usize, usize)) -> SubjectiveTag {
    SubjectiveTag::new(OPINIONS[o % OPINIONS.len()], ASPECTS[a % ASPECTS.len()])
}

fn build(
    config: IndexConfig,
    entities: &[(usize, Vec<SubjectiveTag>)],
    tags: &[SubjectiveTag],
) -> SubjectiveIndex {
    let mut idx = SubjectiveIndex::new(sim(), config);
    for (e, (reviews, review_tags)) in entities.iter().enumerate() {
        idx.register_entity(EntityEvidence {
            entity_id: e,
            review_count: *reviews,
            review_tags: review_tags.clone(),
        });
    }
    idx.index_tags(tags);
    idx
}

fn assert_ranked_bitwise_eq(ann: &[(usize, f32)], scan: &[(usize, f32)], ctx: &str) {
    assert_eq!(ann.len(), scan.len(), "{ctx}: lengths differ");
    for (i, ((ea, sa), (eb, sb))) in ann.iter().zip(scan).enumerate() {
        assert_eq!(ea, eb, "{ctx}: entity at rank {i}");
        assert_eq!(
            sa.to_bits(),
            sb.to_bits(),
            "{ctx}: score bits at rank {i} ({sa} vs {sb})"
        );
    }
}

proptest! {
    #![proptest_config(prop::test_runner::Config::with_cases(48))]

    /// The core tentpole invariant, fuzzed: for any corpus, θ_filter and
    /// dynamic-threshold setting, ANN probes equal scan probes bitwise.
    #[test]
    fn ann_probe_equals_scan_probe_bitwise(
        raw_entities in prop::collection::vec(
            (1usize..5, prop::collection::vec((0usize..64, 0usize..64), 1..6)),
            1..10,
        ),
        raw_tags in prop::collection::vec((0usize..64, 0usize..64), 1..14),
        raw_probes in prop::collection::vec((0usize..64, 0usize..64), 1..6),
        theta_pick in 0usize..THETAS.len(),
        dynamic in prop::bool::ANY,
    ) {
        let theta = THETAS[theta_pick];
        let entities: Vec<(usize, Vec<SubjectiveTag>)> = raw_entities
            .iter()
            .map(|(reviews, ts)| (*reviews, ts.iter().map(mk_tag).collect()))
            .collect();
        let tags: Vec<SubjectiveTag> = raw_tags.iter().map(mk_tag).collect();
        let probes: Vec<SubjectiveTag> = raw_probes.iter().map(mk_tag).collect();
        let config = IndexConfig {
            theta_filter: theta,
            dynamic_thresholds: dynamic,
            ..IndexConfig::default()
        };
        let scan_idx = build(config.clone(), &entities, &tags);
        let ann_idx = build(
            IndexConfig { ann_enabled: true, ..config },
            &entities,
            &tags,
        );
        for probe in &probes {
            let scan = scan_idx.probe_readonly(probe);
            let ann = ann_idx.probe_readonly(probe);
            assert_ranked_bitwise_eq(
                &ann,
                &scan,
                &format!("probe {probe:?} θ={theta} dynamic={dynamic}"),
            );
        }
    }
}

/// Verify mode runs both paths, returns the scan, and records zero
/// mismatches (the mismatch counter is asserted indirectly: results are
/// the scan's results bit for bit).
#[test]
fn verify_mode_returns_scan_results() {
    let entities: Vec<(usize, Vec<SubjectiveTag>)> = (0..8)
        .map(|e| {
            let t = (0..3)
                .map(|k| {
                    SubjectiveTag::new(
                        OPINIONS[(e * 3 + k) % OPINIONS.len()],
                        ASPECTS[(e + k * 2) % ASPECTS.len()],
                    )
                })
                .collect();
            (1 + e % 4, t)
        })
        .collect();
    let tags: Vec<SubjectiveTag> = (0..10)
        .map(|i| SubjectiveTag::new(OPINIONS[i % OPINIONS.len()], ASPECTS[i % ASPECTS.len()]))
        .collect();
    let scan_idx = build(IndexConfig::default(), &entities, &tags);
    let verify_idx = build(
        IndexConfig {
            ann_enabled: true,
            ann_verify: true,
            ..IndexConfig::default()
        },
        &entities,
        &tags,
    );
    for probe in [
        SubjectiveTag::new("scrumptious", "pizza"),
        SubjectiveTag::new("delicious", "waiters"),
        SubjectiveTag::new("zorgle", "zzplace"),
    ] {
        assert_ranked_bitwise_eq(
            &verify_idx.probe_readonly(&probe),
            &scan_idx.probe_readonly(&probe),
            &format!("verify-mode probe {probe:?}"),
        );
    }
}

/// Width sweep: one test function on purpose — `saccs_rt::set_threads`
/// is grow-only and process-global, so the width-1 pass must run first.
/// ANN-enabled probes must match both the scan *and* the width-1
/// baseline bit for bit at widths 1, 2 and 8.
#[test]
fn ann_probes_bitwise_identical_across_widths() {
    let entities: Vec<(usize, Vec<SubjectiveTag>)> = (0..16)
        .map(|e| {
            let t = (0..4)
                .map(|k| {
                    SubjectiveTag::new(
                        OPINIONS[(e * 5 + k * 3) % OPINIONS.len()],
                        ASPECTS[(e * 2 + k) % ASPECTS.len()],
                    )
                })
                .collect();
            (2 + e % 3, t)
        })
        .collect();
    let tags: Vec<SubjectiveTag> = (0..12)
        .map(|i| {
            SubjectiveTag::new(
                OPINIONS[(i * 7) % OPINIONS.len()],
                ASPECTS[i % ASPECTS.len()],
            )
        })
        .collect();
    let probes = [
        SubjectiveTag::new("scrumptious", "pasta"),
        SubjectiveTag::new("deliciouz", "food"),
        SubjectiveTag::new("great", "waiters"),
        SubjectiveTag::new("romantic", "ambiance"),
    ];

    let mut baseline: Option<Vec<Vec<(usize, f32)>>> = None;
    for width in [1usize, 2, 8] {
        saccs_rt::set_threads(width);
        let scan_idx = build(IndexConfig::default(), &entities, &tags);
        let ann_idx = build(
            IndexConfig {
                ann_enabled: true,
                ..IndexConfig::default()
            },
            &entities,
            &tags,
        );
        let results: Vec<Vec<(usize, f32)>> =
            probes.iter().map(|p| ann_idx.probe_readonly(p)).collect();
        for (probe, ann) in probes.iter().zip(&results) {
            assert_ranked_bitwise_eq(
                ann,
                &scan_idx.probe_readonly(probe),
                &format!("width {width} probe {probe:?}"),
            );
        }
        match &baseline {
            None => baseline = Some(results),
            Some(base) => {
                for ((probe, got), expect) in probes.iter().zip(&results).zip(base) {
                    assert_ranked_bitwise_eq(
                        got,
                        expect,
                        &format!("width {width} vs width 1, probe {probe:?}"),
                    );
                }
            }
        }
    }
}

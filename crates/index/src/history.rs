//! The user tag history (§3.1, Figure 1).
//!
//! "Because this tag is unknown to SACCS, it adds it to the user tag
//! history. Consequently, in the next indexing round, SACCS includes \[it\]
//! to the index … This mechanism enables SACCS to adapt to new user
//! needs." The history also counts how often each unknown tag was asked,
//! so re-indexing rounds can prioritize frequent requests.

use saccs_text::SubjectiveTag;
use std::collections::BTreeMap;

/// Accumulator of unknown tags seen in user utterances.
#[derive(Debug, Default, Clone)]
pub struct UserTagHistory {
    counts: BTreeMap<SubjectiveTag, usize>,
}

impl UserTagHistory {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one request for an unknown tag.
    pub fn record(&mut self, tag: SubjectiveTag) {
        *self.counts.entry(tag).or_insert(0) += 1;
    }

    /// Number of distinct pending tags.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    pub fn contains(&self, tag: &SubjectiveTag) -> bool {
        self.counts.contains_key(tag)
    }

    /// How often `tag` was requested.
    pub fn count(&self, tag: &SubjectiveTag) -> usize {
        self.counts.get(tag).copied().unwrap_or(0)
    }

    /// Iterate the pending tags with their request counts, in tag order
    /// (deterministic — the backing map is a `BTreeMap`). Used by the
    /// index snapshot so in-flight unknown-tag requests survive a
    /// save/restore cycle.
    pub fn entries(&self) -> impl Iterator<Item = (&SubjectiveTag, usize)> {
        self.counts.iter().map(|(t, c)| (t, *c))
    }

    /// Set `tag`'s request count outright (snapshot restore). A zero
    /// count removes the tag.
    pub fn set_count(&mut self, tag: SubjectiveTag, count: usize) {
        if count == 0 {
            self.counts.remove(&tag);
        } else {
            self.counts.insert(tag, count);
        }
    }

    /// Remove and return all pending tags, most-requested first.
    pub fn drain(&mut self) -> Vec<SubjectiveTag> {
        let mut pending: Vec<(SubjectiveTag, usize)> =
            std::mem::take(&mut self.counts).into_iter().collect();
        pending.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        pending.into_iter().map(|(t, _)| t).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(op: &str, asp: &str) -> SubjectiveTag {
        SubjectiveTag::new(op, asp)
    }

    #[test]
    fn records_and_counts() {
        let mut h = UserTagHistory::new();
        assert!(h.is_empty());
        h.record(tag("romantic", "ambiance"));
        h.record(tag("romantic", "ambiance"));
        h.record(tag("quiet", "place"));
        assert_eq!(h.len(), 2);
        assert_eq!(h.count(&tag("romantic", "ambiance")), 2);
        assert!(h.contains(&tag("quiet", "place")));
    }

    #[test]
    fn drain_orders_by_frequency_and_empties() {
        let mut h = UserTagHistory::new();
        h.record(tag("quiet", "place"));
        h.record(tag("romantic", "ambiance"));
        h.record(tag("romantic", "ambiance"));
        let drained = h.drain();
        assert_eq!(drained[0], tag("romantic", "ambiance"));
        assert_eq!(drained.len(), 2);
        assert!(h.is_empty());
    }

    #[test]
    fn frequency_ties_break_deterministically() {
        let mut h = UserTagHistory::new();
        h.record(tag("b", "food"));
        h.record(tag("a", "food"));
        let d1 = h.drain();
        let mut h2 = UserTagHistory::new();
        h2.record(tag("a", "food"));
        h2.record(tag("b", "food"));
        let d2 = h2.drain();
        assert_eq!(d1, d2);
    }
}

//! # saccs-index
//!
//! The subjective-tag inverted index of SACCS Section 3: each subjective
//! tag maps to the entities whose reviews mention it, each with a *degree
//! of truth* (Equation 1). The index supports
//!
//! * exact probes (§3.2 "Probing the index"),
//! * similarity fallback for unknown tags — the union of mappings of
//!   similar index tags, scores scaled by similarity (the `delicious food`
//!   example of §3.2),
//! * a user tag history feeding dynamic re-indexing rounds (§3.1,
//!   Figure 1), which is how SACCS "adapts to new user needs",
//! * parallel construction over index tags (crossbeam scoped threads),
//! * serde snapshots.
//!
//! The index is deliberately decoupled from the neural extractor: callers
//! feed it per-entity bags of already-extracted [`SubjectiveTag`]s (the
//! extractor lives in `saccs-core`), so this crate stays a pure data
//! structure with no model dependencies.

pub mod automaton;
pub mod history;
pub mod index;
pub mod robust;
pub mod shared;

pub use automaton::TagAutomaton;
pub use history::UserTagHistory;
pub use index::{DegreeFormula, IndexConfig, IndexEntry, SubjectiveIndex};
pub use robust::{naive_evidence, FraudFilter, ReviewProfile};
pub use saccs_text::SubjectiveTag;
pub use shared::SharedIndex;

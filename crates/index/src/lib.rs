//! # saccs-index
//!
//! The subjective-tag inverted index of SACCS Section 3: each subjective
//! tag maps to the entities whose reviews mention it, each with a *degree
//! of truth* (Equation 1). The index supports
//!
//! * exact probes (§3.2 "Probing the index"),
//! * similarity fallback for unknown tags — the union of mappings of
//!   similar index tags, scores scaled by similarity (the `delicious food`
//!   example of §3.2),
//! * a user tag history feeding dynamic re-indexing rounds (§3.1,
//!   Figure 1), which is how SACCS "adapts to new user needs",
//! * parallel construction over index tags (the `saccs-rt` pool),
//! * serde snapshots.
//!
//! The index is deliberately decoupled from the neural extractor: callers
//! feed it per-entity bags of already-extracted [`SubjectiveTag`]s (the
//! extractor lives in `saccs-core`), so this crate stays a pure data
//! structure with no model dependencies.

/// Deterministic ANN candidate structures for the fallback probe.
pub mod ann;
/// Aho-Corasick-style tag automaton for fast mention scans.
pub mod automaton;
/// Zigzag/varint byte codec for segment persistence.
pub mod codec;
/// The user tag history feeding re-indexing rounds.
pub mod history;
/// The subjective index: Equation 1 degrees of truth.
pub mod index;
/// Live ingestion: snapshot-isolated readers over a segmented index.
pub mod live;
/// Fraud-aware evidence filtering.
pub mod robust;
/// Mem/sealed segments, merge, and the on-disk segment store.
pub mod segment;
/// Concurrent serving wrapper (RwLock + pending queue).
pub mod shared;

/// ANN candidate structures and the probe-side vector source hook.
pub use ann::{
    CandidateSet, GraphAnnIndex, ScoredCandidates, SemanticCandidateIndex, TagVectorSource,
};
/// Multi-tag mention scanning.
pub use automaton::TagAutomaton;
/// Unknown tags users asked about.
pub use history::UserTagHistory;
/// The index and its tuning knobs.
pub use index::{DegreeFormula, IndexConfig, IndexEntry, SubjectiveIndex};
/// Live-ingestion handle, its tuning knobs, pinned snapshots, receipts.
pub use live::{IngestReceipt, LiveConfig, LiveIndex, LiveSnapshot};
/// Evidence construction with fraud filtering.
pub use robust::{naive_evidence, FraudFilter, ReviewProfile};
/// Re-exported tag type used throughout the index API.
pub use saccs_text::SubjectiveTag;
/// Segment types, the seq-ordered merge, and the on-disk store.
pub use segment::{
    merge_segments, LoadedStore, Manifest, MemSegment, ReviewRecord, SealedSegment, SegmentStore,
    StoreError,
};
/// Thread-safe index handle.
pub use shared::SharedIndex;

//! The inverted index and Equation 1.

use crate::ann::{GraphAnnIndex, SemanticCandidateIndex, TagVectorSource};
use crate::history::UserTagHistory;
use parking_lot::Mutex;
use saccs_text::{ConceptualSimilarity, SubjectiveTag, TagSimilarity};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::MutexGuard;

/// One entity mapping under an index tag.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IndexEntry {
    pub entity_id: usize,
    /// Degree of truth per Equation 1 (raw; grows with log review volume).
    pub degree_of_truth: f32,
    /// Degree rescaled to `[0, 1]` across the tag's entities — the form
    /// Table 1 displays.
    pub normalized: f32,
}

/// The degree-of-truth formula (Equation 1 and its variants).
///
/// Equation 1 reads `Deg(tag, e) = log(|R_e|+1) / |T_e^tag| · Σ_{t∈T_e^tag}
/// Sim(tag, t)` — i.e. log review volume times the *mean similarity of the
/// matching mentions*. That literal reading discards the mention **rate**
/// (one matching mention among 100 reviews scores like thirty), which is a
/// reproduction finding documented in `EXPERIMENTS.md`: against a ground
/// truth that is itself a per-review mean (the paper's crowdsourced
/// `sat`), the literal formula underperforms rate-carrying variants. The
/// `MentionRate` variant is the alternative reading where the denominator
/// is *all* extracted tags `|T_e|`, making the score `log volume ×
/// matching rate × similarity`; the others isolate individual factors.
/// All variants are exercised by the `degree_of_truth_ablation` bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegreeFormula {
    /// Equation 1 verbatim: `log(|R_e|+1) × mean sim of matching tags`.
    Equation1,
    /// `log(matches+1) × mean sim` — matching-mention volume.
    MatchVolume,
    /// Alternative Eq-1 reading: `log(|R_e|+1) × Σ sim / |T_e|`.
    MentionRate,
    /// `Σ sim / |T_e|` — pure matching rate, no volume factor.
    PureRate,
    /// `mean sim of matching tags` — no volume factor.
    PureMean,
}

/// Index construction/query parameters.
#[derive(Debug, Clone)]
pub struct IndexConfig {
    /// θ_index of Equation 1: minimum similarity for a review tag to count
    /// toward an index tag's degree of truth.
    pub theta_index: f32,
    /// θ_filter of Algorithm 1: minimum similarity for an index tag to
    /// answer a probe for an unknown tag.
    pub theta_filter: f32,
    /// Degree-of-truth formula.
    pub degree_formula: DegreeFormula,
    /// §7 future-work extension: adjust θ_filter "dynamically depending on
    /// the semantics of the subjective tags being compared". When enabled,
    /// probes for tags with *generic* opinions (good/bad — promiscuous
    /// matchers under the generic bridge) use a raised threshold, while
    /// specific in-lexicon tags probe with a slightly lowered one.
    pub dynamic_thresholds: bool,
    /// Answer fallback probes through the deterministic ANN candidate
    /// structures in [`crate::ann`] instead of the exhaustive scan. With
    /// the default conceptual similarity the results stay bitwise
    /// identical to the scan (sound upper-bound pruning + exact rescore);
    /// with a custom similarity the graph search is approximate and its
    /// recall is measured honestly in `BENCH_probe`.
    pub ann_enabled: bool,
    /// Graph-search beam width (candidates returned per probe). Also the
    /// floor of the construction beam. Ignored by the semantic cells.
    pub ann_ef: usize,
    /// Max neighbors per graph node per level. Ignored by the semantic
    /// cells.
    pub ann_m: usize,
    /// Equality mode for the paper tables: run *both* the exhaustive scan
    /// and the ANN probe, count bitwise mismatches
    /// (`index.probe.ann.mismatch`), and always return the scan result.
    pub ann_verify: bool,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            theta_index: 0.45,
            theta_filter: 0.45,
            degree_formula: DegreeFormula::Equation1,
            dynamic_thresholds: false,
            ann_enabled: false,
            ann_ef: 64,
            ann_m: 8,
            ann_verify: false,
        }
    }
}

/// Per-entity evidence handed to the indexer: the bag of subjective tags
/// the extractor pulled out of the entity's reviews, plus the review count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EntityEvidence {
    pub entity_id: usize,
    pub review_count: usize,
    pub review_tags: Vec<SubjectiveTag>,
}

/// The subjective-tag inverted index.
pub struct SubjectiveIndex {
    config: IndexConfig,
    similarity: ConceptualSimilarity,
    /// Optional override for the tag-similarity measure used in degree
    /// computation and probes (e.g. embedding cosine for the footnote-2
    /// ablation). The lexicon-backed [`ConceptualSimilarity`] stays in
    /// place for dynamic thresholds and profile weighting. `Send + Sync`
    /// so a service built on this index can be shared across serving
    /// threads.
    custom_similarity: Option<Box<dyn TagSimilarity + Send + Sync>>,
    /// Index tag → entity mappings, sorted by descending degree of truth.
    entries: BTreeMap<SubjectiveTag, Vec<IndexEntry>>,
    /// Evidence retained for incremental re-indexing rounds.
    evidence: Vec<EntityEvidence>,
    /// The user tag history is the only probe-path state that mutates at
    /// serving time, so it sits behind its own mutex: probes stay `&self`
    /// and many serving threads can record unknown tags concurrently.
    history: Mutex<UserTagHistory>,
    /// Embedding vectors for tags, enabling the graph ANN when a custom
    /// (embedding) similarity is installed.
    vector_source: Option<Box<dyn TagVectorSource>>,
    /// ANN sidecar, rebuilt eagerly by every `&mut` entry mutation when
    /// `ann_enabled` — probes stay `&self`.
    ann: Option<AnnState>,
}

/// The ANN sidecar: the lexicographic tag list candidate ids index into,
/// its posting lists (cloned at rebuild so a rescore is one indexed read
/// instead of a string-keyed tree lookup per candidate), plus whichever
/// candidate structure fits the similarity in use.
struct AnnState {
    tags: Vec<SubjectiveTag>,
    postings: Vec<Vec<IndexEntry>>,
    kind: AnnKind,
}

enum AnnKind {
    Semantic(SemanticCandidateIndex),
    Graph(GraphAnnIndex),
}

impl SubjectiveIndex {
    pub fn new(similarity: ConceptualSimilarity, config: IndexConfig) -> Self {
        SubjectiveIndex {
            config,
            similarity,
            custom_similarity: None,
            entries: BTreeMap::new(),
            evidence: Vec::new(),
            history: Mutex::new(UserTagHistory::new()),
            vector_source: None,
            ann: None,
        }
    }

    /// Replace the similarity measure used for degrees and probes (the
    /// conceptual-vs-cosine ablation hook). Call before `index_tags`.
    pub fn with_custom_similarity(mut self, similarity: impl TagSimilarity + 'static) -> Self {
        self.custom_similarity = Some(Box::new(similarity));
        self
    }

    /// Install a vector source for tag embeddings. Required for the
    /// graph ANN path (custom similarity + `ann_enabled`); the default
    /// conceptual similarity builds its semantic cells without vectors.
    /// Call before `index_tags`.
    pub fn with_tag_vectors(mut self, source: impl TagVectorSource + 'static) -> Self {
        self.vector_source = Some(Box::new(source));
        self
    }

    /// The similarity score used for degrees and probes.
    fn sim(&self, a: &SubjectiveTag, b: &SubjectiveTag) -> f32 {
        match &self.custom_similarity {
            Some(s) => s.similarity(a, b),
            None => self.similarity.tag_similarity(a, b),
        }
    }

    pub fn config(&self) -> &IndexConfig {
        &self.config
    }

    /// The similarity checker backing this index.
    pub fn similarity(&self) -> &ConceptualSimilarity {
        &self.similarity
    }

    /// Switch the degree formula. Takes effect on the next
    /// [`SubjectiveIndex::index_tags`] call; existing postings are not
    /// recomputed automatically.
    pub fn set_degree_formula(&mut self, formula: DegreeFormula) {
        self.config.degree_formula = formula;
    }

    /// Toggle the ANN fallback probe on an already-built index (the
    /// scan-vs-ANN A/B hook), rebuilding or dropping the sidecar.
    pub fn set_ann_enabled(&mut self, enabled: bool) {
        self.config.ann_enabled = enabled;
        self.rebuild_ann();
    }

    /// Rebuild the ANN sidecar from the current entries. Always runs over
    /// the lexicographically sorted tag list, so the structure is a pure
    /// function of the tag set — independent of insertion order and of
    /// the thread count.
    fn rebuild_ann(&mut self) {
        self.ann = None;
        if !self.config.ann_enabled || self.entries.is_empty() {
            return;
        }
        let tags: Vec<SubjectiveTag> = self.entries.keys().cloned().collect();
        let postings: Vec<Vec<IndexEntry>> = self.entries.values().cloned().collect();
        let kind = if self.custom_similarity.is_none() {
            Some(AnnKind::Semantic(SemanticCandidateIndex::build(
                &self.similarity,
                &tags,
            )))
        } else if let Some(source) = &self.vector_source {
            GraphAnnIndex::build(
                source.as_ref(),
                &tags,
                self.config.ann_m,
                self.config.ann_ef,
            )
            .map(AnnKind::Graph)
        } else {
            // Custom similarity without vectors: nothing to search by,
            // fallback probes keep scanning.
            None
        };
        self.ann = kind.map(|kind| AnnState {
            tags,
            postings,
            kind,
        });
    }

    /// Register extracted evidence for one entity (idempotent per entity:
    /// later registrations replace earlier ones).
    pub fn register_entity(&mut self, evidence: EntityEvidence) {
        if let Some(existing) = self
            .evidence
            .iter_mut()
            .find(|e| e.entity_id == evidence.entity_id)
        {
            *existing = evidence;
        } else {
            self.evidence.push(evidence);
        }
    }

    /// Degree of truth of `tag` for one entity (Equation 1):
    /// `log(|R_e| + 1) × mean{ Sim(tag, t) : t ∈ T_e, Sim > θ_index }`,
    /// or `None` when no review tag clears the threshold.
    fn degree_of_truth(&self, tag: &SubjectiveTag, evidence: &EntityEvidence) -> Option<f32> {
        let mut sum = 0.0f32;
        let mut n = 0usize;
        for t in &evidence.review_tags {
            let sim = self.sim(tag, t);
            if sim > self.config.theta_index {
                sum += sim;
                n += 1;
            }
        }
        if n == 0 {
            return None;
        }
        Some(degree_value(
            self.config.degree_formula,
            sum,
            n,
            evidence.review_count,
            evidence.review_tags.len(),
        ))
    }

    /// Compute one tag's posting list from the registered evidence.
    fn build_postings(&self, tag: &SubjectiveTag) -> Vec<IndexEntry> {
        let mut postings: Vec<IndexEntry> = self
            .evidence
            .iter()
            .filter_map(|ev| {
                self.degree_of_truth(tag, ev).map(|d| IndexEntry {
                    entity_id: ev.entity_id,
                    degree_of_truth: d,
                    normalized: 0.0,
                })
            })
            .collect();
        finalize_postings(&mut postings);
        postings
    }

    /// Replace the entries map wholesale (the live-ingest publish path:
    /// `crate::live` computes posting lists incrementally and installs
    /// them here so a snapshot index probes exactly like a from-scratch
    /// build). Rebuilds the ANN sidecar for the new segment set.
    pub(crate) fn replace_entries(&mut self, entries: BTreeMap<SubjectiveTag, Vec<IndexEntry>>) {
        self.entries = entries;
        self.rebuild_ann();
    }

    /// (Re)index the given tags against all registered evidence. Existing
    /// tags are recomputed; construction fans out one task per tag across
    /// the `saccs-rt` pool. Posting lists come back positionally and each
    /// is a pure function of `(tag, evidence)`, so the resulting index is
    /// bitwise independent of the thread count.
    pub fn index_tags(&mut self, tags: &[SubjectiveTag]) {
        let _build = saccs_obs::span!("index.build");
        saccs_obs::counter!("index.build.tags").add(tags.len() as u64);
        let this = &*self;
        let postings = saccs_rt::parallel_map(tags.len(), 4, |i| this.build_postings(&tags[i]));
        for (tag, postings) in tags.iter().zip(postings) {
            self.entries.insert(tag.clone(), postings);
        }
        self.rebuild_ann();
    }

    /// Fallible [`SubjectiveIndex::index_tags`] behind the `index.build`
    /// failpoint. A failed call leaves the index exactly as it was (the
    /// fault fires before any posting list is rebuilt), so callers can
    /// retry the whole round.
    pub fn try_index_tags(
        &mut self,
        tags: &[SubjectiveTag],
    ) -> Result<(), saccs_fault::FaultError> {
        saccs_fault::failpoint!("index.build")?;
        self.index_tags(tags);
        Ok(())
    }

    /// Run an indexing round over the accumulated user tag history
    /// (Figure 1's "next indexing round"): every tag users asked about and
    /// the index didn't know becomes a first-class index tag. Returns how
    /// many new tags were indexed.
    pub fn reindex_from_history(&mut self) -> usize {
        let pending = self.history.lock().drain();
        let fresh: Vec<SubjectiveTag> = pending
            .into_iter()
            .filter(|t| !self.entries.contains_key(t))
            .collect();
        saccs_obs::counter!("index.reindex.rounds").inc();
        saccs_obs::counter!("index.reindex.tags").add(fresh.len() as u64);
        self.index_tags(&fresh);
        fresh.len()
    }

    /// Drop all indexed tags (registered evidence is kept, so a fresh
    /// `index_tags` call rebuilds from the same extractions). Used by the
    /// Table-2 runs to evaluate 6/12/18-tag index states on one pipeline.
    pub fn clear_tags(&mut self) {
        self.entries.clear();
        self.ann = None;
    }

    /// Number of index tags.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over the index tags.
    pub fn tags(&self) -> impl Iterator<Item = &SubjectiveTag> {
        self.entries.keys()
    }

    /// Export the current posting lists into a [`crate::TagAutomaton`]
    /// (the §7 search-automaton alternative: exact/prefix/fuzzy surface
    /// lookups in O(|phrase|)).
    pub fn to_automaton(&self) -> crate::TagAutomaton {
        crate::TagAutomaton::build(self.entries.iter().map(|(t, p)| (t.clone(), p.clone())))
    }

    /// Exact posting-list lookup.
    pub fn lookup(&self, tag: &SubjectiveTag) -> Option<&[IndexEntry]> {
        self.entries.get(tag).map(|v| v.as_slice())
    }

    /// Exact posting-list length for a tag (`0` when the tag is not
    /// indexed). The cost-based filter planner in `saccs-query` orders
    /// intersections rarest-first on these per-tag statistics.
    pub fn posting_len(&self, tag: &SubjectiveTag) -> usize {
        self.entries.get(tag).map(|v| v.len()).unwrap_or(0)
    }

    /// Iterate `(tag, posting length)` statistics in ascending tag
    /// order — the planner's cardinality-estimation input.
    pub fn posting_stats(&self) -> impl Iterator<Item = (&SubjectiveTag, usize)> {
        self.entries.iter().map(|(t, v)| (t, v.len()))
    }

    /// Install a precomputed posting list for one tag from raw
    /// `(entity_id, degree)` pairs, ordered and normalized exactly like
    /// an indexing round (shared `finalize_postings`). Benches and
    /// property tests use this to assemble synthetic corpora of known
    /// posting shapes without fabricating review evidence.
    pub fn install_postings(&mut self, tag: SubjectiveTag, raw: Vec<(usize, f32)>) {
        let mut postings: Vec<IndexEntry> = raw
            .into_iter()
            .map(|(entity_id, degree_of_truth)| IndexEntry {
                entity_id,
                degree_of_truth,
                normalized: 0.0,
            })
            .collect();
        finalize_postings(&mut postings);
        self.entries.insert(tag, postings);
        self.rebuild_ann();
    }

    /// Effective θ_filter for a probe tag (the §7 dynamic-threshold
    /// extension; equals the configured θ_filter when disabled).
    pub fn theta_filter_for(&self, tag: &SubjectiveTag) -> f32 {
        if !self.config.dynamic_thresholds {
            return self.config.theta_filter;
        }
        let lex = self.similarity.lexicon();
        let base = self.config.theta_filter;
        match lex.opinion_group(&tag.opinion) {
            // Never *loosen* a generic probe, even when the configured
            // base already sits above the 0.95 cap.
            Some(g) if g.generic => (base + 0.15).min(0.95).max(base),
            Some(_) if lex.aspect_concept(&tag.aspect).is_some() => (base - 0.05).max(0.05),
            _ => base,
        }
    }

    /// Probe the index for a (possibly unknown) tag, per §3.2:
    ///
    /// * known tag → its postings verbatim;
    /// * unknown tag → union of postings of all index tags with
    ///   `similarity > θ_filter`, each entity's score summed over matching
    ///   tags as `Σ sim × degree`, and the tag is recorded in the user tag
    ///   history for the next indexing round.
    ///
    /// Returns `(entity_id, score)` sorted by descending score. Takes
    /// `&self`: the only mutation is the history record, which goes
    /// through the history mutex so concurrent serving threads can probe
    /// one shared index.
    pub fn probe(&self, tag: &SubjectiveTag) -> Vec<(usize, f32)> {
        if !self.entries.contains_key(tag) {
            self.history.lock().record(tag.clone());
        }
        self.probe_readonly(tag)
    }

    /// Fallible [`SubjectiveIndex::probe`] behind the `algo1.probe`
    /// failpoint: the index of a deployed service lives behind storage
    /// that can fail per-lookup. An injected failure happens *before*
    /// the probe, so neither postings nor the user tag history are
    /// touched by a failed call.
    pub fn try_probe(
        &self,
        tag: &SubjectiveTag,
    ) -> Result<Vec<(usize, f32)>, saccs_fault::FaultError> {
        saccs_fault::failpoint!("algo1.probe")?;
        Ok(self.probe(tag))
    }

    /// Read-only probe (no history side effect), for concurrent serving.
    pub fn probe_readonly(&self, tag: &SubjectiveTag) -> Vec<(usize, f32)> {
        if let Some(postings) = self.entries.get(tag) {
            // A known tag answers verbatim (§3.2) — unless its posting
            // list is empty (indexed, but no entity's reviews mention it),
            // in which case the similarity fallback is strictly more
            // informative than silence.
            if !postings.is_empty() {
                saccs_obs::counter!("index.probe.exact").inc();
                saccs_obs::trace::record(saccs_obs::trace::TraceEvent::Probe { exact: true });
                return postings
                    .iter()
                    .map(|e| (e.entity_id, e.degree_of_truth))
                    .collect();
            }
        }
        // θ_filter similarity fallback: the tag is unknown (or indexed
        // empty). The exact/fallback counter ratio is the index miss
        // rate under real query traffic.
        saccs_obs::counter!("index.probe.fallback").inc();
        saccs_obs::trace::record(saccs_obs::trace::TraceEvent::Probe { exact: false });
        let theta = self.theta_filter_for(tag);
        if let Some(state) = &self.ann {
            if self.config.ann_verify {
                // Equality mode: answer from the scan, run the ANN probe
                // alongside, and account every bitwise divergence.
                let scan = self.probe_scan(tag, theta);
                match self.probe_ann(state, tag, theta) {
                    Some(ann) if Self::ranked_bitwise_eq(&scan, &ann) => {
                        saccs_obs::counter!("index.probe.ann.verified").inc();
                    }
                    Some(_) => {
                        saccs_obs::counter!("index.probe.ann.mismatch").inc();
                    }
                    None => {}
                }
                return scan;
            }
            match self.probe_ann(state, tag, theta) {
                Some(out) => return out,
                // No probe vector for this tag: scan rather than lie.
                None => {
                    saccs_obs::counter!("index.probe.ann.scan_fallback").inc();
                }
            }
        }
        self.probe_scan(tag, theta)
    }

    /// The exhaustive θ_filter fallback: score every index tag.
    fn probe_scan(&self, tag: &SubjectiveTag, theta: f32) -> Vec<(usize, f32)> {
        let mut hits: Vec<(usize, f32)> = Vec::new();
        for (index_tag, postings) in &self.entries {
            let sim = self.sim(tag, index_tag);
            if sim > theta {
                for e in postings {
                    hits.push((e.entity_id, sim * e.degree_of_truth));
                }
            }
        }
        Self::rank_hits(hits)
    }

    /// ANN fallback: fetch candidates, exactly rescore them in ascending
    /// tag order (= the scan's iteration order), and rank. With the
    /// semantic cells the candidate set is a superset of the scan's
    /// matches, so the surviving `(tag, posting)` sequence — and with it
    /// every f32 addition — is identical to the scan's and the ranking
    /// is bitwise equal. `None` when the probe tag cannot be embedded.
    fn probe_ann(
        &self,
        state: &AnnState,
        tag: &SubjectiveTag,
        theta: f32,
    ) -> Option<Vec<(usize, f32)>> {
        let mut hits: Vec<(usize, f32)> = Vec::new();
        let mut rescored = 0u32;
        let (candidates, visited) = match &state.kind {
            AnnKind::Semantic(cells) => {
                // Fused candidate + per-cell exact rescore: scores come
                // back bitwise equal to `sim()` without paying a lexicon
                // resolution per candidate.
                let sc = cells.rescore(&self.similarity, tag, theta, &state.tags);
                for &(id, sim) in &sc.scored {
                    if sim > theta {
                        rescored += 1;
                        for e in &state.postings[id as usize] {
                            hits.push((e.entity_id, sim * e.degree_of_truth));
                        }
                    }
                }
                (sc.scored.len() as u32, sc.visited)
            }
            AnnKind::Graph(graph) => {
                let v = self.vector_source.as_ref()?.vector(tag)?;
                let cand = graph.candidates(&v, self.config.ann_ef)?;
                for &id in &cand.ids {
                    let sim = self.sim(tag, &state.tags[id as usize]);
                    if sim > theta {
                        rescored += 1;
                        for e in &state.postings[id as usize] {
                            hits.push((e.entity_id, sim * e.degree_of_truth));
                        }
                    }
                }
                (cand.ids.len() as u32, cand.visited)
            }
        };
        saccs_obs::counter!("index.probe.ann.candidates").add(u64::from(candidates));
        saccs_obs::counter!("index.probe.ann.rescored").add(u64::from(rescored));
        saccs_obs::counter!("index.probe.ann.visited").add(u64::from(visited));
        saccs_obs::trace::record(saccs_obs::trace::TraceEvent::ProbeAnn {
            candidates,
            rescored,
            visited,
        });
        Some(Self::rank_hits(hits))
    }

    /// Collapse `(entity, sim × degree)` hits — recorded in tag-major
    /// scan order — into the ranked `(entity, score)` list. The stable
    /// sort keeps each entity's contributions in encounter order, so the
    /// left-to-right fold adds them in exactly the sequence the previous
    /// `BTreeMap` accumulation did: scores are bit-for-bit unchanged,
    /// without a tree lookup per hit (`BENCH_probe` measures the win).
    fn rank_hits(mut hits: Vec<(usize, f32)>) -> Vec<(usize, f32)> {
        hits.sort_by_key(|&(id, _)| id);
        let mut out: Vec<(usize, f32)> = Vec::with_capacity(hits.len());
        for (id, v) in hits {
            match out.last_mut() {
                Some((last, acc)) if *last == id => *acc += v,
                _ => out.push((id, v)),
            }
        }
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Exact (id, score-bits, order) equality of two rankings.
    fn ranked_bitwise_eq(a: &[(usize, f32)], b: &[(usize, f32)]) -> bool {
        a.len() == b.len()
            && a.iter()
                .zip(b)
                .all(|(x, y)| x.0 == y.0 && x.1.to_bits() == y.1.to_bits())
    }

    /// Pending unknown tags (user tag history). Returns the guard; the
    /// `Deref` impl keeps existing `.len()`/`.contains()` call sites
    /// working, but holding it across another probe blocks that probe's
    /// history record.
    pub fn history(&self) -> MutexGuard<'_, UserTagHistory> {
        self.history.lock()
    }

    /// Serialize the posting lists to bytes: one `opinion|aspect\t
    /// id:degree:norm,...` line per tag, straight off the entries map —
    /// no intermediate keyed map, no posting-list clones. The user tag
    /// history follows as `#history\topinion|aspect\tcount` lines, so a
    /// snapshot taken mid-flight (unknown tags recorded but not yet
    /// re-indexed) restores with those in-flight requests intact instead
    /// of silently dropping the next indexing round's input.
    pub fn snapshot(&self) -> bytes::Bytes {
        let mut out = String::new();
        for (tag, entries) in &self.entries {
            out.push_str(&tag.opinion);
            out.push('|');
            out.push_str(&tag.aspect);
            out.push('\t');
            for (i, e) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{}:{}:{}",
                    e.entity_id, e.degree_of_truth, e.normalized
                );
            }
            out.push('\n');
        }
        let history = self.history.lock();
        for (tag, count) in history.entries() {
            let _ = writeln!(out, "#history\t{}|{}\t{count}", tag.opinion, tag.aspect);
        }
        bytes::Bytes::from(out.into_bytes())
    }

    /// Rebuild the posting lists from a [`SubjectiveIndex::snapshot`]
    /// byte image, replacing the current entries (registered evidence is
    /// untouched) and rebuilding the ANN sidecar. Returns the number of
    /// restored tags. `f32` values round-trip exactly: `Display` prints
    /// the shortest decimal that parses back to the same bits.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<usize, String> {
        let text = std::str::from_utf8(bytes).map_err(|e| format!("snapshot is not UTF-8: {e}"))?;
        let mut entries: BTreeMap<SubjectiveTag, Vec<IndexEntry>> = BTreeMap::new();
        let mut history = UserTagHistory::new();
        for (ln, line) in text.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            let bad = |what: &str| format!("snapshot line {}: {what}", ln + 1);
            let (key, rest) = line.split_once('\t').ok_or_else(|| bad("missing tab"))?;
            if key == "#history" {
                let (tag_key, count) = rest
                    .split_once('\t')
                    .ok_or_else(|| bad("history line needs tag\\tcount"))?;
                let (opinion, aspect) = tag_key
                    .split_once('|')
                    .ok_or_else(|| bad("missing | in history tag"))?;
                history.set_count(
                    SubjectiveTag::new(opinion, aspect),
                    count.parse().map_err(|_| bad("bad history count"))?,
                );
                continue;
            }
            let (opinion, aspect) = key
                .split_once('|')
                .ok_or_else(|| bad("missing | in tag key"))?;
            let tag = SubjectiveTag {
                opinion: opinion.to_string(),
                aspect: aspect.to_string(),
            };
            let mut postings: Vec<IndexEntry> = Vec::new();
            for part in rest.split(',').filter(|p| !p.is_empty()) {
                let mut fields = part.splitn(3, ':');
                match (fields.next(), fields.next(), fields.next()) {
                    (Some(id), Some(degree), Some(norm)) => postings.push(IndexEntry {
                        entity_id: id.parse().map_err(|_| bad("bad entity id"))?,
                        degree_of_truth: degree.parse().map_err(|_| bad("bad degree"))?,
                        normalized: norm.parse().map_err(|_| bad("bad normalized"))?,
                    }),
                    _ => return Err(bad("posting needs id:degree:norm")),
                }
            }
            entries.insert(tag, postings);
        }
        let restored = entries.len();
        self.entries = entries;
        *self.history.lock() = history;
        self.rebuild_ann();
        Ok(restored)
    }

    /// Render the Table-1 view of the index (tags with their top entities
    /// and normalized degrees of truth).
    pub fn render_table(&self, top_k: usize, name_of: impl Fn(usize) -> String) -> String {
        let mut out = String::from("Tag                    Entities\n");
        for (tag, postings) in &self.entries {
            let mut first = true;
            for e in postings.iter().take(top_k) {
                if first {
                    out.push_str(&format!("{:<22} ", tag.phrase()));
                    first = false;
                } else {
                    out.push_str(&" ".repeat(23));
                }
                out.push_str(&format!("{} ({:.2})\n", name_of(e.entity_id), e.normalized));
            }
            if postings.is_empty() {
                out.push_str(&format!("{:<22} (no entities)\n", tag.phrase()));
            }
        }
        out
    }
}

/// The degree-of-truth value for one `(tag, entity)` pair, given the
/// θ_index-filtered similarity fold `(sum, n)` over the entity's review
/// tags. Shared by the batch builder above and the incremental live
/// path (`crate::live`): both feed it the *same* left-fold `sum` (f32
/// addition in review order), so batch and incremental degrees are
/// bitwise identical.
pub(crate) fn degree_value(
    formula: DegreeFormula,
    sum: f32,
    n: usize,
    review_count: usize,
    total_tags: usize,
) -> f32 {
    let mean = sum / n as f32;
    let total = total_tags.max(1) as f32;
    let log_reviews = ((review_count + 1) as f32).ln();
    match formula {
        DegreeFormula::Equation1 => log_reviews * mean,
        DegreeFormula::MatchVolume => ((n + 1) as f32).ln() * mean,
        DegreeFormula::MentionRate => log_reviews * sum / total,
        DegreeFormula::PureRate => sum / total,
        DegreeFormula::PureMean => mean,
    }
}

/// Order a freshly computed posting list and fill in the normalized
/// column: stable sort by descending degree (ties keep evidence order),
/// then rescale against the max. Shared by batch and live builds so the
/// posting byte layout cannot drift between the two paths.
pub(crate) fn finalize_postings(postings: &mut [IndexEntry]) {
    postings.sort_by(|a, b| b.degree_of_truth.total_cmp(&a.degree_of_truth));
    let max = postings.first().map(|e| e.degree_of_truth).unwrap_or(0.0);
    if max > 0.0 {
        for e in postings.iter_mut() {
            e.normalized = e.degree_of_truth / max;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saccs_text::{Domain, Lexicon};

    fn index() -> SubjectiveIndex {
        SubjectiveIndex::new(
            ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants)),
            IndexConfig::default(),
        )
    }

    fn tag(op: &str, asp: &str) -> SubjectiveTag {
        SubjectiveTag::new(op, asp)
    }

    fn evidence(id: usize, reviews: usize, tags: &[(&str, &str)]) -> EntityEvidence {
        EntityEvidence {
            entity_id: id,
            review_count: reviews,
            review_tags: tags.iter().map(|(o, a)| tag(o, a)).collect(),
        }
    }

    #[test]
    fn figure1_scenario() {
        // E1: "good food", E3: "superb atmosphere", E5: "amazing pizza".
        // Index tags: "good food", "great atmosphere". E1 and E5 must land
        // under "good food"; E3 must not.
        let mut idx = index();
        idx.register_entity(evidence(1, 1, &[("good", "food")]));
        idx.register_entity(evidence(3, 1, &[("superb", "atmosphere")]));
        idx.register_entity(evidence(5, 1, &[("amazing", "pizza")]));
        idx.index_tags(&[tag("good", "food"), tag("great", "atmosphere")]);

        let food = idx.lookup(&tag("good", "food")).unwrap();
        let food_ids: Vec<usize> = food.iter().map(|e| e.entity_id).collect();
        assert!(food_ids.contains(&1));
        assert!(
            food_ids.contains(&5),
            "amazing pizza ≈ good food (concept subsumption)"
        );
        assert!(!food_ids.contains(&3));

        let atmo = idx.lookup(&tag("great", "atmosphere")).unwrap();
        let atmo_ids: Vec<usize> = atmo.iter().map(|e| e.entity_id).collect();
        assert_eq!(atmo_ids, vec![3]);
    }

    #[test]
    fn exact_mention_outranks_similar_mention() {
        let mut idx = index();
        idx.register_entity(evidence(0, 3, &[("good", "food"), ("good", "food")]));
        idx.register_entity(evidence(1, 3, &[("amazing", "pizza")]));
        idx.index_tags(&[tag("good", "food")]);
        let postings = idx.lookup(&tag("good", "food")).unwrap();
        assert_eq!(postings[0].entity_id, 0);
        assert!(postings[0].degree_of_truth > postings[1].degree_of_truth);
        assert_eq!(postings[0].normalized, 1.0);
    }

    #[test]
    fn review_volume_weights_degrees() {
        // Same mention profile, more reviews → higher degree (Eq. 1's
        // log(|R_e|+1) factor: "SACCS privileges the entities having more
        // reviews").
        let mut idx = index();
        idx.register_entity(evidence(0, 2, &[("good", "food")]));
        idx.register_entity(evidence(1, 50, &[("good", "food")]));
        idx.index_tags(&[tag("good", "food")]);
        let postings = idx.lookup(&tag("good", "food")).unwrap();
        assert_eq!(postings[0].entity_id, 1);
        let ratio = postings[0].degree_of_truth / postings[1].degree_of_truth;
        assert!((ratio - (51f32.ln() / 3f32.ln())).abs() < 1e-4);
    }

    #[test]
    fn volume_weight_can_be_ablated() {
        let mut idx = SubjectiveIndex::new(
            ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants)),
            IndexConfig {
                degree_formula: DegreeFormula::PureMean,
                ..Default::default()
            },
        );
        idx.register_entity(evidence(0, 2, &[("good", "food")]));
        idx.register_entity(evidence(1, 50, &[("good", "food")]));
        idx.index_tags(&[tag("good", "food")]);
        let postings = idx.lookup(&tag("good", "food")).unwrap();
        assert!((postings[0].degree_of_truth - postings[1].degree_of_truth).abs() < 1e-6);
    }

    #[test]
    fn match_count_weight_rewards_mention_rate() {
        let mut idx = SubjectiveIndex::new(
            ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants)),
            IndexConfig {
                degree_formula: DegreeFormula::MatchVolume,
                ..Default::default()
            },
        );
        // Same review volume; entity 1 has three matching mentions, entity
        // 0 has one.
        idx.register_entity(evidence(0, 10, &[("good", "food")]));
        idx.register_entity(evidence(
            1,
            10,
            &[("good", "food"), ("good", "food"), ("good", "food")],
        ));
        idx.index_tags(&[tag("good", "food")]);
        let postings = idx.lookup(&tag("good", "food")).unwrap();
        assert_eq!(postings[0].entity_id, 1);
    }

    #[test]
    fn probe_unknown_tag_unions_similar_tags_and_records_history() {
        // §3.2's walk-through: "delicious food" is absent; it pulls from
        // "good food" and "creative cooking" postings.
        let mut idx = index();
        idx.register_entity(evidence(0, 1, &[("good", "food")]));
        idx.register_entity(evidence(1, 1, &[("creative", "cooking")]));
        idx.register_entity(evidence(2, 1, &[("fast", "delivery")]));
        idx.index_tags(&[
            tag("good", "food"),
            tag("creative", "cooking"),
            tag("fast", "delivery"),
        ]);
        let result = idx.probe(&tag("delicious", "food"));
        let ids: Vec<usize> = result.iter().map(|(e, _)| *e).collect();
        assert!(ids.contains(&0), "good food contributor missing");
        assert!(ids.contains(&1), "creative cooking contributor missing");
        assert!(!ids.contains(&2), "fast delivery must not contribute");
        // good food is the closer tag → entity 0 scores above entity 1.
        assert_eq!(result[0].0, 0);
        assert_eq!(idx.history().len(), 1);
        assert!(idx.history().contains(&tag("delicious", "food")));
    }

    #[test]
    fn known_tag_probe_is_verbatim_and_leaves_no_history() {
        let mut idx = index();
        idx.register_entity(evidence(0, 1, &[("nice", "staff")]));
        idx.index_tags(&[tag("nice", "staff")]);
        let result = idx.probe(&tag("nice", "staff"));
        assert_eq!(result.len(), 1);
        assert!(idx.history().is_empty());
    }

    #[test]
    fn reindex_from_history_adds_tags() {
        let mut idx = index();
        idx.register_entity(evidence(0, 2, &[("romantic", "ambiance")]));
        idx.index_tags(&[tag("good", "food")]);
        assert_eq!(idx.len(), 1);
        let _ = idx.probe(&tag("romantic", "ambiance")); // unknown → history
        let added = idx.reindex_from_history();
        assert_eq!(added, 1);
        assert_eq!(idx.len(), 2);
        // Now a first-class tag with direct postings.
        let postings = idx.lookup(&tag("romantic", "ambiance")).unwrap();
        assert_eq!(postings[0].entity_id, 0);
        assert!(idx.history().is_empty());
    }

    #[test]
    fn opposite_polarity_never_enters_postings() {
        let mut idx = index();
        idx.register_entity(evidence(0, 1, &[("bland", "food")]));
        idx.index_tags(&[tag("delicious", "food")]);
        assert!(idx.lookup(&tag("delicious", "food")).unwrap().is_empty());
    }

    #[test]
    fn parallel_and_serial_builds_agree() {
        let mut idx = index();
        for i in 0..40 {
            idx.register_entity(evidence(
                i,
                i + 1,
                &[("good", "food"), ("nice", "staff"), ("quick", "service")],
            ));
        }
        let tags: Vec<SubjectiveTag> = vec![
            tag("good", "food"),
            tag("delicious", "food"),
            tag("nice", "staff"),
            tag("friendly", "waiters"),
            tag("quick", "service"),
            tag("fast", "delivery"),
        ];
        idx.index_tags(&tags);
        for t in &tags {
            let via_parallel = idx.lookup(t).unwrap().to_vec();
            let direct = idx.build_postings(t);
            assert_eq!(via_parallel.len(), direct.len());
            for (a, b) in via_parallel.iter().zip(&direct) {
                assert_eq!(a.entity_id, b.entity_id);
                assert!((a.degree_of_truth - b.degree_of_truth).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn snapshot_contains_all_tags() {
        let mut idx = index();
        idx.register_entity(evidence(0, 1, &[("good", "food")]));
        idx.index_tags(&[tag("good", "food"), tag("nice", "staff")]);
        let bytes = idx.snapshot();
        let text = String::from_utf8(bytes.to_vec()).unwrap();
        assert!(text.contains("good|food"));
        assert!(text.contains("nice|staff"));
    }

    #[test]
    fn snapshot_restore_round_trips_and_preserves_ann_vs_scan_equality() {
        let mut idx = SubjectiveIndex::new(
            ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants)),
            IndexConfig {
                ann_enabled: true,
                ..Default::default()
            },
        );
        idx.register_entity(evidence(0, 3, &[("good", "food"), ("nice", "staff")]));
        idx.register_entity(evidence(
            1,
            7,
            &[("creative", "cooking"), ("quick", "service")],
        ));
        idx.register_entity(evidence(2, 2, &[("romantic", "ambiance")]));
        idx.index_tags(&[
            tag("good", "food"),
            tag("nice", "staff"),
            tag("creative", "cooking"),
            tag("quick", "service"),
            tag("romantic", "ambiance"),
        ]);
        let bytes = idx.snapshot();

        let mut restored = SubjectiveIndex::new(
            ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants)),
            IndexConfig {
                ann_enabled: true,
                ..Default::default()
            },
        );
        assert_eq!(restored.restore(&bytes).unwrap(), idx.len());
        // Postings round-trip bit-exactly (Display → parse is lossless).
        for t in idx.tags() {
            let a = idx.lookup(t).unwrap();
            let b = restored.lookup(t).unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.entity_id, y.entity_id);
                assert_eq!(x.degree_of_truth.to_bits(), y.degree_of_truth.to_bits());
                assert_eq!(x.normalized.to_bits(), y.normalized.to_bits());
            }
        }
        // And the re-derived ANN sidecar answers fallback probes bitwise
        // identically to the exhaustive scan on the restored index.
        for probe in [tag("delicious", "food"), tag("friendly", "waiters")] {
            let theta = restored.theta_filter_for(&probe);
            let ann = restored.probe_readonly(&probe);
            let scan = restored.probe_scan(&probe, theta);
            assert!(SubjectiveIndex::ranked_bitwise_eq(&ann, &scan));
            assert!(!ann.is_empty());
        }
        // A second snapshot of the restored index is byte-identical.
        assert_eq!(bytes, restored.snapshot());
    }

    #[test]
    fn snapshot_round_trip_preserves_pending_history() {
        // Regression: snapshots used to drop the user tag history, so a
        // save/restore cycle lost every in-flight unknown-tag request
        // (the Figure-1 adaptation loop restarted from zero). The
        // `#history` lines now carry the counts across.
        let mut idx = index();
        idx.register_entity(evidence(0, 2, &[("good", "food")]));
        idx.index_tags(&[tag("good", "food")]);
        let _ = idx.probe(&tag("zorgle", "zzplace"));
        let _ = idx.probe(&tag("zorgle", "zzplace"));
        let _ = idx.probe(&tag("quiet", "place"));
        assert_eq!(idx.history().len(), 2);
        let bytes = idx.snapshot();

        let mut restored = index();
        restored.restore(&bytes).unwrap();
        assert_eq!(restored.history().len(), 2);
        assert_eq!(restored.history().count(&tag("zorgle", "zzplace")), 2);
        assert_eq!(restored.history().count(&tag("quiet", "place")), 1);
        // The round trip stays byte-stable with history present.
        assert_eq!(bytes, restored.snapshot());
    }

    #[test]
    fn render_table_matches_table1_shape() {
        let mut idx = index();
        idx.register_entity(evidence(0, 3, &[("good", "food")]));
        idx.register_entity(evidence(1, 2, &[("tasty", "pizza")]));
        idx.index_tags(&[tag("good", "food")]);
        let table = idx.render_table(3, |id| format!("Entity-{id}"));
        assert!(table.contains("good food"));
        assert!(table.contains("Entity-0"));
        assert!(table.contains("(1.00)"));
    }

    #[test]
    fn dynamic_thresholds_raise_the_bar_for_generic_opinions() {
        let mut idx = SubjectiveIndex::new(
            ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants)),
            IndexConfig {
                dynamic_thresholds: true,
                ..Default::default()
            },
        );
        let base = idx.config().theta_filter;
        // Generic opinion → raised threshold.
        assert!(idx.theta_filter_for(&tag("good", "lasagna")) > base);
        // Specific in-lexicon tag → lowered threshold.
        assert!(idx.theta_filter_for(&tag("romantic", "ambiance")) < base);
        // Out-of-lexicon → unchanged.
        assert_eq!(idx.theta_filter_for(&tag("zorgly", "blarg")), base);
        // Disabled → always the base.
        let idx2 = SubjectiveIndex::new(
            ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants)),
            IndexConfig::default(),
        );
        assert_eq!(idx2.theta_filter_for(&tag("good", "lasagna")), base);
        // And the raised bar actually filters: a generic probe that would
        // match under the static threshold matches fewer tags.
        idx.register_entity(evidence(0, 1, &[("delicious", "food")]));
        idx.register_entity(evidence(1, 1, &[("fresh", "ingredients")]));
        idx.index_tags(&[tag("delicious", "food"), tag("fresh", "ingredients")]);
        let dynamic_hits = idx.probe_readonly(&tag("great", "meal")).len();
        let mut static_idx = SubjectiveIndex::new(
            ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants)),
            IndexConfig::default(),
        );
        static_idx.register_entity(evidence(0, 1, &[("delicious", "food")]));
        static_idx.register_entity(evidence(1, 1, &[("fresh", "ingredients")]));
        static_idx.index_tags(&[tag("delicious", "food"), tag("fresh", "ingredients")]);
        let static_hits = static_idx.probe_readonly(&tag("great", "meal")).len();
        assert!(dynamic_hits <= static_hits);
    }

    #[test]
    fn automaton_export_matches_lookup() {
        let mut idx = index();
        idx.register_entity(evidence(0, 2, &[("good", "food"), ("nice", "staff")]));
        idx.index_tags(&[tag("good", "food"), tag("nice", "staff")]);
        let automaton = idx.to_automaton();
        assert_eq!(automaton.len(), 2);
        for t in [tag("good", "food"), tag("nice", "staff")] {
            let via_index = idx.lookup(&t).unwrap();
            let via_automaton = automaton.get(&t).unwrap();
            assert_eq!(via_index.len(), via_automaton.len());
        }
        // Fuzzy absorbs a one-letter typo the BTreeMap cannot.
        assert!(idx.lookup(&tag("goud", "food")).is_none());
        assert!(!automaton.fuzzy_get(&tag("goud", "food")).is_empty());
    }

    #[test]
    fn register_entity_is_idempotent_per_entity() {
        let mut idx = index();
        idx.register_entity(evidence(0, 1, &[("good", "food")]));
        idx.register_entity(evidence(0, 9, &[("good", "food")]));
        idx.index_tags(&[tag("good", "food")]);
        let postings = idx.lookup(&tag("good", "food")).unwrap();
        assert_eq!(postings.len(), 1);
        assert!((postings[0].degree_of_truth - 10f32.ln()).abs() < 1e-4);
    }
}

//! Search automaton over tag phrases (§7 future work).
//!
//! "As future work, we plan to investigate the incorporation of search
//! automata as a substitute for inverted indexes." This module implements
//! that substitute: a byte-trie automaton over tag phrases with posting
//! lists at accepting states, supporting
//!
//! * exact phrase lookup in `O(|phrase|)` independent of index size,
//! * prefix enumeration (autocomplete for conversational UIs),
//! * fuzzy lookup within Levenshtein distance 1 (typo'd user tags), via
//!   the classic product-construction walk of the trie against a
//!   single-error automaton.
//!
//! The automaton answers *surface* queries; semantic fallback (similar
//! tags via [`crate::index::SubjectiveIndex::probe`]) remains the inverted
//! index's job. The `retrieval_bench` criterion suite compares the two on
//! exact probes.

use crate::index::IndexEntry;
use saccs_text::SubjectiveTag;
use std::collections::BTreeMap;

/// One trie node: byte-labeled children plus an optional posting list.
#[derive(Debug, Default)]
struct Node {
    children: BTreeMap<u8, usize>,
    postings: Option<Vec<IndexEntry>>,
}

/// A byte-trie search automaton over tag phrases.
#[derive(Debug)]
pub struct TagAutomaton {
    nodes: Vec<Node>,
    len: usize,
}

impl Default for TagAutomaton {
    fn default() -> Self {
        Self::new()
    }
}

impl TagAutomaton {
    pub fn new() -> Self {
        TagAutomaton {
            nodes: vec![Node::default()],
            len: 0,
        }
    }

    /// Build from `(tag, postings)` pairs.
    pub fn build<I: IntoIterator<Item = (SubjectiveTag, Vec<IndexEntry>)>>(entries: I) -> Self {
        let mut automaton = Self::new();
        for (tag, postings) in entries {
            automaton.insert(&tag, postings);
        }
        automaton
    }

    /// Insert (or replace) a tag's postings.
    pub fn insert(&mut self, tag: &SubjectiveTag, postings: Vec<IndexEntry>) {
        let phrase = tag.phrase();
        let mut cur = 0usize;
        for &b in phrase.as_bytes() {
            let next = match self.nodes[cur].children.get(&b) {
                Some(&n) => n,
                None => {
                    let n = self.nodes.len();
                    self.nodes.push(Node::default());
                    self.nodes[cur].children.insert(b, n);
                    n
                }
            };
            cur = next;
        }
        if self.nodes[cur].postings.replace(postings).is_none() {
            self.len += 1;
        }
    }

    /// Number of stored tags.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of trie states (for size accounting).
    pub fn states(&self) -> usize {
        self.nodes.len()
    }

    /// Exact lookup.
    pub fn get(&self, tag: &SubjectiveTag) -> Option<&[IndexEntry]> {
        saccs_obs::counter!("automaton.get").inc();
        let phrase = tag.phrase();
        let mut cur = 0usize;
        for &b in phrase.as_bytes() {
            cur = *self.nodes[cur].children.get(&b)?;
        }
        self.nodes[cur].postings.as_deref()
    }

    /// All stored tags beginning with `prefix`, with their postings
    /// (conversational autocomplete). Results in lexicographic order.
    pub fn with_prefix(&self, prefix: &str) -> Vec<(String, &[IndexEntry])> {
        let mut cur = 0usize;
        for &b in prefix.as_bytes() {
            match self.nodes[cur].children.get(&b) {
                Some(&n) => cur = n,
                None => return Vec::new(),
            }
        }
        let mut out = Vec::new();
        let mut stack = vec![(cur, prefix.as_bytes().to_vec())];
        while let Some((node, path)) = stack.pop() {
            if let Some(postings) = &self.nodes[node].postings {
                out.push((
                    String::from_utf8_lossy(&path).into_owned(),
                    postings.as_slice(),
                ));
            }
            // Reverse order so the stack pops lexicographically.
            for (&b, &child) in self.nodes[node].children.iter().rev() {
                let mut p = path.clone();
                p.push(b);
                stack.push((child, p));
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Fuzzy lookup: all stored tags within Levenshtein distance 1 of the
    /// query phrase (one substitution, insertion or deletion — the typo
    /// model of §5.1's robustness discussion). Exact matches come first.
    pub fn fuzzy_get(&self, tag: &SubjectiveTag) -> Vec<(String, &[IndexEntry])> {
        saccs_obs::counter!("automaton.fuzzy_get").inc();
        let query = tag.phrase();
        let q = query.as_bytes();
        let mut out: Vec<(String, &[IndexEntry])> = Vec::new();
        // (node, position in query, errors used, path)
        let mut stack: Vec<(usize, usize, u8, Vec<u8>)> = vec![(0, 0, 0, Vec::new())];
        while let Some((node, pos, errs, path)) = stack.pop() {
            if pos == q.len() {
                if let Some(postings) = &self.nodes[node].postings {
                    out.push((String::from_utf8_lossy(&path).into_owned(), postings));
                }
                // One trailing insertion still allowed.
                if errs == 0 {
                    for (&b, &child) in &self.nodes[node].children {
                        if let Some(postings) = &self.nodes[child].postings {
                            let mut p = path.clone();
                            p.push(b);
                            out.push((String::from_utf8_lossy(&p).into_owned(), postings));
                        }
                    }
                }
                continue;
            }
            // Deletion of q[pos] (skip a query byte).
            if errs == 0 {
                stack.push((node, pos + 1, 1, path.clone()));
            }
            for (&b, &child) in &self.nodes[node].children {
                let mut p = path.clone();
                p.push(b);
                if b == q[pos] {
                    // Exact step.
                    stack.push((child, pos + 1, errs, p));
                } else if errs == 0 {
                    // Substitution.
                    stack.push((child, pos + 1, 1, p.clone()));
                    // Insertion of b (stay at q[pos]).
                    stack.push((child, pos, 1, p));
                }
            }
        }
        out.sort_by(|a, b| {
            let exact_a = a.0 == query;
            let exact_b = b.0 == query;
            exact_b.cmp(&exact_a).then(a.0.cmp(&b.0))
        });
        out.dedup_by(|a, b| a.0 == b.0);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: usize) -> IndexEntry {
        IndexEntry {
            entity_id: id,
            degree_of_truth: 1.0,
            normalized: 1.0,
        }
    }

    fn tag(op: &str, asp: &str) -> SubjectiveTag {
        SubjectiveTag::new(op, asp)
    }

    fn automaton() -> TagAutomaton {
        TagAutomaton::build(vec![
            (tag("delicious", "food"), vec![entry(1)]),
            (tag("delicate", "food"), vec![entry(2)]),
            (tag("nice", "staff"), vec![entry(3)]),
            (tag("quick", "service"), vec![entry(4)]),
        ])
    }

    #[test]
    fn exact_lookup() {
        let a = automaton();
        assert_eq!(a.len(), 4);
        assert_eq!(a.get(&tag("delicious", "food")).unwrap()[0].entity_id, 1);
        assert!(a.get(&tag("bland", "food")).is_none());
    }

    #[test]
    fn insert_replaces() {
        let mut a = automaton();
        a.insert(&tag("nice", "staff"), vec![entry(9)]);
        assert_eq!(a.len(), 4, "replacement must not grow the tag count");
        assert_eq!(a.get(&tag("nice", "staff")).unwrap()[0].entity_id, 9);
    }

    #[test]
    fn prefix_enumeration_is_sorted() {
        let a = automaton();
        let hits = a.with_prefix("delic");
        let phrases: Vec<&str> = hits.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(phrases, vec!["delicate food", "delicious food"]);
        assert!(a.with_prefix("zzz").is_empty());
        assert_eq!(a.with_prefix("").len(), 4);
    }

    #[test]
    fn fuzzy_matches_one_edit() {
        let a = automaton();
        // Substitution: "delicioas food".
        let hits = a.fuzzy_get(&tag("delicioas", "food"));
        assert!(hits.iter().any(|(p, _)| p == "delicious food"), "{hits:?}");
        // Deletion in query (query is missing a char): "delicous food".
        let hits = a.fuzzy_get(&tag("delicous", "food"));
        assert!(hits.iter().any(|(p, _)| p == "delicious food"));
        // Insertion in query (query has an extra char): "deliciouss food".
        let hits = a.fuzzy_get(&tag("deliciouss", "food"));
        assert!(hits.iter().any(|(p, _)| p == "delicious food"));
        // Two edits away: nothing.
        let hits = a.fuzzy_get(&tag("delxcxous", "food"));
        assert!(hits.is_empty(), "{hits:?}");
    }

    #[test]
    fn fuzzy_puts_exact_match_first() {
        let a = automaton();
        let hits = a.fuzzy_get(&tag("delicious", "food"));
        assert_eq!(hits[0].0, "delicious food");
    }

    #[test]
    fn empty_automaton() {
        let a = TagAutomaton::new();
        assert!(a.is_empty());
        assert!(a.get(&tag("any", "thing")).is_none());
        assert!(a.fuzzy_get(&tag("any", "thing")).is_empty());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Every inserted tag is exactly retrievable, and the automaton
            /// size equals the number of distinct phrases.
            #[test]
            fn prop_insert_get_roundtrip(
                words in proptest::collection::vec(("[a-c]{1,4}", "[a-c]{1,4}"), 1..12)
            ) {
                let mut a = TagAutomaton::new();
                let mut distinct = std::collections::BTreeSet::new();
                for (i, (op, asp)) in words.iter().enumerate() {
                    let t = tag(op, asp);
                    distinct.insert(t.phrase());
                    a.insert(&t, vec![entry(i)]);
                }
                prop_assert_eq!(a.len(), distinct.len());
                for (op, asp) in &words {
                    prop_assert!(a.get(&tag(op, asp)).is_some());
                }
            }

            /// Fuzzy lookup is a superset of exact lookup and everything it
            /// returns is within edit distance 1 of the query phrase.
            #[test]
            fn prop_fuzzy_sound(
                words in proptest::collection::vec(("[a-b]{1,3}", "[a-b]{1,3}"), 1..8),
                q_op in "[a-b]{1,3}", q_asp in "[a-b]{1,3}",
            ) {
                let mut a = TagAutomaton::new();
                for (i, (op, asp)) in words.iter().enumerate() {
                    a.insert(&tag(op, asp), vec![entry(i)]);
                }
                let q = tag(&q_op, &q_asp);
                let hits = a.fuzzy_get(&q);
                if a.get(&q).is_some() {
                    prop_assert_eq!(&hits[0].0, &q.phrase());
                }
                for (p, _) in &hits {
                    let d = saccs_text::metrics::levenshtein(p, &q.phrase());
                    prop_assert!(d <= 1, "fuzzy returned {} at distance {}", p, d);
                }
            }
        }
    }
}

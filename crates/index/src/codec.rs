//! Zigzag/varint byte codec for segment persistence.
//!
//! Sealed segments and checkpointed posting lists go to disk in a
//! compact binary form: LEB128 varints for counts and deltas, zigzag
//! mapping for signed deltas (posting lists are degree-sorted, so
//! entity-id deltas can be negative), and raw IEEE-754 bit patterns for
//! the f32 columns. Encoding by bits — not by decimal text — makes the
//! round trip exact for every value including NaN payloads, which the
//! persistence proptests exercise on arbitrary inputs.

use crate::index::IndexEntry;

/// Decode failure: the byte stream was truncated, overflowed a varint,
/// or carried invalid UTF-8 where a string was expected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The stream ended mid-value.
    Truncated,
    /// A varint ran past 10 bytes (not produced by this encoder).
    VarintOverflow,
    /// A length-prefixed string was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "byte stream truncated mid-value"),
            CodecError::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            CodecError::BadUtf8 => write!(f, "length-prefixed string is not UTF-8"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Map a signed value onto the unsigned line so small magnitudes of
/// either sign stay small varints: `0, -1, 1, -2, 2, …` → `0, 1, 2, 3,
/// 4, …`.
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Append `v` as an LEB128 varint (7 payload bits per byte, high bit =
/// continuation).
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Read one LEB128 varint at `*pos`, advancing it past the value.
pub fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *buf.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        if shift >= 64 {
            return Err(CodecError::VarintOverflow);
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Read a length-prefixed UTF-8 string at `*pos`.
pub fn get_str(buf: &[u8], pos: &mut usize) -> Result<String, CodecError> {
    let len = get_varint(buf, pos)? as usize;
    let end = pos.checked_add(len).ok_or(CodecError::Truncated)?;
    let bytes = buf.get(*pos..end).ok_or(CodecError::Truncated)?;
    *pos = end;
    String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
}

/// Append one posting list: varint count, then per entry a zigzag
/// entity-id delta against the previous entry (the list is degree-sorted,
/// so ids are not monotone and deltas carry sign) and the two f32
/// columns as varint-packed bit patterns.
pub fn put_postings(out: &mut Vec<u8>, postings: &[IndexEntry]) {
    put_varint(out, postings.len() as u64);
    let mut prev = 0i64;
    for e in postings {
        let id = e.entity_id as i64;
        put_varint(out, zigzag_encode(id - prev));
        prev = id;
        put_varint(out, u64::from(e.degree_of_truth.to_bits()));
        put_varint(out, u64::from(e.normalized.to_bits()));
    }
}

/// Read one posting list written by [`put_postings`]. Bit-exact: the
/// f32 columns come back from their stored bit patterns, so NaNs and
/// signed zeros survive.
pub fn get_postings(buf: &[u8], pos: &mut usize) -> Result<Vec<IndexEntry>, CodecError> {
    let count = get_varint(buf, pos)? as usize;
    let mut postings = Vec::with_capacity(count.min(1 << 16));
    let mut prev = 0i64;
    for _ in 0..count {
        let id = prev + zigzag_decode(get_varint(buf, pos)?);
        prev = id;
        let degree = f32::from_bits(get_varint(buf, pos)? as u32);
        let normalized = f32::from_bits(get_varint(buf, pos)? as u32);
        postings.push(IndexEntry {
            entity_id: id as usize,
            degree_of_truth: degree,
            normalized,
        });
    }
    Ok(postings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 123_456, -654_321] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
        // Small magnitudes map to small codes (the point of zigzag).
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
    }

    #[test]
    fn varint_round_trips_and_is_compact() {
        let mut out = Vec::new();
        let values = [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX];
        for &v in &values {
            put_varint(&mut out, v);
        }
        assert_eq!(out.len(), 1 + 1 + 1 + 2 + 2 + 3 + 10);
        let mut pos = 0;
        for &v in &values {
            assert_eq!(get_varint(&out, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, out.len());
    }

    #[test]
    fn truncated_varint_errors_instead_of_looping() {
        let buf = [0x80u8, 0x80];
        let mut pos = 0;
        assert_eq!(get_varint(&buf, &mut pos), Err(CodecError::Truncated));
    }

    #[test]
    fn overlong_varint_is_rejected() {
        let buf = [0xffu8; 11];
        let mut pos = 0;
        assert_eq!(get_varint(&buf, &mut pos), Err(CodecError::VarintOverflow));
    }

    #[test]
    fn strings_round_trip() {
        let mut out = Vec::new();
        put_str(&mut out, "delicious");
        put_str(&mut out, "");
        put_str(&mut out, "crème brûlée");
        let mut pos = 0;
        assert_eq!(get_str(&out, &mut pos).unwrap(), "delicious");
        assert_eq!(get_str(&out, &mut pos).unwrap(), "");
        assert_eq!(get_str(&out, &mut pos).unwrap(), "crème brûlée");
        assert_eq!(pos, out.len());
    }

    #[test]
    fn postings_round_trip_bitwise_including_nan() {
        let postings = vec![
            IndexEntry {
                entity_id: 17,
                degree_of_truth: 3.912_023,
                normalized: 1.0,
            },
            IndexEntry {
                entity_id: 2,
                degree_of_truth: f32::NAN,
                normalized: -0.0,
            },
            IndexEntry {
                entity_id: 40_000,
                degree_of_truth: f32::MIN_POSITIVE,
                normalized: 0.25,
            },
        ];
        let mut out = Vec::new();
        put_postings(&mut out, &postings);
        let mut pos = 0;
        let back = get_postings(&out, &mut pos).unwrap();
        assert_eq!(pos, out.len());
        assert_eq!(back.len(), postings.len());
        for (a, b) in postings.iter().zip(&back) {
            assert_eq!(a.entity_id, b.entity_id);
            assert_eq!(a.degree_of_truth.to_bits(), b.degree_of_truth.to_bits());
            assert_eq!(a.normalized.to_bits(), b.normalized.to_bits());
        }
    }

    #[test]
    fn empty_postings_round_trip() {
        let mut out = Vec::new();
        put_postings(&mut out, &[]);
        let mut pos = 0;
        assert!(get_postings(&out, &mut pos).unwrap().is_empty());
    }
}

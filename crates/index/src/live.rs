//! Live review ingestion over the segmented index.
//!
//! [`LiveIndex`] is the serving-time counterpart of the frozen-corpus
//! [`SubjectiveIndex`]: reviews arrive through [`LiveIndex::add_review`]
//! while probes keep answering, with three guarantees the ingest suite
//! pins down bit for bit:
//!
//! * **Snapshot isolation.** Readers call [`LiveIndex::pin`] to get an
//!   `Arc` of the currently published [`LiveSnapshot`] — a fully built
//!   [`SubjectiveIndex`] (ANN sidecar included) over one consistent
//!   segment set. Writers publish new snapshots by swapping the `Arc`;
//!   a pinned reader keeps probing its frozen view for as long as it
//!   holds the pin, never observing a half-applied review.
//! * **Incremental = from-scratch.** Degrees of truth are maintained as
//!   per-`(tag, entity)` partial folds `(Σ sim, n)` extended by each new
//!   review's tags. Because f32 addition is folded left-to-right in
//!   review order — exactly the order a from-scratch
//!   [`SubjectiveIndex::index_tags`] build walks the concatenated
//!   review tags — the incremental degrees, posting orders and
//!   normalized columns are bitwise identical to a rebuild at every
//!   ingest state.
//! * **Merge independence.** Sealed segments carry records keyed by a
//!   globally unique ingest seq; compaction merges by sorting on that
//!   seq ([`crate::segment::merge_segments`]), so merged output — and
//!   everything readers see — is independent of merge order and timing.
//!
//! Durability goes through [`SegmentStore`]: sealed segments persist to
//! checksummed files and become visible only at a manifest commit, so
//! recovery ([`LiveIndex::open`]) always loads a consistent prefix of
//! the ingest stream no matter where a crash (or an armed `index.seal` /
//! `index.persist` / `index.merge` failpoint) cut the writer down.
//! Persistence failures never fail ingestion — the write stays buffered
//! and is retried at the next seal or [`LiveIndex::checkpoint`]; they
//! only widen the durability gap, which the `index.ingest.*` counters
//! account for.
//!
//! The live path always scores with the lexicon-backed
//! [`ConceptualSimilarity`] (a pure function of lexicon and config, so
//! snapshot clones score identically); custom embedding similarities
//! remain a frozen-index feature.

use crate::history::UserTagHistory;
use crate::index::{
    degree_value, finalize_postings, EntityEvidence, IndexConfig, IndexEntry, SubjectiveIndex,
};
use crate::segment::{
    merge_segments, Manifest, MemSegment, ReviewRecord, SealedSegment, SegmentStore, StoreError,
};
use parking_lot::{Mutex, RwLock};
use saccs_text::{ConceptualSimilarity, SubjectiveTag};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::{Arc, Condvar};

/// Live-ingestion tuning knobs.
#[derive(Debug, Clone)]
pub struct LiveConfig {
    /// Reviews buffered in the mem-segment before it is sealed (and,
    /// with a store, persisted). `0` disables auto-sealing — only
    /// [`LiveIndex::checkpoint`] seals then.
    pub seal_every: usize,
    /// Sealed-segment count that triggers compaction. `0` disables
    /// automatic compaction — only [`LiveIndex::compact_now`] merges.
    pub max_segments: usize,
    /// Run compaction on a dedicated `saccs-rt` worker thread instead
    /// of inline on the ingesting thread. Rankings are unaffected
    /// either way (posting lists are a pure function of the ingested
    /// record set, not of the segment layout).
    pub background_compaction: bool,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            seal_every: 64,
            max_segments: 8,
            background_compaction: false,
        }
    }
}

/// What one `add_review` call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestReceipt {
    /// The globally unique ingest seq assigned to the review.
    pub seq: u64,
    /// Whether this write sealed the mem-segment.
    pub sealed: bool,
    /// Sealed-segment count after the write.
    pub segments: usize,
}

/// One published, immutable view of the live index: a fully built
/// [`SubjectiveIndex`] over a consistent segment set. Probing a pinned
/// snapshot goes through exactly the frozen-index code paths (exact,
/// θ_filter fallback, dynamic thresholds, ANN), so live serving inherits
/// their determinism guarantees wholesale.
pub struct LiveSnapshot {
    index: SubjectiveIndex,
    ingested: u64,
    segments: usize,
}

impl LiveSnapshot {
    /// The probeable index view.
    pub fn index(&self) -> &SubjectiveIndex {
        &self.index
    }

    /// Reviews visible in this snapshot.
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Sealed segments backing this snapshot (the mem-segment's
    /// contents are included in the view but not counted here).
    pub fn segments(&self) -> usize {
        self.segments
    }
}

/// Partial degree fold for one `(tag, entity)` pair: `Σ sim` over the
/// entity's review tags clearing θ_index, and the match count. Extending
/// the fold with a new review's tags performs the same f32 additions, in
/// the same order, as a from-scratch fold over the concatenated tags —
/// the invariant that keeps incremental degrees bitwise exact.
#[derive(Debug, Clone, Copy, Default)]
struct TagAccum {
    sum: f32,
    n: u32,
}

/// Writer-side state, all under one mutex: the open mem-segment, the
/// sealed segments (with their persistence status), and the incremental
/// index state the publish step snapshots from.
#[derive(Default)]
struct Writer {
    mem: MemSegment,
    /// `(segment, persisted)` in seq order. A `false` flag marks a
    /// durability gap (failed persist) retried at the next seal or
    /// checkpoint.
    sealed: Vec<(SealedSegment, bool)>,
    next_seq: u64,
    ingested: u64,
    /// Per-entity evidence in first-seen order — the same order a
    /// from-scratch build registers entities, so posting construction
    /// walks entities identically.
    evidence: Vec<EntityEvidence>,
    entity_slot: BTreeMap<usize, usize>,
    /// Per index tag, the partial fold per evidence slot (aligned with
    /// `evidence`; missing trailing slots mean `n == 0`).
    accums: BTreeMap<SubjectiveTag, Vec<TagAccum>>,
    /// The canonical posting lists, updated incrementally; publishes
    /// clone this map into a fresh snapshot index.
    entries: BTreeMap<SubjectiveTag, Vec<IndexEntry>>,
}

/// Fold `tags` into the accumulator columns for one entity slot and
/// grow `evidence` bookkeeping. Returns the index tags whose posting
/// list must be recomputed (any tag with matches for this entity: its
/// degree inputs — fold, review count, total tag count — changed).
fn apply_review(
    w: &mut Writer,
    entity_id: usize,
    tags: &[SubjectiveTag],
    similarity: &ConceptualSimilarity,
    config: &IndexConfig,
) -> Vec<SubjectiveTag> {
    let slot = match w.entity_slot.get(&entity_id) {
        Some(&slot) => slot,
        None => {
            let slot = w.evidence.len();
            w.evidence.push(EntityEvidence {
                entity_id,
                review_count: 0,
                review_tags: Vec::new(),
            });
            w.entity_slot.insert(entity_id, slot);
            slot
        }
    };
    w.evidence[slot].review_count += 1;
    w.evidence[slot].review_tags.extend(tags.iter().cloned());
    let slots = w.evidence.len();
    let mut touched = Vec::new();
    for (tag, accs) in w.accums.iter_mut() {
        if accs.len() < slots {
            accs.resize(slots, TagAccum::default());
        }
        let acc = &mut accs[slot];
        for t in tags {
            let sim = similarity.tag_similarity(tag, t);
            if sim > config.theta_index {
                acc.sum += sim;
                acc.n += 1;
            }
        }
        if acc.n > 0 {
            touched.push(tag.clone());
        }
    }
    touched
}

/// Recompute one tag's posting list from its accumulator column —
/// entities in first-seen order, shared [`degree_value`] /
/// [`finalize_postings`] math, hence bitwise equal to
/// `SubjectiveIndex::build_postings` over the same evidence.
fn postings_from_accums(
    accs: &[TagAccum],
    evidence: &[EntityEvidence],
    config: &IndexConfig,
) -> Vec<IndexEntry> {
    let mut postings: Vec<IndexEntry> = accs
        .iter()
        .zip(evidence)
        .filter_map(|(acc, ev)| {
            (acc.n > 0).then(|| IndexEntry {
                entity_id: ev.entity_id,
                degree_of_truth: degree_value(
                    config.degree_formula,
                    acc.sum,
                    acc.n as usize,
                    ev.review_count,
                    ev.review_tags.len(),
                ),
                normalized: 0.0,
            })
        })
        .collect();
    finalize_postings(&mut postings);
    postings
}

/// Build a fresh accumulator column for a newly added index tag by
/// folding every entity's review tags in order (the same fold
/// `SubjectiveIndex::degree_of_truth` performs).
fn accum_column(
    evidence: &[EntityEvidence],
    tag: &SubjectiveTag,
    similarity: &ConceptualSimilarity,
    config: &IndexConfig,
) -> Vec<TagAccum> {
    evidence
        .iter()
        .map(|ev| {
            let mut acc = TagAccum::default();
            for t in &ev.review_tags {
                let sim = similarity.tag_similarity(tag, t);
                if sim > config.theta_index {
                    acc.sum += sim;
                    acc.n += 1;
                }
            }
            acc
        })
        .collect()
}

#[derive(Default)]
struct CompactorFlags {
    requested: bool,
    shutdown: bool,
}

#[derive(Default)]
struct CompactorSignal {
    flags: Mutex<CompactorFlags>,
    cv: Condvar,
}

struct LiveInner {
    similarity: ConceptualSimilarity,
    config: IndexConfig,
    live: LiveConfig,
    store: Option<SegmentStore>,
    writer: Mutex<Writer>,
    published: RwLock<Arc<LiveSnapshot>>,
    /// Unknown tags recorded by pinned probes, drained by
    /// [`LiveIndex::reindex_pending`]. Lock order: `writer` before
    /// `pending` (never the reverse while `writer` is held elsewhere).
    pending: Mutex<UserTagHistory>,
    comp: CompactorSignal,
}

impl LiveInner {
    /// Publish the writer's current state as a fresh immutable snapshot.
    fn publish_locked(&self, w: &Writer) {
        let mut index = SubjectiveIndex::new(self.similarity.clone(), self.config.clone());
        index.replace_entries(w.entries.clone());
        let snapshot = LiveSnapshot {
            index,
            ingested: w.ingested,
            segments: w.sealed.len(),
        };
        *self.published.write() = Arc::new(snapshot);
    }

    /// Seal the mem-segment (behind the `index.seal` failpoint — an
    /// injected fault defers the seal and the mem-segment keeps
    /// growing) and, with a store, persist + commit the durable prefix.
    fn seal_locked(&self, w: &mut Writer) -> bool {
        if saccs_fault::failpoint!("index.seal").is_err() {
            saccs_obs::counter!("index.ingest.seal_deferred").inc();
            return false;
        }
        let Some(segment) = w.mem.seal() else {
            return false;
        };
        w.sealed.push((segment, false));
        saccs_obs::counter!("index.ingest.seals").inc();
        saccs_obs::gauge!("index.segments").set(w.sealed.len() as f64);
        if self.store.is_some() {
            // Persistence failures are a durability gap, not an ingest
            // failure: counted, retried at the next seal/checkpoint.
            let _ = self.commit_locked(w, false);
        }
        true
    }

    /// Persist every not-yet-persisted sealed segment in seq order,
    /// then commit a manifest referencing the contiguous durable
    /// prefix (plus the tag set and pending history). Optionally
    /// checkpoints the posting lists alongside. Returns the first
    /// persist error, if any — the manifest still commits whatever
    /// prefix did persist.
    fn commit_locked(&self, w: &mut Writer, with_postings: bool) -> Result<(), StoreError> {
        let Some(store) = &self.store else {
            return Ok(());
        };
        let mut first_err = None;
        for (segment, persisted) in w.sealed.iter_mut() {
            if *persisted {
                continue;
            }
            match store.persist_segment(segment) {
                Ok(()) => *persisted = true,
                Err(e) => {
                    saccs_obs::counter!("index.ingest.persist_failed").inc();
                    first_err = Some(e);
                    break;
                }
            }
        }
        let durable: Vec<(u64, u64)> = w
            .sealed
            .iter()
            .take_while(|(_, persisted)| *persisted)
            .map(|(s, _)| (s.first_seq(), s.last_seq()))
            .collect();
        let postings_file = if with_postings && first_err.is_none() {
            match store.write_postings(&w.entries) {
                Ok(name) => Some(name),
                Err(e) => {
                    first_err = Some(e);
                    None
                }
            }
        } else {
            None
        };
        let manifest = Manifest {
            next_seq: durable.last().map(|&(_, last)| last + 1).unwrap_or(0),
            segments: durable,
            postings_file,
            tags: w.entries.keys().cloned().collect(),
            pending: self
                .pending
                .lock()
                .entries()
                .map(|(t, c)| (t.clone(), c))
                .collect(),
        };
        store.commit(&manifest)?;
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Merge all sealed segments into one. The `index.merge` failpoint
    /// sits between writing the merged image and swapping/committing:
    /// an abort there leaves the old segments live and the merged file
    /// an unreferenced orphan (swept at the next commit).
    fn compact(&self) -> Result<bool, StoreError> {
        let mut w = self.writer.lock();
        if w.sealed.len() < 2 {
            return Ok(false);
        }
        let segments: Vec<SealedSegment> = w.sealed.iter().map(|(s, _)| s.clone()).collect();
        let Some(merged) = merge_segments(&segments) else {
            return Ok(false);
        };
        let mut persisted = false;
        if let Some(store) = &self.store {
            if let Err(e) = store.persist_segment(&merged) {
                saccs_obs::counter!("index.ingest.merge_aborted").inc();
                return Err(e);
            }
            persisted = true;
        }
        if let Err(fault) = saccs_fault::failpoint!("index.merge") {
            saccs_obs::counter!("index.ingest.merge_aborted").inc();
            return Err(StoreError::Fault(fault));
        }
        w.sealed = vec![(merged, persisted)];
        saccs_obs::counter!("index.ingest.merges").inc();
        saccs_obs::gauge!("index.segments").set(1.0);
        let committed = self.commit_locked(&mut w, false);
        self.publish_locked(&w);
        drop(w);
        committed.map(|_| true)
    }
}

/// The live, ingesting index handle. See the module docs for the
/// isolation / equivalence / durability contract.
pub struct LiveIndex {
    inner: Arc<LiveInner>,
    compactor: Option<std::thread::JoinHandle<()>>,
}

impl LiveIndex {
    /// A memory-only live index (no persistence): segments seal and
    /// merge in memory, recovery is not available.
    pub fn new(similarity: ConceptualSimilarity, config: IndexConfig, live: LiveConfig) -> Self {
        Self::build(
            similarity,
            config,
            live,
            None,
            Writer::default(),
            UserTagHistory::new(),
        )
    }

    /// Open a persistent live index at `dir`, recovering the last
    /// committed manifest if one exists: committed segments are
    /// replayed in seq order through the same accumulator folds ingest
    /// uses, so the recovered index is bitwise identical to one that
    /// ingested exactly the durable prefix. A checkpointed posting
    /// image, when present, is cross-checked against the replay and a
    /// disagreement is reported as corruption.
    pub fn open(
        dir: impl Into<PathBuf>,
        similarity: ConceptualSimilarity,
        config: IndexConfig,
        live: LiveConfig,
    ) -> Result<Self, StoreError> {
        let store = SegmentStore::open(dir)?;
        let mut w = Writer::default();
        let mut pending = UserTagHistory::new();
        if let Some(loaded) = store.load()? {
            for tag in &loaded.manifest.tags {
                w.accums.insert(tag.clone(), Vec::new());
            }
            for segment in &loaded.segments {
                for record in segment.records() {
                    let _ =
                        apply_review(&mut w, record.entity_id, &record.tags, &similarity, &config);
                    w.ingested += 1;
                }
            }
            let tags: Vec<SubjectiveTag> = w.accums.keys().cloned().collect();
            for tag in tags {
                let postings = match w.accums.get(&tag) {
                    Some(accs) => postings_from_accums(accs, &w.evidence, &config),
                    None => Vec::new(),
                };
                w.entries.insert(tag, postings);
            }
            if let Some(checkpointed) = &loaded.postings {
                if *checkpointed != w.entries {
                    return Err(StoreError::Corrupt(
                        "checkpointed postings disagree with segment replay".into(),
                    ));
                }
            }
            let last_seq = loaded
                .segments
                .last()
                .map(|s| s.last_seq() + 1)
                .unwrap_or(0);
            w.next_seq = loaded.manifest.next_seq.max(last_seq);
            w.sealed = loaded
                .segments
                .into_iter()
                .map(|segment| (segment, true))
                .collect();
            for (tag, count) in loaded.manifest.pending {
                pending.set_count(tag, count);
            }
        }
        Ok(Self::build(
            similarity,
            config,
            live,
            Some(store),
            w,
            pending,
        ))
    }

    fn build(
        similarity: ConceptualSimilarity,
        config: IndexConfig,
        live: LiveConfig,
        store: Option<SegmentStore>,
        writer: Writer,
        pending: UserTagHistory,
    ) -> Self {
        let background = live.background_compaction;
        let inner = Arc::new(LiveInner {
            similarity,
            config,
            live,
            store,
            writer: Mutex::new(writer),
            published: RwLock::new(Arc::new(LiveSnapshot {
                index: SubjectiveIndex::new(
                    ConceptualSimilarity::new(saccs_text::Lexicon::new(
                        saccs_text::Domain::Restaurants,
                    )),
                    IndexConfig::default(),
                ),
                ingested: 0,
                segments: 0,
            })),
            pending: Mutex::new(pending),
            comp: CompactorSignal::default(),
        });
        {
            let w = inner.writer.lock();
            inner.publish_locked(&w);
        }
        let compactor = background.then(|| {
            let worker = Arc::clone(&inner);
            saccs_rt::spawn_worker("index-compact", move || loop {
                let mut flags = worker.comp.flags.lock();
                while !flags.requested && !flags.shutdown {
                    flags = worker
                        .comp
                        .cv
                        .wait(flags)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                if flags.shutdown {
                    break;
                }
                flags.requested = false;
                drop(flags);
                let _ = worker.compact();
            })
        });
        LiveIndex { inner, compactor }
    }

    /// The similarity measure scoring ingested reviews and probes.
    pub fn similarity(&self) -> &ConceptualSimilarity {
        &self.inner.similarity
    }

    /// The index configuration snapshots are built with.
    pub fn config(&self) -> &IndexConfig {
        &self.inner.config
    }

    /// Ingest one review: assign it the next global seq, extend the
    /// entity's evidence and every index tag's partial fold, recompute
    /// the touched posting lists, and publish a fresh snapshot. Seals
    /// (and persists) the mem-segment when it reaches `seal_every`, and
    /// triggers compaction when the sealed count reaches `max_segments`.
    pub fn add_review(&self, entity_id: usize, tags: &[SubjectiveTag]) -> IngestReceipt {
        let inner = &self.inner;
        let mut w = inner.writer.lock();
        let seq = w.next_seq;
        w.next_seq += 1;
        w.ingested += 1;
        w.mem.push(ReviewRecord {
            seq,
            entity_id,
            tags: tags.to_vec(),
        });
        let touched = apply_review(&mut w, entity_id, tags, &inner.similarity, &inner.config);
        for tag in touched {
            let postings = match w.accums.get(&tag) {
                Some(accs) => postings_from_accums(accs, &w.evidence, &inner.config),
                None => Vec::new(),
            };
            w.entries.insert(tag, postings);
        }
        saccs_obs::counter!("index.ingest.reviews").inc();
        let sealed = inner.live.seal_every > 0
            && w.mem.len() >= inner.live.seal_every
            && inner.seal_locked(&mut w);
        inner.publish_locked(&w);
        let segments = w.sealed.len();
        drop(w);
        saccs_obs::trace::record(saccs_obs::trace::TraceEvent::Ingest { sealed });
        if sealed && inner.live.max_segments > 0 && segments >= inner.live.max_segments {
            if inner.live.background_compaction {
                self.request_compaction();
            } else {
                let _ = inner.compact();
            }
        }
        IngestReceipt {
            seq,
            sealed,
            segments,
        }
    }

    /// Add index tags (initial vocabulary or a re-indexing round).
    /// Already-indexed tags are skipped; returns how many were new.
    pub fn add_tags(&self, tags: &[SubjectiveTag]) -> usize {
        let inner = &self.inner;
        let mut w = inner.writer.lock();
        let mut added = 0usize;
        for tag in tags {
            if w.entries.contains_key(tag) {
                continue;
            }
            let accs = accum_column(&w.evidence, tag, &inner.similarity, &inner.config);
            let postings = postings_from_accums(&accs, &w.evidence, &inner.config);
            w.accums.insert(tag.clone(), accs);
            w.entries.insert(tag.clone(), postings);
            added += 1;
        }
        if added > 0 {
            inner.publish_locked(&w);
            let _ = inner.commit_locked(&mut w, false);
        }
        added
    }

    /// Pin the currently published snapshot. The pin is just an `Arc`
    /// clone under a read lock — cheap, non-blocking for writers — and
    /// the returned view stays frozen however much is ingested after.
    pub fn pin(&self) -> Arc<LiveSnapshot> {
        Arc::clone(&self.inner.published.read())
    }

    /// Probe a pinned snapshot, recording tags the snapshot doesn't
    /// know in the live pending history (the Figure-1 adaptation loop),
    /// exactly like [`SubjectiveIndex::probe`] does on the frozen path.
    pub fn probe_pinned(&self, snapshot: &LiveSnapshot, tag: &SubjectiveTag) -> Vec<(usize, f32)> {
        if snapshot.index.lookup(tag).is_none() {
            self.inner.pending.lock().record(tag.clone());
        }
        snapshot.index.probe_readonly(tag)
    }

    /// Fallible [`LiveIndex::probe_pinned`] behind the `algo1.probe`
    /// failpoint (the same site the frozen index uses, so serve-layer
    /// chaos scenarios hit live and frozen backends alike).
    pub fn try_probe_pinned(
        &self,
        snapshot: &LiveSnapshot,
        tag: &SubjectiveTag,
    ) -> Result<Vec<(usize, f32)>, saccs_fault::FaultError> {
        saccs_fault::failpoint!("algo1.probe")?;
        Ok(self.probe_pinned(snapshot, tag))
    }

    /// Distinct unknown tags recorded by probes since the last round.
    pub fn pending_count(&self) -> usize {
        self.inner.pending.lock().len()
    }

    /// Run a re-indexing round over the pending unknown tags (most
    /// requested first). Returns how many new tags were indexed.
    pub fn reindex_pending(&self) -> usize {
        let drained = self.inner.pending.lock().drain();
        if drained.is_empty() {
            return 0;
        }
        saccs_obs::counter!("index.reindex.rounds").inc();
        let added = self.add_tags(&drained);
        saccs_obs::counter!("index.reindex.tags").add(added as u64);
        added
    }

    /// Merge all sealed segments into one now, synchronously. Returns
    /// whether a merge happened (needs at least two sealed segments).
    pub fn compact_now(&self) -> Result<bool, StoreError> {
        self.inner.compact()
    }

    /// Ask the background compactor to run (no-op signal when
    /// `background_compaction` is off).
    pub fn request_compaction(&self) {
        let mut flags = self.inner.comp.flags.lock();
        flags.requested = true;
        drop(flags);
        self.inner.comp.cv.notify_one();
    }

    /// Seal-aware checkpoint: seals the in-flight mem-segment (so
    /// unsealed writes are covered — the gap the snapshot regression
    /// test pins), persists every outstanding segment, writes the
    /// posting-list image, and commits the manifest. No-op persistence
    /// without a store.
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        let inner = &self.inner;
        let mut w = inner.writer.lock();
        if let Some(segment) = w.mem.seal() {
            w.sealed.push((segment, false));
            saccs_obs::counter!("index.ingest.seals").inc();
            saccs_obs::gauge!("index.segments").set(w.sealed.len() as f64);
        }
        let committed = inner.commit_locked(&mut w, true);
        inner.publish_locked(&w);
        committed
    }

    /// Every live record in seq order (sealed segments then the open
    /// mem-segment) — the replay input a from-scratch equivalence
    /// rebuild starts from.
    pub fn review_log(&self) -> Vec<ReviewRecord> {
        let w = self.inner.writer.lock();
        let mut log: Vec<ReviewRecord> = Vec::with_capacity(w.ingested as usize);
        for (segment, _) in &w.sealed {
            log.extend(segment.records().iter().cloned());
        }
        log.extend(w.mem.records().iter().cloned());
        log
    }

    /// Total reviews ingested (including ones still in the mem-segment).
    pub fn ingested(&self) -> u64 {
        self.inner.writer.lock().ingested
    }

    /// Current sealed-segment count.
    pub fn segment_count(&self) -> usize {
        self.inner.writer.lock().sealed.len()
    }

    /// Number of index tags.
    pub fn tag_count(&self) -> usize {
        self.inner.writer.lock().entries.len()
    }
}

impl Drop for LiveIndex {
    fn drop(&mut self) {
        if let Some(handle) = self.compactor.take() {
            {
                let mut flags = self.inner.comp.flags.lock();
                flags.shutdown = true;
            }
            self.inner.comp.cv.notify_all();
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saccs_text::{Domain, Lexicon};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tag(op: &str, asp: &str) -> SubjectiveTag {
        SubjectiveTag::new(op, asp)
    }

    fn sim() -> ConceptualSimilarity {
        ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants))
    }

    fn temp_dir(label: &str) -> PathBuf {
        static NONCE: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "saccs-live-{label}-{}-{}",
            std::process::id(),
            NONCE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// From-scratch comparator: replay the log into a frozen index the
    /// way a batch pipeline would (entities in first-seen order).
    fn rebuild(log: &[ReviewRecord], tags: &[SubjectiveTag]) -> SubjectiveIndex {
        let mut idx = SubjectiveIndex::new(sim(), IndexConfig::default());
        let mut evidence: Vec<EntityEvidence> = Vec::new();
        for record in log {
            match evidence
                .iter_mut()
                .find(|e| e.entity_id == record.entity_id)
            {
                Some(ev) => {
                    ev.review_count += 1;
                    ev.review_tags.extend(record.tags.iter().cloned());
                }
                None => evidence.push(EntityEvidence {
                    entity_id: record.entity_id,
                    review_count: 1,
                    review_tags: record.tags.clone(),
                }),
            }
        }
        for ev in evidence {
            idx.register_entity(ev);
        }
        idx.index_tags(tags);
        idx
    }

    fn bits(ranking: &[(usize, f32)]) -> Vec<(usize, u32)> {
        ranking.iter().map(|&(id, s)| (id, s.to_bits())).collect()
    }

    const TAGS: [(&str, &str); 3] = [
        ("good", "food"),
        ("nice", "staff"),
        ("romantic", "ambiance"),
    ];
    const PROBES: [(&str, &str); 4] = [
        ("good", "food"),
        ("delicious", "food"),
        ("friendly", "waiters"),
        ("quiet", "place"),
    ];
    const STREAM: [(usize, &[(&str, &str)]); 8] = [
        (0, &[("good", "food"), ("nice", "staff")]),
        (1, &[("amazing", "pizza")]),
        (0, &[("romantic", "ambiance")]),
        (2, &[("creative", "cooking"), ("good", "food")]),
        (1, &[("nice", "staff"), ("friendly", "staff")]),
        (3, &[]),
        (2, &[("good", "food")]),
        (0, &[("delicious", "food")]),
    ];

    fn index_tags() -> Vec<SubjectiveTag> {
        TAGS.iter().map(|(o, a)| tag(o, a)).collect()
    }

    #[test]
    fn incremental_matches_from_scratch_at_every_state() {
        let live = LiveIndex::new(
            sim(),
            IndexConfig::default(),
            LiveConfig {
                seal_every: 3,
                max_segments: 0,
                background_compaction: false,
            },
        );
        live.add_tags(&index_tags());
        for (entity, tags) in STREAM {
            let review: Vec<SubjectiveTag> = tags.iter().map(|(o, a)| tag(o, a)).collect();
            live.add_review(entity, &review);
            let frozen = rebuild(&live.review_log(), &index_tags());
            let snapshot = live.pin();
            for (o, a) in PROBES {
                let live_ranked = live.probe_pinned(&snapshot, &tag(o, a));
                let frozen_ranked = frozen.probe_readonly(&tag(o, a));
                assert_eq!(bits(&live_ranked), bits(&frozen_ranked), "probe {o} {a}");
            }
        }
    }

    #[test]
    fn compaction_does_not_change_rankings() {
        let live = LiveIndex::new(
            sim(),
            IndexConfig::default(),
            LiveConfig {
                seal_every: 2,
                max_segments: 0,
                background_compaction: false,
            },
        );
        live.add_tags(&index_tags());
        for (entity, tags) in STREAM {
            let review: Vec<SubjectiveTag> = tags.iter().map(|(o, a)| tag(o, a)).collect();
            live.add_review(entity, &review);
        }
        assert!(live.segment_count() >= 2);
        let snapshot_before = live.pin();
        let before: Vec<_> = PROBES
            .iter()
            .map(|(o, a)| bits(&live.probe_pinned(&snapshot_before, &tag(o, a))))
            .collect();
        assert!(live.compact_now().unwrap());
        assert_eq!(live.segment_count(), 1);
        let snapshot_after = live.pin();
        for ((o, a), expected) in PROBES.iter().zip(before) {
            assert_eq!(
                bits(&live.probe_pinned(&snapshot_after, &tag(o, a))),
                expected
            );
        }
        // The pre-compaction pin still answers identically: snapshot
        // isolation holds across the merge.
        for (o, a) in PROBES {
            assert_eq!(
                bits(&live.probe_pinned(&snapshot_after, &tag(o, a))),
                bits(&live.probe_pinned(&snapshot_before, &tag(o, a)))
            );
        }
    }

    #[test]
    fn pinned_snapshot_is_isolated_from_later_ingest() {
        let live = LiveIndex::new(sim(), IndexConfig::default(), LiveConfig::default());
        live.add_tags(&index_tags());
        live.add_review(0, &[tag("good", "food")]);
        let pinned = live.pin();
        let before = bits(&live.probe_pinned(&pinned, &tag("good", "food")));
        for _ in 0..10 {
            live.add_review(1, &[tag("good", "food")]);
        }
        // The pin still sees exactly one entity; a fresh pin sees two.
        assert_eq!(
            bits(&live.probe_pinned(&pinned, &tag("good", "food"))),
            before
        );
        assert_eq!(
            live.probe_pinned(&live.pin(), &tag("good", "food")).len(),
            2
        );
    }

    #[test]
    fn persist_recover_round_trips_bitwise() {
        let dir = temp_dir("recover");
        let log;
        {
            let live = LiveIndex::open(
                &dir,
                sim(),
                IndexConfig::default(),
                LiveConfig {
                    seal_every: 3,
                    max_segments: 0,
                    background_compaction: false,
                },
            )
            .unwrap();
            live.add_tags(&index_tags());
            for (entity, tags) in STREAM {
                let review: Vec<SubjectiveTag> = tags.iter().map(|(o, a)| tag(o, a)).collect();
                live.add_review(entity, &review);
            }
            let snapshot = live.pin();
            let _ = live.probe_pinned(&snapshot, &tag("quiet", "place"));
            live.checkpoint().unwrap();
            log = live.review_log();
        }
        let recovered =
            LiveIndex::open(&dir, sim(), IndexConfig::default(), LiveConfig::default()).unwrap();
        assert_eq!(recovered.ingested(), log.len() as u64);
        assert_eq!(recovered.review_log(), log);
        // The pending probe survived the checkpoint.
        assert_eq!(recovered.pending_count(), 1);
        let frozen = rebuild(&log, &index_tags());
        let snapshot = recovered.pin();
        for (o, a) in PROBES {
            assert_eq!(
                bits(&recovered.probe_pinned(&snapshot, &tag(o, a))),
                bits(&frozen.probe_readonly(&tag(o, a)))
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_is_seal_aware_covering_inflight_writes() {
        let dir = temp_dir("inflight");
        {
            let live = LiveIndex::open(
                &dir,
                sim(),
                IndexConfig::default(),
                LiveConfig {
                    seal_every: 1000, // never auto-seals: every write stays in-flight
                    max_segments: 0,
                    background_compaction: false,
                },
            )
            .unwrap();
            live.add_tags(&index_tags());
            live.add_review(0, &[tag("good", "food")]);
            live.add_review(1, &[tag("romantic", "ambiance")]);
            assert_eq!(live.segment_count(), 0, "writes are unsealed");
            live.checkpoint().unwrap();
        }
        let recovered =
            LiveIndex::open(&dir, sim(), IndexConfig::default(), LiveConfig::default()).unwrap();
        // Without seal-aware checkpointing these two reviews would be lost.
        assert_eq!(recovered.ingested(), 2);
        assert_eq!(
            recovered
                .probe_pinned(&recovered.pin(), &tag("good", "food"))
                .len(),
            1
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn background_compactor_merges_on_signal_and_shuts_down() {
        let live = LiveIndex::new(
            sim(),
            IndexConfig::default(),
            LiveConfig {
                seal_every: 1,
                max_segments: 4,
                background_compaction: true,
            },
        );
        live.add_tags(&index_tags());
        for (entity, tags) in STREAM {
            let review: Vec<SubjectiveTag> = tags.iter().map(|(o, a)| tag(o, a)).collect();
            live.add_review(entity, &review);
        }
        // The compactor runs asynchronously; poll its effect through the
        // writer state (bounded spin, no sleeps).
        for _ in 0..10_000 {
            if live.segment_count() <= 4 {
                break;
            }
            std::thread::yield_now();
        }
        assert!(live.segment_count() <= 4);
        let frozen = rebuild(&live.review_log(), &index_tags());
        let snapshot = live.pin();
        for (o, a) in PROBES {
            assert_eq!(
                bits(&live.probe_pinned(&snapshot, &tag(o, a))),
                bits(&frozen.probe_readonly(&tag(o, a)))
            );
        }
        drop(live); // Drop joins the compactor: must not hang.
    }

    #[test]
    fn reindex_pending_promotes_probed_tags() {
        let live = LiveIndex::new(sim(), IndexConfig::default(), LiveConfig::default());
        live.add_tags(&index_tags());
        live.add_review(0, &[tag("quiet", "place")]);
        let snapshot = live.pin();
        let _ = live.probe_pinned(&snapshot, &tag("quiet", "place"));
        let _ = live.probe_pinned(&snapshot, &tag("quiet", "place"));
        assert_eq!(live.pending_count(), 1);
        assert_eq!(live.reindex_pending(), 1);
        assert_eq!(live.pending_count(), 0);
        let after = live.pin();
        assert!(after.index().lookup(&tag("quiet", "place")).is_some());
        let frozen = rebuild(
            &live.review_log(),
            &[index_tags(), vec![tag("quiet", "place")]].concat(),
        );
        assert_eq!(
            bits(&live.probe_pinned(&after, &tag("quiet", "place"))),
            bits(&frozen.probe_readonly(&tag("quiet", "place")))
        );
    }
}

//! Deterministic ANN candidate structures for the θ_filter fallback probe.
//!
//! The §3.2 fallback answers an unknown tag by scanning **every** index
//! tag; this module makes that probe sublinear while keeping the ranking
//! contract intact. Two structures, picked by the index at build time:
//!
//! * [`SemanticCandidateIndex`] — for the default lexicon-backed
//!   [`ConceptualSimilarity`]. Tags are bucketed into cells keyed by
//!   their *resolution* (aspect concept × opinion group); a probe prunes
//!   whole cells whose similarity **upper bound** cannot clear θ_filter
//!   and exactly rescores the rest. Because the bound is sound (see
//!   `ConceptualSimilarity::aspect_upper_bound`), the candidate set is a
//!   strict superset of the scan's matching tags, and rescoring them in
//!   ascending tag order replays the scan's exact float-addition
//!   sequence — results are **bitwise identical** to the scan.
//! * [`GraphAnnIndex`] — for custom similarity measures (embedding
//!   cosine) where no algebraic bound exists. A deterministic HNSW-style
//!   layered graph over tag embedding vectors: node levels derive from a
//!   content hash of the tag phrase (never wallclock or thread-dependent
//!   randomness), construction always runs over the lexicographically
//!   sorted tag list (so it is independent of insertion order), and all
//!   ties break by node id. Search is approximate; candidates are
//!   exactly rescored, and honest recall is measured in `BENCH_probe`.
//!
//! Both structures return candidate tag ids in **ascending order**,
//! which equals the `BTreeMap` iteration order of the index — the probe
//! rescore therefore visits surviving tags in exactly the order the
//! exhaustive scan would have.

use saccs_text::lexicon::OpinionGroup;
use saccs_text::similarity::SimilarityConfig;
use saccs_text::{ConceptualSimilarity, SubjectiveTag};
use std::collections::BTreeMap;

/// Safety margin for cell pruning: a cell is pruned only when its upper
/// bound clears θ by more than this, absorbing the ~1-ulp error of the
/// `powf` combine on either side of the comparison.
const PRUNE_MARGIN: f32 = 1e-5;

/// Supplies embedding vectors for tags, for [`GraphAnnIndex`]
/// construction and probe-side queries. Implemented by
/// `saccs-core::EmbeddingSimilarity` over its precomputed table.
pub trait TagVectorSource: Send + Sync {
    /// The vector for `tag`, or `None` when the source cannot embed it
    /// (the probe then falls back to the exhaustive scan).
    fn vector(&self, tag: &SubjectiveTag) -> Option<Vec<f32>>;
}

/// Candidate tag ids plus the work accounting a probe reports.
#[derive(Debug, Clone, Default)]
pub struct CandidateSet {
    /// Candidate tag ids, ascending (= index iteration order).
    pub ids: Vec<u32>,
    /// Cells or graph nodes examined while searching.
    pub visited: u32,
}

/// Exactly-scored candidates plus the work accounting a probe reports.
#[derive(Debug, Clone, Default)]
pub struct ScoredCandidates {
    /// `(tag id, similarity)` for every candidate, ascending by id (= the
    /// index's scan iteration order). Scores are bitwise identical to
    /// `ConceptualSimilarity::tag_similarity` on the same pair.
    pub scored: Vec<(u32, f32)>,
    /// Cells examined while searching.
    pub visited: u32,
}

/// Cell key: the resolution of a tag — `(aspect concept, opinion group
/// canonical)`, `None` on either side meaning "stays out of lexicon even
/// after fuzzy canonicalization". Identical strings always share a
/// resolution, so every tag lands in exactly one cell.
type CellKey = (Option<&'static str>, Option<&'static str>);

struct Cell {
    /// The opinion group shared by every tag in the cell (`None` for the
    /// unresolved-opinion band), used for the opinion-side upper bound.
    opinion: Option<&'static OpinionGroup>,
    /// Member tag ids, ascending (tags are inserted in index order).
    tag_ids: Vec<u32>,
}

/// Exact candidate index for the default conceptual similarity: cells of
/// identically-resolved tags with per-cell similarity upper bounds.
pub struct SemanticCandidateIndex {
    cells: BTreeMap<CellKey, Cell>,
}

impl SemanticCandidateIndex {
    /// Bucket `tags` (the index's lexicographically sorted tag list) by
    /// resolution. Pure function of the tag set and the lexicon.
    pub fn build(sim: &ConceptualSimilarity, tags: &[SubjectiveTag]) -> Self {
        // `opinion_groups()` hands back the lexicon's `'static` table, so
        // re-finding the resolved group there frees the cell from the
        // borrow on `sim`.
        let groups: &'static [OpinionGroup] = sim.lexicon().opinion_groups();
        let mut cells: BTreeMap<CellKey, Cell> = BTreeMap::new();
        for (i, tag) in tags.iter().enumerate() {
            let aspect = sim.resolve_aspect(&tag.aspect);
            let opinion: Option<&'static OpinionGroup> = sim
                .resolve_opinion(&tag.opinion)
                .and_then(|g| groups.iter().find(|x| x.canonical == g.canonical));
            let key = (aspect, opinion.map(|g| g.canonical));
            cells
                .entry(key)
                .or_insert_with(|| Cell {
                    opinion,
                    tag_ids: Vec::new(),
                })
                .tag_ids
                .push(i as u32);
        }
        SemanticCandidateIndex { cells }
    }

    /// Number of resolution cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Every tag whose similarity to `probe` *could* exceed `theta`: all
    /// members of cells whose upper bound clears `theta` (within
    /// [`PRUNE_MARGIN`]). A superset of the scan's matches by bound
    /// soundness; pruned tags satisfy `sim ≤ θ` and would contribute
    /// nothing to the scan either.
    pub fn candidates(
        &self,
        sim: &ConceptualSimilarity,
        probe: &SubjectiveTag,
        theta: f32,
    ) -> CandidateSet {
        let probe_aspect = sim.resolve_aspect(&probe.aspect);
        let probe_opinion = sim.resolve_opinion(&probe.opinion);
        let mut ids: Vec<u32> = Vec::new();
        let mut visited = 0u32;
        for ((cell_aspect, _), cell) in &self.cells {
            visited += 1;
            let a_ub = sim.aspect_upper_bound(probe_aspect, *cell_aspect);
            let o_ub = sim.opinion_upper_bound(probe_opinion, cell.opinion);
            if sim.tag_upper_bound(a_ub, o_ub) + PRUNE_MARGIN > theta {
                ids.extend_from_slice(&cell.tag_ids);
            }
        }
        // Cells come out in key order, not id order; the rescore contract
        // wants ascending ids (= scan order).
        ids.sort_unstable();
        CandidateSet { ids, visited }
    }

    /// [`Self::candidates`] fused with the exact rescore. Within a cell
    /// every tag shares its resolution, so for fully-resolved pairs
    /// `tag_similarity(probe, t)` can take at most four values — one per
    /// combination of the two surface-identity shortcuts (`t.aspect ==
    /// probe.aspect`, `t.opinion == probe.opinion`). Each combination is
    /// computed once from the same branch constants and the same
    /// `powf` combine as `tag_similarity` (bit-identical inputs → bit-
    /// identical f32s), and every member tag then costs two string
    /// compares instead of two lexicon resolutions behind a mutex. Cells
    /// with an unresolved side lean on the surface-string edit fallback,
    /// whose score varies per tag: those pay the full `tag_similarity`.
    pub fn rescore(
        &self,
        sim: &ConceptualSimilarity,
        probe: &SubjectiveTag,
        theta: f32,
        tags: &[SubjectiveTag],
    ) -> ScoredCandidates {
        let cfg = sim.config();
        let lex = sim.lexicon();
        let probe_aspect = sim.resolve_aspect(&probe.aspect);
        let probe_opinion = sim.resolve_opinion(&probe.opinion);
        let mut scored: Vec<(u32, f32)> = Vec::new();
        let mut visited = 0u32;
        for ((cell_aspect, _), cell) in &self.cells {
            visited += 1;
            let a_ub = sim.aspect_upper_bound(probe_aspect, *cell_aspect);
            let o_ub = sim.opinion_upper_bound(probe_opinion, cell.opinion);
            if sim.tag_upper_bound(a_ub, o_ub) + PRUNE_MARGIN <= theta {
                continue;
            }
            match (probe_aspect, *cell_aspect, probe_opinion, cell.opinion) {
                (Some(pa), Some(ca), Some(pg), Some(cg)) => {
                    // The aspect/opinion scores when the surface strings
                    // differ — exactly `aspect_similarity`'s and
                    // `opinion_similarity`'s resolved branches.
                    let a_far = if pa == ca {
                        cfg.same_concept
                    } else if lex.aspects_related(pa, ca) {
                        cfg.related_concept
                    } else {
                        0.0
                    };
                    let o_far = if pg.canonical == cg.canonical {
                        cfg.same_group
                    } else if pg.polarity != cg.polarity {
                        0.0
                    } else if pg.generic || cg.generic {
                        cfg.generic_bridge
                    } else if pg.aspects.iter().any(|a| cg.aspects.contains(a)) {
                        cfg.shared_applicability
                    } else {
                        cfg.same_polarity
                    };
                    let mut combo = [[f32::NAN; 2]; 2];
                    for &id in &cell.tag_ids {
                        let t = &tags[id as usize];
                        let ae = usize::from(t.aspect == probe.aspect);
                        let oe = usize::from(t.opinion == probe.opinion);
                        if combo[ae][oe].is_nan() {
                            let a = if ae == 1 { 1.0 } else { a_far };
                            let o = if oe == 1 { 1.0 } else { o_far };
                            combo[ae][oe] = combine(cfg, a, o);
                        }
                        scored.push((id, combo[ae][oe]));
                    }
                }
                _ => {
                    for &id in &cell.tag_ids {
                        scored.push((id, sim.tag_similarity(probe, &tags[id as usize])));
                    }
                }
            }
        }
        scored.sort_unstable_by_key(|&(id, _)| id);
        ScoredCandidates { scored, visited }
    }
}

/// `tag_similarity`'s combine step on precomputed per-side scores: hard
/// zero on either side, else the weighted geometric mean, clamped.
fn combine(cfg: &SimilarityConfig, a: f32, o: f32) -> f32 {
    if a <= 0.0 || o <= 0.0 {
        return 0.0;
    }
    let w = cfg.aspect_weight;
    (a.powf(w) * o.powf(1.0 - w)).clamp(0.0, 1.0)
}

/// Total order on (distance, node): `total_cmp` then id, so heap
/// behaviour is deterministic even across equal distances.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Scored {
    dist: f32,
    node: u32,
}

impl Eq for Scored {}

impl Ord for Scored {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then(self.node.cmp(&other.node))
    }
}

impl PartialOrd for Scored {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Deterministic HNSW-style graph over tag embedding vectors.
pub struct GraphAnnIndex {
    dim: usize,
    /// Row-major L2-normalized vectors, one row per graph node.
    vectors: Vec<f32>,
    /// node → tag id (nodes cover only the tags the source could embed).
    tag_of_node: Vec<u32>,
    /// Tags with no vector: appended to every candidate set so they are
    /// never silently unreachable.
    always: Vec<u32>,
    /// neighbors[node][level] = adjacent node ids (ascending).
    neighbors: Vec<Vec<Vec<u32>>>,
    /// Entry node for search (highest level; ties → lowest node id).
    entry: u32,
    max_level: usize,
    /// Max neighbors per node per level.
    m: usize,
}

/// Level of a node from an FNV-1a + splitmix64 finalize of the tag
/// phrase: geometric with p = 1/4 per level. Content-derived, so the
/// graph shape is a pure function of the tag set — no RNG state, no
/// wallclock, nothing that varies with thread count.
fn node_level(phrase: &str, cap: usize) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in phrase.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    ((h.trailing_ones() as usize) / 2).min(cap)
}

impl GraphAnnIndex {
    /// Build over `tags` in their given (lexicographic) order. Returns
    /// `None` when the source embeds no tag at all.
    pub fn build(
        source: &dyn TagVectorSource,
        tags: &[SubjectiveTag],
        m: usize,
        ef_construction: usize,
    ) -> Option<Self> {
        let m = m.max(2);
        let ef_c = ef_construction.max(2 * m);
        let mut dim = 0usize;
        let mut vectors: Vec<f32> = Vec::new();
        let mut tag_of_node: Vec<u32> = Vec::new();
        let mut always: Vec<u32> = Vec::new();
        for (i, tag) in tags.iter().enumerate() {
            match source.vector(tag) {
                Some(v) if !v.is_empty() && (dim == 0 || v.len() == dim) => {
                    dim = v.len();
                    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt();
                    if norm > 0.0 {
                        vectors.extend(v.iter().map(|x| x / norm));
                    } else {
                        vectors.extend(v.iter());
                    }
                    tag_of_node.push(i as u32);
                }
                _ => always.push(i as u32),
            }
        }
        let n = tag_of_node.len();
        if n == 0 {
            return None;
        }
        // Level cap ~ log4(n): deep enough for descent, bounded memory.
        let cap = ((usize::BITS - n.leading_zeros()) / 2) as usize;
        let levels: Vec<usize> = tag_of_node
            .iter()
            .map(|&t| node_level(&tags[t as usize].phrase(), cap))
            .collect();
        let mut g = GraphAnnIndex {
            dim,
            vectors,
            tag_of_node,
            always,
            neighbors: (0..n).map(|i| vec![Vec::new(); levels[i] + 1]).collect(),
            entry: 0,
            max_level: levels[0],
            m,
        };
        for node in 1..n as u32 {
            g.insert(node, levels[node as usize], ef_c);
            if levels[node as usize] > g.max_level {
                g.max_level = levels[node as usize];
                g.entry = node;
            }
        }
        Some(g)
    }

    fn vec_of(&self, node: u32) -> &[f32] {
        let i = node as usize * self.dim;
        &self.vectors[i..i + self.dim]
    }

    /// Cosine distance between normalized rows: `1 - dot`.
    fn dist(&self, a: u32, q: &[f32]) -> f32 {
        let v = self.vec_of(a);
        let mut dot = 0.0f32;
        for i in 0..self.dim {
            dot += v[i] * q[i];
        }
        1.0 - dot
    }

    /// Greedy 1-NN descent at `level` starting from `ep`.
    fn greedy(&self, q: &[f32], mut ep: u32, level: usize) -> u32 {
        let mut best = self.dist(ep, q);
        loop {
            let mut improved = false;
            for &nb in &self.neighbors[ep as usize][level] {
                let d = self.dist(nb, q);
                if (d, nb) < (best, ep) {
                    best = d;
                    ep = nb;
                    improved = true;
                }
            }
            if !improved {
                return ep;
            }
        }
    }

    /// Best-first ef-bounded search at `level`. Returns up to `ef`
    /// nearest nodes (ascending by (dist, id)) and the visit count.
    fn search_layer(&self, q: &[f32], ep: u32, level: usize, ef: usize) -> (Vec<Scored>, u32) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut seen: Vec<bool> = vec![false; self.neighbors.len()];
        seen[ep as usize] = true;
        let start = Scored {
            dist: self.dist(ep, q),
            node: ep,
        };
        let mut frontier: BinaryHeap<Reverse<Scored>> = BinaryHeap::new();
        frontier.push(Reverse(start));
        let mut results: BinaryHeap<Scored> = BinaryHeap::new();
        results.push(start);
        let mut visited = 1u32;
        while let Some(Reverse(cand)) = frontier.pop() {
            let worst = results.peek().map(|s| s.dist).unwrap_or(f32::INFINITY);
            if results.len() >= ef && cand.dist > worst {
                break;
            }
            for &nb in &self.neighbors[cand.node as usize][level] {
                if seen[nb as usize] {
                    continue;
                }
                seen[nb as usize] = true;
                visited += 1;
                let d = self.dist(nb, q);
                let worst = results.peek().map(|s| s.dist).unwrap_or(f32::INFINITY);
                if results.len() < ef || d < worst {
                    let s = Scored { dist: d, node: nb };
                    frontier.push(Reverse(s));
                    results.push(s);
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut out = results.into_vec();
        out.sort_unstable();
        (out, visited)
    }

    fn insert(&mut self, node: u32, level: usize, ef_c: usize) {
        let q: Vec<f32> = self.vec_of(node).to_vec();
        let mut ep = self.entry;
        let top = self.max_level;
        for lc in ((level + 1)..=top).rev() {
            ep = self.greedy(&q, ep, lc);
        }
        for lc in (0..=level.min(top)).rev() {
            let (near, _) = self.search_layer(&q, ep, lc, ef_c);
            if let Some(best) = near.first() {
                ep = best.node;
            }
            let picked: Vec<u32> = near.iter().take(self.m).map(|s| s.node).collect();
            for &nb in &picked {
                self.neighbors[node as usize][lc].push(nb);
                self.neighbors[nb as usize][lc].push(node);
                self.prune(nb, lc);
            }
            self.neighbors[node as usize][lc].sort_unstable();
            self.neighbors[node as usize][lc].dedup();
        }
    }

    /// Keep a node's `m` nearest neighbors at `level` (ties by id),
    /// stored ascending by id for deterministic iteration.
    fn prune(&mut self, node: u32, level: usize) {
        let list = &self.neighbors[node as usize][level];
        if list.len() <= self.m {
            return;
        }
        let q: Vec<f32> = self.vec_of(node).to_vec();
        let mut scored: Vec<Scored> = list
            .iter()
            .map(|&nb| Scored {
                dist: self.dist(nb, &q),
                node: nb,
            })
            .collect();
        scored.sort_unstable();
        scored.dedup_by_key(|s| s.node);
        let mut kept: Vec<u32> = scored.into_iter().take(self.m).map(|s| s.node).collect();
        kept.sort_unstable();
        self.neighbors[node as usize][level] = kept;
    }

    /// Candidate tag ids for a probe vector: the `ef` approximate nearest
    /// tags by embedding cosine, plus every vectorless tag. Ascending.
    pub fn candidates(&self, probe_vec: &[f32], ef: usize) -> Option<CandidateSet> {
        if probe_vec.len() != self.dim {
            return None;
        }
        let norm = probe_vec.iter().map(|x| x * x).sum::<f32>().sqrt();
        let q: Vec<f32> = if norm > 0.0 {
            probe_vec.iter().map(|x| x / norm).collect()
        } else {
            probe_vec.to_vec()
        };
        let mut ep = self.entry;
        for lc in (1..=self.max_level).rev() {
            ep = self.greedy(&q, ep, lc);
        }
        let (near, visited) = self.search_layer(&q, ep, 0, ef.max(1));
        let mut ids: Vec<u32> = near
            .iter()
            .map(|s| self.tag_of_node[s.node as usize])
            .collect();
        ids.extend_from_slice(&self.always);
        ids.sort_unstable();
        ids.dedup();
        Some(CandidateSet { ids, visited })
    }

    /// Number of graph nodes (tags the source could embed).
    pub fn node_count(&self) -> usize {
        self.tag_of_node.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saccs_text::{Domain, Lexicon};

    fn sim() -> ConceptualSimilarity {
        ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants))
    }

    fn tags() -> Vec<SubjectiveTag> {
        let mut v = vec![
            SubjectiveTag::new("good", "food"),
            SubjectiveTag::new("delicious", "food"),
            SubjectiveTag::new("creative", "cooking"),
            SubjectiveTag::new("fast", "delivery"),
            SubjectiveTag::new("bland", "food"),
            SubjectiveTag::new("zorgly", "blarg"),
        ];
        v.sort();
        v
    }

    #[test]
    fn semantic_candidates_superset_of_scan_matches() {
        let s = sim();
        let tags = tags();
        let idx = SemanticCandidateIndex::build(&s, &tags);
        for probe in [
            SubjectiveTag::new("tasty", "pizza"),
            SubjectiveTag::new("amazing", "food"),
            SubjectiveTag::new("quick", "service"),
            SubjectiveTag::new("weird", "blarg"),
        ] {
            for theta in [0.2f32, 0.45, 0.7, 0.9] {
                let cand = idx.candidates(&s, &probe, theta);
                // Ascending ids.
                assert!(cand.ids.windows(2).all(|w| w[0] < w[1]));
                let matched: Vec<u32> = tags
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| s.tag_similarity(&probe, t) > theta)
                    .map(|(i, _)| i as u32)
                    .collect();
                for id in &matched {
                    assert!(
                        cand.ids.contains(id),
                        "probe {probe} theta {theta}: match {id} pruned"
                    );
                }
            }
        }
    }

    #[test]
    fn rescore_is_bitwise_identical_to_tag_similarity() {
        let s = sim();
        let mut tags = tags();
        // Typos (resolve fuzzily, exercising the per-cell fast path with
        // distinct surface strings) and garbage (unresolved cells taking
        // the per-tag fallback).
        tags.push(SubjectiveTag::new("deliciouz", "foood"));
        tags.push(SubjectiveTag::new("blandd", "food"));
        tags.sort();
        let idx = SemanticCandidateIndex::build(&s, &tags);
        for probe in [
            SubjectiveTag::new("tasty", "pizza"),
            SubjectiveTag::new("delicious", "food"), // identical to a member
            SubjectiveTag::new("quick", "service"),
            SubjectiveTag::new("zorgly", "blarg"), // unresolved probe
            SubjectiveTag::new("deliciouz", "food"), // typo probe
        ] {
            for theta in [0.2f32, 0.45, 0.55, 0.7] {
                let sc = idx.rescore(&s, &probe, theta, &tags);
                // Ascending ids, same set as the unfused candidate pass.
                assert!(sc.scored.windows(2).all(|w| w[0].0 < w[1].0));
                let cand = idx.candidates(&s, &probe, theta);
                let ids: Vec<u32> = sc.scored.iter().map(|&(id, _)| id).collect();
                assert_eq!(ids, cand.ids, "probe {probe} theta {theta}");
                assert_eq!(sc.visited, cand.visited);
                for &(id, score) in &sc.scored {
                    let exact = s.tag_similarity(&probe, &tags[id as usize]);
                    assert_eq!(
                        score.to_bits(),
                        exact.to_bits(),
                        "probe {probe} vs {}: fused {score} != exact {exact}",
                        tags[id as usize]
                    );
                }
            }
        }
    }

    #[test]
    fn semantic_pruning_actually_prunes() {
        let s = sim();
        let tags = tags();
        let idx = SemanticCandidateIndex::build(&s, &tags);
        // At the default θ a same-polarity-only cell ("fast delivery" vs
        // a food-opinion probe) must be pruned.
        let cand = idx.candidates(&s, &SubjectiveTag::new("delicious", "food"), 0.45);
        let delivery = tags
            .iter()
            .position(|t| t.aspect == "delivery")
            .map(|i| i as u32);
        if let Some(d) = delivery {
            assert!(!cand.ids.contains(&d), "unrelated cell not pruned");
        }
        assert!(cand.ids.len() < tags.len());
    }

    struct HashVectors;
    impl TagVectorSource for HashVectors {
        fn vector(&self, tag: &SubjectiveTag) -> Option<Vec<f32>> {
            // Deterministic pseudo-embedding from the phrase bytes.
            let mut h = 0x9e37_79b9_7f4a_7c15u64;
            for b in tag.phrase().into_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Some(
                (0..8)
                    .map(|i| {
                        let mut x = h.wrapping_add(i as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                        x ^= x >> 31;
                        (x % 1000) as f32 / 500.0 - 1.0
                    })
                    .collect(),
            )
        }
    }

    #[test]
    fn graph_build_is_insertion_order_independent_and_deterministic() {
        let tags = tags();
        let g1 = GraphAnnIndex::build(&HashVectors, &tags, 4, 16);
        let g2 = GraphAnnIndex::build(&HashVectors, &tags, 4, 16);
        let (g1, g2) = match (g1, g2) {
            (Some(a), Some(b)) => (a, b),
            _ => panic!("graph build failed"),
        };
        assert_eq!(g1.neighbors, g2.neighbors);
        assert_eq!(g1.entry, g2.entry);
        let probe = HashVectors
            .vector(&SubjectiveTag::new("great", "meal"))
            .expect("probe vector");
        let c1 = g1.candidates(&probe, 8).expect("candidates");
        let c2 = g2.candidates(&probe, 8).expect("candidates");
        assert_eq!(c1.ids, c2.ids);
        assert_eq!(c1.visited, c2.visited);
        assert!(c1.ids.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn graph_search_finds_the_exact_nearest_on_small_sets() {
        // With ef >= n the layered search degenerates to exact k-NN.
        let tags = tags();
        let g = match GraphAnnIndex::build(&HashVectors, &tags, 4, 16) {
            Some(g) => g,
            None => panic!("graph build failed"),
        };
        let probe = HashVectors
            .vector(&SubjectiveTag::new("great", "meal"))
            .expect("probe vector");
        let c = g.candidates(&probe, tags.len()).expect("candidates");
        assert_eq!(c.ids.len(), tags.len(), "ef >= n must reach every tag");
    }

    #[test]
    fn node_levels_are_content_derived() {
        let a = node_level("good food", 8);
        assert_eq!(a, node_level("good food", 8));
        // Distribution sanity: levels stay within cap and most phrases
        // stay at level 0 (p = 1/4 per extra level).
        let mut zero = 0;
        for i in 0..64 {
            let l = node_level(&format!("tag number {i}"), 8);
            assert!(l <= 8);
            if l == 0 {
                zero += 1;
            }
        }
        assert!(zero > 32);
    }
}

//! Fraud-resistant evidence construction (§7 future work).
//!
//! The paper's conclusion: "We also plan to extend the robustness of the
//! proposed techniques to cater for biased or fraudulent online reviews
//! … We have to differentiate between truthful and fake reviews." This
//! module implements that extension at the evidence layer: instead of a
//! flat bag of extracted tags, the indexer receives *per-review* tag
//! profiles, and a [`FraudFilter`] suppresses the statistical fingerprint
//! of astroturf campaigns — a burst of reviews with identical tag
//! profiles far beyond an entity's natural duplication rate.
//!
//! The filter is unsupervised (it never sees fake/real labels):
//!
//! 1. canonicalize each review's tag multiset to a profile key;
//! 2. allow each profile up to `cap(n) = ceil(α·√n) + base` occurrences
//!    among the entity's `n` reviews (organic one-liner reviews repeat,
//!    but sub-linearly);
//! 3. reviews beyond the cap are dropped from the evidence, and the
//!    effective review count shrinks accordingly.

use crate::index::EntityEvidence;
use saccs_text::lexicon::Lexicon;
use saccs_text::SubjectiveTag;
use std::collections::HashMap;

/// One review's extracted tags.
#[derive(Debug, Clone, Default)]
pub struct ReviewProfile {
    pub tags: Vec<SubjectiveTag>,
}

impl ReviewProfile {
    pub fn new(tags: Vec<SubjectiveTag>) -> Self {
        ReviewProfile { tags }
    }

    /// Canonical key: the sorted multiset of *semantic dimensions* the
    /// review expresses. Campaigns vary surface phrasing ("delicious
    /// food" / "scrumptious pasta" / "mouthwatering risotto") while
    /// pushing one dimension, so keys canonicalize each tag through the
    /// lexicon: `(opinion group : aspect concept)`, with polarity kept and
    /// out-of-lexicon terms falling back to their surface.
    fn key(&self, lexicon: &Lexicon) -> String {
        let mut dims: Vec<String> = self
            .tags
            .iter()
            .map(|t| {
                let group = lexicon
                    .opinion_group(&t.opinion)
                    .map(|g| format!("{}{:?}", g.canonical, g.polarity))
                    .unwrap_or_else(|| t.opinion.clone());
                let concept = lexicon
                    .aspect_concept(&t.aspect)
                    .map(|c| c.canonical.to_string())
                    .unwrap_or_else(|| t.aspect.clone());
                format!("{group}:{concept}")
            })
            .collect();
        dims.sort();
        dims.dedup();
        dims.join("|")
    }
}

/// Duplicate-burst suppression parameters.
#[derive(Debug, Clone)]
pub struct FraudFilter {
    /// Multiplier on `√n` in the duplication cap.
    pub alpha: f32,
    /// Flat allowance added to the cap.
    pub base: usize,
    /// Lexicon used to canonicalize review profiles to dimensions.
    lexicon: Lexicon,
}

impl Default for FraudFilter {
    fn default() -> Self {
        FraudFilter {
            alpha: 0.6,
            base: 2,
            lexicon: Lexicon::new(saccs_text::Domain::Restaurants),
        }
    }
}

impl FraudFilter {
    pub fn new(alpha: f32, base: usize, lexicon: Lexicon) -> Self {
        FraudFilter {
            alpha,
            base,
            lexicon,
        }
    }

    /// Maximum organic occurrences of one profile among `n` reviews.
    pub fn cap(&self, n_reviews: usize) -> usize {
        (self.alpha * (n_reviews as f32).sqrt()).ceil() as usize + self.base
    }

    /// Per-review keep decision: `true` for reviews within their profile's
    /// cap (in input order — earlier reviews are kept, later bursts
    /// dropped), `false` for the suppressed excess. Empty profiles are
    /// always kept (they contribute nothing anyway).
    pub fn keep_flags(&self, reviews: &[ReviewProfile]) -> Vec<bool> {
        let cap = self.cap(reviews.len());
        let mut seen: HashMap<String, usize> = HashMap::new();
        reviews
            .iter()
            .map(|r| {
                if r.tags.is_empty() {
                    return true;
                }
                let count = seen.entry(r.key(&self.lexicon)).or_insert(0);
                *count += 1;
                *count <= cap
            })
            .collect()
    }

    /// Build filtered [`EntityEvidence`]: suppressed reviews contribute
    /// neither tags nor review count.
    pub fn evidence(&self, entity_id: usize, reviews: &[ReviewProfile]) -> EntityEvidence {
        let keep = self.keep_flags(reviews);
        let mut review_tags = Vec::new();
        let mut kept = 0usize;
        for (r, &k) in reviews.iter().zip(&keep) {
            if k {
                kept += 1;
                review_tags.extend(r.tags.iter().cloned());
            }
        }
        EntityEvidence {
            entity_id,
            review_count: kept,
            review_tags,
        }
    }
}

/// Unfiltered evidence from per-review profiles (the naive baseline the
/// robustness experiment compares against).
pub fn naive_evidence(entity_id: usize, reviews: &[ReviewProfile]) -> EntityEvidence {
    EntityEvidence {
        entity_id,
        review_count: reviews.len(),
        review_tags: reviews
            .iter()
            .flat_map(|r| r.tags.iter().cloned())
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(op: &str, asp: &str) -> SubjectiveTag {
        SubjectiveTag::new(op, asp)
    }

    fn profile(tags: &[(&str, &str)]) -> ReviewProfile {
        ReviewProfile::new(tags.iter().map(|(o, a)| tag(o, a)).collect())
    }

    #[test]
    fn organic_duplication_is_kept() {
        let f = FraudFilter::default();
        // 16 reviews, cap = ceil(0.6·4) + 2 = 5; five duplicates pass.
        let mut reviews = vec![profile(&[("good", "food")]); 5];
        reviews.extend((0..11).map(|_| profile(&[("nice", "staff")])));
        let keep = f.keep_flags(&reviews);
        assert!(keep[..5].iter().all(|&k| k));
    }

    #[test]
    fn bursts_are_suppressed_beyond_the_cap() {
        let f = FraudFilter::default();
        let mut reviews = vec![profile(&[("delicious", "food")]); 30];
        reviews.extend((0..6).map(|_| profile(&[("nice", "staff")])));
        let keep = f.keep_flags(&reviews);
        let kept_campaign = keep[..30].iter().filter(|&&k| k).count();
        assert_eq!(kept_campaign, f.cap(36));
        assert!(f.cap(36) < 30, "the burst must actually be suppressed");
        assert!(
            keep[30..].iter().all(|&k| k),
            "organic reviews must survive"
        );
    }

    #[test]
    fn profile_key_is_dimension_level() {
        let lex = Lexicon::new(saccs_text::Domain::Restaurants);
        // Surface paraphrases of one dimension share a key…
        let a = profile(&[("delicious", "food")]);
        let b = profile(&[("scrumptious", "pasta")]);
        assert_eq!(a.key(&lex), b.key(&lex));
        // …different dimensions do not…
        let c = profile(&[("nice", "staff")]);
        assert_ne!(a.key(&lex), c.key(&lex));
        // …and polarity separates ("bland food" is not "delicious food").
        let d = profile(&[("bland", "food")]);
        assert_ne!(a.key(&lex), d.key(&lex));
        // Tag order is irrelevant.
        let e1 = profile(&[("good", "wine"), ("nice", "staff")]);
        let e2 = profile(&[("nice", "staff"), ("good", "wine")]);
        assert_eq!(e1.key(&lex), e2.key(&lex));
    }

    #[test]
    fn filtered_evidence_shrinks_counts_and_tags() {
        let f = FraudFilter::new(0.0, 1, Lexicon::new(saccs_text::Domain::Restaurants)); // cap = 1
        let reviews = vec![
            profile(&[("good", "food")]),
            profile(&[("good", "food")]),
            profile(&[("nice", "staff")]),
        ];
        let ev = f.evidence(7, &reviews);
        assert_eq!(ev.entity_id, 7);
        assert_eq!(ev.review_count, 2);
        assert_eq!(ev.review_tags.len(), 2);
        let naive = naive_evidence(7, &reviews);
        assert_eq!(naive.review_count, 3);
        assert_eq!(naive.review_tags.len(), 3);
    }

    #[test]
    fn empty_profiles_are_always_kept() {
        let f = FraudFilter::new(0.0, 0, Lexicon::new(saccs_text::Domain::Restaurants));
        let reviews = vec![ReviewProfile::default(); 10];
        assert!(f.keep_flags(&reviews).iter().all(|&k| k));
    }

    #[test]
    fn cap_grows_sublinearly() {
        let f = FraudFilter::default();
        assert!(f.cap(100) < 100 / 2);
        assert!(f.cap(9) >= 3);
        assert!(f.cap(400) <= f.cap(100) * 3);
    }
}

//! Concurrent serving wrapper around the subjective index.
//!
//! A deployed conversational service answers many sessions at once while
//! the adaptation loop (§3.1) periodically re-indexes. [`SharedIndex`]
//! provides that concurrency discipline: a `parking_lot::RwLock` around
//! the index, read-path probes that never take the write lock, a
//! lock-free-ish history side-channel for the unknown tags those reads
//! encounter, and an explicit maintenance entry point that drains the
//! side-channel under the write lock.

use crate::index::SubjectiveIndex;
use parking_lot::{Mutex, RwLock};
use saccs_text::SubjectiveTag;

/// Thread-safe shared handle over a [`SubjectiveIndex`].
///
/// Probes run under the read lock via [`SubjectiveIndex::probe_readonly`];
/// unknown tags are recorded in an internal pending queue instead of the
/// index's own history (which would need `&mut`). A maintenance round
/// ([`SharedIndex::reindex_pending`]) drains the queue and indexes the
/// tags under the write lock.
pub struct SharedIndex {
    inner: RwLock<SubjectiveIndex>,
    pending: Mutex<Vec<SubjectiveTag>>,
}

impl SharedIndex {
    pub fn new(index: SubjectiveIndex) -> Self {
        SharedIndex {
            inner: RwLock::new(index),
            pending: Mutex::new(Vec::new()),
        }
    }

    /// Concurrent probe (shared lock). Unknown tags are queued for the
    /// next maintenance round, exactly like the single-threaded
    /// [`SubjectiveIndex::probe`].
    pub fn probe(&self, tag: &SubjectiveTag) -> Vec<(usize, f32)> {
        let guard = self.inner.read();
        let known = guard.lookup(tag).is_some();
        let result = guard.probe_readonly(tag);
        drop(guard);
        if !known {
            self.pending.lock().push(tag.clone());
        }
        result
    }

    /// Fan a batch of probes out across the `saccs-rt` pool, one task per
    /// tag, each under its own shared-lock acquisition. Results are
    /// positional and each probe is read-only, so the output matches a
    /// sequential [`SharedIndex::probe`] loop bit for bit at any thread
    /// count; unknown tags are queued afterwards in input order (so the
    /// pending queue is deterministic too).
    pub fn probe_many(&self, tags: &[SubjectiveTag]) -> Vec<Vec<(usize, f32)>> {
        let _span = saccs_obs::span!("index.probe_many");
        let probed = saccs_rt::parallel_map(tags.len(), 2, |i| {
            let guard = self.inner.read();
            let known = guard.lookup(&tags[i]).is_some();
            let result = guard.probe_readonly(&tags[i]);
            drop(guard);
            (known, result)
        });
        let mut out = Vec::with_capacity(probed.len());
        for (tag, (known, result)) in tags.iter().zip(probed) {
            if !known {
                self.pending.lock().push(tag.clone());
            }
            out.push(result);
        }
        out
    }

    /// Number of index tags (shared lock).
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Tags queued by concurrent probes, not yet indexed.
    pub fn pending_count(&self) -> usize {
        self.pending.lock().len()
    }

    /// Maintenance round: drain queued unknown tags and index the distinct
    /// new ones under the write lock. Returns how many tags were added.
    pub fn reindex_pending(&self) -> usize {
        let mut queued = std::mem::take(&mut *self.pending.lock());
        if queued.is_empty() {
            return 0;
        }
        queued.sort();
        queued.dedup();
        let mut guard = self.inner.write();
        let fresh: Vec<SubjectiveTag> = queued
            .into_iter()
            .filter(|t| guard.lookup(t).is_none())
            .collect();
        guard.index_tags(&fresh);
        fresh.len()
    }

    /// Run a closure with exclusive access (evidence registration, config
    /// changes, full re-index).
    pub fn with_write<R>(&self, f: impl FnOnce(&mut SubjectiveIndex) -> R) -> R {
        f(&mut self.inner.write())
    }

    /// Run a closure with shared access.
    pub fn with_read<R>(&self, f: impl FnOnce(&SubjectiveIndex) -> R) -> R {
        f(&self.inner.read())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{EntityEvidence, IndexConfig};
    use saccs_text::{ConceptualSimilarity, Domain, Lexicon};

    fn tag(op: &str, asp: &str) -> SubjectiveTag {
        SubjectiveTag::new(op, asp)
    }

    fn shared() -> SharedIndex {
        let mut idx = SubjectiveIndex::new(
            ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants)),
            IndexConfig::default(),
        );
        for e in 0..4 {
            idx.register_entity(EntityEvidence {
                entity_id: e,
                review_count: 3,
                review_tags: vec![tag("delicious", "food"), tag("nice", "staff")],
            });
        }
        idx.index_tags(&[tag("delicious", "food"), tag("nice", "staff")]);
        SharedIndex::new(idx)
    }

    #[test]
    fn probe_matches_single_threaded_semantics() {
        let s = shared();
        let known = s.probe(&tag("delicious", "food"));
        assert_eq!(known.len(), 4);
        assert_eq!(s.pending_count(), 0, "known tags must not queue");
        let fallback = s.probe(&tag("scrumptious", "pasta"));
        assert!(!fallback.is_empty(), "similarity fallback must fire");
        assert_eq!(s.pending_count(), 1);
    }

    #[test]
    fn reindex_pending_dedups_and_adds() {
        let s = shared();
        for _ in 0..5 {
            let _ = s.probe(&tag("romantic", "ambiance"));
        }
        let _ = s.probe(&tag("quiet", "place"));
        assert_eq!(s.pending_count(), 6);
        let added = s.reindex_pending();
        assert_eq!(added, 2, "five duplicates collapse to one tag");
        assert_eq!(s.len(), 4);
        assert_eq!(s.pending_count(), 0);
        // Second round is a no-op.
        assert_eq!(s.reindex_pending(), 0);
    }

    #[test]
    fn concurrent_probes_and_maintenance_do_not_lose_tags() {
        use std::sync::Arc;
        let s = Arc::new(shared());
        let threads = 8;
        let probes_per_thread = 50;
        crossbeam::thread::scope(|scope| {
            for t in 0..threads {
                let s = Arc::clone(&s);
                scope.spawn(move |_| {
                    for i in 0..probes_per_thread {
                        // Mix of known, fallback-similar and maintenance.
                        let _ = s.probe(&tag("delicious", "food"));
                        let _ = s.probe(&tag("scrumptious", "pasta"));
                        if t == 0 && i % 10 == 0 {
                            s.reindex_pending();
                        }
                    }
                });
            }
        })
        .unwrap();
        // Whatever raced, a final round leaves the unknown tag indexed and
        // nothing pending.
        s.reindex_pending();
        assert_eq!(s.pending_count(), 0);
        assert!(s.with_read(|idx| idx.lookup(&tag("scrumptious", "pasta")).is_some()));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn stress_reindex_races_probes_without_losing_or_duplicating_tags() {
        use std::sync::Arc;
        let s = Arc::new(shared());
        let threads = 8;
        let tags_per_thread = 40;
        let initial = s.len();
        crossbeam::thread::scope(|scope| {
            for t in 0..threads {
                let s = Arc::clone(&s);
                scope.spawn(move |_| {
                    for i in 0..tags_per_thread {
                        // Every thread probes its own distinct unknown tags
                        // (probed twice so the pending queue sees duplicates)
                        // and *every* thread runs maintenance, so drains race
                        // both the probes and each other.
                        let unknown = tag(&format!("oddword{t}x{i}"), &format!("aspect{t}"));
                        let _ = s.probe(&unknown);
                        let _ = s.probe(&unknown);
                        let _ = s.probe(&tag("delicious", "food"));
                        if i % 7 == t % 7 {
                            s.reindex_pending();
                        }
                    }
                });
            }
        })
        .unwrap();
        s.reindex_pending();
        assert_eq!(s.pending_count(), 0);
        // Exact accounting: every distinct probed tag is indexed exactly
        // once — none lost to a racing drain, none double-indexed.
        for t in 0..threads {
            for i in 0..tags_per_thread {
                let probed = tag(&format!("oddword{t}x{i}"), &format!("aspect{t}"));
                assert!(
                    s.with_read(|idx| idx.lookup(&probed).is_some()),
                    "lost tag oddword{t}x{i}"
                );
            }
        }
        assert_eq!(s.len(), initial + threads * tags_per_thread);
    }
}

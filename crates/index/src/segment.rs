//! Segments: the persistence layer under the live index.
//!
//! Reviews ingested at serving time land in an append-only
//! [`MemSegment`]; once it reaches the configured size it is sealed
//! into an immutable [`SealedSegment`] and persisted as one
//! checksummed file of zigzag/varint-encoded records. A [`SegmentStore`]
//! owns the on-disk layout: segment files are written first and become
//! visible only when the `MANIFEST` (committed by atomic tmp-rename)
//! references them, so a crash mid-write leaves a torn file that
//! recovery never reads. Merging sealed segments sorts the union of
//! their records by the globally unique ingest sequence number, which
//! makes the merge operator associative and permutation-invariant — the
//! properties the persistence proptests pin down.
//!
//! Failpoints at the two disk seams (`index.persist` tears a segment
//! write in half, `index.merge` kills a compaction between the merged
//! file and the manifest commit) let the chaos suite inject exactly the
//! crashes the recovery invariants are supposed to survive.

use crate::codec::{self, CodecError};
use crate::index::IndexEntry;
use saccs_text::SubjectiveTag;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// File magic for a sealed segment image.
const SEGMENT_MAGIC: &[u8; 5] = b"SSEG1";
/// File magic for a checkpointed posting-list image.
const POSTINGS_MAGIC: &[u8; 5] = b"SPST1";
/// The committed manifest file name.
const MANIFEST: &str = "MANIFEST";
/// Manifest header line (format version gate).
const MANIFEST_HEADER: &str = "saccs-segments v1";

/// One ingested review: the globally unique ingest sequence number, the
/// entity it reviews, and the subjective tags extracted from its text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReviewRecord {
    /// Global ingest sequence number (unique, assigned under the writer
    /// lock, strictly increasing).
    pub seq: u64,
    /// The reviewed entity.
    pub entity_id: usize,
    /// Extracted subjective tags, in extraction order.
    pub tags: Vec<SubjectiveTag>,
}

/// The append-only mutable segment receiving `add_review` writes.
#[derive(Debug, Default)]
pub struct MemSegment {
    records: Vec<ReviewRecord>,
}

impl MemSegment {
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one record. Callers assign strictly increasing `seq`s
    /// (the live writer does so under its lock).
    pub fn push(&mut self, record: ReviewRecord) {
        debug_assert!(self
            .records
            .last()
            .map(|r| r.seq < record.seq)
            .unwrap_or(true));
        self.records.push(record);
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records buffered so far, in ingest order.
    pub fn records(&self) -> &[ReviewRecord] {
        &self.records
    }

    /// Seal: move the buffered records into an immutable segment,
    /// leaving this mem-segment empty. Returns `None` when there is
    /// nothing to seal.
    pub fn seal(&mut self) -> Option<SealedSegment> {
        if self.records.is_empty() {
            return None;
        }
        Some(SealedSegment::new(std::mem::take(&mut self.records)))
    }
}

/// An immutable, checksummed run of records sorted by `seq`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedSegment {
    records: Vec<ReviewRecord>,
}

impl SealedSegment {
    /// Wrap a seq-sorted record run. Debug builds verify the ordering
    /// invariant; release builds trust the (tested) writers.
    pub fn new(records: Vec<ReviewRecord>) -> Self {
        debug_assert!(records.windows(2).all(|w| w[0].seq < w[1].seq));
        debug_assert!(!records.is_empty());
        SealedSegment { records }
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The records, in seq order.
    pub fn records(&self) -> &[ReviewRecord] {
        &self.records
    }

    /// Lowest ingest seq in the segment.
    pub fn first_seq(&self) -> u64 {
        self.records.first().map(|r| r.seq).unwrap_or(0)
    }

    /// Highest ingest seq in the segment.
    pub fn last_seq(&self) -> u64 {
        self.records.last().map(|r| r.seq).unwrap_or(0)
    }

    /// Encode to the on-disk image: magic, varint record count, per
    /// record the seq delta / entity id / tag strings as varints, and an
    /// 8-byte little-endian FNV-1a checksum trailer over everything
    /// before it.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.records.len() * 16);
        out.extend_from_slice(SEGMENT_MAGIC);
        codec::put_varint(&mut out, self.records.len() as u64);
        let mut prev_seq = 0u64;
        for r in &self.records {
            codec::put_varint(&mut out, r.seq - prev_seq);
            prev_seq = r.seq;
            codec::put_varint(&mut out, r.entity_id as u64);
            codec::put_varint(&mut out, r.tags.len() as u64);
            for t in &r.tags {
                codec::put_str(&mut out, &t.opinion);
                codec::put_str(&mut out, &t.aspect);
            }
        }
        let checksum = saccs_obs::trace::hash_bytes(0, &out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Decode an on-disk image, validating magic, checksum and the
    /// strictly-increasing seq invariant. A torn (truncated or
    /// half-written) file fails the checksum and is reported as corrupt
    /// rather than surfacing partial records.
    pub fn decode(bytes: &[u8]) -> Result<SealedSegment, StoreError> {
        if bytes.len() < SEGMENT_MAGIC.len() + 8 {
            return Err(StoreError::Corrupt("segment file too short".into()));
        }
        if &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
            return Err(StoreError::Corrupt("bad segment magic".into()));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let mut stored = [0u8; 8];
        stored.copy_from_slice(trailer);
        if saccs_obs::trace::hash_bytes(0, body) != u64::from_le_bytes(stored) {
            return Err(StoreError::Corrupt("segment checksum mismatch".into()));
        }
        let mut pos = SEGMENT_MAGIC.len();
        let count = codec::get_varint(body, &mut pos)? as usize;
        let mut records = Vec::with_capacity(count.min(1 << 16));
        let mut prev_seq = 0u64;
        for i in 0..count {
            let delta = codec::get_varint(body, &mut pos)?;
            if i > 0 && delta == 0 {
                return Err(StoreError::Corrupt("segment seqs not increasing".into()));
            }
            let seq = prev_seq + delta;
            prev_seq = seq;
            let entity_id = codec::get_varint(body, &mut pos)? as usize;
            let tag_count = codec::get_varint(body, &mut pos)? as usize;
            let mut tags = Vec::with_capacity(tag_count.min(1 << 12));
            for _ in 0..tag_count {
                let opinion = codec::get_str(body, &mut pos)?;
                let aspect = codec::get_str(body, &mut pos)?;
                tags.push(SubjectiveTag { opinion, aspect });
            }
            records.push(ReviewRecord {
                seq,
                entity_id,
                tags,
            });
        }
        if pos != body.len() {
            return Err(StoreError::Corrupt("trailing bytes after records".into()));
        }
        if records.is_empty() {
            return Err(StoreError::Corrupt("empty segment".into()));
        }
        Ok(SealedSegment { records })
    }
}

/// Merge sealed segments into one: the union of their records sorted by
/// the globally unique ingest seq (duplicates collapse, making the
/// operator idempotent too). Because the result is a pure function of
/// the record *set*, merging is associative and permutation-invariant —
/// compaction order and timing cannot change what readers see.
pub fn merge_segments(segments: &[SealedSegment]) -> Option<SealedSegment> {
    let mut records: Vec<ReviewRecord> = segments
        .iter()
        .flat_map(|s| s.records().iter().cloned())
        .collect();
    if records.is_empty() {
        return None;
    }
    records.sort_by_key(|r| r.seq);
    records.dedup_by_key(|r| r.seq);
    Some(SealedSegment { records })
}

/// Everything the committed manifest pins: the durable ingest frontier,
/// the segment set, the optional checkpointed posting image, the index
/// tag set, and the pending user-tag history.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Next ingest seq to assign after recovery.
    pub next_seq: u64,
    /// `(first_seq, last_seq)` per committed segment, in seq order.
    pub segments: Vec<(u64, u64)>,
    /// File name of the checkpointed posting lists, when one was
    /// committed alongside the segment set.
    pub postings_file: Option<String>,
    /// The index tag set at commit time.
    pub tags: Vec<SubjectiveTag>,
    /// Pending unknown-tag requests `(tag, count)` at commit time.
    pub pending: Vec<(SubjectiveTag, usize)>,
}

impl Manifest {
    fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(MANIFEST_HEADER);
        out.push('\n');
        out.push_str(&format!("next_seq\t{}\n", self.next_seq));
        for (first, last) in &self.segments {
            out.push_str(&format!("segment\t{first}\t{last}\n"));
        }
        if let Some(name) = &self.postings_file {
            out.push_str(&format!("postings\t{name}\n"));
        }
        for t in &self.tags {
            out.push_str(&format!("tag\t{}|{}\n", t.opinion, t.aspect));
        }
        for (t, count) in &self.pending {
            out.push_str(&format!("pending\t{}|{}\t{count}\n", t.opinion, t.aspect));
        }
        out
    }

    fn parse(text: &str) -> Result<Manifest, StoreError> {
        let corrupt = |what: &str| StoreError::Corrupt(format!("manifest: {what}"));
        let mut lines = text.lines();
        if lines.next() != Some(MANIFEST_HEADER) {
            return Err(corrupt("bad header"));
        }
        let mut m = Manifest::default();
        let parse_tag = |key: &str| -> Result<SubjectiveTag, StoreError> {
            let (opinion, aspect) = key
                .split_once('|')
                .ok_or_else(|| corrupt("tag key missing |"))?;
            Ok(SubjectiveTag::new(opinion, aspect))
        };
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (kind, rest) = line
                .split_once('\t')
                .ok_or_else(|| corrupt("missing tab"))?;
            match kind {
                "next_seq" => {
                    m.next_seq = rest.parse().map_err(|_| corrupt("bad next_seq"))?;
                }
                "segment" => {
                    let (first, last) = rest
                        .split_once('\t')
                        .ok_or_else(|| corrupt("segment needs first\\tlast"))?;
                    m.segments.push((
                        first.parse().map_err(|_| corrupt("bad first seq"))?,
                        last.parse().map_err(|_| corrupt("bad last seq"))?,
                    ));
                }
                "postings" => m.postings_file = Some(rest.to_string()),
                "tag" => m.tags.push(parse_tag(rest)?),
                "pending" => {
                    let (key, count) = rest
                        .split_once('\t')
                        .ok_or_else(|| corrupt("pending needs tag\\tcount"))?;
                    m.pending.push((
                        parse_tag(key)?,
                        count.parse().map_err(|_| corrupt("bad pending count"))?,
                    ));
                }
                _ => return Err(corrupt("unknown line kind")),
            }
        }
        Ok(m)
    }
}

/// A persistence failure: disk, codec, integrity, or an injected fault.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem error.
    Io(std::io::Error),
    /// Varint/string decode error inside a file image.
    Codec(CodecError),
    /// An integrity invariant failed (checksum, magic, ordering).
    Corrupt(String),
    /// An armed failpoint injected a failure at a persistence seam.
    Fault(saccs_fault::FaultError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "segment store io: {e}"),
            StoreError::Codec(e) => write!(f, "segment store codec: {e}"),
            StoreError::Corrupt(what) => write!(f, "segment store corrupt: {what}"),
            StoreError::Fault(e) => write!(f, "segment store fault: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> Self {
        StoreError::Codec(e)
    }
}

impl From<saccs_fault::FaultError> for StoreError {
    fn from(e: saccs_fault::FaultError) -> Self {
        StoreError::Fault(e)
    }
}

/// A committed store image loaded back from disk.
#[derive(Debug)]
pub struct LoadedStore {
    /// The committed manifest.
    pub manifest: Manifest,
    /// The committed segments, in manifest order (seq order).
    pub segments: Vec<SealedSegment>,
    /// The checkpointed posting lists, when the manifest references one.
    pub postings: Option<BTreeMap<SubjectiveTag, Vec<IndexEntry>>>,
}

/// The on-disk segment directory: segment files, optional posting
/// checkpoints, and the `MANIFEST` that makes a set of them visible.
#[derive(Debug)]
pub struct SegmentStore {
    dir: PathBuf,
}

impl SegmentStore {
    /// Open (creating if needed) the store directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<SegmentStore, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(SegmentStore { dir })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn segment_path(&self, first: u64, last: u64) -> PathBuf {
        self.dir.join(format!("seg-{first:08}-{last:08}.seg"))
    }

    /// Write one sealed segment to its final file name. The file is
    /// *not yet visible*: only a subsequent manifest commit references
    /// it. Under the `index.persist` failpoint the write is torn in
    /// half — exactly the on-disk state a crash mid-write leaves — and
    /// the injected error is returned so the caller re-persists later.
    pub fn persist_segment(&self, segment: &SealedSegment) -> Result<(), StoreError> {
        let bytes = segment.encode();
        let path = self.segment_path(segment.first_seq(), segment.last_seq());
        if let Err(fault) = saccs_fault::failpoint!("index.persist") {
            let _ = std::fs::write(&path, &bytes[..bytes.len() / 2]);
            return Err(StoreError::Fault(fault));
        }
        std::fs::write(&path, &bytes)?;
        Ok(())
    }

    /// Write the posting lists as a checkpoint image named by content
    /// hash (`postings-<hash>.bin`), returning the file name for the
    /// manifest. Content addressing makes the write idempotent and
    /// guarantees an already-committed manifest never sees its
    /// referenced image change underneath it.
    pub fn write_postings(
        &self,
        entries: &BTreeMap<SubjectiveTag, Vec<IndexEntry>>,
    ) -> Result<String, StoreError> {
        let mut out = Vec::new();
        out.extend_from_slice(POSTINGS_MAGIC);
        codec::put_varint(&mut out, entries.len() as u64);
        for (tag, postings) in entries {
            codec::put_str(&mut out, &tag.opinion);
            codec::put_str(&mut out, &tag.aspect);
            codec::put_postings(&mut out, postings);
        }
        let checksum = saccs_obs::trace::hash_bytes(0, &out);
        out.extend_from_slice(&checksum.to_le_bytes());
        let name = format!("postings-{checksum:016x}.bin");
        std::fs::write(self.dir.join(&name), &out)?;
        Ok(name)
    }

    fn read_postings(
        &self,
        name: &str,
    ) -> Result<BTreeMap<SubjectiveTag, Vec<IndexEntry>>, StoreError> {
        let bytes = std::fs::read(self.dir.join(name))?;
        if bytes.len() < POSTINGS_MAGIC.len() + 8 {
            return Err(StoreError::Corrupt("postings file too short".into()));
        }
        if &bytes[..POSTINGS_MAGIC.len()] != POSTINGS_MAGIC {
            return Err(StoreError::Corrupt("bad postings magic".into()));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let mut stored = [0u8; 8];
        stored.copy_from_slice(trailer);
        if saccs_obs::trace::hash_bytes(0, body) != u64::from_le_bytes(stored) {
            return Err(StoreError::Corrupt("postings checksum mismatch".into()));
        }
        let mut pos = POSTINGS_MAGIC.len();
        let count = codec::get_varint(body, &mut pos)? as usize;
        let mut entries = BTreeMap::new();
        for _ in 0..count {
            let opinion = codec::get_str(body, &mut pos)?;
            let aspect = codec::get_str(body, &mut pos)?;
            let postings = codec::get_postings(body, &mut pos)?;
            entries.insert(SubjectiveTag { opinion, aspect }, postings);
        }
        if pos != body.len() {
            return Err(StoreError::Corrupt("trailing bytes after postings".into()));
        }
        Ok(entries)
    }

    /// Commit `manifest`: render to `MANIFEST.tmp`, atomically rename
    /// over `MANIFEST`, then best-effort-remove segment/posting files
    /// the new manifest no longer references (merged-away inputs, torn
    /// half-writes, orphans of aborted merges).
    pub fn commit(&self, manifest: &Manifest) -> Result<(), StoreError> {
        let tmp = self.dir.join("MANIFEST.tmp");
        std::fs::write(&tmp, manifest.render().as_bytes())?;
        std::fs::rename(&tmp, self.dir.join(MANIFEST))?;
        self.sweep_unreferenced(manifest);
        Ok(())
    }

    /// Remove `.seg`/`.bin` files the manifest does not reference.
    /// Failures are ignored: stray files are invisible to recovery
    /// anyway, so cleanup is an optimization, never a correctness step.
    fn sweep_unreferenced(&self, manifest: &Manifest) {
        let mut referenced: Vec<PathBuf> = manifest
            .segments
            .iter()
            .map(|&(first, last)| self.segment_path(first, last))
            .collect();
        if let Some(name) = &manifest.postings_file {
            referenced.push(self.dir.join(name));
        }
        let Ok(dir) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for entry in dir.flatten() {
            let path = entry.path();
            let ext = path.extension().and_then(|e| e.to_str());
            if !matches!(ext, Some("seg") | Some("bin")) {
                continue;
            }
            if !referenced.contains(&path) {
                let _ = std::fs::remove_file(&path);
            }
        }
    }

    /// Load the last committed image, or `None` when no manifest was
    /// ever committed. Only manifest-referenced files are read (torn
    /// writes and aborted-merge orphans are invisible), and every file
    /// is checksum-validated, so the result is always a consistent
    /// prefix of the ingest stream.
    pub fn load(&self) -> Result<Option<LoadedStore>, StoreError> {
        let manifest_path = self.dir.join(MANIFEST);
        let text = match std::fs::read_to_string(&manifest_path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let manifest = Manifest::parse(&text)?;
        let mut segments = Vec::with_capacity(manifest.segments.len());
        for &(first, last) in &manifest.segments {
            let bytes = std::fs::read(self.segment_path(first, last))?;
            let segment = SealedSegment::decode(&bytes)?;
            if segment.first_seq() != first || segment.last_seq() != last {
                return Err(StoreError::Corrupt(
                    "segment seq range disagrees with manifest".into(),
                ));
            }
            segments.push(segment);
        }
        let postings = match &manifest.postings_file {
            Some(name) => Some(self.read_postings(name)?),
            None => None,
        };
        Ok(Some(LoadedStore {
            manifest,
            segments,
            postings,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tag(op: &str, asp: &str) -> SubjectiveTag {
        SubjectiveTag::new(op, asp)
    }

    fn record(seq: u64, entity: usize, tags: &[(&str, &str)]) -> ReviewRecord {
        ReviewRecord {
            seq,
            entity_id: entity,
            tags: tags.iter().map(|(o, a)| tag(o, a)).collect(),
        }
    }

    fn temp_store(label: &str) -> SegmentStore {
        static NONCE: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "saccs-segment-{label}-{}-{}",
            std::process::id(),
            NONCE.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        SegmentStore::open(dir).unwrap()
    }

    fn sample_segment() -> SealedSegment {
        SealedSegment::new(vec![
            record(3, 0, &[("good", "food"), ("nice", "staff")]),
            record(5, 2, &[("romantic", "ambiance")]),
            record(9, 0, &[]),
        ])
    }

    #[test]
    fn segment_encode_decode_round_trips() {
        let seg = sample_segment();
        let back = SealedSegment::decode(&seg.encode()).unwrap();
        assert_eq!(back, seg);
        assert_eq!(back.first_seq(), 3);
        assert_eq!(back.last_seq(), 9);
    }

    #[test]
    fn corrupted_byte_fails_the_checksum() {
        let mut bytes = sample_segment().encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(matches!(
            SealedSegment::decode(&bytes),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn torn_half_image_is_rejected() {
        let bytes = sample_segment().encode();
        assert!(matches!(
            SealedSegment::decode(&bytes[..bytes.len() / 2]),
            Err(StoreError::Corrupt(_))
        ));
    }

    #[test]
    fn merge_is_permutation_invariant_and_associative() {
        let a = SealedSegment::new(vec![record(1, 0, &[("good", "food")])]);
        let b = SealedSegment::new(vec![record(2, 1, &[("nice", "staff")])]);
        let c = SealedSegment::new(vec![
            record(4, 0, &[("quick", "service")]),
            record(7, 2, &[]),
        ]);
        let abc = merge_segments(&[a.clone(), b.clone(), c.clone()]).unwrap();
        let cba = merge_segments(&[c.clone(), b.clone(), a.clone()]).unwrap();
        assert_eq!(abc, cba);
        let ab_then_c =
            merge_segments(&[merge_segments(&[a.clone(), b.clone()]).unwrap(), c.clone()]).unwrap();
        let a_then_bc = merge_segments(&[a, merge_segments(&[b, c]).unwrap()]).unwrap();
        assert_eq!(ab_then_c, a_then_bc);
        assert_eq!(abc, ab_then_c);
        assert_eq!(abc.first_seq(), 1);
        assert_eq!(abc.last_seq(), 7);
    }

    #[test]
    fn store_round_trips_segments_manifest_and_postings() {
        let store = temp_store("roundtrip");
        let seg = sample_segment();
        store.persist_segment(&seg).unwrap();
        let mut entries = BTreeMap::new();
        entries.insert(
            tag("good", "food"),
            vec![IndexEntry {
                entity_id: 0,
                degree_of_truth: 1.5,
                normalized: 1.0,
            }],
        );
        let postings_file = store.write_postings(&entries).unwrap();
        let manifest = Manifest {
            next_seq: 10,
            segments: vec![(seg.first_seq(), seg.last_seq())],
            postings_file: Some(postings_file),
            tags: vec![tag("good", "food")],
            pending: vec![(tag("quiet", "place"), 2)],
        };
        store.commit(&manifest).unwrap();

        let loaded = store.load().unwrap().unwrap();
        assert_eq!(loaded.manifest, manifest);
        assert_eq!(loaded.segments, vec![seg]);
        assert_eq!(loaded.postings.unwrap(), entries);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn load_ignores_unmanifested_files_and_sweep_removes_them() {
        let store = temp_store("stray");
        let seg = sample_segment();
        store.persist_segment(&seg).unwrap();
        // A stray torn file never referenced by any manifest.
        let stray = store.dir().join("seg-99999990-99999999.seg");
        std::fs::write(&stray, b"torn garbage").unwrap();
        let manifest = Manifest {
            next_seq: 10,
            segments: vec![(seg.first_seq(), seg.last_seq())],
            ..Default::default()
        };
        store.commit(&manifest).unwrap();
        // The stray file was swept and recovery only sees the committed set.
        assert!(!stray.exists());
        let loaded = store.load().unwrap().unwrap();
        assert_eq!(loaded.segments.len(), 1);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn empty_dir_loads_as_none() {
        let store = temp_store("empty");
        assert!(store.load().unwrap().is_none());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn mem_segment_seals_into_sorted_runs() {
        let mut mem = MemSegment::new();
        assert!(mem.seal().is_none());
        mem.push(record(0, 4, &[("good", "food")]));
        mem.push(record(1, 5, &[]));
        let sealed = mem.seal().unwrap();
        assert!(mem.is_empty());
        assert_eq!(sealed.len(), 2);
        assert_eq!(sealed.first_seq(), 0);
        assert_eq!(sealed.last_seq(), 1);
    }
}

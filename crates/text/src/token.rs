//! Tokenization with source offsets.
//!
//! The extraction pipeline of the paper labels *words* in a sentence
//! (Section 4), so the tokenizer splits on whitespace and peels punctuation
//! into its own tokens, keeping byte offsets so spans can be mapped back to
//! the original text.

/// A single token with its byte span in the source string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token text, exactly as it appears in the source (or lowercased when
    /// produced by [`tokenize_lower`]).
    pub text: String,
    /// Byte offset of the first byte of the token in the source string.
    pub start: usize,
    /// Byte offset one past the last byte of the token.
    pub end: usize,
}

impl Token {
    /// True when the token consists solely of ASCII punctuation.
    pub fn is_punctuation(&self) -> bool {
        !self.text.is_empty() && self.text.chars().all(|c| c.is_ascii_punctuation())
    }
}

fn is_token_char(c: char) -> bool {
    c.is_alphanumeric() || c == '\'' || c == '-'
}

/// Split `text` into word and punctuation tokens.
///
/// Rules:
/// * maximal runs of alphanumerics (plus intra-word `'` and `-`, so
///   `don't` and `well-cooked` stay whole) form word tokens;
/// * every other non-whitespace character becomes a single-char token;
/// * whitespace separates tokens and is never emitted.
///
/// ```
/// use saccs_text::tokenize;
/// let toks = tokenize("The food is really good, isn't it?");
/// let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
/// assert_eq!(
///     texts,
///     ["The", "food", "is", "really", "good", ",", "isn't", "it", "?"]
/// );
/// ```
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut word_start: Option<usize> = None;
    for (i, c) in text.char_indices() {
        if is_token_char(c) {
            if word_start.is_none() {
                word_start = Some(i);
            }
        } else {
            if let Some(start) = word_start.take() {
                tokens.push(Token {
                    text: text[start..i].to_string(),
                    start,
                    end: i,
                });
            }
            if !c.is_whitespace() {
                let end = i + c.len_utf8();
                tokens.push(Token {
                    text: text[i..end].to_string(),
                    start: i,
                    end,
                });
            }
        }
    }
    if let Some(start) = word_start {
        tokens.push(Token {
            text: text[start..].to_string(),
            start,
            end: text.len(),
        });
    }
    tokens
}

/// Like [`tokenize`] but lowercases every token, the normal form used by the
/// neural pipeline and the lexicons.
pub fn tokenize_lower(text: &str) -> Vec<Token> {
    let mut toks = tokenize(text);
    for t in &mut toks {
        t.text = t.text.to_lowercase();
    }
    toks
}

/// Convenience: lowercased word strings only (punctuation removed).
pub fn words_lower(text: &str) -> Vec<String> {
    tokenize_lower(text)
        .into_iter()
        .filter(|t| !t.is_punctuation())
        .map(|t| t.text)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_punctuation() {
        let toks = tokenize("Great food!");
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[2].text, "!");
        assert!(toks[2].is_punctuation());
        assert!(!toks[0].is_punctuation());
    }

    #[test]
    fn offsets_reconstruct_source() {
        let src = "The staff is friendly, helpful and professional.";
        for t in tokenize(src) {
            assert_eq!(&src[t.start..t.end], t.text);
        }
    }

    #[test]
    fn keeps_apostrophes_and_hyphens() {
        let texts: Vec<String> = tokenize("well-cooked pasta, isn't it")
            .into_iter()
            .map(|t| t.text)
            .collect();
        assert_eq!(texts, ["well-cooked", "pasta", ",", "isn't", "it"]);
    }

    #[test]
    fn empty_and_whitespace_inputs() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n ").is_empty());
    }

    #[test]
    fn lowercases() {
        let toks = tokenize_lower("GOOD Food");
        assert_eq!(toks[0].text, "good");
        assert_eq!(toks[1].text, "food");
    }

    #[test]
    fn unicode_safe() {
        let toks = tokenize("café très bon — vraiment");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["café", "très", "bon", "—", "vraiment"]);
    }

    #[test]
    fn words_lower_drops_punctuation() {
        assert_eq!(
            words_lower("Nice staff, great food!"),
            ["nice", "staff", "great", "food"]
        );
    }

    mod props {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            /// Every token's offsets point at exactly its text.
            #[test]
            fn prop_offsets_are_exact(s in "[a-zA-Z0-9 .,!?'-]{0,60}") {
                for t in tokenize(&s) {
                    prop_assert_eq!(&s[t.start..t.end], t.text.as_str());
                }
            }

            /// Tokens never overlap and appear in order.
            #[test]
            fn prop_tokens_ordered_disjoint(s in "[a-zA-Z .,!?]{0,60}") {
                let toks = tokenize(&s);
                for w in toks.windows(2) {
                    prop_assert!(w[0].end <= w[1].start);
                }
            }

            /// Concatenating tokens loses only whitespace.
            #[test]
            fn prop_no_content_lost(s in "[a-zA-Z .,!?]{0,60}") {
                let joined: String = tokenize(&s).into_iter().map(|t| t.text).collect();
                let strip = |x: &str| x.chars().filter(|c| !c.is_whitespace()).collect::<String>();
                prop_assert_eq!(strip(&joined), strip(&s));
            }

            /// words_lower output is lowercase and punctuation-free.
            #[test]
            fn prop_words_lower_clean(s in "[a-zA-Z .,!?']{0,60}") {
                for w in words_lower(&s) {
                    prop_assert!(!w.is_empty());
                    prop_assert!(w.chars().all(|c| !c.is_ascii_uppercase()));
                    prop_assert!(w.chars().any(|c| c.is_alphanumeric()));
                }
            }
        }
    }
}

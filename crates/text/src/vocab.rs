//! Integer vocabularies for the neural stack.
//!
//! MiniBert (the paper's BERT stand-in) and the tagger consume token ids.
//! A [`Vocab`] maps token strings to dense ids, reserving the conventional
//! special tokens at fixed positions so model code can rely on them.

use std::collections::{BTreeMap, HashMap};

/// Id of the padding token. Always 0.
pub const PAD: usize = 0;
/// Id of the unknown-word token. Always 1.
pub const UNK: usize = 1;
/// Id of the mask token used by masked-LM pretraining. Always 2.
pub const MASK: usize = 2;
/// Id of the sequence-start token. Always 3.
pub const CLS: usize = 3;

const SPECIALS: [&str; 4] = ["[PAD]", "[UNK]", "[MASK]", "[CLS]"];

/// A frozen token ↔ id mapping.
#[derive(Debug, Clone)]
pub struct Vocab {
    id_of: HashMap<String, usize>,
    token_of: Vec<String>,
}

impl Vocab {
    /// Build a vocabulary from an iterator of (lowercased) tokens, keeping
    /// every token that occurs at least `min_freq` times. Iteration order of
    /// the result is deterministic: specials first, then tokens sorted by
    /// (descending frequency, lexicographic).
    pub fn build<'a, I: IntoIterator<Item = &'a str>>(tokens: I, min_freq: usize) -> Self {
        // BTreeMap so the pre-sort walk below is already ordered — ties
        // in the (freq, lexicographic) sort never depend on hash order
        // (audit: nondet-iteration).
        let mut freq: BTreeMap<&str, usize> = BTreeMap::new();
        for t in tokens {
            *freq.entry(t).or_insert(0) += 1;
        }
        let mut kept: Vec<(&str, usize)> =
            freq.into_iter().filter(|&(_, n)| n >= min_freq).collect();
        kept.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));

        let mut token_of: Vec<String> = SPECIALS.iter().map(|s| s.to_string()).collect();
        token_of.extend(kept.into_iter().map(|(t, _)| t.to_string()));
        let id_of = token_of
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i))
            .collect();
        Vocab { id_of, token_of }
    }

    /// Build directly from an explicit token list (specials are prepended;
    /// duplicates of specials in the list are ignored).
    pub fn from_tokens<I: IntoIterator<Item = String>>(tokens: I) -> Self {
        let mut token_of: Vec<String> = SPECIALS.iter().map(|s| s.to_string()).collect();
        let mut id_of: HashMap<String, usize> = token_of
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i))
            .collect();
        for t in tokens {
            if !id_of.contains_key(&t) {
                id_of.insert(t.clone(), token_of.len());
                token_of.push(t);
            }
        }
        Vocab { id_of, token_of }
    }

    /// Number of entries, including the four specials.
    pub fn len(&self) -> usize {
        self.token_of.len()
    }

    /// True if only the specials are present.
    pub fn is_empty(&self) -> bool {
        self.token_of.len() == SPECIALS.len()
    }

    /// Id for `token`, falling back to [`UNK`].
    pub fn id(&self, token: &str) -> usize {
        self.id_of.get(token).copied().unwrap_or(UNK)
    }

    /// True when `token` is in-vocabulary.
    pub fn contains(&self, token: &str) -> bool {
        self.id_of.contains_key(token)
    }

    /// Token string for `id`; panics on out-of-range ids.
    pub fn token(&self, id: usize) -> &str {
        &self.token_of[id]
    }

    /// Encode a token sequence to ids (no implicit CLS; callers that want a
    /// sequence-start marker push [`CLS`] themselves).
    pub fn encode<'a, I: IntoIterator<Item = &'a str>>(&self, tokens: I) -> Vec<usize> {
        tokens.into_iter().map(|t| self.id(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specials_have_fixed_ids() {
        let v = Vocab::build(["a", "b", "a"], 1);
        assert_eq!(v.id("[PAD]"), PAD);
        assert_eq!(v.id("[UNK]"), UNK);
        assert_eq!(v.id("[MASK]"), MASK);
        assert_eq!(v.id("[CLS]"), CLS);
    }

    #[test]
    fn frequency_ordering_is_deterministic() {
        let v = Vocab::build(["b", "a", "b", "c", "a", "b"], 1);
        // b (3) before a (2) before c (1).
        assert_eq!(v.token(4), "b");
        assert_eq!(v.token(5), "a");
        assert_eq!(v.token(6), "c");
    }

    #[test]
    fn min_freq_filters() {
        let v = Vocab::build(["a", "a", "b"], 2);
        assert!(v.contains("a"));
        assert!(!v.contains("b"));
        assert_eq!(v.id("b"), UNK);
    }

    #[test]
    fn encode_maps_oov_to_unk() {
        let v = Vocab::build(["food", "good"], 1);
        assert_eq!(v.encode(["food", "zzz"]), vec![v.id("food"), UNK]);
    }

    #[test]
    fn from_tokens_dedups() {
        let v = Vocab::from_tokens(vec!["x".into(), "y".into(), "x".into()]);
        assert_eq!(v.len(), 6);
        assert_eq!(v.id("x"), 4);
        assert_eq!(v.id("y"), 5);
    }

    #[test]
    fn roundtrip_token_id() {
        let v = Vocab::build(["food", "staff", "good"], 1);
        for id in 0..v.len() {
            assert_eq!(v.id(v.token(id)), id);
        }
    }
}

//! Plain string metrics used by the similarity checker and the IR baseline.

/// Levenshtein edit distance between two strings, computed over chars.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalized edit similarity in `[0, 1]`: `1 - lev / max_len`.
pub fn edit_similarity(a: &str, b: &str) -> f32 {
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f32 / max as f32
}

/// Jaccard similarity of two token multisets treated as sets.
pub fn jaccard<'a>(
    a: impl IntoIterator<Item = &'a str>,
    b: impl IntoIterator<Item = &'a str>,
) -> f32 {
    // BTreeSet so the set algebra below iterates in token order — the
    // counts are order-free, but keeping the walk ordered means a future
    // change that *consumes* the elements stays deterministic (audit:
    // nondet-iteration).
    use std::collections::BTreeSet;
    let sa: BTreeSet<&str> = a.into_iter().collect();
    let sb: BTreeSet<&str> = b.into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count() as f32;
    let union = sa.union(&sb).count() as f32;
    inter / union
}

/// Cosine similarity of two dense vectors; 0 when either has zero norm.
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "cosine: dimension mismatch");
    let mut dot = 0.0f32;
    let mut na = 0.0f32;
    let mut nb = 0.0f32;
    for (&x, &y) in a.iter().zip(b) {
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na.sqrt() * nb.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("food", "good"), 1);
    }

    #[test]
    fn edit_similarity_bounds() {
        assert_eq!(edit_similarity("", ""), 1.0);
        assert_eq!(edit_similarity("abc", "abc"), 1.0);
        assert_eq!(edit_similarity("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard(["a", "b"], ["a", "b"]), 1.0);
        assert_eq!(jaccard(["a"], ["b"]), 0.0);
        assert!((jaccard(["a", "b"], ["b", "c"]) - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }

    proptest! {
        #[test]
        fn prop_levenshtein_symmetric(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
        }

        #[test]
        fn prop_levenshtein_triangle(a in "[a-z]{0,8}", b in "[a-z]{0,8}", c in "[a-z]{0,8}") {
            prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
        }

        #[test]
        fn prop_levenshtein_identity(a in "[a-z]{0,16}") {
            prop_assert_eq!(levenshtein(&a, &a), 0);
        }

        #[test]
        fn prop_edit_similarity_in_unit_interval(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
            let s = edit_similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
        }

        #[test]
        fn prop_cosine_bounded(v in proptest::collection::vec(-10.0f32..10.0, 1..8),
                               w in proptest::collection::vec(-10.0f32..10.0, 1..8)) {
            let n = v.len().min(w.len());
            let s = cosine(&v[..n], &w[..n]);
            prop_assert!((-1.0 - 1e-5..=1.0 + 1e-5).contains(&s));
        }
    }
}

//! Conceptual similarity between subjective tags.
//!
//! The paper compares subjective tags (short `opinion + aspect` phrases)
//! with a *conceptual similarity* that "in addition to the individual
//! meaning of words, also considers their nature or concept, for example
//! pizza being a type of food", and notes it "has been shown to work better
//! on short phrases such as subjective tags than cosine similarity"
//! (Section 3.1, footnote 2 — the measure itself is out of the paper's
//! scope). This module supplies a concrete instance built on the
//! [`Lexicon`]: identity > synonymy (shared opinion group / aspect concept)
//! > concept relatedness > polarity-gated co-applicability, with a fuzzy
//! > edit-distance fallback for out-of-lexicon terms (typos).

use crate::lexicon::{Lexicon, OpinionGroup};
use crate::metrics::edit_similarity;
use crate::token::words_lower;

/// A subjective tag: "concatenation of an aspect term and an opinion term"
/// (Section 1). `delicious food` has opinion `delicious`, aspect `food`.
/// Both parts are lowercase and may be multiword (`a bit slow service`).
#[derive(
    Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct SubjectiveTag {
    pub opinion: String,
    pub aspect: String,
}

impl SubjectiveTag {
    /// Build from already-separated parts, normalizing to lowercase words.
    pub fn new(opinion: &str, aspect: &str) -> Self {
        SubjectiveTag {
            opinion: words_lower(opinion).join(" "),
            aspect: words_lower(aspect).join(" "),
        }
    }

    /// Parse a surface phrase like `"delicious food"` or `"friendly
    /// waiters"`: the longest known-aspect suffix becomes the aspect, the
    /// rest the opinion. Falls back to "last word = aspect" when the suffix
    /// is out of lexicon, and returns `None` for phrases of fewer than two
    /// words.
    pub fn parse(phrase: &str, lexicon: &Lexicon) -> Option<Self> {
        let words = words_lower(phrase);
        if words.len() < 2 {
            return None;
        }
        // Longest suffix (up to 2 tokens) that is a known aspect member.
        for take in (1..=2usize.min(words.len() - 1)).rev() {
            let aspect = words[words.len() - take..].join(" ");
            if lexicon.aspect_concept(&aspect).is_some() {
                return Some(SubjectiveTag {
                    opinion: words[..words.len() - take].join(" "),
                    aspect,
                });
            }
        }
        Some(SubjectiveTag {
            opinion: words[..words.len() - 1].join(" "),
            aspect: words[words.len() - 1].clone(),
        })
    }

    /// The paper's surface form: opinion followed by aspect.
    pub fn phrase(&self) -> String {
        format!("{} {}", self.opinion, self.aspect)
    }
}

impl std::fmt::Display for SubjectiveTag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.opinion, self.aspect)
    }
}

/// Anything that can score the similarity of two subjective tags.
///
/// [`ConceptualSimilarity`] is the paper's measure; the embedding-cosine
/// alternative its footnote 2 compares against lives in `saccs-core`
/// (`EmbeddingSimilarity`), and the index accepts either.
pub trait TagSimilarity: Send + Sync {
    /// Similarity in `[0, 1]`.
    fn similarity(&self, a: &SubjectiveTag, b: &SubjectiveTag) -> f32;
}

/// Tunable weights of the similarity blend. Defaults reproduce the paper's
/// qualitative behaviour (see module docs and `EXPERIMENTS.md`).
#[derive(Debug, Clone)]
pub struct SimilarityConfig {
    /// Geometric weight of the aspect side; `1 - aspect_weight` goes to the
    /// opinion side.
    pub aspect_weight: f32,
    /// Score for two distinct surface terms of the same aspect concept.
    pub same_concept: f32,
    /// Score for terms of *related* concepts (food ↔ cooking).
    pub related_concept: f32,
    /// Score for two distinct phrases of the same opinion group.
    pub same_group: f32,
    /// Score when either opinion is a generic evaluative of equal polarity.
    pub generic_bridge: f32,
    /// Score for same-polarity opinions that share an applicable aspect.
    pub shared_applicability: f32,
    /// Score for same-polarity opinions with nothing else in common.
    pub same_polarity: f32,
    /// Edit-similarity threshold above which an out-of-lexicon term is
    /// fuzzily identified with an in-lexicon one (typo absorption).
    pub typo_threshold: f32,
}

impl Default for SimilarityConfig {
    fn default() -> Self {
        SimilarityConfig {
            aspect_weight: 0.5,
            same_concept: 0.90,
            related_concept: 0.55,
            same_group: 0.85,
            generic_bridge: 0.70,
            shared_applicability: 0.45,
            same_polarity: 0.20,
            typo_threshold: 0.75,
        }
    }
}

/// The similarity checker of Figure 1.
#[derive(Debug)]
pub struct ConceptualSimilarity {
    lexicon: Lexicon,
    config: SimilarityConfig,
    /// Memo for fuzzy canonicalization: OOV terms recur constantly in the
    /// index hot loops (every typo'd review tag is compared against every
    /// index tag), and each miss otherwise costs a full lexicon scan.
    fuzzy_cache: std::sync::Mutex<std::collections::HashMap<(String, bool), Option<&'static str>>>,
}

impl Clone for ConceptualSimilarity {
    fn clone(&self) -> Self {
        ConceptualSimilarity {
            lexicon: self.lexicon.clone(),
            config: self.config.clone(),
            fuzzy_cache: std::sync::Mutex::new(std::collections::HashMap::new()),
        }
    }
}

impl ConceptualSimilarity {
    pub fn new(lexicon: Lexicon) -> Self {
        Self::with_config(lexicon, SimilarityConfig::default())
    }

    pub fn with_config(lexicon: Lexicon, config: SimilarityConfig) -> Self {
        ConceptualSimilarity {
            lexicon,
            config,
            fuzzy_cache: std::sync::Mutex::new(std::collections::HashMap::new()),
        }
    }

    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }

    /// The active weight configuration (read-only).
    pub fn config(&self) -> &SimilarityConfig {
        &self.config
    }

    /// Resolve an aspect term to its canonical concept name, absorbing
    /// typos exactly as [`Self::aspect_similarity`] does. `None` means the
    /// term stays out of lexicon even after fuzzy canonicalization.
    pub fn resolve_aspect(&self, term: &str) -> Option<&'static str> {
        if let Some(c) = self.lexicon.aspect_concept(term) {
            return Some(c.canonical);
        }
        self.fuzzy_canonicalize(term, true)
            .and_then(|m| self.lexicon.aspect_concept(m))
            .map(|c| c.canonical)
    }

    /// Resolve an opinion phrase to its group, absorbing typos exactly as
    /// [`Self::opinion_similarity`] does.
    pub fn resolve_opinion(&self, phrase: &str) -> Option<&OpinionGroup> {
        self.lexicon.opinion_group(phrase).or_else(|| {
            self.fuzzy_canonicalize(phrase, false)
                .and_then(|v| self.lexicon.opinion_group(v))
        })
    }

    /// Upper bound on `aspect_similarity(p, t)` over *every* pair of terms
    /// whose resolutions are `probe_concept` and `cand_concept` (`None` =
    /// unresolved after fuzzy canonicalization).
    ///
    /// Soundness: identical strings always share a resolution state, so
    /// across a resolved/unresolved split the surface forms must differ and
    /// the score comes from the edit fallback `(edit_sim - 0.5).max(0) <=
    /// 0.5`. Two terms resolved to the same concept may still be the
    /// identical string, hence 1.0 there; two terms resolved to *different*
    /// concepts score exactly `related_concept` or 0.
    pub fn aspect_upper_bound(
        &self,
        probe_concept: Option<&str>,
        cand_concept: Option<&str>,
    ) -> f32 {
        match (probe_concept, cand_concept) {
            (Some(p), Some(c)) if p == c => 1.0,
            (Some(p), Some(c)) if self.lexicon.aspects_related(p, c) => self.config.related_concept,
            (Some(_), Some(_)) => 0.0,
            (None, None) => 1.0,
            _ => 0.5,
        }
    }

    /// Upper bound on `opinion_similarity(p, t)` over every pair of phrases
    /// whose resolutions are `probe_group` and `cand_group` (`None` =
    /// unresolved). Same identity argument as [`Self::aspect_upper_bound`];
    /// distinct groups can never hold the identical string, so the
    /// cross-group branches are exact, including the hard polarity zero.
    pub fn opinion_upper_bound(
        &self,
        probe_group: Option<&OpinionGroup>,
        cand_group: Option<&OpinionGroup>,
    ) -> f32 {
        match (probe_group, cand_group) {
            (Some(g1), Some(g2)) => {
                if g1.canonical == g2.canonical {
                    return 1.0;
                }
                if g1.polarity != g2.polarity {
                    return 0.0;
                }
                if g1.generic || g2.generic {
                    return self.config.generic_bridge;
                }
                if g1.aspects.iter().any(|a| g2.aspects.contains(a)) {
                    return self.config.shared_applicability;
                }
                self.config.same_polarity
            }
            (None, None) => 1.0,
            _ => 0.5,
        }
    }

    /// Combine per-side upper bounds exactly as [`Self::tag_similarity`]
    /// combines per-side scores (weighted geometric mean, hard zero).
    pub fn tag_upper_bound(&self, aspect_ub: f32, opinion_ub: f32) -> f32 {
        if aspect_ub <= 0.0 || opinion_ub <= 0.0 {
            return 0.0;
        }
        let w = self.config.aspect_weight;
        (aspect_ub.powf(w) * opinion_ub.powf(1.0 - w)).clamp(0.0, 1.0)
    }

    /// Absorb small typos: map an out-of-lexicon word to the best known
    /// aspect member / opinion variant when the edit similarity clears the
    /// configured threshold.
    fn fuzzy_canonicalize(&self, term: &str, aspect_side: bool) -> Option<&'static str> {
        if let Some(&hit) = self
            .fuzzy_cache
            .lock()
            .unwrap()
            .get(&(term.to_string(), aspect_side))
        {
            return hit;
        }
        let mut best: Option<(&'static str, f32)> = None;
        let mut consider = |cand: &'static str| {
            let s = edit_similarity(term, cand);
            if s >= self.config.typo_threshold && best.is_none_or(|(_, b)| s > b) {
                best = Some((cand, s));
            }
        };
        if aspect_side {
            for a in self.lexicon.aspects() {
                for &m in a.members {
                    consider(m);
                }
            }
        } else {
            for g in self.lexicon.opinion_groups() {
                for &v in g.variants {
                    consider(v);
                }
            }
        }
        let result = best.map(|(c, _)| c);
        self.fuzzy_cache
            .lock()
            .unwrap()
            .insert((term.to_string(), aspect_side), result);
        result
    }

    /// Similarity of two aspect terms in `[0, 1]`.
    pub fn aspect_similarity(&self, a1: &str, a2: &str) -> f32 {
        if a1 == a2 {
            return 1.0;
        }
        match (self.resolve_aspect(a1), self.resolve_aspect(a2)) {
            (Some(c1), Some(c2)) if c1 == c2 => self.config.same_concept,
            (Some(c1), Some(c2)) if self.lexicon.aspects_related(c1, c2) => {
                self.config.related_concept
            }
            (Some(_), Some(_)) => 0.0,
            // Out-of-lexicon on at least one side: weak lexical fallback so
            // novel-but-identical user vocabulary still clusters.
            _ => (edit_similarity(a1, a2) - 0.5).max(0.0),
        }
    }

    /// Similarity of two opinion phrases in `[0, 1]`. Opposite polarity is a
    /// hard zero: `delicious food` never matches `bland food`.
    pub fn opinion_similarity(&self, o1: &str, o2: &str) -> f32 {
        if o1 == o2 {
            return 1.0;
        }
        match (self.resolve_opinion(o1), self.resolve_opinion(o2)) {
            (Some(g1), Some(g2)) => {
                if g1.canonical == g2.canonical {
                    return self.config.same_group;
                }
                if g1.polarity != g2.polarity {
                    return 0.0;
                }
                if g1.generic || g2.generic {
                    return self.config.generic_bridge;
                }
                if g1.aspects.iter().any(|a| g2.aspects.contains(a)) {
                    return self.config.shared_applicability;
                }
                self.config.same_polarity
            }
            _ => (edit_similarity(o1, o2) - 0.5).max(0.0),
        }
    }

    /// Similarity of two subjective tags: the weighted geometric mean of the
    /// aspect- and opinion-side similarities, so a hard zero on either side
    /// (e.g. opposite polarity) zeroes the whole score.
    pub fn tag_similarity(&self, t1: &SubjectiveTag, t2: &SubjectiveTag) -> f32 {
        let a = self.aspect_similarity(&t1.aspect, &t2.aspect);
        let o = self.opinion_similarity(&t1.opinion, &t2.opinion);
        if a <= 0.0 || o <= 0.0 {
            return 0.0;
        }
        let w = self.config.aspect_weight;
        (a.powf(w) * o.powf(1.0 - w)).clamp(0.0, 1.0)
    }

    /// Convenience over surface phrases; returns 0 for unparseable phrases.
    pub fn phrase_similarity(&self, p1: &str, p2: &str) -> f32 {
        match (
            SubjectiveTag::parse(p1, &self.lexicon),
            SubjectiveTag::parse(p2, &self.lexicon),
        ) {
            (Some(t1), Some(t2)) => self.tag_similarity(&t1, &t2),
            _ => 0.0,
        }
    }
}

impl TagSimilarity for ConceptualSimilarity {
    fn similarity(&self, a: &SubjectiveTag, b: &SubjectiveTag) -> f32 {
        self.tag_similarity(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexicon::Domain;
    use proptest::prelude::*;

    fn sim() -> ConceptualSimilarity {
        ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants))
    }

    #[test]
    fn parse_splits_opinion_and_aspect() {
        let lex = Lexicon::new(Domain::Restaurants);
        let t = SubjectiveTag::parse("delicious food", &lex).unwrap();
        assert_eq!(t.opinion, "delicious");
        assert_eq!(t.aspect, "food");
        let t = SubjectiveTag::parse("really good la carte", &lex).unwrap();
        assert_eq!(t.opinion, "really good");
        assert_eq!(t.aspect, "la carte");
        assert!(SubjectiveTag::parse("food", &lex).is_none());
    }

    #[test]
    fn identity_is_one() {
        let s = sim();
        let t = SubjectiveTag::new("delicious", "food");
        assert_eq!(s.tag_similarity(&t, &t), 1.0);
    }

    #[test]
    fn paraphrases_score_high() {
        let s = sim();
        // The paper's §1 example: all three phrasings denote deliciousness.
        let a = SubjectiveTag::new("really good", "food");
        let b = SubjectiveTag::new("very tasty", "plates"); // "Very tasty plates of food"
        let c = SubjectiveTag::new("delicious", "food");
        assert!(
            s.tag_similarity(&a, &c) > 0.8,
            "{}",
            s.tag_similarity(&a, &c)
        );
        // plates-vs-food crosses concepts, so lower, but the opinions agree.
        assert!(s.opinion_similarity(&b.opinion, &c.opinion) > 0.8);
    }

    #[test]
    fn opposite_polarity_is_zero() {
        let s = sim();
        let good = SubjectiveTag::new("delicious", "food");
        let bad = SubjectiveTag::new("bland", "food");
        assert_eq!(s.tag_similarity(&good, &bad), 0.0);
    }

    #[test]
    fn figure1_amazing_pizza_matches_good_food() {
        // In Figure 1 the review tag "amazing pizza" maps E5 onto the index
        // tag "good food" — concept subsumption (pizza is-a food) plus the
        // generic-positive bridge.
        let s = sim();
        let a = SubjectiveTag::new("amazing", "pizza");
        let b = SubjectiveTag::new("good", "food");
        let v = s.tag_similarity(&a, &b);
        assert!(v > 0.7, "amazing pizza ~ good food = {v}");
    }

    #[test]
    fn section32_delicious_food_vs_index() {
        // §3.2: "delicious food" is similar to both "good food" and
        // "creative cooking", with the former closer.
        let s = sim();
        let q = SubjectiveTag::new("delicious", "food");
        let s1 = s.tag_similarity(&q, &SubjectiveTag::new("good", "food"));
        let s2 = s.tag_similarity(&q, &SubjectiveTag::new("creative", "cooking"));
        assert!(s1 > s2, "s1={s1} s2={s2}");
        assert!(s2 > 0.4, "s2={s2} should clear a 0.4 filter threshold");
        // ...but "fast delivery" is not similar to "delicious food".
        let s3 = s.tag_similarity(&q, &SubjectiveTag::new("fast", "delivery"));
        assert!(s3 < 0.3, "s3={s3}");
    }

    #[test]
    fn typos_are_absorbed() {
        let s = sim();
        let v = s.tag_similarity(
            &SubjectiveTag::new("delicios", "fodd"),
            &SubjectiveTag::new("delicious", "food"),
        );
        assert!(v > 0.7, "typo similarity = {v}");
    }

    #[test]
    fn unknown_terms_fall_back_lexically() {
        let s = sim();
        assert!(s.aspect_similarity("zorgle", "zorgle") == 1.0);
        assert!(s.aspect_similarity("zorgle", "blarg") < 0.2);
    }

    #[test]
    fn nice_staff_close_to_friendly_waiters() {
        let s = sim();
        let v = s.phrase_similarity("nice staff", "friendly waiters");
        assert!(v > 0.8, "{v}");
    }

    proptest! {
        /// Tag similarity is symmetric and bounded for arbitrary in-lexicon pairs.
        #[test]
        fn prop_symmetric_bounded(i1 in 0usize..26, a1 in 0usize..16, i2 in 0usize..26, a2 in 0usize..16) {
            let s = sim();
            let lex = s.lexicon().clone();
            let ops = lex.opinion_groups();
            let asps = lex.aspects();
            let t1 = SubjectiveTag::new(
                ops[i1 % ops.len()].variants[0],
                asps[a1 % asps.len()].members[0],
            );
            let t2 = SubjectiveTag::new(
                ops[i2 % ops.len()].variants[0],
                asps[a2 % asps.len()].members[0],
            );
            let v12 = s.tag_similarity(&t1, &t2);
            let v21 = s.tag_similarity(&t2, &t1);
            prop_assert!((v12 - v21).abs() < 1e-6);
            prop_assert!((0.0..=1.0).contains(&v12));
        }

        /// Identity always dominates: sim(t, t) = 1 ≥ sim(t, u).
        #[test]
        fn prop_identity_dominates(i in 0usize..26, a in 0usize..16, j in 0usize..26, b in 0usize..16) {
            let s = sim();
            let lex = s.lexicon().clone();
            let ops = lex.opinion_groups();
            let asps = lex.aspects();
            let t = SubjectiveTag::new(ops[i % ops.len()].variants[0], asps[a % asps.len()].members[0]);
            let u = SubjectiveTag::new(ops[j % ops.len()].variants[0], asps[b % asps.len()].members[0]);
            prop_assert!(s.tag_similarity(&t, &t) >= s.tag_similarity(&t, &u) - 1e-6);
        }

        /// The resolution-level upper bounds really bound the similarity,
        /// across in-lexicon terms, absorbable typos, and garbage — the
        /// soundness contract the ANN candidate pruning rests on.
        #[test]
        fn prop_upper_bounds_are_sound(i1 in 0usize..64, i2 in 0usize..64, a1 in 0usize..64, a2 in 0usize..64) {
            let s = sim();
            let lex = s.lexicon().clone();
            let pick_opinion = |i: usize| -> String {
                let g = &lex.opinion_groups()[i % lex.opinion_groups().len()];
                let v = g.variants[i / 7 % g.variants.len()];
                match i % 4 {
                    0 => v.to_string(),
                    1 => format!("{v}z"),          // absorbable typo
                    2 => format!("zz{v}qq"),       // usually unresolved
                    _ => format!("xq{}", i % 9),   // garbage
                }
            };
            let pick_aspect = |i: usize| -> String {
                let c = &lex.aspects()[i % lex.aspects().len()];
                let m = c.members[i / 5 % c.members.len()];
                match i % 4 {
                    0 => m.to_string(),
                    1 => format!("{m}s"),
                    2 => format!("qq{m}zz"),
                    _ => format!("vb{}", i % 9),
                }
            };
            let (o1, o2) = (pick_opinion(i1), pick_opinion(i2));
            let (p1, p2) = (pick_aspect(a1), pick_aspect(a2));
            let a_ub = s.aspect_upper_bound(s.resolve_aspect(&p1), s.resolve_aspect(&p2));
            prop_assert!(s.aspect_similarity(&p1, &p2) <= a_ub + 1e-6,
                "aspect sim({p1},{p2}) exceeds ub {a_ub}");
            let o_ub = s.opinion_upper_bound(s.resolve_opinion(&o1), s.resolve_opinion(&o2));
            prop_assert!(s.opinion_similarity(&o1, &o2) <= o_ub + 1e-6,
                "opinion sim({o1},{o2}) exceeds ub {o_ub}");
            let t1 = SubjectiveTag::new(&o1, &p1);
            let t2 = SubjectiveTag::new(&o2, &p2);
            prop_assert!(s.tag_similarity(&t1, &t2) <= s.tag_upper_bound(a_ub, o_ub) + 1e-5);
        }
    }
}

//! Rule-based sentence splitting.
//!
//! Reviews are multi-sentence ("The staff is friendly, helpful and
//! professional. The decor is beautiful.") and both the tagger and the
//! parse-tree pairing heuristic operate per sentence, so the indexer splits
//! reviews first.

/// Split `text` into sentences on `.`, `!` and `?` boundaries, keeping the
/// terminator attached and trimming surrounding whitespace. Abbreviation
/// handling is deliberately minimal — review prose rarely contains them, and
/// the generator never produces any.
pub fn split_sentences(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut start = 0usize;
    let bytes = text.as_bytes();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '.' || c == '!' || c == '?' {
            // Consume runs of terminators ("!!", "?!", "...").
            let mut end = i + 1;
            while end < bytes.len() && matches!(bytes[end] as char, '.' | '!' | '?') {
                end += 1;
            }
            let sent = text[start..end].trim();
            if !sent.is_empty() {
                out.push(sent.to_string());
            }
            start = end;
            i = end;
        } else {
            i += 1;
        }
    }
    let tail = text[start..].trim();
    if !tail.is_empty() {
        out.push(tail.to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn splits_on_terminators() {
        let s = split_sentences("The staff is friendly. The decor is beautiful!");
        assert_eq!(s, vec!["The staff is friendly.", "The decor is beautiful!"]);
    }

    #[test]
    fn keeps_tail_without_terminator() {
        let s = split_sentences("Great food. Nice staff");
        assert_eq!(s, vec!["Great food.", "Nice staff"]);
    }

    #[test]
    fn collapses_terminator_runs() {
        let s = split_sentences("Amazing!!! Really?!");
        assert_eq!(s, vec!["Amazing!!!", "Really?!"]);
    }

    #[test]
    fn empty_input() {
        assert!(split_sentences("").is_empty());
        assert!(split_sentences("   ").is_empty());
    }

    proptest! {
        /// Concatenating the split sentences loses only whitespace.
        #[test]
        fn prop_no_content_lost(s in "[a-zA-Z .!?]{0,60}") {
            let joined: String = split_sentences(&s).join("");
            let strip = |t: &str| t.chars().filter(|c| !c.is_whitespace()).collect::<String>();
            prop_assert_eq!(strip(&joined), strip(&s));
        }

        /// Every produced sentence is non-empty after trimming.
        #[test]
        fn prop_sentences_nonempty(s in "[a-z .!?]{0,60}") {
            for sent in split_sentences(&s) {
                prop_assert!(!sent.trim().is_empty());
            }
        }
    }
}

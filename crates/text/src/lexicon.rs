//! Aspect / opinion / synonym / concept lexicons.
//!
//! SACCS needs linguistic ground truth in three places:
//!
//! 1. the **similarity checker** (Section 3.1) compares subjective tags with
//!    "conceptual similarity", which "in addition to the individual meaning
//!    of words, also considers their nature or concept, for example *pizza
//!    being a type of food*" — that is exactly the `term → aspect concept`
//!    mapping here;
//! 2. the **IR baseline** (Section 6.2) expands query terms "into synonymous
//!    and related terms" following Ganesan & Zhai — the opinion synonym
//!    groups here;
//! 3. the **synthetic corpus generator** (saccs-data) must produce reviews
//!    whose paraphrase structure mirrors natural language ("The food is
//!    phenomenal" / "Very tasty plates of food" / "Really good food" all
//!    denote deliciousness, §1) — it samples surface variants from the same
//!    groups.
//!
//! Three domains are provided, matching the paper's evaluation datasets:
//! restaurants (S1, S3, Yelp corpus), electronics (S2) and hotels (S4).

use std::collections::HashMap;

/// Review domain, matching the paper's datasets (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// SemEval-14/15 restaurants + the Yelp corpus.
    Restaurants,
    /// SemEval-14 electronics (laptops); contains brand/model noise tokens.
    Electronics,
    /// Booking.com hotels.
    Hotels,
}

/// Sentiment polarity of an opinion group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Polarity {
    Positive,
    Negative,
}

/// An aspect *concept*: a canonical name plus the surface terms that denote
/// it (`pizza` is-a `food`).
#[derive(Debug, Clone)]
pub struct AspectConcept {
    pub canonical: &'static str,
    pub members: &'static [&'static str],
}

/// A group of interchangeable opinion phrases with a shared polarity, and
/// the aspect concepts they meaningfully apply to. `generic` groups (e.g.
/// *good*, *bad*) apply to almost anything and act as similarity bridges.
#[derive(Debug, Clone)]
pub struct OpinionGroup {
    pub canonical: &'static str,
    pub variants: &'static [&'static str],
    pub polarity: Polarity,
    /// Canonical aspect names this opinion is natural for.
    pub aspects: &'static [&'static str],
    /// True for all-purpose evaluatives (*good*, *bad*, *great*…).
    pub generic: bool,
}

struct DomainData {
    aspects: &'static [AspectConcept],
    opinions: &'static [OpinionGroup],
    related: &'static [(&'static str, &'static str)],
    noise: &'static [&'static str],
}

macro_rules! aspect {
    ($canon:literal, [$($m:literal),* $(,)?]) => {
        AspectConcept { canonical: $canon, members: &[$($m),*] }
    };
}
macro_rules! opinion {
    ($canon:literal, $pol:ident, generic, [$($v:literal),* $(,)?], [$($a:literal),* $(,)?]) => {
        OpinionGroup { canonical: $canon, variants: &[$($v),*], polarity: Polarity::$pol,
                       aspects: &[$($a),*], generic: true }
    };
    ($canon:literal, $pol:ident, [$($v:literal),* $(,)?], [$($a:literal),* $(,)?]) => {
        OpinionGroup { canonical: $canon, variants: &[$($v),*], polarity: Polarity::$pol,
                       aspects: &[$($a),*], generic: false }
    };
}

static RESTAURANT_ASPECTS: &[AspectConcept] = &[
    aspect!(
        "food",
        [
            "food",
            "pizza",
            "pasta",
            "dish",
            "dishes",
            "meal",
            "meals",
            "dessert",
            "desserts",
            "appetizers",
            "steak",
            "burger",
            "risotto",
            "lasagna",
            "tiramisu",
            "bread",
            "sauce",
            "cuisine",
            "seafood",
            "salad"
        ]
    ),
    aspect!("cooking", ["cooking", "recipes", "preparation", "kitchen"]),
    aspect!(
        "menu",
        ["menu", "carte", "la carte", "selection", "offerings"]
    ),
    aspect!(
        "ambiance",
        ["ambiance", "ambience", "atmosphere", "vibe", "mood"]
    ),
    aspect!("service", ["service"]),
    aspect!(
        "staff",
        [
            "staff",
            "waiter",
            "waiters",
            "waitress",
            "waitstaff",
            "server",
            "servers",
            "personnel",
            "employees",
            "bartender"
        ]
    ),
    aspect!(
        "plates",
        ["plates", "cutlery", "glasses", "tableware", "silverware"]
    ),
    aspect!("price", ["price", "prices", "bill", "cost", "pricing"]),
    aspect!("portions", ["portions", "portion", "servings", "serving"]),
    aspect!("delivery", ["delivery", "takeout"]),
    aspect!("wine", ["wine", "wines", "wine list"]),
    aspect!("decor", ["decor", "interior", "furnishing", "design"]),
    aspect!("music", ["music", "playlist", "songs"]),
    aspect!("seating", ["seating", "seats", "chairs", "booths"]),
    aspect!("ingredients", ["ingredients", "produce", "vegetables"]),
    aspect!("place", ["place", "spot", "venue", "restaurant"]),
];

static RESTAURANT_OPINIONS: &[OpinionGroup] = &[
    opinion!(
        "delicious",
        Positive,
        [
            "delicious",
            "tasty",
            "scrumptious",
            "flavorful",
            "really good",
            "phenomenal",
            "divine",
            "a killer",
            "mouthwatering",
            "yummy",
            "very tasty"
        ],
        ["food", "cooking", "wine"]
    ),
    opinion!(
        "bland",
        Negative,
        [
            "bland",
            "tasteless",
            "flavorless",
            "mediocre",
            "unremarkable"
        ],
        ["food", "cooking", "wine"]
    ),
    opinion!(
        "creative",
        Positive,
        [
            "creative",
            "inventive",
            "original",
            "imaginative",
            "innovative"
        ],
        ["cooking", "menu", "food"]
    ),
    opinion!(
        "varied",
        Positive,
        ["varied", "diverse", "extensive", "wide", "well stocked"],
        ["menu", "wine"]
    ),
    opinion!(
        "limited",
        Negative,
        ["limited", "narrow", "short", "sparse"],
        ["menu", "wine"]
    ),
    opinion!(
        "romantic",
        Positive,
        ["romantic", "intimate", "candle lit", "dreamy"],
        ["ambiance", "place", "music"]
    ),
    opinion!(
        "cozy",
        Positive,
        ["cozy", "snug", "warm", "homey", "welcoming"],
        ["ambiance", "place", "decor"]
    ),
    opinion!(
        "quick",
        Positive,
        ["quick", "fast", "speedy", "prompt", "swift"],
        ["service", "delivery"]
    ),
    opinion!(
        "slow",
        Negative,
        [
            "slow",
            "sluggish",
            "a bit slow",
            "painfully slow",
            "glacial"
        ],
        ["service", "delivery"]
    ),
    opinion!(
        "nice",
        Positive,
        [
            "nice",
            "friendly",
            "kind",
            "lovely",
            "pleasant",
            "courteous",
            "helpful",
            "professional",
            "attentive",
            "charming"
        ],
        ["staff", "service"]
    ),
    opinion!(
        "rude",
        Negative,
        [
            "rude",
            "unfriendly",
            "unhelpful",
            "dismissive",
            "grumpy",
            "curt"
        ],
        ["staff", "service"]
    ),
    opinion!(
        "clean",
        Positive,
        ["clean", "spotless", "immaculate", "pristine"],
        ["plates", "place", "seating"]
    ),
    opinion!(
        "dirty",
        Negative,
        ["dirty", "filthy", "grimy", "stained"],
        ["plates", "place", "seating"]
    ),
    opinion!(
        "fair",
        Positive,
        ["fair", "reasonable", "affordable", "cheap", "honest"],
        ["price"]
    ),
    opinion!(
        "expensive",
        Negative,
        ["expensive", "costly", "overpriced", "steep"],
        ["price"]
    ),
    opinion!(
        "generous",
        Positive,
        ["generous", "big", "large", "hearty", "huge"],
        ["portions"]
    ),
    opinion!(
        "small",
        Negative,
        ["small", "tiny", "skimpy", "meager"],
        ["portions"]
    ),
    opinion!(
        "beautiful",
        Positive,
        [
            "beautiful",
            "gorgeous",
            "stunning",
            "elegant",
            "stylish",
            "tasteful"
        ],
        ["decor", "place"]
    ),
    opinion!(
        "ugly",
        Negative,
        ["ugly", "tacky", "dated", "drab"],
        ["decor", "place"]
    ),
    opinion!(
        "quiet",
        Positive,
        ["quiet", "calm", "peaceful", "serene", "tranquil"],
        ["place", "ambiance"]
    ),
    opinion!(
        "noisy",
        Negative,
        ["noisy", "loud", "deafening"],
        ["place", "ambiance", "music"]
    ),
    opinion!(
        "comfortable",
        Positive,
        ["comfortable", "comfy", "cushy", "plush"],
        ["seating"]
    ),
    opinion!(
        "uncomfortable",
        Negative,
        ["uncomfortable", "cramped", "stiff"],
        ["seating"]
    ),
    opinion!(
        "fresh",
        Positive,
        ["fresh", "crisp", "seasonal", "garden fresh"],
        ["ingredients", "food"]
    ),
    opinion!(
        "stale",
        Negative,
        ["stale", "frozen", "canned", "wilted"],
        ["ingredients", "food"]
    ),
    opinion!(
        "good",
        Positive,
        generic,
        [
            "good",
            "great",
            "excellent",
            "superb",
            "amazing",
            "wonderful",
            "fantastic",
            "awesome",
            "terrific",
            "outstanding",
            "brilliant"
        ],
        [
            "food", "wine", "music", "service", "staff", "decor", "ambiance", "menu", "cooking",
            "place", "delivery"
        ]
    ),
    opinion!(
        "bad",
        Negative,
        generic,
        [
            "bad",
            "terrible",
            "awful",
            "horrible",
            "poor",
            "disappointing",
            "dreadful"
        ],
        [
            "food", "wine", "music", "service", "staff", "decor", "ambiance", "menu", "cooking",
            "place", "delivery"
        ]
    ),
];

static RESTAURANT_RELATED: &[(&str, &str)] = &[
    ("food", "cooking"),
    ("food", "ingredients"),
    ("food", "menu"),
    ("cooking", "ingredients"),
    ("ambiance", "place"),
    ("ambiance", "decor"),
    ("ambiance", "music"),
    ("service", "staff"),
    ("service", "delivery"),
    ("place", "decor"),
    ("place", "seating"),
];

static RESTAURANT_NOISE: &[&str] = &[
    "yesterday",
    "tonight",
    "again",
    "definitely",
    "probably",
    "honestly",
    "overall",
    "visited",
    "ordered",
    "tried",
    "came",
    "went",
    "back",
    "friends",
    "family",
    "birthday",
    "dinner",
    "lunch",
    "evening",
    "weekend",
    "downtown",
    "street",
    "corner",
];

static ELECTRONICS_ASPECTS: &[AspectConcept] = &[
    aspect!("battery", ["battery", "battery life", "charge"]),
    aspect!("screen", ["screen", "display", "panel", "resolution"]),
    aspect!("keyboard", ["keyboard", "keys", "trackpad", "touchpad"]),
    aspect!("price", ["price", "cost", "pricing"]),
    aspect!("performance", ["performance", "speed", "processor", "cpu"]),
    aspect!("camera", ["camera", "lens", "photos"]),
    aspect!("sound", ["sound", "speakers", "audio", "microphone"]),
    aspect!(
        "build",
        ["build", "chassis", "body", "construction", "hinge"]
    ),
    aspect!(
        "software",
        ["software", "os", "interface", "firmware", "drivers"]
    ),
    aspect!("storage", ["storage", "disk", "memory", "ssd"]),
];

static ELECTRONICS_OPINIONS: &[OpinionGroup] = &[
    opinion!(
        "long-lasting",
        Positive,
        ["long lasting", "enduring", "durable", "all day"],
        ["battery"]
    ),
    opinion!(
        "short-lived",
        Negative,
        ["short lived", "weak", "draining", "dying"],
        ["battery"]
    ),
    opinion!(
        "crisp",
        Positive,
        ["crisp", "sharp", "vivid", "bright", "gorgeous"],
        ["screen", "camera"]
    ),
    opinion!(
        "dim",
        Negative,
        ["dim", "washed out", "grainy", "blurry"],
        ["screen", "camera"]
    ),
    opinion!(
        "snappy",
        Positive,
        ["snappy", "fast", "responsive", "smooth", "blazing"],
        ["performance", "software", "storage", "keyboard"]
    ),
    opinion!(
        "laggy",
        Negative,
        ["laggy", "sluggish", "slow", "choppy", "unresponsive"],
        ["performance", "software", "keyboard"]
    ),
    opinion!(
        "sturdy",
        Positive,
        ["sturdy", "solid", "robust", "premium"],
        ["build", "keyboard"]
    ),
    opinion!(
        "flimsy",
        Negative,
        ["flimsy", "cheap feeling", "creaky", "plasticky"],
        ["build"]
    ),
    opinion!(
        "clear",
        Positive,
        ["clear", "rich", "loud", "balanced"],
        ["sound"]
    ),
    opinion!(
        "tinny",
        Negative,
        ["tinny", "muffled", "distorted"],
        ["sound"]
    ),
    opinion!(
        "affordable",
        Positive,
        ["affordable", "cheap", "reasonable", "fair"],
        ["price"]
    ),
    opinion!(
        "overpriced",
        Negative,
        ["overpriced", "expensive", "steep"],
        ["price"]
    ),
    opinion!(
        "intuitive",
        Positive,
        ["intuitive", "polished", "clean"],
        ["software"]
    ),
    opinion!(
        "buggy",
        Negative,
        ["buggy", "glitchy", "unstable", "crashing"],
        ["software"]
    ),
    opinion!(
        "good",
        Positive,
        generic,
        [
            "good",
            "great",
            "excellent",
            "amazing",
            "fantastic",
            "superb",
            "solid"
        ],
        [
            "battery",
            "screen",
            "keyboard",
            "performance",
            "camera",
            "sound",
            "build",
            "software",
            "storage",
            "price"
        ]
    ),
    opinion!(
        "bad",
        Negative,
        generic,
        [
            "bad",
            "terrible",
            "awful",
            "poor",
            "disappointing",
            "horrible"
        ],
        [
            "battery",
            "screen",
            "keyboard",
            "performance",
            "camera",
            "sound",
            "build",
            "software",
            "storage",
            "price"
        ]
    ),
];

static ELECTRONICS_RELATED: &[(&str, &str)] = &[
    ("performance", "software"),
    ("performance", "storage"),
    ("screen", "camera"),
    ("build", "keyboard"),
];

/// Brand names, model numbers and unit tokens: the "technical terms such as
/// brand names and numerical references" that the paper blames for the large
/// adversarial-ε failure on S2 (§6.3).
static ELECTRONICS_NOISE: &[&str] = &[
    "xr-500",
    "probook",
    "gen3",
    "v2",
    "1080p",
    "i7",
    "16gb",
    "512gb",
    "usb-c",
    "hdmi",
    "model",
    "unit",
    "firmware",
    "update",
    "bios",
    "benchmark",
    "spec",
    "sheet",
    "warranty",
    "shipped",
    "unboxed",
    "returned",
    "bought",
    "upgraded",
];

static HOTEL_ASPECTS: &[AspectConcept] = &[
    aspect!("room", ["room", "rooms", "suite", "bedroom"]),
    aspect!("bed", ["bed", "beds", "mattress", "pillows"]),
    aspect!(
        "staff",
        [
            "staff",
            "reception",
            "concierge",
            "housekeeping",
            "personnel"
        ]
    ),
    aspect!("breakfast", ["breakfast", "buffet", "brunch"]),
    aspect!("location", ["location", "neighborhood", "area"]),
    aspect!("wifi", ["wifi", "internet", "connection"]),
    aspect!("bathroom", ["bathroom", "shower", "toilet"]),
    aspect!("view", ["view", "views", "scenery"]),
    aspect!("pool", ["pool", "spa", "gym"]),
    aspect!("lobby", ["lobby", "entrance", "hallways"]),
];

static HOTEL_OPINIONS: &[OpinionGroup] = &[
    opinion!(
        "clean",
        Positive,
        ["clean", "spotless", "immaculate", "tidy"],
        ["room", "bathroom", "lobby", "pool", "bed"]
    ),
    opinion!(
        "dirty",
        Negative,
        ["dirty", "filthy", "dusty", "moldy"],
        ["room", "bathroom", "lobby", "bed"]
    ),
    opinion!(
        "spacious",
        Positive,
        ["spacious", "roomy", "large", "airy"],
        ["room", "bathroom"]
    ),
    opinion!(
        "cramped",
        Negative,
        ["cramped", "tiny", "claustrophobic"],
        ["room", "bathroom"]
    ),
    opinion!(
        "comfortable",
        Positive,
        ["comfortable", "comfy", "plush", "soft"],
        ["bed", "room"]
    ),
    opinion!(
        "lumpy",
        Negative,
        ["lumpy", "hard", "creaky", "saggy"],
        ["bed"]
    ),
    opinion!(
        "friendly",
        Positive,
        ["friendly", "helpful", "welcoming", "attentive", "courteous"],
        ["staff"]
    ),
    opinion!(
        "rude",
        Negative,
        ["rude", "dismissive", "unhelpful", "cold"],
        ["staff"]
    ),
    opinion!(
        "varied",
        Positive,
        ["varied", "generous", "fresh", "plentiful"],
        ["breakfast"]
    ),
    opinion!(
        "meager",
        Negative,
        ["meager", "stale", "repetitive", "sad"],
        ["breakfast"]
    ),
    opinion!(
        "central",
        Positive,
        ["central", "convenient", "perfect", "walkable"],
        ["location"]
    ),
    opinion!(
        "remote",
        Negative,
        ["remote", "inconvenient", "sketchy"],
        ["location"]
    ),
    opinion!("fast", Positive, ["fast", "reliable", "stable"], ["wifi"]),
    opinion!(
        "spotty",
        Negative,
        ["spotty", "unreliable", "glacial", "nonexistent"],
        ["wifi"]
    ),
    opinion!(
        "stunning",
        Positive,
        ["stunning", "breathtaking", "panoramic", "gorgeous"],
        ["view"]
    ),
    opinion!(
        "good",
        Positive,
        generic,
        [
            "good",
            "great",
            "excellent",
            "amazing",
            "wonderful",
            "lovely"
        ],
        [
            "room",
            "bed",
            "staff",
            "breakfast",
            "location",
            "wifi",
            "bathroom",
            "view",
            "pool",
            "lobby"
        ]
    ),
    opinion!(
        "bad",
        Negative,
        generic,
        ["bad", "terrible", "awful", "poor", "disappointing"],
        [
            "room",
            "bed",
            "staff",
            "breakfast",
            "location",
            "wifi",
            "bathroom",
            "view",
            "pool",
            "lobby"
        ]
    ),
];

static HOTEL_RELATED: &[(&str, &str)] = &[
    ("room", "bed"),
    ("room", "bathroom"),
    ("lobby", "pool"),
    ("location", "view"),
];

static HOTEL_NOISE: &[&str] = &[
    "stayed",
    "nights",
    "checked",
    "booked",
    "arrived",
    "trip",
    "holiday",
    "anniversary",
    "floor",
    "elevator",
    "morning",
    "luggage",
    "airport",
    "downtown",
    "tonight",
];

fn domain_data(domain: Domain) -> DomainData {
    match domain {
        Domain::Restaurants => DomainData {
            aspects: RESTAURANT_ASPECTS,
            opinions: RESTAURANT_OPINIONS,
            related: RESTAURANT_RELATED,
            noise: RESTAURANT_NOISE,
        },
        Domain::Electronics => DomainData {
            aspects: ELECTRONICS_ASPECTS,
            opinions: ELECTRONICS_OPINIONS,
            related: ELECTRONICS_RELATED,
            noise: ELECTRONICS_NOISE,
        },
        Domain::Hotels => DomainData {
            aspects: HOTEL_ASPECTS,
            opinions: HOTEL_OPINIONS,
            related: HOTEL_RELATED,
            noise: HOTEL_NOISE,
        },
    }
}

/// A compiled, queryable lexicon for one domain.
#[derive(Debug, Clone)]
pub struct Lexicon {
    domain: Domain,
    aspects: &'static [AspectConcept],
    opinions: &'static [OpinionGroup],
    related: &'static [(&'static str, &'static str)],
    noise: &'static [&'static str],
    aspect_of_term: HashMap<&'static str, usize>,
    opinion_of_term: HashMap<&'static str, usize>,
}

impl Lexicon {
    /// Compile the lexicon for `domain`.
    pub fn new(domain: Domain) -> Self {
        let data = domain_data(domain);
        let mut aspect_of_term = HashMap::new();
        for (i, a) in data.aspects.iter().enumerate() {
            for &m in a.members {
                aspect_of_term.insert(m, i);
            }
        }
        let mut opinion_of_term = HashMap::new();
        for (i, o) in data.opinions.iter().enumerate() {
            for &v in o.variants {
                // First (more specific) group wins for ambiguous variants
                // such as "crisp", which appears under both `crisp` and
                // `fresh` depending on the domain.
                opinion_of_term.entry(v).or_insert(i);
            }
        }
        Lexicon {
            domain,
            aspects: data.aspects,
            opinions: data.opinions,
            related: data.related,
            noise: data.noise,
            aspect_of_term,
            opinion_of_term,
        }
    }

    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// All aspect concepts of the domain.
    pub fn aspects(&self) -> &'static [AspectConcept] {
        self.aspects
    }

    /// All opinion groups of the domain.
    pub fn opinion_groups(&self) -> &'static [OpinionGroup] {
        self.opinions
    }

    /// Filler/noise tokens characteristic of the domain's reviews.
    pub fn noise_tokens(&self) -> &'static [&'static str] {
        self.noise
    }

    /// The concept a surface term denotes (`pizza` → `food`), if known.
    pub fn aspect_concept(&self, term: &str) -> Option<&AspectConcept> {
        self.aspect_of_term.get(term).map(|&i| &self.aspects[i])
    }

    /// The opinion group a surface phrase belongs to (`tasty` → `delicious`).
    pub fn opinion_group(&self, phrase: &str) -> Option<&OpinionGroup> {
        self.opinion_of_term.get(phrase).map(|&i| &self.opinions[i])
    }

    /// Look up an aspect concept by its canonical name.
    pub fn aspect_by_name(&self, canonical: &str) -> Option<&AspectConcept> {
        self.aspects.iter().find(|a| a.canonical == canonical)
    }

    /// Look up an opinion group by its canonical name.
    pub fn opinion_by_name(&self, canonical: &str) -> Option<&OpinionGroup> {
        self.opinions.iter().find(|o| o.canonical == canonical)
    }

    /// True when the two canonical aspects are related (food ↔ cooking).
    pub fn aspects_related(&self, a: &str, b: &str) -> bool {
        a == b
            || self
                .related
                .iter()
                .any(|&(x, y)| (x == a && y == b) || (x == b && y == a))
    }

    /// Synonym expansion for the IR baseline: every variant sharing a group
    /// or a concept with `term` (including `term` itself when known).
    pub fn expansions(&self, term: &str) -> Vec<&'static str> {
        if let Some(g) = self.opinion_group(term) {
            return g.variants.to_vec();
        }
        if let Some(a) = self.aspect_concept(term) {
            return a.members.to_vec();
        }
        Vec::new()
    }

    /// Opinion groups whose applicability list contains `aspect_canonical`.
    pub fn opinions_for_aspect(&self, aspect_canonical: &str) -> Vec<&OpinionGroup> {
        self.opinions
            .iter()
            .filter(|o| o.aspects.contains(&aspect_canonical))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pizza_is_a_food() {
        let lex = Lexicon::new(Domain::Restaurants);
        assert_eq!(lex.aspect_concept("pizza").unwrap().canonical, "food");
        assert_eq!(lex.aspect_concept("waiters").unwrap().canonical, "staff");
        assert!(lex.aspect_concept("spaceship").is_none());
    }

    #[test]
    fn tasty_is_delicious() {
        let lex = Lexicon::new(Domain::Restaurants);
        assert_eq!(lex.opinion_group("tasty").unwrap().canonical, "delicious");
        assert_eq!(
            lex.opinion_group("a killer").unwrap().canonical,
            "delicious"
        );
        assert_eq!(lex.opinion_group("friendly").unwrap().canonical, "nice");
    }

    #[test]
    fn all_18_canonical_tags_resolve() {
        // The 18 Moura et al. tags used as the Table-2 test set must all be
        // expressible in the restaurant lexicon.
        let lex = Lexicon::new(Domain::Restaurants);
        let tags = [
            ("delicious", "food"),
            ("creative", "cooking"),
            ("varied", "menu"),
            ("romantic", "ambiance"),
            ("quick", "service"),
            ("nice", "staff"),
            ("clean", "plates"),
            ("fair", "prices"),
            ("cozy", "atmosphere"),
            ("fresh", "ingredients"),
            ("generous", "portions"),
            ("fast", "delivery"),
            ("good", "wine"),
            ("friendly", "waiters"),
            ("quiet", "place"),
            ("beautiful", "decor"),
            ("good", "music"),
            ("comfortable", "seating"),
        ];
        for (op, asp) in tags {
            let group = lex
                .opinion_group(op)
                .unwrap_or_else(|| panic!("opinion {op}"));
            let concept = lex
                .aspect_concept(asp)
                .unwrap_or_else(|| panic!("aspect {asp}"));
            assert!(
                group.aspects.contains(&concept.canonical),
                "{op} should apply to {}",
                concept.canonical
            );
        }
    }

    #[test]
    fn related_aspects_are_symmetric() {
        let lex = Lexicon::new(Domain::Restaurants);
        assert!(lex.aspects_related("food", "cooking"));
        assert!(lex.aspects_related("cooking", "food"));
        assert!(lex.aspects_related("food", "food"));
        assert!(!lex.aspects_related("food", "seating"));
    }

    #[test]
    fn expansions_cover_synonyms_and_members() {
        let lex = Lexicon::new(Domain::Restaurants);
        assert!(lex.expansions("quick").contains(&"fast"));
        assert!(lex.expansions("food").contains(&"pizza"));
        assert!(lex.expansions("zzz").is_empty());
    }

    #[test]
    fn opinion_applicability_lists_reference_real_aspects() {
        for d in [Domain::Restaurants, Domain::Electronics, Domain::Hotels] {
            let lex = Lexicon::new(d);
            for g in lex.opinion_groups() {
                for a in g.aspects {
                    assert!(
                        lex.aspect_by_name(a).is_some(),
                        "{:?}: opinion {} references unknown aspect {a}",
                        d,
                        g.canonical
                    );
                }
            }
        }
    }

    #[test]
    fn every_aspect_has_applicable_opinions_of_both_polarities() {
        for d in [Domain::Restaurants, Domain::Electronics, Domain::Hotels] {
            let lex = Lexicon::new(d);
            for a in lex.aspects() {
                let ops = lex.opinions_for_aspect(a.canonical);
                assert!(
                    ops.iter().any(|o| o.polarity == Polarity::Positive),
                    "{:?}: no positive opinion for {}",
                    d,
                    a.canonical
                );
                assert!(
                    ops.iter().any(|o| o.polarity == Polarity::Negative),
                    "{:?}: no negative opinion for {}",
                    d,
                    a.canonical
                );
            }
        }
    }

    #[test]
    fn electronics_has_brand_noise() {
        let lex = Lexicon::new(Domain::Electronics);
        assert!(lex.noise_tokens().contains(&"xr-500"));
    }

    #[test]
    fn domain_terms_do_not_collide_across_kinds() {
        // No surface term should be both an aspect member and an opinion
        // variant within a domain — that would make gold labels ambiguous.
        for d in [Domain::Restaurants, Domain::Electronics, Domain::Hotels] {
            let lex = Lexicon::new(d);
            for a in lex.aspects() {
                for &m in a.members {
                    assert!(
                        lex.opinion_group(m).is_none(),
                        "{:?}: term {m} is both aspect member and opinion",
                        d
                    );
                }
            }
        }
    }
}

//! # saccs-text
//!
//! Text-processing substrate for SACCS (Subjectivity Aware Conversational
//! Search Services, EDBT 2021). The paper relies on NLTK and ad-hoc Python
//! utilities for tokenization and on an unpublished "conceptual similarity"
//! measure (its footnote 2 declares it out of scope). This crate provides
//! concrete, deterministic Rust implementations of everything textual the
//! rest of the system needs:
//!
//! * [`token`] — whitespace/punctuation tokenizer with source offsets,
//! * [`vocab`] — integer vocabularies with the special tokens the neural
//!   stack expects (`[PAD]`, `[UNK]`, `[MASK]`, `[CLS]`),
//! * [`iob`] — the IOB tagging scheme of Section 4 (`B-AS`, `I-AS`, `B-OP`,
//!   `I-OP`, `O`) with span encoding/decoding and validity checks,
//! * [`lexicon`] — the aspect/opinion/synonym/concept lexicons that back
//!   both the synthetic data generator and the similarity checker,
//! * [`similarity`] — the *conceptual similarity* used by the indexer and
//!   the filtering algorithm (Section 3), blending identity, synonymy,
//!   concept subsumption and an optional embedding cosine,
//! * [`metrics`] — plain string metrics (Levenshtein, Jaccard),
//! * [`sentence`] — a rule-based sentence splitter.

/// IOB tags and labeled spans.
pub mod iob;
/// Domain lexicons of aspects and opinions.
pub mod lexicon;
/// Plain string metrics (Levenshtein, Jaccard).
pub mod metrics;
/// Rule-based sentence splitting.
pub mod sentence;
/// Conceptual similarity between subjective tags.
pub mod similarity;
/// Tokenization.
pub mod token;
/// Token vocabularies with special symbols.
pub mod vocab;

/// Sequence-labeling primitives.
pub use iob::{IobTag, Span, SpanKind};
/// Domain vocabulary access.
pub use lexicon::{Domain, Lexicon};
/// Tags and their similarity measures.
pub use similarity::{ConceptualSimilarity, SimilarityConfig, SubjectiveTag, TagSimilarity};
/// Text to tokens.
pub use token::{tokenize, tokenize_lower, Token};
/// Token-to-id mapping.
pub use vocab::Vocab;

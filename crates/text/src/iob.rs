//! The IOB tagging scheme of Section 4.
//!
//! Each token of a review sentence is labeled with one of
//! `L = {B-AS, I-AS, B-OP, I-OP, O}` (Ramshaw & Marcus IOB encoding):
//! beginning/inside of an *aspect* term, beginning/inside of an *opinion*
//! term, or outside. This module provides the tag type, the span ↔ tag
//! conversions, and the structural-validity predicate the CRF transition
//! constraints are derived from ("I-AS must follow B-AS or I-AS", §4.1).

use std::fmt;

/// Kind of an extracted span: the feature being described (aspect) or the
/// phrase characterizing it (opinion).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpanKind {
    Aspect,
    Opinion,
}

/// One of the five IOB labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IobTag {
    /// Outside any aspect/opinion span.
    O,
    /// Beginning of an aspect term.
    BAs,
    /// Inside (continuation) of an aspect term.
    IAs,
    /// Beginning of an opinion term.
    BOp,
    /// Inside (continuation) of an opinion term.
    IOp,
}

/// All five tags in their canonical index order. `IobTag::ALL[t.index()] == t`.
impl IobTag {
    pub const ALL: [IobTag; 5] = [
        IobTag::O,
        IobTag::BAs,
        IobTag::IAs,
        IobTag::BOp,
        IobTag::IOp,
    ];
    /// Number of labels, the CRF's state count.
    pub const COUNT: usize = 5;

    /// Dense index in `0..5`, used by the CRF and the classifier head.
    pub fn index(self) -> usize {
        match self {
            IobTag::O => 0,
            IobTag::BAs => 1,
            IobTag::IAs => 2,
            IobTag::BOp => 3,
            IobTag::IOp => 4,
        }
    }

    /// Inverse of [`IobTag::index`]; panics when `i >= 5`.
    pub fn from_index(i: usize) -> IobTag {
        IobTag::ALL[i]
    }

    /// Parse the paper's surface form (`"B-AS"`, `"I-OP"`, `"O"`, …).
    pub fn parse(s: &str) -> Option<IobTag> {
        match s {
            "O" => Some(IobTag::O),
            "B-AS" => Some(IobTag::BAs),
            "I-AS" => Some(IobTag::IAs),
            "B-OP" => Some(IobTag::BOp),
            "I-OP" => Some(IobTag::IOp),
            _ => None,
        }
    }

    /// True when `next` may follow `self` in a structurally valid sequence:
    /// an inside tag must continue a span of the same kind.
    pub fn may_precede(self, next: IobTag) -> bool {
        match next {
            IobTag::IAs => matches!(self, IobTag::BAs | IobTag::IAs),
            IobTag::IOp => matches!(self, IobTag::BOp | IobTag::IOp),
            _ => true,
        }
    }

    /// True when the tag may start a sequence (inside tags may not).
    pub fn may_start(self) -> bool {
        !matches!(self, IobTag::IAs | IobTag::IOp)
    }
}

impl fmt::Display for IobTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IobTag::O => "O",
            IobTag::BAs => "B-AS",
            IobTag::IAs => "I-AS",
            IobTag::BOp => "B-OP",
            IobTag::IOp => "I-OP",
        };
        f.write_str(s)
    }
}

/// A contiguous aspect or opinion span over token positions `start..end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Span {
    pub kind: SpanKind,
    /// First token index of the span.
    pub start: usize,
    /// One past the last token index.
    pub end: usize,
}

impl Span {
    pub fn aspect(start: usize, end: usize) -> Span {
        Span {
            kind: SpanKind::Aspect,
            start,
            end,
        }
    }
    pub fn opinion(start: usize, end: usize) -> Span {
        Span {
            kind: SpanKind::Opinion,
            start,
            end,
        }
    }
    pub fn len(&self) -> usize {
        self.end - self.start
    }
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
    /// Join the covered tokens with spaces (the surface form of the term).
    pub fn text(&self, tokens: &[String]) -> String {
        tokens[self.start..self.end].join(" ")
    }
}

/// True when every transition in `tags` (including the implicit start) is
/// structurally valid.
pub fn is_valid_sequence(tags: &[IobTag]) -> bool {
    match tags.first() {
        None => true,
        Some(first) if !first.may_start() => false,
        Some(_) => tags.windows(2).all(|w| w[0].may_precede(w[1])),
    }
}

/// Decode an IOB tag sequence into spans. Structurally invalid inside tags
/// (an `I-*` with no matching open span) are treated as span beginnings, the
/// standard lenient "IOB repair" used by sequence-labeling evaluators.
pub fn spans_from_tags(tags: &[IobTag]) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut open: Option<Span> = None;
    for (i, &t) in tags.iter().enumerate() {
        let (kind, begins) = match t {
            IobTag::O => {
                if let Some(s) = open.take() {
                    spans.push(s);
                }
                continue;
            }
            IobTag::BAs => (SpanKind::Aspect, true),
            IobTag::IAs => (SpanKind::Aspect, false),
            IobTag::BOp => (SpanKind::Opinion, true),
            IobTag::IOp => (SpanKind::Opinion, false),
        };
        match (&mut open, begins) {
            (Some(s), false) if s.kind == kind => s.end = i + 1,
            _ => {
                if let Some(s) = open.take() {
                    spans.push(s);
                }
                open = Some(Span {
                    kind,
                    start: i,
                    end: i + 1,
                });
            }
        }
    }
    if let Some(s) = open {
        spans.push(s);
    }
    spans
}

/// Encode spans back to an IOB tag sequence of length `len`.
///
/// Spans must be within bounds and non-overlapping; overlapping spans are a
/// caller bug and trigger a panic in debug builds. Release builds skip the
/// check and simply overwrite the affected positions, which can leave a
/// structurally invalid tag sequence — never pass overlapping spans.
pub fn tags_from_spans(len: usize, spans: &[Span]) -> Vec<IobTag> {
    let mut tags = vec![IobTag::O; len];
    for s in spans {
        debug_assert!(s.end <= len && s.start < s.end, "span out of bounds: {s:?}");
        debug_assert!(
            tags[s.start..s.end].iter().all(|&t| t == IobTag::O),
            "overlapping span: {s:?}"
        );
        let (b, i) = match s.kind {
            SpanKind::Aspect => (IobTag::BAs, IobTag::IAs),
            SpanKind::Opinion => (IobTag::BOp, IobTag::IOp),
        };
        tags[s.start] = b;
        for t in tags.iter_mut().take(s.end).skip(s.start + 1) {
            *t = i;
        }
    }
    tags
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn display_parse_roundtrip() {
        for t in IobTag::ALL {
            assert_eq!(IobTag::parse(&t.to_string()), Some(t));
        }
        assert_eq!(IobTag::parse("B-XX"), None);
    }

    #[test]
    fn index_roundtrip() {
        for t in IobTag::ALL {
            assert_eq!(IobTag::from_index(t.index()), t);
        }
    }

    #[test]
    fn transition_constraints_match_paper() {
        // "I-OP cannot follow I-AS" (§4.1).
        assert!(!IobTag::IAs.may_precede(IobTag::IOp));
        // "I-AS must either follow B-AS or I-AS".
        assert!(IobTag::BAs.may_precede(IobTag::IAs));
        assert!(IobTag::IAs.may_precede(IobTag::IAs));
        assert!(!IobTag::O.may_precede(IobTag::IAs));
        assert!(!IobTag::BOp.may_precede(IobTag::IAs));
        // Begin tags and O are unconstrained.
        assert!(IobTag::IAs.may_precede(IobTag::BOp));
        assert!(IobTag::IOp.may_precede(IobTag::O));
    }

    #[test]
    fn spans_decode_figure2_example() {
        // "The food is really good but the service is a bit slow"
        // gold: food=AS, "really good"=OP, service=AS, "a bit slow"=OP.
        use IobTag::*;
        let tags = [O, BAs, O, BOp, IOp, O, O, BAs, O, BOp, IOp, IOp];
        let spans = spans_from_tags(&tags);
        assert_eq!(
            spans,
            vec![
                Span::aspect(1, 2),
                Span::opinion(3, 5),
                Span::aspect(7, 8),
                Span::opinion(9, 12)
            ]
        );
    }

    #[test]
    fn lenient_repair_of_dangling_inside() {
        use IobTag::*;
        // I-AS at start behaves like B-AS; I-OP after aspect opens a new opinion.
        let spans = spans_from_tags(&[IAs, IAs, IOp]);
        assert_eq!(spans, vec![Span::aspect(0, 2), Span::opinion(2, 3)]);
    }

    #[test]
    fn adjacent_begin_tags_split_spans() {
        use IobTag::*;
        let spans = spans_from_tags(&[BAs, BAs]);
        assert_eq!(spans, vec![Span::aspect(0, 1), Span::aspect(1, 2)]);
    }

    #[test]
    fn encode_then_decode_is_identity() {
        let spans = vec![Span::aspect(0, 2), Span::opinion(3, 4), Span::aspect(5, 8)];
        let tags = tags_from_spans(9, &spans);
        assert!(is_valid_sequence(&tags));
        assert_eq!(spans_from_tags(&tags), spans);
    }

    #[test]
    fn span_text_joins_tokens() {
        let toks: Vec<String> = ["a", "bit", "slow"].iter().map(|s| s.to_string()).collect();
        assert_eq!(Span::opinion(0, 3).text(&toks), "a bit slow");
    }

    proptest! {
        /// Any sorted set of disjoint spans survives an encode/decode roundtrip.
        #[test]
        fn prop_spans_roundtrip(raw in proptest::collection::vec((0usize..20, 1usize..4, prop::bool::ANY), 0..6)) {
            let mut spans: Vec<Span> = Vec::new();
            let mut cursor = 0usize;
            for (gap, len, is_aspect) in raw {
                let start = cursor + gap + if spans.is_empty() { 0 } else { 1 };
                let kind = if is_aspect { SpanKind::Aspect } else { SpanKind::Opinion };
                spans.push(Span { kind, start, end: start + len });
                cursor = start + len;
            }
            let total = cursor + 3;
            let tags = tags_from_spans(total, &spans);
            prop_assert!(is_valid_sequence(&tags));
            prop_assert_eq!(spans_from_tags(&tags), spans);
        }

        /// Decoding never produces empty or overlapping spans, even from
        /// arbitrary (possibly invalid) tag sequences.
        #[test]
        fn prop_decode_produces_disjoint_spans(idx in proptest::collection::vec(0usize..5, 0..30)) {
            let tags: Vec<IobTag> = idx.into_iter().map(IobTag::from_index).collect();
            let spans = spans_from_tags(&tags);
            for w in spans.windows(2) {
                prop_assert!(w[0].end <= w[1].start);
            }
            for s in &spans {
                prop_assert!(!s.is_empty());
            }
        }
    }
}

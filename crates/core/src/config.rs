//! Validating builders for the service-level configs.
//!
//! The plain structs ([`SaccsConfig`], [`ResilienceConfig`]) stay
//! public-field for tests and ablation benches, but their underlying
//! layers *silently clamp* nonsense (`Backoff::jitter` clamps to
//! `[0, factor-1]`, `BreakerConfig::sanitized` floors zeros to 1), so a
//! typo'd config serves wrong rather than failing loudly. These
//! builders are the loud path: every constraint is checked and a
//! violated one comes back as a typed [`ConfigError`] naming the field,
//! instead of being rounded to something legal.

use crate::resilient::{ResilienceConfig, RetryPolicy};
use crate::service::{Aggregation, SaccsConfig};
use saccs_fault::{Backoff, BreakerConfig};
use std::fmt;
use std::time::Duration;

/// A rejected configuration value, naming the field and the rule it
/// broke.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `top_k` must be at least 1 — a 0-result ranking is degenerate.
    ZeroTopK,
    /// `max_attempts` must be at least 1 (1 means "no retries").
    ZeroAttempts,
    /// A deadline of zero expires before the first stage can run; use
    /// `None` to disable deadline checks instead.
    ZeroDeadline,
    /// The backoff base must be positive, and `max` must not undercut
    /// it (a cap below the base inverts the schedule).
    InvalidBackoffRange { base: Duration, max: Duration },
    /// Jitter must lie in `[0, factor - 1)`: at `factor - 1` and above,
    /// a jittered delay can reach the *next* attempt's nominal delay
    /// and the schedule stops being monotone.
    JitterOutOfBand { jitter: f64, factor: f64 },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroTopK => write!(f, "top_k must be at least 1"),
            ConfigError::ZeroAttempts => write!(f, "max_attempts must be at least 1"),
            ConfigError::ZeroDeadline => {
                write!(f, "deadline must be positive (use None to disable)")
            }
            ConfigError::InvalidBackoffRange { base, max } => write!(
                f,
                "backoff base must be positive and max >= base (got base {base:?}, max {max:?})"
            ),
            ConfigError::JitterOutOfBand { jitter, factor } => write!(
                f,
                "jitter {jitter} out of band [0, factor - 1) for factor {factor}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validating builder for [`SaccsConfig`].
///
/// ```
/// use saccs_core::{Aggregation, SaccsConfigBuilder};
/// let cfg = SaccsConfigBuilder::new()
///     .aggregation(Aggregation::Mean)
///     .top_k(5)
///     .build()
///     .expect("valid config");
/// assert_eq!(cfg.top_k, 5);
/// assert!(SaccsConfigBuilder::new().top_k(0).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct SaccsConfigBuilder {
    config: SaccsConfig,
}

impl Default for SaccsConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SaccsConfigBuilder {
    /// Start from [`SaccsConfig::default`].
    pub fn new() -> Self {
        SaccsConfigBuilder {
            config: SaccsConfig::default(),
        }
    }

    pub fn aggregation(mut self, aggregation: Aggregation) -> Self {
        self.config.aggregation = aggregation;
        self
    }

    pub fn top_k(mut self, top_k: usize) -> Self {
        self.config.top_k = top_k;
        self
    }

    pub fn pad_partial_matches(mut self, pad: bool) -> Self {
        self.config.pad_partial_matches = pad;
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<SaccsConfig, ConfigError> {
        if self.config.top_k == 0 {
            return Err(ConfigError::ZeroTopK);
        }
        Ok(self.config)
    }
}

/// Validating builder for [`ResilienceConfig`].
///
/// Takes the backoff schedule as raw numbers and validates them
/// *before* constructing the [`Backoff`] (whose own setters clamp
/// silently).
///
/// ```
/// use saccs_core::ResilienceConfigBuilder;
/// use std::time::Duration;
/// let rc = ResilienceConfigBuilder::new()
///     .max_attempts(4)
///     .backoff(Duration::from_millis(2), Duration::from_millis(80))
///     .jitter(0.5)
///     .deadline(Duration::from_millis(250))
///     .build()
///     .expect("valid config");
/// assert_eq!(rc.retry.max_attempts, 4);
/// assert!(ResilienceConfigBuilder::new().jitter(1.0).build().is_err());
/// ```
#[derive(Debug, Clone)]
pub struct ResilienceConfigBuilder {
    max_attempts: u32,
    base: Duration,
    max: Duration,
    factor: f64,
    jitter: f64,
    seed: u64,
    breaker: BreakerConfig,
    deadline: Option<Duration>,
}

impl Default for ResilienceConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ResilienceConfigBuilder {
    /// Start from the [`ResilienceConfig::default`] schedule
    /// (3 attempts, 1ms→50ms doubling backoff with 0.5 jitter, no
    /// deadline).
    pub fn new() -> Self {
        ResilienceConfigBuilder {
            max_attempts: 3,
            base: Duration::from_millis(1),
            max: Duration::from_millis(50),
            factor: 2.0,
            jitter: 0.5,
            seed: 0,
            breaker: BreakerConfig::default(),
            deadline: None,
        }
    }

    /// Total attempts per logical call (1 = no retries).
    pub fn max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts;
        self
    }

    /// Backoff schedule bounds: first delay and cap.
    pub fn backoff(mut self, base: Duration, max: Duration) -> Self {
        self.base = base;
        self.max = max;
        self
    }

    /// Per-attempt growth factor.
    pub fn factor(mut self, factor: f64) -> Self {
        self.factor = factor;
        self
    }

    /// Jitter fraction; must lie in `[0, factor - 1)`.
    pub fn jitter(mut self, jitter: f64) -> Self {
        self.jitter = jitter;
        self
    }

    /// Seed for the deterministic jitter stream.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Per-stage circuit-breaker thresholds.
    pub fn breaker(mut self, breaker: BreakerConfig) -> Self {
        self.breaker = breaker;
        self
    }

    /// Per-request wall-clock budget.
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<ResilienceConfig, ConfigError> {
        if self.max_attempts == 0 {
            return Err(ConfigError::ZeroAttempts);
        }
        if self.base.is_zero() || self.max < self.base {
            return Err(ConfigError::InvalidBackoffRange {
                base: self.base,
                max: self.max,
            });
        }
        if !(0.0..self.factor - 1.0).contains(&self.jitter) && self.jitter != 0.0 {
            return Err(ConfigError::JitterOutOfBand {
                jitter: self.jitter,
                factor: self.factor,
            });
        }
        if self.deadline.is_some_and(|d| d.is_zero()) {
            return Err(ConfigError::ZeroDeadline);
        }
        Ok(ResilienceConfig {
            retry: RetryPolicy {
                max_attempts: self.max_attempts,
                backoff: Backoff::new(self.base, self.max)
                    .factor(self.factor)
                    .jitter(self.jitter)
                    .seed(self.seed),
            },
            breaker: self.breaker,
            deadline: self.deadline,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saccs_builder_accepts_valid_and_rejects_zero_top_k() {
        let cfg = SaccsConfigBuilder::new()
            .top_k(3)
            .pad_partial_matches(false)
            .build()
            .expect("valid");
        assert_eq!(cfg.top_k, 3);
        assert!(!cfg.pad_partial_matches);
        assert_eq!(
            SaccsConfigBuilder::new().top_k(0).build(),
            Err(ConfigError::ZeroTopK)
        );
    }

    #[test]
    fn resilience_builder_default_schedule_matches_struct_default() {
        let built = ResilienceConfigBuilder::new().build().expect("valid");
        assert_eq!(built, ResilienceConfig::default());
    }

    #[test]
    fn resilience_builder_rejects_each_bad_field() {
        assert_eq!(
            ResilienceConfigBuilder::new().max_attempts(0).build(),
            Err(ConfigError::ZeroAttempts)
        );
        assert_eq!(
            ResilienceConfigBuilder::new()
                .deadline(Duration::ZERO)
                .build(),
            Err(ConfigError::ZeroDeadline)
        );
        assert!(matches!(
            ResilienceConfigBuilder::new()
                .backoff(Duration::from_millis(10), Duration::from_millis(2))
                .build(),
            Err(ConfigError::InvalidBackoffRange { .. })
        ));
        assert!(matches!(
            ResilienceConfigBuilder::new()
                .backoff(Duration::ZERO, Duration::from_millis(2))
                .build(),
            Err(ConfigError::InvalidBackoffRange { .. })
        ));
        // factor 2.0 → jitter must be < 1.0; exactly 1.0 is out of band
        // (this is precisely the value `Backoff::jitter` would clamp
        // silently).
        assert!(matches!(
            ResilienceConfigBuilder::new().jitter(1.0).build(),
            Err(ConfigError::JitterOutOfBand { .. })
        ));
        assert!(matches!(
            ResilienceConfigBuilder::new().jitter(-0.1).build(),
            Err(ConfigError::JitterOutOfBand { .. })
        ));
    }

    #[test]
    fn resilience_builder_jitter_zero_is_legal_even_with_factor_one() {
        let rc = ResilienceConfigBuilder::new()
            .factor(1.0)
            .jitter(0.0)
            .build()
            .expect("flat schedule with no jitter is valid");
        assert_eq!(rc.retry.max_attempts, 3);
    }
}

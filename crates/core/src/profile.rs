//! User profiles (§7 future work).
//!
//! "Subjective digital assistants should be able to take into account
//! user profiles and adjust their search and interaction behavior
//! accordingly." This extension learns a per-user weighting over
//! subjective dimensions from the tags the user keeps asking about, and
//! biases Algorithm 1's aggregation toward the dimensions the user has
//! historically cared about: a user who always asks about quiet places
//! gets quietness weighted up even when today's query mentions it among
//! five other filters.

use saccs_text::{ConceptualSimilarity, SubjectiveTag};
use std::collections::BTreeMap;

/// A user's accumulated subjective interests.
#[derive(Debug, Clone, Default)]
pub struct UserProfile {
    /// Interest mass per tag the user has expressed.
    interests: BTreeMap<SubjectiveTag, f32>,
    /// Total recorded mass (for normalization).
    total: f32,
}

impl UserProfile {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the tags of one utterance.
    pub fn observe(&mut self, tags: &[SubjectiveTag]) {
        for t in tags {
            *self.interests.entry(t.clone()).or_insert(0.0) += 1.0;
            self.total += 1.0;
        }
    }

    /// Exponentially decay old interests (call between sessions).
    pub fn decay(&mut self, factor: f32) {
        assert!((0.0..=1.0).contains(&factor));
        self.total = 0.0;
        for v in self.interests.values_mut() {
            *v *= factor;
            self.total += *v;
        }
        self.interests.retain(|_, v| *v > 1e-3);
    }

    /// Number of distinct tags with recorded interest.
    pub fn len(&self) -> usize {
        self.interests.len()
    }

    pub fn is_empty(&self) -> bool {
        self.interests.is_empty()
    }

    /// Interest weight for a query tag in `[1, 1 + boost]`: 1 for a tag
    /// unrelated to anything the user ever asked, growing with the
    /// similarity-weighted share of the user's interest mass. `boost`
    /// bounds how much personalization can tilt the ranking.
    pub fn weight(
        &self,
        tag: &SubjectiveTag,
        similarity: &ConceptualSimilarity,
        boost: f32,
    ) -> f32 {
        if self.total <= 0.0 {
            return 1.0;
        }
        let mut affinity = 0.0;
        for (t, &mass) in &self.interests {
            affinity += similarity.tag_similarity(tag, t) * mass;
        }
        1.0 + boost * (affinity / self.total).clamp(0.0, 1.0)
    }

    /// The user's top interests, by mass.
    pub fn top_interests(&self, k: usize) -> Vec<(SubjectiveTag, f32)> {
        let mut v: Vec<(SubjectiveTag, f32)> = self
            .interests
            .iter()
            .map(|(t, &m)| (t.clone(), m))
            .collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(k);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saccs_text::{Domain, Lexicon};

    fn tag(op: &str, asp: &str) -> SubjectiveTag {
        SubjectiveTag::new(op, asp)
    }

    fn sim() -> ConceptualSimilarity {
        ConceptualSimilarity::new(Lexicon::new(Domain::Restaurants))
    }

    #[test]
    fn empty_profile_is_neutral() {
        let p = UserProfile::new();
        assert_eq!(p.weight(&tag("quiet", "place"), &sim(), 0.5), 1.0);
        assert!(p.is_empty());
    }

    #[test]
    fn repeated_interest_raises_weight() {
        let mut p = UserProfile::new();
        for _ in 0..5 {
            p.observe(&[tag("quiet", "place")]);
        }
        let s = sim();
        let quiet = p.weight(&tag("quiet", "place"), &s, 0.5);
        let delivery = p.weight(&tag("fast", "delivery"), &s, 0.5);
        assert!(quiet > delivery, "quiet={quiet} delivery={delivery}");
        assert!(quiet <= 1.5 + 1e-6, "boost bound violated: {quiet}");
    }

    #[test]
    fn related_tags_inherit_interest() {
        let mut p = UserProfile::new();
        p.observe(&[tag("quiet", "place")]);
        let s = sim();
        // "calm spot" is a paraphrase of the user's standing interest.
        let related = p.weight(&tag("calm", "spot"), &s, 0.5);
        let unrelated = p.weight(&tag("generous", "portions"), &s, 0.5);
        assert!(related > unrelated);
    }

    #[test]
    fn decay_forgets_gradually() {
        let mut p = UserProfile::new();
        p.observe(&[tag("quiet", "place")]);
        let s = sim();
        let before = p.weight(&tag("quiet", "place"), &s, 0.5);
        assert_eq!(before, 1.5); // full interest share
        p.observe(&[tag("delicious", "food")]);
        let diluted = p.weight(&tag("quiet", "place"), &s, 0.5);
        assert!(diluted < before);
        for _ in 0..20 {
            p.decay(0.5);
        }
        assert!(p.is_empty(), "interests should fully decay away");
    }

    #[test]
    fn top_interests_ordered_by_mass() {
        let mut p = UserProfile::new();
        p.observe(&[
            tag("quiet", "place"),
            tag("quiet", "place"),
            tag("good", "wine"),
        ]);
        let top = p.top_interests(2);
        assert_eq!(top[0].0, tag("quiet", "place"));
        assert_eq!(top.len(), 2);
    }
}
